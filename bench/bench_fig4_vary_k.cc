// Reproduces Figure 4: adoption utility (top row) and runtime (bottom
// row, paper plots log scale) of IM / TIM / BAB / BAB-P as the promoter
// budget k grows, on all three datasets.
//
// Paper shape to reproduce: utility grows with k for all methods;
// IM < TIM < BAB ~= BAB-P; runtimes IM,TIM << BAB-P << BAB, with BAB-P
// up to 24x (lastfm), 22x (dblp), 8.1x (tweet) faster than BAB.
//
// Flags: --datasets, --theta, --ell, --k=10,20,..., --beta_over_alpha,
//        --epsilon, --gap, --max_nodes, --scale_dblp, --scale_tweet

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const double ratio = flags.GetDouble("beta_over_alpha", 0.5);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const std::vector<int64_t> ks =
      flags.GetIntList("k", {10, 20, 30, 40, 50});
  const BenchScales scales = RequestedScales(flags);
  const BabOptions base = DefaultBabOptions(flags);
  const LogisticAdoptionModel model(1.0 / ratio, 1.0);

  std::printf(
      "=== Figure 4: varying the number k of promoters "
      "(l=%d, beta/alpha=%.1f, theta=%lld) ===\n",
      ell, ratio, static_cast<long long>(theta));
  // Utilities are evaluated on a held-out MRR collection by default so
  // that optimizers do not get credit for overfitting their own samples;
  // pass --insample for the paper's original protocol.
  const bool insample = flags.GetBool("insample", false);
  for (const std::string& name : RequestedDatasets(flags)) {
    const BenchEnv env = MakeEnv(name, scales, ell, theta, 13);
    const MrrCollection holdout =
        MrrCollection::Generate(env.pieces, theta, 777);
    TextTable utility({"k", "IM", "TIM", "BAB", "BAB-P"});
    TextTable time({"k", "IM_s", "TIM_s", "BAB_s", "BAB-P_s"});
    double speedup_max = 0.0;
    for (int64_t k64 : ks) {
      const int k = static_cast<int>(k64);
      MethodResult im = RunIm(env, model, k, theta, 17);
      MethodResult tim = RunTim(env, model, k, theta, 19);
      MethodResult bab = RunBab(env, model, k, base);
      MethodResult babp = RunBabP(env, model, k, epsilon, base);
      EvaluateOnHoldout(holdout, model, {&im, &tim, &bab, &babp});
      auto value = [insample](const MethodResult& r) {
        return insample ? r.utility : r.holdout_utility;
      };
      utility.AddRow({std::to_string(k), TextTable::Num(value(im), 3),
                      TextTable::Num(value(tim), 3),
                      TextTable::Num(value(bab), 3),
                      TextTable::Num(value(babp), 3)});
      time.AddRow({std::to_string(k), TextTable::Num(im.seconds, 3),
                   TextTable::Num(tim.seconds, 3),
                   TextTable::Num(bab.seconds, 3),
                   TextTable::Num(babp.seconds, 3)});
      if (babp.seconds > 0.0) {
        speedup_max =
            std::max(speedup_max, bab.seconds / babp.seconds);
      }
    }
    std::printf("\n--- %s: adoption utility ---\n", name.c_str());
    utility.Print();
    std::printf("--- %s: runtime (seconds, excl. sampling) ---\n",
                name.c_str());
    time.Print();
    std::printf("max BAB/BAB-P speedup on %s: %.1fx\n", name.c_str(),
                speedup_max);
  }
  return 0;
}
