// Reproduces Figure 3: tuning the progressive threshold-decay parameter
// epsilon for BAB-P. The paper reports a mild descending utility trend as
// epsilon rises (larger epsilon admits weaker promoters sooner), with
// total degradation of 0.08% (lastfm), 6.6% (dblp) and 1.4% (tweet) from
// epsilon = 0.1 to 0.9.
//
// Flags: --datasets, --theta, --ell, --k, --beta_over_alpha, --epsilons

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const int k = static_cast<int>(flags.GetInt("k", 30));
  const double ratio = flags.GetDouble("beta_over_alpha", 0.5);
  const std::vector<double> epsilons =
      flags.GetDoubleList("epsilons", {0.1, 0.3, 0.5, 0.7, 0.9});
  const BenchScales scales = RequestedScales(flags);
  const BabOptions base = DefaultBabOptions(flags);
  const LogisticAdoptionModel model(1.0 / ratio, 1.0);

  std::printf(
      "=== Figure 3: BAB-P utility vs epsilon (k=%d, l=%d, beta/alpha=%.1f)"
      " ===\n",
      k, ell, ratio);
  for (const std::string& name : RequestedDatasets(flags)) {
    const BenchEnv env = MakeEnv(name, scales, ell, theta, 11);
    TextTable table({"epsilon", "utility", "time_s"});
    double first = 0.0, last = 0.0;
    for (double eps : epsilons) {
      const MethodResult r = RunBabP(env, model, k, eps, base);
      if (eps == epsilons.front()) first = r.utility;
      last = r.utility;
      table.AddRow({TextTable::Num(eps, 1), TextTable::Num(r.utility, 3),
                    TextTable::Num(r.seconds, 3)});
    }
    std::printf("\n--- %s ---\n", name.c_str());
    table.Print();
    if (first > 0.0) {
      std::printf("utility change %.1f -> %.1f: %.2f%%\n", epsilons.front(),
                  epsilons.back(), 100.0 * (first - last) / first);
    }
  }
  return 0;
}
