#include "bench/bench_common.h"

#include "oipa/adoption.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace oipa {
namespace bench {

BenchEnv MakeEnv(const std::string& dataset_name, const BenchScales& scales,
                 int ell, int64_t theta, uint64_t seed) {
  BenchEnv env;
  const double scale = dataset_name == "dblp"    ? scales.dblp
                       : dataset_name == "tweet" ? scales.tweet
                                                 : 1.0;
  env.dataset = MakeDatasetByName(dataset_name, scale, seed);
  Rng rng(seed + 1000);
  env.campaign =
      Campaign::SampleUniformPieces(ell, env.dataset.num_topics, &rng);
  env.pieces =
      BuildPieceGraphs(*env.dataset.graph, *env.dataset.probs, env.campaign);
  WallTimer timer;
  env.mrr = std::make_unique<MrrCollection>(
      MrrCollection::Generate(env.pieces, theta, seed + 2000));
  env.sample_seconds = timer.Seconds();
  return env;
}

MethodResult RunIm(const BenchEnv& env, const LogisticAdoptionModel& model,
                   int k, int64_t theta, uint64_t seed) {
  const BaselineResult r =
      ImBaseline(*env.dataset.graph, *env.dataset.probs, env.campaign,
                 *env.mrr, model, env.dataset.promoter_pool, k, theta,
                 seed);
  MethodResult out;
  out.utility = r.utility;
  out.seconds = r.seconds;
  out.plan = r.plan;
  return out;
}

MethodResult RunTim(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, int64_t theta, uint64_t seed) {
  const BaselineResult r =
      TimBaseline(*env.dataset.graph, *env.dataset.probs, env.campaign,
                  *env.mrr, model, env.dataset.promoter_pool, k, theta,
                  seed);
  MethodResult out;
  out.utility = r.utility;
  out.seconds = r.seconds;
  out.plan = r.plan;
  return out;
}

MethodResult RunBab(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, const BabOptions& base_options) {
  BabOptions options = base_options;
  options.budget = k;
  options.progressive = false;
  BabSolver solver(env.mrr.get(), model, env.dataset.promoter_pool,
                   options);
  const BabResult r = solver.Solve();
  MethodResult out;
  out.utility = r.utility;
  out.seconds = r.seconds;
  out.plan = r.plan;
  return out;
}

MethodResult RunBabP(const BenchEnv& env,
                     const LogisticAdoptionModel& model, int k,
                     double epsilon, const BabOptions& base_options) {
  BabOptions options = base_options;
  options.budget = k;
  options.progressive = true;
  options.epsilon = epsilon;
  BabSolver solver(env.mrr.get(), model, env.dataset.promoter_pool,
                   options);
  const BabResult r = solver.Solve();
  MethodResult out;
  out.utility = r.utility;
  out.seconds = r.seconds;
  out.plan = r.plan;
  return out;
}

void EvaluateOnHoldout(const MrrCollection& holdout,
                       const LogisticAdoptionModel& model,
                       std::vector<MethodResult*> results) {
  for (MethodResult* r : results) {
    // Plans sized for a different piece count cannot happen here; the
    // holdout shares the env's campaign.
    r->holdout_utility =
        EstimateAdoptionUtility(holdout, model, r->plan);
  }
}

std::vector<std::string> RequestedDatasets(const FlagParser& flags) {
  const std::string arg =
      flags.GetString("datasets", "lastfm,dblp,tweet");
  std::vector<std::string> out;
  size_t start = 0;
  while (start < arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > start) out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

BenchScales RequestedScales(const FlagParser& flags) {
  BenchScales scales;
  scales.dblp = flags.GetDouble("scale_dblp", scales.dblp);
  scales.tweet = flags.GetDouble("scale_tweet", scales.tweet);
  return scales;
}

BabOptions DefaultBabOptions(const FlagParser& flags) {
  BabOptions options;
  options.gap = flags.GetDouble("gap", 0.01);
  options.max_nodes = flags.GetInt("max_nodes", 400);
  return options;
}

}  // namespace bench
}  // namespace oipa
