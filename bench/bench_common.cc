#include "bench/bench_common.h"

#include "oipa/adoption.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace oipa {
namespace bench {

BenchEnv MakeEnv(const std::string& dataset_name, const BenchScales& scales,
                 int ell, int64_t theta, uint64_t seed) {
  BenchEnv env;
  const double scale = dataset_name == "dblp"    ? scales.dblp
                       : dataset_name == "tweet" ? scales.tweet
                                                 : 1.0;
  env.dataset = MakeDatasetByName(dataset_name, scale, seed);
  Rng rng(seed + 1000);
  env.campaign =
      Campaign::SampleUniformPieces(ell, env.dataset.num_topics, &rng);
  env.pieces =
      BuildPieceGraphs(*env.dataset.graph, *env.dataset.probs, env.campaign);
  WallTimer timer;
  env.mrr = std::make_unique<MrrCollection>(
      MrrCollection::Generate(env.pieces, theta, seed + 2000));
  env.sample_seconds = timer.Seconds();
  return env;
}

std::shared_ptr<const PlanningContext> BenchEnv::Context(
    const LogisticAdoptionModel& model) const {
  if (cached_context_ != nullptr && cached_alpha_ == model.alpha() &&
      cached_beta_ == model.beta()) {
    return cached_context_;
  }
  auto context = PlanningContext::BorrowWithSamples(
      *dataset.graph, *dataset.probs, campaign, model, mrr.get());
  OIPA_CHECK(context.ok()) << context.status().ToString();
  cached_context_ = *std::move(context);
  cached_alpha_ = model.alpha();
  cached_beta_ = model.beta();
  return cached_context_;
}

namespace {

/// Dispatches one registry solve against the env's shared samples.
MethodResult RunSolver(const BenchEnv& env,
                       const LogisticAdoptionModel& model,
                       const PlanRequest& request) {
  const StatusOr<PlanResponse> r = Solve(*env.Context(model), request);
  OIPA_CHECK(r.ok()) << request.solver << ": " << r.status().ToString();
  MethodResult out;
  out.utility = r->utility;
  out.seconds = r->seconds;
  out.plan = r->plan;
  return out;
}

PlanRequest BaseRequest(const BenchEnv& env, const std::string& solver,
                        int k) {
  PlanRequest request;
  request.solver = solver;
  request.pool = env.dataset.promoter_pool;
  request.budgets = {k};
  return request;
}

}  // namespace

MethodResult RunIm(const BenchEnv& env, const LogisticAdoptionModel& model,
                   int k, int64_t theta, uint64_t seed) {
  (void)theta;  // the registry IM solver samples at the env's theta
  PlanRequest request = BaseRequest(env, "im", k);
  request.seed = seed;
  return RunSolver(env, model, request);
}

MethodResult RunTim(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, int64_t theta, uint64_t seed) {
  (void)theta;
  PlanRequest request = BaseRequest(env, "tim", k);
  request.seed = seed;
  return RunSolver(env, model, request);
}

MethodResult RunBab(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, const BabOptions& base_options) {
  PlanRequest request = BaseRequest(env, "bab", k);
  request.options.gap = base_options.gap;
  request.options.lazy_greedy = base_options.lazy_greedy;
  request.options.variant = base_options.variant;
  request.options.exact_pruning = base_options.exact_pruning;
  request.options.max_nodes = base_options.max_nodes;
  return RunSolver(env, model, request);
}

MethodResult RunBabP(const BenchEnv& env,
                     const LogisticAdoptionModel& model, int k,
                     double epsilon, const BabOptions& base_options) {
  PlanRequest request = BaseRequest(env, "bab-p", k);
  request.options.gap = base_options.gap;
  request.options.epsilon = epsilon;
  request.options.progressive_fill = base_options.progressive_fill;
  request.options.variant = base_options.variant;
  request.options.exact_pruning = base_options.exact_pruning;
  request.options.max_nodes = base_options.max_nodes;
  return RunSolver(env, model, request);
}

void EvaluateOnHoldout(const MrrCollection& holdout,
                       const LogisticAdoptionModel& model,
                       std::vector<MethodResult*> results) {
  for (MethodResult* r : results) {
    // Plans sized for a different piece count cannot happen here; the
    // holdout shares the env's campaign.
    r->holdout_utility =
        EstimateAdoptionUtility(holdout, model, r->plan);
  }
}

std::vector<std::string> RequestedDatasets(const FlagParser& flags) {
  const std::string arg =
      flags.GetString("datasets", "lastfm,dblp,tweet");
  std::vector<std::string> out;
  size_t start = 0;
  while (start < arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > start) out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

BenchScales RequestedScales(const FlagParser& flags) {
  BenchScales scales;
  scales.dblp = flags.GetDouble("scale_dblp", scales.dblp);
  scales.tweet = flags.GetDouble("scale_tweet", scales.tweet);
  return scales;
}

BabOptions DefaultBabOptions(const FlagParser& flags) {
  BabOptions options;
  options.gap = flags.GetDouble("gap", 0.01);
  options.max_nodes = flags.GetInt("max_nodes", 400);
  return options;
}

}  // namespace bench
}  // namespace oipa
