// Reproduces Table III: dataset statistics and RR-sampling time.
//
// Paper reference (Table III):
//   dataset   vertices  edges  avg-degree  topics  sample time
//   lastfm    1.3K      15K    8.7         20      1.2s
//   dblp      0.5M      6M     11.9        9       5.7s
//   tweet     10M       12M    1.2         50      23.9s
//
// Laptop defaults shrink dblp/tweet (see --scale_dblp / --scale_tweet);
// absolute sample times differ from the paper's Xeon server, but the
// per-dataset ordering and the topic sparsity are preserved.
//
// Flags: --datasets=..., --theta=N, --ell=N, --scale_dblp=, --scale_tweet=

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const BenchScales scales = RequestedScales(flags);

  std::printf("=== Table III: dataset statistics (theta=%lld, l=%d) ===\n",
              static_cast<long long>(theta), ell);
  TextTable table({"dataset", "vertices", "edges", "avg_degree", "topics",
                   "avg_nonzero_probs", "promoters", "sample_time_s"});
  for (const std::string& name : RequestedDatasets(flags)) {
    const BenchEnv env = MakeEnv(name, scales, ell, theta, 7);
    table.AddRow({name, std::to_string(env.dataset.graph->num_vertices()),
                  std::to_string(env.dataset.graph->num_edges()),
                  TextTable::Num(env.dataset.graph->AverageDegree(), 2),
                  std::to_string(env.dataset.num_topics),
                  TextTable::Num(env.dataset.probs->AverageNonZeros(), 2),
                  std::to_string(env.dataset.promoter_pool.size()),
                  TextTable::Num(env.sample_seconds, 2)});
  }
  table.Print();
  std::printf("\nCSV:\n%s", table.ToCsv().c_str());
  return 0;
}
