// Ablation: ComputeBound (Algorithm 2) vs ComputeBoundPro (Algorithm 3)
// in isolation — the Theorem 4 claim. Reports tau-evaluation counts,
// threshold scans, wall time and surrogate quality for one bound call at
// growing budgets, plus the epsilon sweep of scan counts against the
// Equation-9 limit log_{1+eps}(2k).
//
// Flags: --theta, --ell, --ks=..., --epsilon, --beta_over_alpha

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "oipa/bound_evaluator.h"
#include "rrset/coverage_state.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const double ratio = flags.GetDouble("beta_over_alpha", 0.5);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const std::vector<int64_t> ks =
      flags.GetIntList("ks", {10, 20, 40, 80});
  const BenchScales scales = RequestedScales(flags);
  const LogisticAdoptionModel model(1.0 / ratio, 1.0);

  const BenchEnv env = MakeEnv("lastfm", scales, ell, theta, 53);
  const auto f_table = model.AdoptionTable(ell);

  std::printf(
      "=== Ablation: greedy vs progressive upper-bound estimation "
      "(lastfm, l=%d) ===\n",
      ell);
  TextTable table({"k", "greedy_evals", "pro_evals", "eval_ratio",
                   "greedy_s", "pro_s", "greedy_tau", "pro_tau",
                   "pro_scans"});
  for (int64_t k64 : ks) {
    const int k = static_cast<int>(k64);
    BoundEvaluator eval_g(env.mrr.get(), model,
                          env.dataset.promoter_pool);
    BoundEvaluator eval_p(env.mrr.get(), model,
                          env.dataset.promoter_pool);
    CoverageState state(env.mrr.get(), f_table);
    WallTimer tg;
    const BoundResult greedy = eval_g.ComputeBound(&state, k, {});
    const double greedy_s = tg.Seconds();
    WallTimer tp;
    // fill_budget off: measure Algorithm 3 exactly as written.
    const BoundResult pro = eval_p.ComputeBoundPro(&state, k, {}, epsilon,
                                                   /*fill_budget=*/false);
    const double pro_s = tp.Seconds();
    table.AddRow(
        {std::to_string(k), std::to_string(greedy.tau_evals),
         std::to_string(pro.tau_evals),
         TextTable::Num(static_cast<double>(greedy.tau_evals) /
                            std::max<int64_t>(1, pro.tau_evals),
                        1),
         TextTable::Num(greedy_s, 4), TextTable::Num(pro_s, 4),
         TextTable::Num(greedy.tau, 3), TextTable::Num(pro.tau, 3),
         std::to_string(pro.threshold_scans)});
  }
  table.Print();

  std::printf(
      "\n--- threshold scans vs epsilon (k=40; Eq. 9 limit "
      "log_{1+eps}(2k)) ---\n");
  TextTable scans({"epsilon", "scans", "eq9_limit", "pro_tau"});
  for (double eps : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    BoundEvaluator eval(env.mrr.get(), model, env.dataset.promoter_pool);
    CoverageState state(env.mrr.get(), f_table);
    const BoundResult pro = eval.ComputeBoundPro(&state, 40, {}, eps,
                                                 /*fill_budget=*/false);
    scans.AddRow({TextTable::Num(eps, 1),
                  std::to_string(pro.threshold_scans),
                  TextTable::Num(std::log(80.0) / std::log(1.0 + eps), 1),
                  TextTable::Num(pro.tau, 3)});
  }
  scans.Print();
  return 0;
}
