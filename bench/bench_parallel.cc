// Parallel branch-and-bound scaling bench: runs the same budget sweep
// through SolveBatch at 1..32 worker threads (BAB and BAB-P) and
// reports per-thread-count runtimes, parallel speedups, scaling
// efficiency (speedup / threads), and the single-thread throughput CI
// gates on (scripts/check_perf_regression.py compares
// tau_evals_per_sec and the per-thread-count efficiency map against
// the committed baseline).
//
// The defaults (tight gap, 4000-node cap) are deliberately heavier than
// the figure benches so the frontier stays populated and bound calls
// dominate — the regime the work-stealing engine targets. Counts above
// the machine's cores still run (workers oversubscribe), so the 16/32
// legs double as a contention stress on small CI runners.
//
// Flags: --dataset=lastfm --theta=30000 --ell=3 --k=10,20,40
//        --threads=1,2,4,8,16,32 --gap=0.0001 --max_nodes=4000
//        --output=BENCH_parallel.json

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cli/json_writer.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "lastfm");
  const int64_t theta = flags.GetInt("theta", 30'000);
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const std::vector<int64_t> ks = flags.GetIntList("k", {10, 20, 40});
  const std::vector<int64_t> thread_counts =
      flags.GetIntList("threads", {1, 2, 4, 8, 16, 32});
  const std::string output =
      flags.GetString("output", "BENCH_parallel.json");
  BabOptions base;
  base.gap = flags.GetDouble("gap", 0.0001);
  base.max_nodes = flags.GetInt("max_nodes", 4000);
  // Exact pruning (e/(e-1)-inflated bounds) keeps the frontier wide —
  // these instances otherwise converge in a few hundred nodes, leaving
  // too little open work for the thread scaling to be measurable.
  base.exact_pruning = flags.GetBool("exact_pruning", true);
  const LogisticAdoptionModel model(2.0, 1.0);

  std::printf("=== parallel BAB scaling: %s, theta=%lld, k-sweep of %zu "
              "budgets ===\n",
              dataset.c_str(), static_cast<long long>(theta), ks.size());
  const BenchEnv env = MakeEnv(dataset, RequestedScales(flags), ell,
                               theta, 13);

  JsonValue result = JsonValue::Object();
  result.Set("dataset", dataset)
      .Set("theta", theta)
      .Set("ell", ell)
      .Set("sample_seconds", env.sample_seconds);

  JsonValue methods = JsonValue::Object();
  for (const char* method : {"bab", "bab-p"}) {
    struct Run {
      int threads = 0;
      double total_seconds = 0.0;
      int64_t total_tau_evals = 0;
      int64_t total_nodes = 0;
      JsonValue per_k;
    };
    std::vector<Run> measured;
    for (const int64_t threads64 : thread_counts) {
      const int threads = static_cast<int>(threads64);
      PlanRequest request;
      request.solver = method;
      request.pool = env.dataset.promoter_pool;
      request.budgets.assign(ks.begin(), ks.end());
      request.options.gap = base.gap;
      request.options.max_nodes = base.max_nodes;
      request.options.variant = base.variant;
      request.options.exact_pruning = base.exact_pruning;
      request.num_threads = threads;
      // This bench measures the parallel search engine itself, so keep
      // the sweep serial — budget sharding would run every solve on the
      // sequential engine and flatten the thread-scaling signal.
      request.shard_budgets = false;
      const auto sweep = SolveBatch(*env.Context(model), request);
      OIPA_CHECK(sweep.ok()) << sweep.status().ToString();

      Run run;
      run.threads = threads;
      run.per_k = JsonValue::Array();
      for (const PlanResponse& r : *sweep) {
        run.total_seconds += r.seconds;
        run.total_tau_evals += r.tau_evals;
        run.total_nodes += r.nodes_expanded;
        JsonValue row = JsonValue::Object();
        row.Set("k", r.budget)
            .Set("utility", r.utility)
            .Set("seconds", r.seconds)
            .Set("nodes_expanded", r.nodes_expanded)
            .Set("tau_evals", r.tau_evals)
            .Set("converged", r.converged);
        run.per_k.Append(std::move(row));
      }
      measured.push_back(std::move(run));
    }

    // Speedups and the gated single-thread throughput are computed after
    // the sweep so the 1-thread run may appear anywhere in --threads
    // (or be absent, in which case neither is reported).
    double single_thread_seconds = 0.0;
    JsonValue single_thread = JsonValue::Object();
    for (const Run& run : measured) {
      if (run.threads == 1 && run.total_seconds > 0.0) {
        single_thread_seconds = run.total_seconds;
        single_thread.Set("seconds", run.total_seconds)
            .Set("tau_evals", run.total_tau_evals)
            .Set("tau_evals_per_sec",
                 run.total_tau_evals / run.total_seconds);
      }
    }
    JsonValue runs = JsonValue::Array();
    JsonValue efficiency = JsonValue::Object();
    for (Run& run : measured) {
      const double speedup =
          run.total_seconds > 0.0 && single_thread_seconds > 0.0
              ? single_thread_seconds / run.total_seconds
              : 0.0;
      // Scaling efficiency: perfect work stealing would hold this at
      // 1.0; the baseline gates a conservative floor per thread count.
      const double eff = speedup / static_cast<double>(run.threads);
      std::printf("%-6s threads=%d  total=%.3fs  speedup=%.2fx  "
                  "efficiency=%.2f  tau_evals=%lld\n",
                  method, run.threads, run.total_seconds, speedup, eff,
                  static_cast<long long>(run.total_tau_evals));
      JsonValue row = JsonValue::Object();
      row.Set("threads", run.threads)
          .Set("total_seconds", run.total_seconds)
          .Set("total_tau_evals", run.total_tau_evals)
          .Set("total_nodes_expanded", run.total_nodes)
          .Set("speedup_vs_1_thread", speedup)
          .Set("efficiency", eff)
          .Set("per_k", std::move(run.per_k));
      runs.Append(std::move(row));
      if (run.threads > 1) {
        efficiency.Set(std::to_string(run.threads), eff);
      }
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("single_thread", std::move(single_thread))
        .Set("efficiency", std::move(efficiency))
        .Set("runs", std::move(runs));
    methods.Set(method, std::move(entry));
  }
  result.Set("methods", std::move(methods));

  const std::string text = result.Dump(2);
  std::ofstream file(output);
  file << text << "\n";
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
