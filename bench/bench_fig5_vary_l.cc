// Reproduces Figure 5: adoption utility and runtime as the number of
// viral pieces l grows from 1 to 5.
//
// Paper shape to reproduce: utility grows with l for all methods (each
// extra piece raises per-user adoption probability); the IM/TIM gap to
// BAB widens sharply with l (at l = 5 on tweet the paper reports 71x over
// IM and 2.9x over TIM) because single-piece baselines cannot stack
// pieces on the same audience.
//
// Flags: --datasets, --theta, --k, --ells=1,2,3,4,5, --beta_over_alpha,
//        --epsilon, --gap, --scale_dblp, --scale_tweet

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 100'000);
  const int k = static_cast<int>(flags.GetInt("k", 30));
  const double ratio = flags.GetDouble("beta_over_alpha", 0.5);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const std::vector<int64_t> ells =
      flags.GetIntList("ells", {1, 2, 3, 4, 5});
  const BenchScales scales = RequestedScales(flags);
  const BabOptions base = DefaultBabOptions(flags);
  const LogisticAdoptionModel model(1.0 / ratio, 1.0);

  std::printf(
      "=== Figure 5: varying the number l of viral pieces "
      "(k=%d, beta/alpha=%.1f, theta=%lld) ===\n",
      k, ratio, static_cast<long long>(theta));
  const bool insample = flags.GetBool("insample", false);
  for (const std::string& name : RequestedDatasets(flags)) {
    TextTable utility({"l", "IM", "TIM", "BAB", "BAB-P"});
    TextTable time({"l", "IM_s", "TIM_s", "BAB_s", "BAB-P_s"});
    for (int64_t ell64 : ells) {
      const int ell = static_cast<int>(ell64);
      // Environment (campaign + MRR) depends on l, so rebuild per point.
      const BenchEnv env = MakeEnv(name, scales, ell, theta, 23);
      const MrrCollection holdout =
          MrrCollection::Generate(env.pieces, theta, 777);
      MethodResult im = RunIm(env, model, k, theta, 29);
      MethodResult tim = RunTim(env, model, k, theta, 31);
      MethodResult bab = RunBab(env, model, k, base);
      MethodResult babp = RunBabP(env, model, k, epsilon, base);
      EvaluateOnHoldout(holdout, model, {&im, &tim, &bab, &babp});
      auto value = [insample](const MethodResult& r) {
        return insample ? r.utility : r.holdout_utility;
      };
      utility.AddRow({std::to_string(ell), TextTable::Num(value(im), 3),
                      TextTable::Num(value(tim), 3),
                      TextTable::Num(value(bab), 3),
                      TextTable::Num(value(babp), 3)});
      time.AddRow({std::to_string(ell), TextTable::Num(im.seconds, 3),
                   TextTable::Num(tim.seconds, 3),
                   TextTable::Num(bab.seconds, 3),
                   TextTable::Num(babp.seconds, 3)});
    }
    std::printf("\n--- %s: adoption utility ---\n", name.c_str());
    utility.Print();
    std::printf("--- %s: runtime (seconds, excl. sampling) ---\n",
                name.c_str());
    time.Print();
  }
  return 0;
}
