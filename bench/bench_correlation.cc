// Extension experiment (the paper's Section-VII future work): how robust
// is the independence-based OIPA plan when pieces actually propagate
// with correlated edge liveness?
//
// For a BAB-P plan optimized under the independence assumption, we
// simulate the true utility under edge-correlation rho in {0, .25, .5,
// .75, 1} and report the drift relative to the independent model, for an
// easy (beta/alpha = 0.7) and a hard (beta/alpha = 0.3) adoption curve.
// Positive correlation concentrates pieces on the same users, which
// helps when the adoption curve is still convex at typical coverage
// (hard curves) and is roughly neutral otherwise — the series make that
// visible.
//
// Flags: --theta, --k, --ell, --trials

#include <cstdio>

#include "bench/bench_common.h"
#include "oipa/correlated.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 30'000);
  const int k = static_cast<int>(flags.GetInt("k", 20));
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const int trials = static_cast<int>(flags.GetInt("trials", 4000));
  const BenchScales scales = RequestedScales(flags);
  const BabOptions base = DefaultBabOptions(flags);

  // Mixed-topic pieces (3 non-zero topics each): correlation only
  // matters where two pieces can traverse the SAME edge, which one-hot
  // pieces almost never do.
  BenchEnv env = MakeEnv("lastfm", scales, ell, theta, 71);
  {
    Rng rng(79);
    env.campaign = Campaign::SampleSparsePieces(
        ell, env.dataset.num_topics, 3, &rng);
    env.pieces = BuildPieceGraphs(*env.dataset.graph, *env.dataset.probs,
                                  env.campaign);
    env.mrr = std::make_unique<MrrCollection>(
        MrrCollection::Generate(env.pieces, theta, 83));
  }

  std::printf(
      "=== Extension: plan robustness to piece correlation "
      "(lastfm, k=%d, l=%d) ===\n",
      k, ell);
  for (double ratio : {0.3, 0.7}) {
    const LogisticAdoptionModel model(1.0 / ratio, 1.0);
    const MethodResult planned = RunBabP(env, model, k, 0.5, base);
    TextTable table({"rho", "simulated_utility", "vs_independent"});
    double independent = 0.0;
    for (double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const double u = SimulateCorrelatedAdoptionUtility(
          env.pieces, model, planned.plan, rho, trials, 73);
      if (rho == 0.0) independent = u;
      table.AddRow({TextTable::Num(rho, 2), TextTable::Num(u, 3),
                    TextTable::Num(
                        independent > 0.0 ? u / independent : 0.0, 3)});
    }
    std::printf("\n--- beta/alpha = %.1f ---\n", ratio);
    table.Print();
  }
  std::printf(
      "\nThe MRR estimator (and hence the optimizer) assumes rho = 0; the\n"
      "vs_independent column is the model-misspecification factor the\n"
      "paper's future-work section asks about.\n");
  return 0;
}
