// Reproduces Figure 6: adoption utility as the logistic steepness ratio
// beta/alpha varies over {0.3, 0.5, 0.7} (beta fixed to 1, so smaller
// ratios mean a higher adoption barrier alpha).
//
// Paper shape to reproduce: utility rises with beta/alpha for every
// method; the BAB advantage over IM/TIM is LARGEST at small beta/alpha
// (tweet: 280% over TIM at 0.3 vs 190% at 0.7) because a hard adoption
// barrier demands genuinely multi-piece plans.
//
// Flags: --datasets, --theta, --k, --ell, --ratios=0.3,0.5,0.7,
//        --epsilon, --gap, --scale_dblp, --scale_tweet

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int k = static_cast<int>(flags.GetInt("k", 30));
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const std::vector<double> ratios =
      flags.GetDoubleList("ratios", {0.3, 0.5, 0.7});
  const BenchScales scales = RequestedScales(flags);
  const BabOptions base = DefaultBabOptions(flags);

  std::printf(
      "=== Figure 6: varying beta/alpha (k=%d, l=%d, theta=%lld) ===\n",
      k, ell, static_cast<long long>(theta));
  const bool insample = flags.GetBool("insample", false);
  for (const std::string& name : RequestedDatasets(flags)) {
    const BenchEnv env = MakeEnv(name, scales, ell, theta, 37);
    const MrrCollection holdout =
        MrrCollection::Generate(env.pieces, theta, 777);
    TextTable utility(
        {"beta/alpha", "IM", "TIM", "BAB", "BAB-P", "BAB/TIM"});
    for (double ratio : ratios) {
      const LogisticAdoptionModel model(1.0 / ratio, 1.0);
      MethodResult im = RunIm(env, model, k, theta, 41);
      MethodResult tim = RunTim(env, model, k, theta, 43);
      MethodResult bab = RunBab(env, model, k, base);
      MethodResult babp = RunBabP(env, model, k, epsilon, base);
      EvaluateOnHoldout(holdout, model, {&im, &tim, &bab, &babp});
      auto value = [insample](const MethodResult& r) {
        return insample ? r.utility : r.holdout_utility;
      };
      const double gain = value(tim) > 0.0 ? value(bab) / value(tim) : 0.0;
      utility.AddRow(
          {TextTable::Num(ratio, 1), TextTable::Num(value(im), 3),
           TextTable::Num(value(tim), 3), TextTable::Num(value(bab), 3),
           TextTable::Num(value(babp), 3), TextTable::Num(gain, 2)});
    }
    std::printf("\n--- %s: adoption utility ---\n", name.c_str());
    utility.Print();
  }
  return 0;
}
