// Google-benchmark micro benchmarks for the performance-critical
// primitives: RR sampling, MRR generation, coverage updates, tangent
// refinement, and bound evaluations.

#include <benchmark/benchmark.h>

#include <memory>

#include "data/datasets.h"
#include "oipa/bound_evaluator.h"
#include "oipa/tangent_bound.h"
#include "rrset/coverage_state.h"
#include "rrset/mrr_collection.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {
namespace {

/// Shared lastfm-like environment, built once.
struct MicroEnv {
  MicroEnv() : dataset(MakeLastFmLike(7)) {
    Rng rng(11);
    campaign = Campaign::SampleUniformPieces(3, dataset.num_topics, &rng);
    pieces = BuildPieceGraphs(*dataset.graph, *dataset.probs, campaign);
    mrr = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces, 20'000, 13));
  }
  Dataset dataset;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  std::unique_ptr<MrrCollection> mrr;
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

void BM_RrSample(benchmark::State& state) {
  MicroEnv& env = Env();
  RrSampler sampler(env.dataset.graph->num_vertices());
  Rng rng(17);
  std::vector<VertexId> out;
  const VertexId n = env.dataset.graph->num_vertices();
  for (auto _ : state) {
    sampler.Sample(env.pieces[0],
                   static_cast<VertexId>(rng.NextBounded(n)), &rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RrSample);

void BM_MrrGenerate(benchmark::State& state) {
  MicroEnv& env = Env();
  const int64_t theta = state.range(0);
  for (auto _ : state) {
    const MrrCollection mrr =
        MrrCollection::Generate(env.pieces, theta, 19);
    benchmark::DoNotOptimize(mrr.TotalSize());
  }
  state.SetItemsProcessed(state.iterations() * theta);
}
BENCHMARK(BM_MrrGenerate)->Arg(1000)->Arg(10'000);

void BM_CoverageAddRemove(benchmark::State& state) {
  MicroEnv& env = Env();
  const LogisticAdoptionModel model(2.0, 1.0);
  CoverageState cov(env.mrr.get(), model.AdoptionTable(3));
  Rng rng(23);
  const auto& pool = env.dataset.promoter_pool;
  for (auto _ : state) {
    const VertexId v = pool[rng.NextBounded(pool.size())];
    const int piece = static_cast<int>(rng.NextBounded(3));
    cov.AddSeed(v, piece);
    cov.RemoveSeed(v, piece);
    benchmark::DoNotOptimize(cov.RawSum());
  }
}
BENCHMARK(BM_CoverageAddRemove);

void BM_GainOfAdding(benchmark::State& state) {
  MicroEnv& env = Env();
  const LogisticAdoptionModel model(2.0, 1.0);
  CoverageState cov(env.mrr.get(), model.AdoptionTable(3));
  cov.AddSeed(env.dataset.promoter_pool[0], 0);
  Rng rng(29);
  const auto& pool = env.dataset.promoter_pool;
  for (auto _ : state) {
    const VertexId v = pool[rng.NextBounded(pool.size())];
    benchmark::DoNotOptimize(cov.GainOfAdding(v, 1));
  }
}
BENCHMARK(BM_GainOfAdding);

void BM_RefineTangentSlope(benchmark::State& state) {
  double x0 = -5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefineTangentSlope(x0));
    x0 = x0 < -0.1 ? x0 + 0.05 : -5.0;
  }
}
BENCHMARK(BM_RefineTangentSlope);

void BM_ComputeBound(benchmark::State& state) {
  MicroEnv& env = Env();
  const LogisticAdoptionModel model(2.0, 1.0);
  const int k = static_cast<int>(state.range(0));
  BoundEvaluator eval(env.mrr.get(), model, env.dataset.promoter_pool);
  CoverageState cov(env.mrr.get(), model.AdoptionTable(3));
  for (auto _ : state) {
    const BoundResult r = eval.ComputeBound(&cov, k, {});
    benchmark::DoNotOptimize(r.tau);
  }
}
BENCHMARK(BM_ComputeBound)->Arg(10)->Arg(30);

void BM_ComputeBoundPro(benchmark::State& state) {
  MicroEnv& env = Env();
  const LogisticAdoptionModel model(2.0, 1.0);
  const int k = static_cast<int>(state.range(0));
  BoundEvaluator eval(env.mrr.get(), model, env.dataset.promoter_pool);
  CoverageState cov(env.mrr.get(), model.AdoptionTable(3));
  for (auto _ : state) {
    const BoundResult r = eval.ComputeBoundPro(&cov, k, {}, 0.5);
    benchmark::DoNotOptimize(r.tau);
  }
}
BENCHMARK(BM_ComputeBoundPro)->Arg(10)->Arg(30);

}  // namespace
}  // namespace oipa

BENCHMARK_MAIN();
