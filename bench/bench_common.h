#ifndef OIPA_BENCH_BENCH_COMMON_H_
#define OIPA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "oipa/assignment_plan.h"
#include "oipa/baselines.h"
#include "oipa/branch_and_bound.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "util/flags.h"

namespace oipa {
namespace bench {

/// Everything a paper-figure experiment needs: a dataset, a campaign of
/// l pieces, the per-piece influence graphs, and theta MRR samples.
/// The compared methods dispatch through `Context(model)`, which adopts
/// the shared samples so sampling time stays excluded from method
/// runtimes (as in the paper).
struct BenchEnv {
  Dataset dataset;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  std::unique_ptr<MrrCollection> mrr;
  /// Wall time of MRR generation (Table III's "Sample Time").
  double sample_seconds = 0.0;

  /// A PlanningContext borrowing this env's dataset and samples,
  /// memoized per adoption model (benches call Run* many times per
  /// env). This env must stay alive and unmoved while any returned
  /// context is in use.
  std::shared_ptr<const PlanningContext> Context(
      const LogisticAdoptionModel& model) const;

  /// Context() memo: rebuilt only when the model parameters change.
  mutable std::shared_ptr<const PlanningContext> cached_context_;
  mutable double cached_alpha_ = 0.0;
  mutable double cached_beta_ = 0.0;
};

/// Scales used when a bench runs with laptop defaults. The paper's full
/// sizes are reached with --scale_dblp=1 --scale_tweet=1 (see README).
struct BenchScales {
  double dblp = 0.01;    // 5K of 0.5M vertices
  double tweet = 0.002;  // 20K of 10M vertices
};

/// Builds the experiment environment for one dataset.
BenchEnv MakeEnv(const std::string& dataset_name, const BenchScales& scales,
                 int ell, int64_t theta, uint64_t seed);

/// One (utility, wall seconds) measurement row. `utility` is the
/// in-sample MRR estimate (the paper's metric); when a bench requests a
/// holdout evaluation, `holdout_utility` is the same plan re-estimated on
/// an independent MRR collection — unbiased, since optimizers select
/// plans that overfit their own samples.
struct MethodResult {
  double utility = 0.0;
  double seconds = 0.0;
  double holdout_utility = 0.0;
  AssignmentPlan plan{1};
};

/// Re-estimates every result's plan on `holdout` and fills
/// holdout_utility.
void EvaluateOnHoldout(const MrrCollection& holdout,
                       const LogisticAdoptionModel& model,
                       std::vector<MethodResult*> results);

/// The four compared methods of Section VI, with the paper's
/// configuration (theta fixed and shared; the RR-sampling time excluded
/// from method runtimes, as in the paper).
MethodResult RunIm(const BenchEnv& env, const LogisticAdoptionModel& model,
                   int k, int64_t theta, uint64_t seed);
MethodResult RunTim(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, int64_t theta, uint64_t seed);
MethodResult RunBab(const BenchEnv& env, const LogisticAdoptionModel& model,
                    int k, const BabOptions& base_options);
MethodResult RunBabP(const BenchEnv& env,
                     const LogisticAdoptionModel& model, int k,
                     double epsilon, const BabOptions& base_options);

/// Datasets requested on the command line (--datasets=lastfm,dblp,tweet);
/// defaults to all three.
std::vector<std::string> RequestedDatasets(const FlagParser& flags);

/// Reads --scale_dblp / --scale_tweet overrides.
BenchScales RequestedScales(const FlagParser& flags);

/// Default branch-and-bound options used by all figure benches: the
/// paper's 1% gap plus a node cap that keeps laptop defaults bounded.
BabOptions DefaultBabOptions(const FlagParser& flags);

}  // namespace bench
}  // namespace oipa

#endif  // OIPA_BENCH_BENCH_COMMON_H_
