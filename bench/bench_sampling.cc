// Incremental sampling engine bench: measures MRR generation and
// in-place growth throughput (samples/sec) at several worker-thread
// counts, verifies that growing a collection costs the same per-sample
// as generating it, spot-checks that the threaded collections are
// bit-identical to the single-threaded ones (the PerSampleSeed
// determinism contract), and runs adaptive theta selection to
// demonstrate that every sample is drawn at most once per collection
// (the total-samples counter equals 2 * final theta — one train + one
// test collection — where the old regenerate-per-round scheme paid
// 2 * sum of all round sizes).
//
// Emits BENCH_sampling.json (uploaded by CI next to the other bench
// trajectories). The single-threaded samples_per_sec legs are the ones
// scripts/check_perf_regression.py gates against the baseline.
//
// Flags: --dataset=lastfm --ell=3 --theta=20000 --extend_rounds=3
//        --sampling_threads=1,4,16
//        --adaptive_initial=2000 --adaptive_max=128000
//        --output=BENCH_sampling.json

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cli/json_writer.h"
#include "rrset/adaptive_theta.h"
#include "rrset/mrr_collection.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

/// Order-sensitive FNV-1a over every root and membership of the
/// collection: two collections hash equal iff they hold the same
/// samples in the same posting order — the property the parallel
/// generation path promises at any thread count.
uint64_t Fingerprint(const oipa::MrrCollection& mrr) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  for (int64_t i = 0; i < mrr.theta(); ++i) {
    mix(static_cast<uint64_t>(mrr.root(i)));
    for (int piece = 0; piece < mrr.num_pieces(); ++piece) {
      for (const oipa::VertexId v : mrr.Set(i, piece)) {
        mix(static_cast<uint64_t>(v));
      }
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "lastfm");
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const int64_t theta = flags.GetInt("theta", 20'000);
  const int extend_rounds =
      static_cast<int>(flags.GetInt("extend_rounds", 3));
  const int64_t adaptive_initial = flags.GetInt("adaptive_initial", 2'000);
  const int64_t adaptive_max = flags.GetInt("adaptive_max", 128'000);
  const std::string output =
      flags.GetString("output", "BENCH_sampling.json");

  std::printf("=== incremental sampling: %s, ell=%d, theta=%lld ===\n",
              dataset.c_str(), ell,
              static_cast<long long>(theta));
  // MakeEnv samples `theta` sets itself; reuse its dataset + pieces.
  const BenchEnv env = MakeEnv(dataset, RequestedScales(flags), ell,
                               theta, 13);

  JsonValue result = JsonValue::Object();
  result.Set("dataset", dataset).Set("ell", ell).Set("theta", theta);

  const std::vector<int64_t> sampling_threads =
      flags.GetIntList("sampling_threads", {1, 4, 16});

  // ------------------------------------------------ generation throughput
  {
    JsonValue by_threads = JsonValue::Array();
    uint64_t single_thread_hash = 0;
    for (const int64_t threads64 : sampling_threads) {
      const int threads = static_cast<int>(threads64);
      WallTimer timer;
      const MrrCollection fresh = MrrCollection::Generate(
          env.pieces, theta, 29, DiffusionModel::kIndependentCascade,
          threads);
      const double seconds = timer.Seconds();
      const uint64_t hash = Fingerprint(fresh);
      if (threads == 1) single_thread_hash = hash;
      // PerSampleSeed determinism: any thread count must reproduce the
      // single-threaded collection bit for bit.
      if (single_thread_hash != 0) {
        OIPA_CHECK_EQ(hash, single_thread_hash)
            << "parallel generation diverged at " << threads
            << " threads";
      }
      JsonValue j = JsonValue::Object();
      j.Set("threads", threads)
          .Set("samples", theta)
          .Set("seconds", seconds)
          .Set("samples_per_sec", theta / seconds)
          .Set("memberships", fresh.TotalSize())
          .Set("memory_bytes", fresh.MemoryBytes());
      std::printf(
          "generate[threads=%d]: %lld samples in %.3fs (%.0f samples/s)\n",
          threads, static_cast<long long>(theta), seconds,
          theta / seconds);
      // The gated scalar throughput keeps its historical flat shape.
      if (threads == 1) {
        result.Set("generate", j);
      }
      by_threads.Append(std::move(j));
    }
    result.Set("generate_by_threads", std::move(by_threads));
  }

  // ----------------------------------------------------- growth throughput
  {
    JsonValue by_threads = JsonValue::Array();
    uint64_t single_thread_hash = 0;
    for (const int64_t threads64 : sampling_threads) {
      const int threads = static_cast<int>(threads64);
      MrrCollection grown = MrrCollection::Generate(
          env.pieces, theta / 2, 29, DiffusionModel::kIndependentCascade,
          threads);
      WallTimer timer;
      int64_t grown_samples = 0;
      int64_t target = theta;
      for (int r = 0; r < extend_rounds; ++r, target *= 2) {
        grown_samples += target - grown.theta();
        grown.Extend(env.pieces, target, threads);
      }
      const double seconds = timer.Seconds();
      const uint64_t hash = Fingerprint(grown);
      if (threads == 1) single_thread_hash = hash;
      if (single_thread_hash != 0) {
        OIPA_CHECK_EQ(hash, single_thread_hash)
            << "parallel growth diverged at " << threads << " threads";
      }
      JsonValue j = JsonValue::Object();
      j.Set("threads", threads)
          .Set("rounds", extend_rounds)
          .Set("samples", grown_samples)
          .Set("final_theta", grown.theta())
          .Set("index_segments", grown.num_index_segments())
          .Set("seconds", seconds)
          .Set("samples_per_sec", grown_samples / seconds);
      std::printf(
          "extend[threads=%d]: %lld samples across %d rounds in %.3fs "
          "(%.0f samples/s, %d index segments)\n",
          threads, static_cast<long long>(grown_samples), extend_rounds,
          seconds, grown_samples / seconds, grown.num_index_segments());
      if (threads == 1) {
        result.Set("extend", j);
      }
      by_threads.Append(std::move(j));
    }
    result.Set("extend_by_threads", std::move(by_threads));
  }

  // --------------------------------------------------------- adaptive theta
  {
    AdaptiveThetaOptions options;
    options.initial_theta = adaptive_initial;
    options.max_theta = adaptive_max;
    options.relative_tolerance = 0.02;
    options.probe_budget = 8;
    options.seed = 47;
    WallTimer timer;
    const AdaptiveThetaResult chosen =
        ChooseTheta(env.pieces, env.dataset.promoter_pool, options);
    const double seconds = timer.Seconds();
    // What the pre-incremental implementation would have drawn: two
    // fresh collections per round, sizes initial, 2*initial, ...
    int64_t regenerate_cost = 0;
    for (int64_t t = options.initial_theta; t <= chosen.theta; t *= 2) {
      regenerate_cost += 2 * t;
    }
    OIPA_CHECK_EQ(chosen.total_samples_generated, 2 * chosen.theta)
        << "adaptive theta drew a sample more than once per collection";
    JsonValue j = JsonValue::Object();
    j.Set("chosen_theta", chosen.theta)
        .Set("rounds", chosen.rounds)
        .Set("achieved_disagreement", chosen.achieved_disagreement)
        .Set("total_samples_generated", chosen.total_samples_generated)
        .Set("regenerate_scheme_samples", regenerate_cost)
        .Set("seconds", seconds);
    std::printf(
        "adaptive-theta: chose %lld after %d rounds, drew %lld samples "
        "(regeneration would draw %lld)\n",
        static_cast<long long>(chosen.theta), chosen.rounds,
        static_cast<long long>(chosen.total_samples_generated),
        static_cast<long long>(regenerate_cost));
    result.Set("adaptive_theta", std::move(j));
  }

  const std::string text = result.Dump(2);
  std::ofstream file(output);
  file << text << "\n";
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
