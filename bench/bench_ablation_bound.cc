// Ablation: the tangent-surrogate design choices DESIGN.md calls out.
//
//  (1) Bound anchoring: the paper's Figure-2 construction anchors
//      uncovered samples at sigmoid(-alpha) > 0, inflating the bound by
//      ~n*sigmoid(-alpha); the default zero-anchored variant is tight at
//      zero coverage. We report root bounds, achieved gaps, node counts.
//  (2) Pruning semantics: tau(greedy) pruning (paper, (1-1/e) guarantee)
//      vs exact pruning (bound scaled by e/(e-1), lossless).
//  (3) Greedy on the true sigma (no guarantee) vs the BAB framework.
//
// Flags: --theta, --k, --ell, --beta_over_alpha, --gap, --max_nodes

#include <cstdio>

#include "bench/bench_common.h"
#include "oipa/branch_and_bound.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

struct VariantRow {
  const char* label;
  oipa::BabOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace oipa;
  using namespace oipa::bench;
  FlagParser flags(argc, argv);
  const int64_t theta = flags.GetInt("theta", 50'000);
  const int k = static_cast<int>(flags.GetInt("k", 20));
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const double ratio = flags.GetDouble("beta_over_alpha", 0.5);
  const BenchScales scales = RequestedScales(flags);
  const LogisticAdoptionModel model(1.0 / ratio, 1.0);

  const BenchEnv env = MakeEnv("lastfm", scales, ell, theta, 47);

  BabOptions base = DefaultBabOptions(flags);
  base.budget = k;

  std::vector<VariantRow> rows;
  {
    VariantRow r{"zero-anchored (default)", base};
    rows.push_back(r);
  }
  {
    VariantRow r{"paper tangent (Fig. 2)", base};
    r.options.variant = BoundVariant::kPaperTangent;
    rows.push_back(r);
  }
  {
    VariantRow r{"zero-anchored + exact pruning", base};
    r.options.exact_pruning = true;
    rows.push_back(r);
  }
  {
    VariantRow r{"lazy greedy (CELF bound)", base};
    r.options.lazy_greedy = true;
    rows.push_back(r);
  }
  {
    VariantRow r{"progressive (eps=0.5)", base};
    r.options.progressive = true;
    rows.push_back(r);
  }

  std::printf(
      "=== Ablation: bound variants on lastfm (k=%d, l=%d, "
      "beta/alpha=%.1f) ===\n",
      k, ell, ratio);
  TextTable table({"variant", "utility", "upper_bound", "gap%", "nodes",
                   "bound_calls", "tau_evals", "time_s", "converged"});
  for (const VariantRow& row : rows) {
    BabSolver solver(env.mrr.get(), model, env.dataset.promoter_pool,
                     row.options);
    const BabResult res = solver.Solve();
    const double gap =
        res.utility > 0.0
            ? 100.0 * (res.upper_bound - res.utility) / res.utility
            : 0.0;
    table.AddRow({row.label, TextTable::Num(res.utility, 3),
                  TextTable::Num(res.upper_bound, 3),
                  TextTable::Num(gap, 1),
                  std::to_string(res.nodes_expanded),
                  std::to_string(res.bound_calls),
                  std::to_string(res.tau_evals),
                  TextTable::Num(res.seconds, 3),
                  res.converged ? "yes" : "no"});
  }
  // Pure sigma-greedy reference (no guarantee).
  {
    const BabResult res = GreedySigmaSolve(
        *env.mrr, model, env.dataset.promoter_pool, k);
    table.AddRow({"sigma-greedy (no bound)", TextTable::Num(res.utility, 3),
                  "-", "-", "0", "0", "0", TextTable::Num(res.seconds, 3),
                  "-"});
  }
  table.Print();
  std::printf(
      "\nNote: the paper-tangent row shows why gap-based termination\n"
      "cannot fire under the Figure-2 anchoring — its bound includes a\n"
      "constant ~n*sigmoid(-alpha) no plan can reach (see DESIGN.md).\n");
  return 0;
}
