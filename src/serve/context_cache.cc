#include "serve/context_cache.h"

#include <utility>

#include "data/datasets.h"
#include "oipa/logistic_model.h"
#include "topic/campaign.h"
#include "util/random.h"

namespace oipa {
namespace serve {
namespace {

/// Builds the full planning state for one cache miss: dataset,
/// campaign, and context (which runs the piece-graph build and the
/// sampling pass). Mirrors the oipa_cli pipeline stages.
StatusOr<ContextCache::Entry> BuildEntry(const WireRequest& request) {
  const DatasetSpec& d = request.dataset;
  Dataset dataset =
      d.name == "synthetic"
          ? MakeSynthetic(static_cast<VertexId>(d.n), d.num_topics,
                          d.pool_fraction, d.seed)
          : MakeDatasetByName(d.name, d.scale, d.seed);
  std::shared_ptr<const Graph> graph = std::move(dataset.graph);
  std::shared_ptr<const EdgeTopicProbs> probs = std::move(dataset.probs);

  // Same campaign derivation as oipa_cli's BuildContext, so a daemon
  // answer matches the CLI run with the same dataset seed.
  Rng rng(d.seed + 4);
  auto campaign = std::make_shared<const Campaign>(
      Campaign::SampleUniformPieces(d.ell, dataset.num_topics, &rng));

  ContextOptions options;
  options.theta = request.sampling.theta;
  options.holdout_theta = request.wants_holdout() ? -1 : 0;
  options.seed = request.sampling.seed;
  options.sampling_threads = request.sampling.threads;
  // Dataset builds are deterministic per spec, so key the store
  // registry by the context key (content) instead of graph identity: a
  // context evicted from this cache and rebuilt later re-hits its
  // budget-retained store with zero new samples.
  options.source_key = ContextKey(request);
  StatusOr<std::shared_ptr<const PlanningContext>> context =
      PlanningContext::Create(std::move(graph), std::move(probs),
                              std::move(campaign),
                              LogisticAdoptionModel(d.alpha, d.beta),
                              options);
  if (!context.ok()) return context.status();

  ContextCache::Entry entry;
  entry.context = std::move(*context);
  entry.pool = std::move(dataset.promoter_pool);
  return entry;
}

}  // namespace

ContextCache::ContextCache(int max_contexts)
    : max_contexts_(max_contexts < 1 ? 1 : max_contexts) {}

StatusOr<std::shared_ptr<const ContextCache::Entry>>
ContextCache::Acquire(const WireRequest& request, bool* cache_hit) {
  *cache_hit = false;
  const std::string key = ContextKey(request);

  std::shared_ptr<Slot> slot;
  {
    MutexLock lock(&mu_);
    std::shared_ptr<Slot>& mapped = slots_[key];
    if (mapped == nullptr) mapped = std::make_shared<Slot>();
    slot = mapped;
    slot->last_use = ++use_tick_;
  }

  std::shared_ptr<const Entry> entry;
  {
    // Serializes construction per key; concurrent same-key requests
    // block here and find the entry ready.
    MutexLock creation(&slot->mu);
    if (slot->entry != nullptr) {
      entry = slot->entry;
      MutexLock lock(&mu_);
      ++hits_;
      *cache_hit = true;
    } else {
      StatusOr<Entry> built = BuildEntry(request);
      if (!built.ok()) {
        // Not cached: drop the slot (unless a newer one replaced it)
        // so the next request retries instead of inheriting the error.
        MutexLock lock(&mu_);
        auto it = slots_.find(key);
        if (it != slots_.end() && it->second == slot) slots_.erase(it);
        return built.status();
      }
      entry = std::make_shared<const Entry>(std::move(*built));
      slot->entry = entry;
      MutexLock lock(&mu_);
      ++misses_;
      slot->ready = true;
      EvictOverCapacityLocked();
    }
  }

  // Upward theta drift: a hit below the requested theta grows the
  // shared store in place (delta sampling only). Done outside every
  // cache lock — SampleStore::Grow serializes growers itself.
  if (*cache_hit &&
      entry->context->samples().mrr->theta() < request.sampling.theta) {
    OIPA_RETURN_IF_ERROR(
        entry->context->GrowSamples(request.sampling.theta));
  }
  return entry;
}

void ContextCache::EvictOverCapacityLocked() {
  int ready = 0;
  for (const auto& [key, slot] : slots_) {
    if (slot->ready) ++ready;
  }
  while (ready > max_contexts_) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second->ready) continue;
      if (victim == slots_.end() ||
          it->second->last_use < victim->second->last_use) {
        victim = it;
      }
    }
    if (victim == slots_.end()) return;
    // In-flight solves hold the Entry shared_ptr; dropping the slot
    // only stops future requests from finding it.
    slots_.erase(victim);
    --ready;
    ++evictions_;
  }
}

ContextCache::Stats ContextCache::GetStats() const {
  MutexLock lock(&mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  for (const auto& [key, slot] : slots_) {
    if (slot->ready) ++stats.live_contexts;
  }
  return stats;
}

}  // namespace serve
}  // namespace oipa
