#include "serve/json_parser.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

namespace oipa {
namespace serve {

namespace {

/// Recursive-descent parser over a bounded view. Client input reaches
/// this straight off a socket, so every malformed byte must surface as
/// a Status — never a CHECK — and recursion is depth-capped.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    StatusOr<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  /// Past this depth a nested document is almost certainly adversarial;
  /// well under any thread's stack budget.
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      StatusOr<JsonValue> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.Set(key->string_value(), *std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return object;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      array.Append(*std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return array;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_];
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          StatusOr<uint32_t> code = ParseHex4();
          if (!code.ok()) return code.status();
          AppendUtf8(*code, &out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  /// Encodes one code point as UTF-8. Surrogate pairs are not combined
  /// (the wire protocol's identifiers are ASCII in practice); a lone
  /// surrogate round-trips as its raw three-byte encoding rather than
  /// failing the whole request.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("malformed number");
    // Strict JSON: no leading zeros ("01"); a 0 must stand alone or be
    // followed by '.', 'e', or 'E'.
    const size_t first = token[0] == '-' ? 1 : 0;
    if (first + 1 < token.size() && token[first] == '0' &&
        token[first + 1] >= '0' && token[first + 1] <= '9') {
      return Error("leading zero in number '" + token + "'");
    }
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to the double path.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace serve
}  // namespace oipa
