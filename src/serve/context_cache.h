#ifndef OIPA_SERVE_CONTEXT_CACHE_H_
#define OIPA_SERVE_CONTEXT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "oipa/api/planning_context.h"
#include "serve/wire.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/threading.h"

namespace oipa {
namespace serve {

/// Keyed cache of live PlanningContexts for the serve daemon. A context
/// is the expensive half of answering a plan request — dataset
/// generation, piece-graph construction, and the MRR sampling pass —
/// so repeat requests for the same ContextKey() must skip all three.
///
/// Keying follows the SampleStore registry: the key covers every
/// dataset/sampling field except theta (see wire.h ContextKey). A hit
/// whose cached store is smaller than the requested theta grows the
/// store in place (bit-identical to up-front generation) instead of
/// building a second context; requests below the cached theta are
/// served as-is — the documented upward-drift contract.
///
/// Entries are handed out as shared_ptr, so eviction never invalidates
/// an in-flight solve: the evicted context (and its pinned sample
/// store) dies with its last user. Capacity is bounded by
/// `max_contexts`; overflow evicts the least-recently-acquired ready
/// entry. Contexts are built with owning inputs (PlanningContext::
/// Create), which is what makes a nonzero SampleStore registry budget
/// safe to combine with this cache (see SampleStore::Acquire).
///
/// Concurrency: the slot pattern of the store registry. `mu_` guards
/// only the key -> slot map and the LRU/counter bookkeeping; each
/// slot's own mutex serializes the expensive context construction, so
/// concurrent requests for one key build once and requests for
/// different keys build in parallel. Lock order: slot->mu before mu_
/// (never the reverse).
class ContextCache {
 public:
  /// A ready-to-solve cache entry: the context plus the dataset's
  /// promoter pool (the request pool the daemon plans over).
  struct Entry {
    std::shared_ptr<const PlanningContext> context;
    std::vector<VertexId> pool;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Ready entries currently cached.
    int live_contexts = 0;
  };

  explicit ContextCache(int max_contexts);

  /// Returns the cached entry for the request's ContextKey(), building
  /// it on a miss. `*cache_hit` reports which happened. A hit with a
  /// smaller cached theta grows the sample store to the requested
  /// theta before returning. Errors (dataset or context construction)
  /// are not cached — the next request retries.
  StatusOr<std::shared_ptr<const Entry>> Acquire(
      const WireRequest& request, bool* cache_hit);

  Stats GetStats() const;

 private:
  struct Slot {
    /// Serializes construction per key; held for the whole build.
    Mutex mu;
    std::shared_ptr<const Entry> entry OIPA_GUARDED_BY(mu);
    /// Recency tick and readiness, maintained under the cache mutex.
    uint64_t last_use = 0;
    bool ready = false;
  };

  /// Removes LRU ready slots until at most max_contexts_ remain.
  void EvictOverCapacityLocked() OIPA_REQUIRES(mu_);

  const int max_contexts_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_
      OIPA_GUARDED_BY(mu_);
  uint64_t use_tick_ OIPA_GUARDED_BY(mu_) = 0;
  int64_t hits_ OIPA_GUARDED_BY(mu_) = 0;
  int64_t misses_ OIPA_GUARDED_BY(mu_) = 0;
  int64_t evictions_ OIPA_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_CONTEXT_CACHE_H_
