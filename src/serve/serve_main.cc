// oipa_serve: the OIPA planning daemon. See src/serve/server.h for the
// execution model and wire.h for the protocol; README.md "Serving"
// walks through a session. Flags (all optional):
//
//   oipa_serve --host=127.0.0.1 --port=7477 --workers=2
//              --max_contexts=8 --store_budget_mb=0
//              --max_queue_depth=256 --max_inflight_per_conn=32
//              --write_timeout_ms=5000
//              --checkpoint_dir= --checkpoint_interval_ms=30000
//
// SIGINT/SIGTERM drain in-flight solves before exiting. Fault
// injection (chaos testing) is armed via $OIPA_FAULTS /
// $OIPA_FAULTS_SEED — see src/util/fault_injector.h.

#include <csignal>
#include <iostream>

#include "serve/server.h"
#include "util/fault_injector.h"
#include "util/flags.h"

namespace {

// Signal handlers may only call the async-signal-safe
// PlanServer::RequestShutdown; the pointer is published before the
// handlers are installed and never changes afterwards.
oipa::serve::PlanServer* g_server = nullptr;

extern "C" void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  oipa::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout << "usage: oipa_serve [--host=127.0.0.1] [--port=0] "
                 "[--workers=2] [--max_contexts=8] "
                 "[--store_budget_mb=0] [--max_queue_depth=256] "
                 "[--max_inflight_per_conn=32] [--write_timeout_ms=5000] "
                 "[--checkpoint_dir=] [--checkpoint_interval_ms=30000]\n"
                 "Newline-delimited JSON planning daemon; see README.md "
                 "\"Serving\" for the protocol and \"Robustness\" for "
                 "overload, fault-injection, and checkpoint behavior.\n";
    return 0;
  }

  // Chaos testing: $OIPA_FAULTS arms deterministic fault injection
  // before any sockets or stores exist. A bad spec is a startup error.
  const oipa::Status faults = oipa::FaultInjector::ConfigureFromEnv();
  if (!faults.ok()) {
    std::cerr << "oipa_serve: " << faults.ToString() << "\n";
    return 1;
  }

  oipa::serve::ServerOptions options;
  options.host = flags.GetString("host", options.host);
  options.port = static_cast<int>(flags.GetInt("port", options.port));
  options.workers =
      static_cast<int>(flags.GetInt("workers", options.workers));
  options.max_contexts = static_cast<int>(
      flags.GetInt("max_contexts", options.max_contexts));
  options.store_budget_bytes =
      flags.GetInt("store_budget_mb", 0) * 1024 * 1024;
  options.max_queue_depth = static_cast<int>(
      flags.GetInt("max_queue_depth", options.max_queue_depth));
  options.max_inflight_per_conn = static_cast<int>(flags.GetInt(
      "max_inflight_per_conn", options.max_inflight_per_conn));
  options.write_timeout_ms = static_cast<int>(
      flags.GetInt("write_timeout_ms", options.write_timeout_ms));
  options.checkpoint_dir =
      flags.GetString("checkpoint_dir", options.checkpoint_dir);
  options.checkpoint_interval_ms = static_cast<int>(flags.GetInt(
      "checkpoint_interval_ms", options.checkpoint_interval_ms));

  oipa::serve::PlanServer server(options);
  const oipa::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "oipa_serve: " << started.ToString() << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // The smoke harness and humans both scrape this line for the port.
  std::cout << "oipa_serve listening on " << options.host << ":"
            << server.port() << std::endl;

  server.Wait();
  std::cerr << "oipa_serve: draining...\n";
  server.Stop();
  std::cerr << "oipa_serve: stopped\n";
  return 0;
}
