#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "oipa/api/solver_registry.h"
#include "rrset/mrr_collection.h"
#include "rrset/sample_store.h"

namespace oipa {
namespace serve {
namespace {

/// Hard cap on one request line; a client exceeding it is answered
/// with an error and disconnected (protects the daemon from unbounded
/// buffering, not a protocol limit a sane request ever hits).
constexpr size_t kMaxLineBytes = 1 << 20;

bool IsBlank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

PlanServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

PlanServer::PlanServer(const ServerOptions& options)
    : options_(options), cache_(options.max_contexts) {}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }

  SampleStore::SetRegistryBudget(options_.store_budget_bytes);

  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError("pipe: " + std::string(std::strerror(errno)));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable IPv4 host '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IoError("getsockname: " +
                           std::string(std::strerror(errno)));
  }
  bound_port_ = ntohs(bound.sin_port);

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void PlanServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    // The byte is deliberately never consumed: every poll()er of the
    // read end (AcceptLoop, Wait) sees POLLIN from here on.
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void PlanServer::Wait() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    ::poll(&pfd, 1, -1);  // EINTR (the signal itself) re-checks the flag
  }
}

void PlanServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Draining: late requests from still-open connections get an error
  // response (ReaderLoop checks the flag), everything already queued is
  // solved before the workers exit.
  {
    MutexLock lock(&mu_);
    draining_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Now unblock the readers and wait for them.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    MutexLock lock(&mu_);
    conns = conns_;
    readers = std::move(readers_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  {
    MutexLock lock(&mu_);
    conns_.clear();
  }
  conns.clear();  // last references: fds close here

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void PlanServer::AcceptLoop() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    MutexLock lock(&mu_);
    if (draining_) continue;  // conn closes via its destructor
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void PlanServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos = 0;
    while (alive && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (IsBlank(line)) continue;

      StatusOr<WireRequest> request = ParseWireRequest(line);
      if (!request.ok()) {
        // Malformed input never kills the daemon or the connection —
        // the client gets a structured error and may try again.
        WriteLine(conn.get(), ErrorResponseLine("", request.status()));
        continue;
      }
      bool rejected = false;
      {
        MutexLock lock(&mu_);
        if (draining_) {
          rejected = true;
        } else {
          Work work;
          work.conn = conn;
          work.merge_key = MergeKey(*request);
          work.request = std::move(*request);
          work.accepted_at = std::chrono::steady_clock::now();
          queue_.push_back(std::move(work));
          queue_cv_.NotifyOne();
        }
      }
      if (rejected) {
        WriteLine(conn.get(),
                  ErrorResponseLine(
                      request->id,
                      Status::FailedPrecondition("server is draining")));
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      WriteLine(conn.get(),
                ErrorResponseLine(
                    "", Status::InvalidArgument(
                            "request line exceeds 1 MiB; disconnecting")));
      alive = false;
    }
  }
  MutexLock lock(&mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
               conns_.end());
}

void PlanServer::WorkerLoop() {
  while (true) {
    std::vector<Work> group;
    size_t queue_depth = 0;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !draining_) queue_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // draining and nothing left
      queue_depth = queue_.size();
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Claim every queued batch-compatible request: same context,
      // same solver profile, no deadline (see wire.h MergeKey).
      // Copied, not referenced: push_back below reallocates `group`.
      const std::string key = group.front().merge_key;
      if (!key.empty()) {
        for (auto it = queue_.begin(); it != queue_.end();) {
          if (it->merge_key == key) {
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (group.size() > 1) {
        batched_requests_ += static_cast<int64_t>(group.size());
      }
    }
    HandleGroup(std::move(group), queue_depth);
  }
}

void PlanServer::HandleGroup(std::vector<Work> group,
                             size_t queue_depth) {
  const int64_t samples_before = MrrCollection::GeneratedSampleCount();

  // The whole group shares one ContextKey(); acquire with the largest
  // theta seen so every member's samples are covered by one store.
  WireRequest spec = group.front().request;
  for (const Work& work : group) {
    spec.sampling.theta =
        std::max(spec.sampling.theta, work.request.sampling.theta);
  }
  bool cache_hit = false;
  StatusOr<std::shared_ptr<const ContextCache::Entry>> acquired =
      cache_.Acquire(spec, &cache_hit);
  if (!acquired.ok()) {
    for (const Work& work : group) {
      WriteLine(work.conn.get(),
                ErrorResponseLine(work.request.id, acquired.status()));
    }
    return;
  }
  std::shared_ptr<const ContextCache::Entry> entry = std::move(*acquired);

  // Merge the group's budget lists into one deduplicated sweep.
  std::vector<int> budgets;
  for (const Work& work : group) {
    for (const int k : work.request.plan.budgets) {
      if (std::find(budgets.begin(), budgets.end(), k) == budgets.end()) {
        budgets.push_back(k);
      }
    }
  }
  std::sort(budgets.begin(), budgets.end());

  PlanRequest plan_request = ToPlanRequest(spec, entry->pool);
  plan_request.budgets = std::move(budgets);
  if (spec.plan.deadline_ms.has_value()) {
    // The deadline runs from enqueue: queue wait has already consumed
    // part of it. An exhausted budget still dispatches with 1 ms left —
    // the solver is cancelled at its first progress poll, which yields
    // the partial-telemetry response the contract promises.
    const int64_t elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - group.front().accepted_at)
            .count();
    plan_request.deadline_ms =
        std::max<int64_t>(1, *spec.plan.deadline_ms - elapsed);
  }

  const StatusOr<std::vector<PlanResponse>> responses =
      SolveBatch(*entry->context, plan_request);
  if (!responses.ok()) {
    for (const Work& work : group) {
      WriteLine(work.conn.get(),
                ErrorResponseLine(work.request.id, responses.status()));
    }
    return;
  }
  const int64_t samples_generated =
      MrrCollection::GeneratedSampleCount() - samples_before;

  std::map<int, const PlanResponse*> by_budget;
  for (const PlanResponse& response : *responses) {
    by_budget[response.budget] = &response;
  }
  // Render every response first, then drop this worker's context
  // reference BEFORE writing: once a client has read its answer, any
  // store pin this worker held on its behalf is provably released
  // (responses that report pin/eviction telemetry depend on that
  // ordering — so do clients sequencing requests against it).
  std::vector<std::string> lines;
  lines.reserve(group.size());
  for (const Work& work : group) {
    JsonValue results = JsonValue::Array();
    bool cancelled = false;
    for (const int k : work.request.plan.budgets) {
      const auto it = by_budget.find(k);
      if (it == by_budget.end()) continue;  // cannot happen; be safe
      cancelled = cancelled || it->second->cancelled;
      results.Append(ResultJson(*it->second));
    }
    lines.push_back(
        OkResponseLine(work.request.id, std::move(results), cancelled,
                       ServeTelemetry(*entry, cache_hit, group.size(),
                                      queue_depth, samples_generated)));
  }
  entry.reset();
  for (size_t i = 0; i < group.size(); ++i) {
    WriteLine(group[i].conn.get(), lines[i]);
  }
}

JsonValue PlanServer::ServeTelemetry(const ContextCache::Entry& entry,
                                     bool cache_hit, size_t batch_size,
                                     size_t queue_depth,
                                     int64_t samples_generated) const {
  JsonValue serve = JsonValue::Object();
  serve.Set("cache_hit", cache_hit)
      .Set("batch_size", static_cast<int64_t>(batch_size))
      .Set("queue_depth", static_cast<int64_t>(queue_depth))
      .Set("samples_generated", samples_generated);
  {
    MutexLock lock(&mu_);
    serve.Set("batched_requests", batched_requests_);
  }

  const ContextCache::Stats cache = cache_.GetStats();
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("hits", cache.hits)
      .Set("misses", cache.misses)
      .Set("evictions", cache.evictions)
      .Set("live_contexts", cache.live_contexts);
  serve.Set("context_cache", std::move(cache_json));

  const SampleStore::Stats store = entry.context->sample_store().GetStats();
  JsonValue store_json = JsonValue::Object();
  store_json.Set("theta", store.theta)
      .Set("holdout_theta", store.holdout_theta)
      .Set("memory_bytes", store.memory_bytes)
      .Set("live_generations", store.live_generations)
      .Set("shared", store.shared);
  serve.Set("store", std::move(store_json));

  const SampleStore::RegistryStats registry =
      SampleStore::GetRegistryStats();
  JsonValue registry_json = JsonValue::Object();
  registry_json.Set("live_stores", registry.live_stores)
      .Set("pinned_stores", registry.pinned_stores)
      .Set("memory_bytes", registry.memory_bytes)
      .Set("budget_bytes", registry.budget_bytes)
      .Set("evictions", registry.evictions);
  serve.Set("store_registry", std::move(registry_json));
  return serve;
}

void PlanServer::WriteLine(Connection* conn, const std::string& line) {
  const std::string framed = line + "\n";
  MutexLock lock(&conn->write_mu);
  size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon;
    // the write error is simply dropped with the response.
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace serve
}  // namespace oipa
