#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <utility>

#include "oipa/api/solver_registry.h"
#include "rrset/mrr_collection.h"
#include "rrset/mrr_io.h"
#include "rrset/sample_store.h"
#include "serve/json_parser.h"
#include "util/fault_injector.h"

namespace oipa {
namespace serve {
namespace {

/// Hard cap on one request line; a client exceeding it is answered
/// with an error and disconnected (protects the daemon from unbounded
/// buffering, not a protocol limit a sane request ever hits).
constexpr size_t kMaxLineBytes = 1 << 20;

bool IsBlank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Checkpoint file for a source-keyed store: the key itself can be
/// long and holds filesystem-hostile characters, so the name is an
/// FNV-1a hash of it (the manifest maps names back to keys).
std::string CheckpointFileName(const std::string& source_key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : source_key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "store_%016llx.oipasto",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Atomic-rename write: the manifest (and each snapshot) is either the
/// old complete file or the new complete file, never a torn one — a
/// kill -9 mid-checkpoint leaves a loadable directory.
Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out << contents;
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failure on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

PlanServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

PlanServer::PlanServer(const ServerOptions& options)
    : options_(options), cache_(options.max_contexts) {}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  if (options_.max_contexts < 1) {
    return Status::InvalidArgument("max_contexts must be >= 1");
  }
  if (options_.store_budget_bytes < 0) {
    return Status::InvalidArgument("store_budget_bytes must be >= 0");
  }
  if (options_.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options_.max_inflight_per_conn < 1) {
    return Status::InvalidArgument("max_inflight_per_conn must be >= 1");
  }
  if (options_.write_timeout_ms < 1) {
    return Status::InvalidArgument("write_timeout_ms must be >= 1");
  }
  if (options_.checkpoint_interval_ms < 1) {
    return Status::InvalidArgument("checkpoint_interval_ms must be >= 1");
  }

  SampleStore::SetRegistryBudget(options_.store_budget_bytes);

  if (!options_.checkpoint_dir.empty()) {
    if (::mkdir(options_.checkpoint_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::IoError("mkdir " + options_.checkpoint_dir + ": " +
                             std::strerror(errno));
    }
    RecoverCheckpoints();
  }

  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError("pipe: " + std::string(std::strerror(errno)));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable IPv4 host '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IoError("getsockname: " +
                           std::string(std::strerror(errno)));
  }
  bound_port_ = ntohs(bound.sin_port);

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (!options_.checkpoint_dir.empty()) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::Ok();
}

void PlanServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    // The byte is deliberately never consumed: every poll()er of the
    // read end (AcceptLoop, Wait) sees POLLIN from here on.
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void PlanServer::Wait() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    ::poll(&pfd, 1, -1);  // EINTR (the signal itself) re-checks the flag
  }
}

void PlanServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

  // Draining: late requests from still-open connections get an error
  // response (ReaderLoop checks the flag), everything already queued is
  // solved before the workers exit.
  {
    MutexLock lock(&mu_);
    draining_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Final checkpoint after the drain: every store is at its terminal
  // size, so a graceful shutdown persists exactly what a restart needs
  // (the checkpoint thread was joined above — see CheckpointNow).
  CheckpointNow();

  // Now unblock the readers and wait for them.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    MutexLock lock(&mu_);
    conns = conns_;
    readers = std::move(readers_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  {
    MutexLock lock(&mu_);
    conns_.clear();
  }
  conns.clear();  // last references: fds close here

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void PlanServer::AcceptLoop() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (FaultInjector::ShouldFail("serve.accept")) {
      // Simulated accept failure: the client sees an immediate close
      // and retries; the daemon carries on.
      ::close(fd);
      continue;
    }
    // Slow-client guard: a peer that stops reading can stall send()
    // for at most write_timeout_ms before WriteLine severs it.
    timeval write_timeout{};
    write_timeout.tv_sec = options_.write_timeout_ms / 1000;
    write_timeout.tv_usec = (options_.write_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &write_timeout,
                 sizeof(write_timeout));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    MutexLock lock(&mu_);
    if (draining_) continue;  // conn closes via its destructor
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void PlanServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    if (FaultInjector::ShouldFail("serve.read")) break;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos = 0;
    while (alive && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (IsBlank(line)) continue;

      StatusOr<WireRequest> request = ParseWireRequest(line);
      if (!request.ok()) {
        // Malformed input never kills the daemon or the connection —
        // the client gets a structured error and may try again.
        WriteLine(conn.get(), ErrorResponseLine("", request.status()));
        continue;
      }
      if (request->type == "health") {
        // Answered right here, bypassing the work queue: health stays
        // responsive precisely when the queue is full.
        WriteLine(conn.get(), HealthResponseLine(request->id));
        continue;
      }
      // Admission control. Rejections carry error.retry_after_ms so a
      // well-behaved client backs off instead of hammering.
      Status rejection = Status::Ok();
      int64_t retry_after_ms = -1;
      {
        MutexLock lock(&mu_);
        if (draining_) {
          rejection = Status::FailedPrecondition("server is draining");
        } else if (queue_.size() >=
                   static_cast<size_t>(options_.max_queue_depth)) {
          retry_after_ms = RetryAfterMs(queue_.size());
          rejection = Status::ResourceExhausted(
              "work queue is full (" +
              std::to_string(options_.max_queue_depth) + " requests)");
          counters_.rejected_queue_full.fetch_add(
              1, std::memory_order_relaxed);
        } else if (conn->inflight.load(std::memory_order_relaxed) >=
                   options_.max_inflight_per_conn) {
          retry_after_ms = RetryAfterMs(queue_.size());
          rejection = Status::ResourceExhausted(
              "connection has " +
              std::to_string(options_.max_inflight_per_conn) +
              " requests in flight");
          counters_.rejected_inflight.fetch_add(1,
                                                std::memory_order_relaxed);
        } else {
          Work work;
          work.conn = conn;
          work.merge_key = MergeKey(*request);
          work.request = std::move(*request);
          work.accepted_at = std::chrono::steady_clock::now();
          queue_.push_back(std::move(work));
          conn->inflight.fetch_add(1, std::memory_order_relaxed);
          counters_.accepted.fetch_add(1, std::memory_order_relaxed);
          queue_cv_.NotifyOne();
        }
      }
      if (!rejection.ok()) {
        WriteLine(conn.get(), ErrorResponseLine(request->id, rejection,
                                                retry_after_ms));
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      WriteLine(conn.get(),
                ErrorResponseLine(
                    "", Status::InvalidArgument(
                            "request line exceeds 1 MiB; disconnecting")));
      alive = false;
    }
  }
  MutexLock lock(&mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
               conns_.end());
}

void PlanServer::WorkerLoop() {
  while (true) {
    std::vector<Work> group;
    size_t queue_depth = 0;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !draining_) queue_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // draining and nothing left
      queue_depth = queue_.size();
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Claim every queued batch-compatible request: same context,
      // same solver profile, no deadline (see wire.h MergeKey).
      // Copied, not referenced: push_back below reallocates `group`.
      const std::string key = group.front().merge_key;
      if (!key.empty()) {
        for (auto it = queue_.begin(); it != queue_.end();) {
          if (it->merge_key == key) {
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (group.size() > 1) {
        batched_requests_ += static_cast<int64_t>(group.size());
      }
    }
    HandleGroup(std::move(group), queue_depth);
  }
}

void PlanServer::HandleGroup(std::vector<Work> group,
                             size_t queue_depth) {
  const int64_t samples_before = MrrCollection::GeneratedSampleCount();

  // The whole group shares one ContextKey(); acquire with the largest
  // theta seen so every member's samples are covered by one store.
  WireRequest spec = group.front().request;
  for (const Work& work : group) {
    spec.sampling.theta =
        std::max(spec.sampling.theta, work.request.sampling.theta);
  }
  bool cache_hit = false;
  StatusOr<std::shared_ptr<const ContextCache::Entry>> acquired =
      cache_.Acquire(spec, &cache_hit);
  if (!acquired.ok()) {
    for (const Work& work : group) {
      WriteLine(work.conn.get(),
                ErrorResponseLine(work.request.id, acquired.status()));
      work.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  std::shared_ptr<const ContextCache::Entry> entry = std::move(*acquired);

  // Merge the group's budget lists into one deduplicated sweep.
  std::vector<int> budgets;
  for (const Work& work : group) {
    for (const int k : work.request.plan.budgets) {
      if (std::find(budgets.begin(), budgets.end(), k) == budgets.end()) {
        budgets.push_back(k);
      }
    }
  }
  std::sort(budgets.begin(), budgets.end());

  PlanRequest plan_request = ToPlanRequest(spec, entry->pool);
  plan_request.budgets = std::move(budgets);
  if (spec.plan.deadline_ms.has_value()) {
    // The deadline runs from enqueue: queue wait has already consumed
    // part of it. An exhausted budget still dispatches with 1 ms left —
    // the solver is cancelled at its first progress poll, which yields
    // the partial-telemetry response the contract promises.
    const int64_t elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - group.front().accepted_at)
            .count();
    plan_request.deadline_ms =
        std::max<int64_t>(1, *spec.plan.deadline_ms - elapsed);
  }

  const StatusOr<std::vector<PlanResponse>> responses =
      SolveBatch(*entry->context, plan_request);
  if (!responses.ok()) {
    for (const Work& work : group) {
      WriteLine(work.conn.get(),
                ErrorResponseLine(work.request.id, responses.status()));
      work.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  const int64_t samples_generated =
      MrrCollection::GeneratedSampleCount() - samples_before;

  std::map<int, const PlanResponse*> by_budget;
  for (const PlanResponse& response : *responses) {
    by_budget[response.budget] = &response;
  }
  // Render every response first, then drop this worker's context
  // reference BEFORE writing: once a client has read its answer, any
  // store pin this worker held on its behalf is provably released
  // (responses that report pin/eviction telemetry depend on that
  // ordering — so do clients sequencing requests against it).
  std::vector<std::string> lines;
  lines.reserve(group.size());
  for (const Work& work : group) {
    JsonValue results = JsonValue::Array();
    bool cancelled = false;
    for (const int k : work.request.plan.budgets) {
      const auto it = by_budget.find(k);
      if (it == by_budget.end()) continue;  // cannot happen; be safe
      cancelled = cancelled || it->second->cancelled;
      results.Append(ResultJson(*it->second));
    }
    lines.push_back(
        OkResponseLine(work.request.id, std::move(results), cancelled,
                       ServeTelemetry(*entry, cache_hit, group.size(),
                                      queue_depth, samples_generated)));
  }
  entry.reset();
  for (size_t i = 0; i < group.size(); ++i) {
    WriteLine(group[i].conn.get(), lines[i]);
    group[i].conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

JsonValue PlanServer::ServeTelemetry(const ContextCache::Entry& entry,
                                     bool cache_hit, size_t batch_size,
                                     size_t queue_depth,
                                     int64_t samples_generated) const {
  JsonValue serve = JsonValue::Object();
  serve.Set("cache_hit", cache_hit)
      .Set("batch_size", static_cast<int64_t>(batch_size))
      .Set("queue_depth", static_cast<int64_t>(queue_depth))
      .Set("samples_generated", samples_generated);
  {
    MutexLock lock(&mu_);
    serve.Set("batched_requests", batched_requests_);
  }

  const ContextCache::Stats cache = cache_.GetStats();
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("hits", cache.hits)
      .Set("misses", cache.misses)
      .Set("evictions", cache.evictions)
      .Set("live_contexts", cache.live_contexts);
  serve.Set("context_cache", std::move(cache_json));

  const SampleStore::Stats store = entry.context->sample_store().GetStats();
  JsonValue store_json = JsonValue::Object();
  store_json.Set("theta", store.theta)
      .Set("holdout_theta", store.holdout_theta)
      .Set("memory_bytes", store.memory_bytes)
      .Set("live_generations", store.live_generations)
      .Set("shared", store.shared);
  serve.Set("store", std::move(store_json));

  const SampleStore::RegistryStats registry =
      SampleStore::GetRegistryStats();
  JsonValue registry_json = JsonValue::Object();
  registry_json.Set("live_stores", registry.live_stores)
      .Set("pinned_stores", registry.pinned_stores)
      .Set("memory_bytes", registry.memory_bytes)
      .Set("budget_bytes", registry.budget_bytes)
      .Set("evictions", registry.evictions)
      .Set("recovered_stores", registry.recovered_stores);
  serve.Set("store_registry", std::move(registry_json));
  return serve;
}

std::string PlanServer::HealthResponseLine(const std::string& id) const {
  JsonValue health = JsonValue::Object();
  {
    MutexLock lock(&mu_);
    health.Set("queue_depth", static_cast<int64_t>(queue_.size()))
        .Set("draining", draining_)
        .Set("batched_requests", batched_requests_);
  }
  health.Set("workers", static_cast<int64_t>(options_.workers))
      .Set("max_queue_depth",
           static_cast<int64_t>(options_.max_queue_depth))
      .Set("accepted", counters_.accepted.load(std::memory_order_relaxed))
      .Set("rejected_queue_full",
           counters_.rejected_queue_full.load(std::memory_order_relaxed))
      .Set("rejected_inflight",
           counters_.rejected_inflight.load(std::memory_order_relaxed))
      .Set("write_timeouts",
           counters_.write_timeouts.load(std::memory_order_relaxed))
      .Set("write_failures",
           counters_.write_failures.load(std::memory_order_relaxed))
      .Set("checkpoint_saves",
           counters_.checkpoint_saves.load(std::memory_order_relaxed))
      .Set("checkpoint_failures",
           counters_.checkpoint_failures.load(std::memory_order_relaxed))
      .Set("recovered_snapshots",
           counters_.recovered_snapshots.load(std::memory_order_relaxed))
      .Set("faults_injected", FaultInjector::InjectedCount());

  const ContextCache::Stats cache = cache_.GetStats();
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("hits", cache.hits)
      .Set("misses", cache.misses)
      .Set("evictions", cache.evictions)
      .Set("live_contexts", cache.live_contexts);
  health.Set("context_cache", std::move(cache_json));

  const SampleStore::RegistryStats registry =
      SampleStore::GetRegistryStats();
  JsonValue registry_json = JsonValue::Object();
  registry_json.Set("live_stores", registry.live_stores)
      .Set("pinned_stores", registry.pinned_stores)
      .Set("memory_bytes", registry.memory_bytes)
      .Set("budget_bytes", registry.budget_bytes)
      .Set("evictions", registry.evictions)
      .Set("recovered_stores", registry.recovered_stores);
  health.Set("store_registry", std::move(registry_json));

  JsonValue j = JsonValue::Object();
  j.Set("id", id).Set("ok", true).Set("health", std::move(health));
  return j.Dump(-1);
}

int64_t PlanServer::RetryAfterMs(size_t queue_depth) const {
  // Deterministic, roughly proportional to the backlog per worker: a
  // queue of one per worker suggests ~50 ms, deeper backlogs scale up.
  // Clients add their own jitter (see serve/client.h) so a fixed hint
  // does not synchronize retries.
  const int64_t per_worker = static_cast<int64_t>(queue_depth) /
                             std::max(1, options_.workers);
  return std::min<int64_t>(2000, 25 * (1 + per_worker));
}

void PlanServer::WriteLine(Connection* conn, const std::string& line) {
  const std::string framed = line + "\n";
  MutexLock lock(&conn->write_mu);
  if (FaultInjector::ShouldFail("serve.write")) {
    // Simulated undeliverable response: sever the connection so the
    // client observes a clean drop (and retries) rather than a torn or
    // silently missing line on a live socket.
    counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      // SO_SNDTIMEO expiry surfaces as EAGAIN: the peer stopped reading
      // for write_timeout_ms. Either way the line cannot be completed —
      // sever the connection instead of pinning this worker on it (a
      // partial response is useless to the client anyway).
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        counters_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void PlanServer::CheckpointLoop() {
  // oipa::CondVar has no timed wait, so the loop polls the wake pipe
  // with the interval as timeout: shutdown (which writes a never-
  // consumed byte) wakes it immediately, otherwise it ticks on time.
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, options_.checkpoint_interval_ms);
    if (rc < 0 && errno != EINTR) return;
    if (shutdown_requested_.load(std::memory_order_acquire)) return;
    if (rc == 0) CheckpointNow();  // interval elapsed
  }
}

void PlanServer::CheckpointNow() {
  if (options_.checkpoint_dir.empty()) return;
  bool manifest_dirty = false;
  for (const std::shared_ptr<SampleStore>& store :
       SampleStore::RegistryStoresForCheckpoint()) {
    const std::string& key = store->options().source_key;
    const SampleSnapshot snap = store->snapshot();
    const std::pair<int64_t, int64_t> sizes = {
        snap.mrr->theta(),
        snap.holdout == nullptr ? 0 : snap.holdout->theta()};
    const auto it = checkpointed_.find(key);
    if (it != checkpointed_.end() && it->second == sizes) continue;

    const std::string path =
        options_.checkpoint_dir + "/" + CheckpointFileName(key);
    // SaveSampleStore writes in place, so land on a temp name and
    // rename — a crash mid-save never corrupts the previous snapshot.
    const std::string tmp = path + ".tmp";
    Status saved = SaveSampleStore(*store, tmp);
    if (saved.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      saved = Status::IoError("rename " + tmp + ": " +
                              std::strerror(errno));
    }
    if (!saved.ok()) {
      std::remove(tmp.c_str());
      counters_.checkpoint_failures.fetch_add(1,
                                              std::memory_order_relaxed);
      continue;
    }
    counters_.checkpoint_saves.fetch_add(1, std::memory_order_relaxed);
    manifest_dirty = manifest_dirty || it == checkpointed_.end();
    checkpointed_[key] = sizes;
  }
  if (!manifest_dirty) return;

  // The manifest maps snapshot files back to their source keys (the
  // file names are hashes). Written last: every file it references
  // already exists.
  JsonValue stores = JsonValue::Array();
  for (const auto& [key, sizes] : checkpointed_) {
    JsonValue row = JsonValue::Object();
    row.Set("file", CheckpointFileName(key)).Set("source_key", key);
    stores.Append(std::move(row));
  }
  JsonValue manifest = JsonValue::Object();
  manifest.Set("stores", std::move(stores));
  const Status wrote = WriteFileAtomically(
      options_.checkpoint_dir + "/manifest.json", manifest.Dump(2));
  if (!wrote.ok()) {
    counters_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanServer::RecoverCheckpoints() {
  std::string manifest_text;
  {
    std::ifstream in(options_.checkpoint_dir + "/manifest.json",
                     std::ios::binary);
    if (!in) return;  // no manifest: nothing to recover
    manifest_text.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  }
  const StatusOr<JsonValue> manifest = ParseJson(manifest_text);
  if (!manifest.ok() || !manifest->is_object()) return;
  const JsonValue* stores = manifest->Find("stores");
  if (stores == nullptr || !stores->is_array()) return;

  for (size_t i = 0; i < stores->size(); ++i) {
    const JsonValue& row = stores->at(i);
    if (!row.is_object()) continue;
    const JsonValue* file = row.Find("file");
    const JsonValue* key = row.Find("source_key");
    if (file == nullptr || !file->is_string() || key == nullptr ||
        !key->is_string()) {
      continue;
    }
    // Loaded frozen (no piece graphs yet); the parked snapshot becomes
    // growable when Acquire rebuilds the store around its own pieces.
    StatusOr<std::shared_ptr<SampleStore>> loaded =
        LoadSampleStore(options_.checkpoint_dir + "/" +
                        file->string_value());
    if (!loaded.ok()) continue;  // corrupt/unreadable: skip, resample
    const SampleSnapshot snap = (*loaded)->snapshot();
    const Status offered = SampleStore::OfferRecoveredSnapshot(
        key->string_value(), snap.mrr, snap.holdout);
    if (!offered.ok()) continue;
    counters_.recovered_snapshots.fetch_add(1, std::memory_order_relaxed);
    checkpointed_[key->string_value()] = {
        snap.mrr->theta(),
        snap.holdout == nullptr ? 0 : snap.holdout->theta()};
  }
}

}  // namespace serve
}  // namespace oipa
