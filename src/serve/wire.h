#ifndef OIPA_SERVE_WIRE_H_
#define OIPA_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cli/json_writer.h"
#include "graph/graph.h"
#include "oipa/api/plan_request.h"
#include "oipa/tangent_bound.h"
#include "rrset/sample_store.h"
#include "util/status.h"

namespace oipa {
namespace serve {

/// The oipa_serve wire protocol: newline-delimited JSON over TCP. Each
/// request is one compact JSON object on one line; each response is one
/// JSON object on one line, in request order per connection. Three
/// top-level sections mirror the oipa_cli pipeline stages:
///
///   {"id": "r1",
///    "dataset":  {"name": "synthetic", "n": 2000, "topics": 10,
///                 "scale": 0.01, "pool_fraction": 0.1, "seed": 1,
///                 "ell": 3, "alpha": 2.0, "beta": 1.0},
///    "sampling": {"theta": 20000, "holdout_theta": -1, "seed": 1,
///                 "epsilon": 0.0, "max_theta": 2000000,
///                 "stopping": "holdout"},
///    "plan":     {"method": "bab-p", "budgets": [10], "gap": 0.01,
///                 "epsilon": 0.5, "bound": "zero",
///                 "max_nodes": 100000, "threads": 1,
///                 "deadline_ms": 500, "seed": 1}}
///
/// Every field except "id" has a default (mirroring oipa_cli's flag
/// defaults), so `{"id":"r1"}` is a valid request. Unknown keys are
/// ignored (the FlagParser contract). Responses:
///
///   {"id": "r1", "ok": true, "results": [...], "cancelled": false,
///    "serve": {...telemetry...}}
///   {"id": "r1", "ok": false,
///    "error": {"code": "InvalidArgument", "message": "..."}}
///
/// Malformed input (bad JSON, wrong types, unknown dataset/solver
/// names) always produces an "ok": false response on the same
/// connection — the daemon never aborts on wire input.

/// Which dataset to plan against; (name, n, topics, scale,
/// pool_fraction, seed, ell, alpha, beta) fully determine the
/// planning context inputs.
struct DatasetSpec {
  /// synthetic | lastfm | dblp | tweet.
  std::string name = "synthetic";
  /// Vertices of the synthetic graph (ignored for named datasets).
  int64_t n = 2000;
  /// Topics of the synthetic probability model.
  int num_topics = 10;
  /// Scale of the dblp/tweet datasets.
  double scale = 0.01;
  /// Promoter-pool fraction (synthetic dataset).
  double pool_fraction = 0.1;
  uint64_t seed = 1;
  /// Campaign pieces L.
  int ell = 3;
  /// Logistic adoption parameters.
  double alpha = 2.0;
  double beta = 1.0;
};

/// Sampling slice of the request; mirrors ContextOptions plus the
/// progressive-stopping knobs.
struct SamplingSpec {
  int64_t theta = 20'000;
  /// -1 = theta-sized holdout when epsilon > 0, no holdout otherwise
  /// (the oipa_cli resolution); 0 = never a holdout.
  int64_t holdout_theta = -1;
  uint64_t seed = 1;
  /// Worker threads for sample generation/growth (0 = server default).
  /// Samples are bit-identical at any thread count, so this knob is
  /// excluded from the context-cache key — requests differing only in
  /// it share a cached context.
  int threads = 0;
  /// Progressive (ε)-stopping tolerance; 0 = one-shot solve.
  double epsilon = 0.0;
  int64_t max_theta = 2'000'000;
  std::string stopping = "holdout";
  StoppingRuleKind stopping_rule = StoppingRuleKind::kHoldoutGap;
};

/// Solver slice of the request; carries the full solver profile so a
/// daemon answer is bit-identical to the same oipa_cli run.
struct PlanSpec {
  std::string method = "bab-p";
  std::vector<int> budgets = {10};
  double gap = 0.01;
  /// BAB-P threshold decay.
  double epsilon = 0.5;
  /// zero (kZeroAnchored) | paper (kPaperTangent).
  std::string bound = "zero";
  BoundVariant bound_variant = BoundVariant::kZeroAnchored;
  /// Node-expansion safety cap.
  int64_t max_nodes = 100'000;
  int threads = 1;
  /// Wall-clock budget measured from the moment the request is
  /// accepted (enqueued) — queue wait counts against it.
  std::optional<int64_t> deadline_ms;
  uint64_t seed = 1;
};

/// One parsed and validated wire request.
struct WireRequest {
  std::string id;
  /// "plan" (default) solves; "health" reports daemon health — it is
  /// answered directly by the reader thread, bypassing the work queue,
  /// so it stays responsive under overload.
  std::string type = "plan";
  DatasetSpec dataset;
  SamplingSpec sampling;
  PlanSpec plan;

  /// True when the request enables a holdout collection (the oipa_cli
  /// resolution of SamplingSpec::holdout_theta).
  bool wants_holdout() const {
    return sampling.holdout_theta > 0 ||
           (sampling.holdout_theta < 0 && sampling.epsilon > 0.0);
  }
};

/// Parses one request line. InvalidArgument on malformed JSON, type
/// mismatches, or out-of-domain values (unknown dataset name, empty
/// budgets, non-positive theta, ...) — with a message suitable for the
/// error response verbatim.
StatusOr<WireRequest> ParseWireRequest(std::string_view line);

/// Canonical context-cache key: every dataset/sampling field that
/// changes the planning context EXCEPT theta/max_theta — the backing
/// SampleStore theta-prefix-shares, so requests differing only in
/// sample count resolve to one context whose store is grown to the
/// largest theta seen (the documented upward-drift contract).
std::string ContextKey(const WireRequest& request);

/// Batch-compatibility key: requests with equal non-empty merge keys
/// may be answered from one SolveBatch budget sweep (same context,
/// same solver profile, budgets merged). Empty when the request must
/// be solved alone: a deadline (per-request cancellation) or
/// progressive epsilon (the sweep would grow the store mid-flight).
std::string MergeKey(const WireRequest& request);

/// Maps the plan/sampling slices onto the in-process request type.
/// `pool` comes from the context-cache entry; deadline_ms is left
/// unset here — the server re-derives the remaining budget at dispatch
/// time (queue wait counts).
PlanRequest ToPlanRequest(const WireRequest& request,
                          std::vector<VertexId> pool);

/// One solved-budget row of the "results" array (the PlanJson shape of
/// oipa_cli plus the cancellation fields).
JsonValue ResultJson(const PlanResponse& response);

/// Serializes the success envelope around pre-built result rows.
/// `serve` carries the telemetry block (see README "Serving").
std::string OkResponseLine(const std::string& id, JsonValue results,
                           bool cancelled, JsonValue serve);

/// Serializes a structured error response. A non-negative
/// `retry_after_ms` adds error.retry_after_ms — overload rejections
/// (ResourceExhausted) use it to tell clients when to back off until.
std::string ErrorResponseLine(const std::string& id, const Status& status,
                              int64_t retry_after_ms = -1);

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_WIRE_H_
