#ifndef OIPA_SERVE_CLIENT_H_
#define OIPA_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace oipa {
namespace serve {

/// Resilience knobs for RequestOverTcp. The defaults suit a healthy
/// local daemon; `oipa_cli plan --server=...` exposes retries and the
/// timeouts as flags.
struct ClientOptions {
  /// TCP connect budget. DeadlineExceeded when the daemon's host is
  /// unreachable or its accept queue never answers.
  int connect_timeout_ms = 5'000;
  /// Budget for each recv() while reading the response line (solves can
  /// legitimately take a while; this bounds a *silent* daemon, not a
  /// slow one that is still streaming).
  int read_timeout_ms = 120'000;
  /// Additional attempts after the first (so retries = 2 means at most
  /// 3 connects). Retried: transport errors (connect/send/recv, early
  /// close) and ResourceExhausted overload rejections. Not retried:
  /// any other structured response — it IS the answer.
  int retries = 2;
  /// Exponential back-off between attempts: the n-th wait is
  /// backoff_initial_ms << n, capped at backoff_max_ms, with uniform
  /// jitter in [0.5, 1.0] of that — unless the rejection carried
  /// error.retry_after_ms, which takes precedence (plus jitter).
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2'000;
  /// Seeds the back-off jitter (determinism contract: equal seeds give
  /// equal retry schedules).
  uint64_t jitter_seed = 1;
};

/// Minimal blocking client for the oipa_serve wire protocol: connects
/// to host:port, sends `line` (one compact JSON request; the trailing
/// newline is added here), and returns the one-line JSON response.
/// Used by `oipa_cli plan --server=...` and the tests.
///
/// Failure mapping: DeadlineExceeded when the connect or read budget
/// expires (a dead or wedged daemon never hangs the caller), IoError on
/// other transport failures, ResourceExhausted when the daemon's
/// overload rejection survived every retry. Overload rejections are
/// retried honoring the daemon's error.retry_after_ms hint; transport
/// errors are retried with exponential back-off and seeded jitter.
StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line,
                                     const ClientOptions& options);

/// Default-options overload (source compatibility).
StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line);

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_CLIENT_H_
