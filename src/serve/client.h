#ifndef OIPA_SERVE_CLIENT_H_
#define OIPA_SERVE_CLIENT_H_

#include <string>

#include "util/status.h"

namespace oipa {
namespace serve {

/// Minimal blocking client for the oipa_serve wire protocol: connects
/// to host:port, sends `line` (one compact JSON request; the trailing
/// newline is added here), and returns the one-line JSON response.
/// Used by `oipa_cli plan --server=...` and the tests; IoError on
/// connect/send failures or a connection closed before a full line
/// arrived.
StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line);

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_CLIENT_H_
