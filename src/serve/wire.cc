#include "serve/wire.h"

#include <cstdio>
#include <utility>

#include "serve/json_parser.h"

namespace oipa {
namespace serve {
namespace {

/// Typed field readers: each returns InvalidArgument naming the key on
/// a type mismatch and leaves `*out` untouched when the key is absent
/// (wire fields are all defaulted).

Status ReadString(const JsonValue& obj, const std::string& key,
                  std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  *out = v->string_value();
  return Status::Ok();
}

Status ReadInt(const JsonValue& obj, const std::string& key,
               int64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_int()) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be an integer");
  }
  *out = v->int_value();
  return Status::Ok();
}

Status ReadDouble(const JsonValue& obj, const std::string& key,
                  double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  *out = v->double_value();
  return Status::Ok();
}

Status ReadSection(const JsonValue& root, const std::string& key,
                   const JsonValue** out) {
  *out = root.Find(key);
  if (*out != nullptr && !(*out)->is_object()) {
    return Status::InvalidArgument("section '" + key +
                                   "' must be an object");
  }
  return Status::Ok();
}

Status ParseDataset(const JsonValue& section, DatasetSpec* spec) {
  OIPA_RETURN_IF_ERROR(ReadString(section, "name", &spec->name));
  OIPA_RETURN_IF_ERROR(ReadInt(section, "n", &spec->n));
  int64_t topics = spec->num_topics;
  OIPA_RETURN_IF_ERROR(ReadInt(section, "topics", &topics));
  spec->num_topics = static_cast<int>(topics);
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "scale", &spec->scale));
  OIPA_RETURN_IF_ERROR(
      ReadDouble(section, "pool_fraction", &spec->pool_fraction));
  int64_t seed = static_cast<int64_t>(spec->seed);
  OIPA_RETURN_IF_ERROR(ReadInt(section, "seed", &seed));
  spec->seed = static_cast<uint64_t>(seed);
  int64_t ell = spec->ell;
  OIPA_RETURN_IF_ERROR(ReadInt(section, "ell", &ell));
  spec->ell = static_cast<int>(ell);
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "alpha", &spec->alpha));
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "beta", &spec->beta));

  if (spec->name != "synthetic" && spec->name != "lastfm" &&
      spec->name != "dblp" && spec->name != "tweet") {
    return Status::InvalidArgument("unknown dataset '" + spec->name +
                                   "' (synthetic|lastfm|dblp|tweet)");
  }
  if (spec->n < 1) return Status::InvalidArgument("dataset.n must be >= 1");
  if (spec->num_topics < 1) {
    return Status::InvalidArgument("dataset.topics must be >= 1");
  }
  if (spec->scale <= 0.0 || spec->scale > 1.0) {
    return Status::InvalidArgument("dataset.scale must be in (0, 1]");
  }
  if (spec->pool_fraction <= 0.0 || spec->pool_fraction > 1.0) {
    return Status::InvalidArgument(
        "dataset.pool_fraction must be in (0, 1]");
  }
  if (spec->ell < 1) {
    return Status::InvalidArgument("dataset.ell must be >= 1");
  }
  return Status::Ok();
}

Status ParseSampling(const JsonValue& section, SamplingSpec* spec) {
  OIPA_RETURN_IF_ERROR(ReadInt(section, "theta", &spec->theta));
  OIPA_RETURN_IF_ERROR(
      ReadInt(section, "holdout_theta", &spec->holdout_theta));
  int64_t seed = static_cast<int64_t>(spec->seed);
  OIPA_RETURN_IF_ERROR(ReadInt(section, "seed", &seed));
  spec->seed = static_cast<uint64_t>(seed);
  int64_t threads = spec->threads;
  OIPA_RETURN_IF_ERROR(ReadInt(section, "threads", &threads));
  spec->threads = static_cast<int>(threads);
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "epsilon", &spec->epsilon));
  OIPA_RETURN_IF_ERROR(ReadInt(section, "max_theta", &spec->max_theta));
  OIPA_RETURN_IF_ERROR(ReadString(section, "stopping", &spec->stopping));

  if (spec->theta < 1) {
    return Status::InvalidArgument("sampling.theta must be >= 1");
  }
  if (spec->threads < 0) {
    return Status::InvalidArgument("sampling.threads must be >= 0");
  }
  if (spec->holdout_theta < -1) {
    return Status::InvalidArgument(
        "sampling.holdout_theta must be >= -1");
  }
  if (spec->epsilon < 0.0) {
    return Status::InvalidArgument("sampling.epsilon must be >= 0");
  }
  const StatusOr<StoppingRuleKind> rule =
      ParseStoppingRule(spec->stopping);
  if (!rule.ok()) return rule.status();
  spec->stopping_rule = *rule;
  return Status::Ok();
}

Status ParsePlan(const JsonValue& section, PlanSpec* spec) {
  OIPA_RETURN_IF_ERROR(ReadString(section, "method", &spec->method));
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "gap", &spec->gap));
  OIPA_RETURN_IF_ERROR(ReadDouble(section, "epsilon", &spec->epsilon));
  OIPA_RETURN_IF_ERROR(ReadString(section, "bound", &spec->bound));
  OIPA_RETURN_IF_ERROR(ReadInt(section, "max_nodes", &spec->max_nodes));
  int64_t threads = spec->threads;
  OIPA_RETURN_IF_ERROR(ReadInt(section, "threads", &threads));
  spec->threads = static_cast<int>(threads);
  int64_t seed = static_cast<int64_t>(spec->seed);
  OIPA_RETURN_IF_ERROR(ReadInt(section, "seed", &seed));
  spec->seed = static_cast<uint64_t>(seed);

  if (const JsonValue* v = section.Find("deadline_ms")) {
    if (!v->is_int()) {
      return Status::InvalidArgument(
          "field 'deadline_ms' must be an integer");
    }
    spec->deadline_ms = v->int_value();
    if (*spec->deadline_ms < 1) {
      return Status::InvalidArgument("deadline_ms must be >= 1");
    }
  }

  if (const JsonValue* v = section.Find("budgets")) {
    if (!v->is_array() || v->size() == 0) {
      return Status::InvalidArgument(
          "field 'budgets' must be a non-empty array of integers");
    }
    spec->budgets.clear();
    for (size_t i = 0; i < v->size(); ++i) {
      if (!v->at(i).is_int() || v->at(i).int_value() < 1) {
        return Status::InvalidArgument(
            "field 'budgets' must hold integers >= 1");
      }
      spec->budgets.push_back(static_cast<int>(v->at(i).int_value()));
    }
  }
  if (spec->method.empty()) {
    return Status::InvalidArgument("plan.method must be non-empty");
  }
  if (spec->gap < 0.0) {
    return Status::InvalidArgument("plan.gap must be >= 0");
  }
  if (spec->epsilon <= 0.0 || spec->epsilon >= 1.0) {
    return Status::InvalidArgument("plan.epsilon must be in (0, 1)");
  }
  if (spec->bound == "zero") {
    spec->bound_variant = BoundVariant::kZeroAnchored;
  } else if (spec->bound == "paper") {
    spec->bound_variant = BoundVariant::kPaperTangent;
  } else {
    return Status::InvalidArgument("unknown plan.bound '" + spec->bound +
                                   "' (expected zero|paper)");
  }
  if (spec->max_nodes < 1) {
    return Status::InvalidArgument("plan.max_nodes must be >= 1");
  }
  if (spec->threads < 0) {
    return Status::InvalidArgument("plan.threads must be >= 0");
  }
  return Status::Ok();
}

/// Canonical fixed-precision double for cache keys (repr-stable across
/// the formatting quirks of to_string).
std::string KeyDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

StatusOr<WireRequest> ParseWireRequest(std::string_view line) {
  StatusOr<JsonValue> root = ParseJson(line);
  if (!root.ok()) return root.status();
  if (!root->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  WireRequest request;
  OIPA_RETURN_IF_ERROR(ReadString(*root, "id", &request.id));
  OIPA_RETURN_IF_ERROR(ReadString(*root, "type", &request.type));
  if (request.type == "health") return request;
  if (request.type != "plan") {
    return Status::InvalidArgument("unknown request type '" + request.type +
                                   "' (expected plan|health)");
  }

  const JsonValue* section = nullptr;
  OIPA_RETURN_IF_ERROR(ReadSection(*root, "dataset", &section));
  if (section != nullptr) {
    OIPA_RETURN_IF_ERROR(ParseDataset(*section, &request.dataset));
  }
  OIPA_RETURN_IF_ERROR(ReadSection(*root, "sampling", &section));
  if (section != nullptr) {
    OIPA_RETURN_IF_ERROR(ParseSampling(*section, &request.sampling));
  }
  OIPA_RETURN_IF_ERROR(ReadSection(*root, "plan", &section));
  if (section != nullptr) {
    OIPA_RETURN_IF_ERROR(ParsePlan(*section, &request.plan));
  }
  return request;
}

std::string ContextKey(const WireRequest& request) {
  const DatasetSpec& d = request.dataset;
  const SamplingSpec& s = request.sampling;
  std::string key;
  key.reserve(128);
  key += "ds=" + d.name;
  key += ";n=" + std::to_string(d.n);
  key += ";topics=" + std::to_string(d.num_topics);
  key += ";scale=" + KeyDouble(d.scale);
  key += ";pool=" + KeyDouble(d.pool_fraction);
  key += ";dseed=" + std::to_string(d.seed);
  key += ";ell=" + std::to_string(d.ell);
  key += ";alpha=" + KeyDouble(d.alpha);
  key += ";beta=" + KeyDouble(d.beta);
  key += ";sseed=" + std::to_string(s.seed);
  key += ";holdout=";
  key += request.wants_holdout() ? '1' : '0';
  return key;
}

std::string MergeKey(const WireRequest& request) {
  if (request.plan.deadline_ms.has_value()) return "";
  if (request.sampling.epsilon > 0.0) return "";
  const PlanSpec& p = request.plan;
  std::string key = ContextKey(request);
  key += "|m=" + p.method;
  key += ";gap=" + KeyDouble(p.gap);
  key += ";eps=" + KeyDouble(p.epsilon);
  key += ";bound=" + p.bound;
  key += ";maxnodes=" + std::to_string(p.max_nodes);
  key += ";threads=" + std::to_string(p.threads);
  key += ";pseed=" + std::to_string(p.seed);
  return key;
}

PlanRequest ToPlanRequest(const WireRequest& request,
                          std::vector<VertexId> pool) {
  PlanRequest out;
  out.solver = request.plan.method;
  out.pool = std::move(pool);
  out.budgets = request.plan.budgets;
  out.options.gap = request.plan.gap;
  out.options.epsilon = request.plan.epsilon;
  out.options.variant = request.plan.bound_variant;
  out.options.max_nodes = request.plan.max_nodes;
  out.num_threads = request.plan.threads;
  out.epsilon = request.sampling.epsilon;
  out.max_theta = request.sampling.max_theta;
  out.stopping = request.sampling.stopping_rule;
  out.seed = request.plan.seed;
  return out;
}

JsonValue ResultJson(const PlanResponse& response) {
  JsonValue seed_sets = JsonValue::Array();
  for (int j = 0; j < response.plan.num_pieces(); ++j) {
    JsonValue piece = JsonValue::Array();
    for (const VertexId v : response.plan.SeedSet(j)) {
      piece.Append(static_cast<int64_t>(v));
    }
    seed_sets.Append(std::move(piece));
  }
  JsonValue j = JsonValue::Object();
  j.Set("k", response.budget)
      .Set("method", response.solver)
      .Set("seed_sets", std::move(seed_sets))
      .Set("utility", response.utility)
      .Set("holdout_utility", response.holdout_utility)
      .Set("upper_bound", response.upper_bound)
      .Set("converged", response.converged)
      .Set("cancelled", response.cancelled)
      .Set("deadline_exceeded", response.deadline_exceeded)
      .Set("nodes_expanded", response.nodes_expanded)
      .Set("bound_calls", response.bound_calls)
      .Set("tau_evals", response.tau_evals)
      .Set("theta_used", response.theta_used)
      .Set("sampling_rounds", response.sampling_rounds)
      .Set("sampling_gap", response.sampling_gap)
      .Set("certified_ratio", response.certified_ratio)
      .Set("solve_seconds", response.seconds);
  return j;
}

std::string OkResponseLine(const std::string& id, JsonValue results,
                           bool cancelled, JsonValue serve) {
  JsonValue j = JsonValue::Object();
  j.Set("id", id)
      .Set("ok", true)
      .Set("results", std::move(results))
      .Set("cancelled", cancelled)
      .Set("serve", std::move(serve));
  return j.Dump(-1);
}

std::string ErrorResponseLine(const std::string& id, const Status& status,
                              int64_t retry_after_ms) {
  JsonValue error = JsonValue::Object();
  // Overload rejections use the documented wire name
  // "resource_exhausted" (clients key their back-off on it); every
  // other code keeps its StatusCodeName.
  error
      .Set("code", status.code() == StatusCode::kResourceExhausted
                       ? "resource_exhausted"
                       : StatusCodeName(status.code()))
      .Set("message", status.message());
  if (retry_after_ms >= 0) error.Set("retry_after_ms", retry_after_ms);
  JsonValue j = JsonValue::Object();
  j.Set("id", id).Set("ok", false).Set("error", std::move(error));
  return j.Dump(-1);
}

}  // namespace serve
}  // namespace oipa
