#ifndef OIPA_SERVE_SERVER_H_
#define OIPA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/context_cache.h"
#include "serve/wire.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/threading.h"

namespace oipa {
namespace serve {

/// Configuration of one PlanServer instance.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Solver worker threads (each handles one request group at a time).
  int workers = 2;
  /// ContextCache capacity.
  int max_contexts = 8;
  /// SampleStore registry byte budget installed at Start(); 0 keeps
  /// the default no-retention behavior (see SampleStore::Acquire).
  int64_t store_budget_bytes = 0;
  /// Work-queue cap: a request arriving while this many are already
  /// queued is rejected with a ResourceExhausted error carrying
  /// error.retry_after_ms, instead of queueing without bound.
  int max_queue_depth = 256;
  /// Per-connection cap on requests queued or solving at once; excess
  /// requests on that connection are rejected with ResourceExhausted
  /// (one greedy pipeliner cannot fill the whole queue).
  int max_inflight_per_conn = 32;
  /// Response-write timeout (SO_SNDTIMEO). A client that stops reading
  /// for this long has its connection severed instead of pinning the
  /// writing worker; the undeliverable response is dropped.
  int write_timeout_ms = 5000;
  /// When non-empty, registry-resident sample stores (those with a
  /// source_key) are checkpointed here every checkpoint_interval_ms
  /// and on Stop(), and recovered at Start() — a restarted daemon
  /// resumes persisted sample streams with zero regenerated samples.
  std::string checkpoint_dir;
  int checkpoint_interval_ms = 30'000;
};

/// The oipa_serve planning daemon: accepts newline-delimited JSON plan
/// requests over TCP (see wire.h for the schema), answers each on the
/// same connection in arrival order per connection, and never aborts
/// on wire input — malformed requests get structured error responses.
///
/// Execution model: one accept thread, one reader thread per
/// connection, and a fixed worker pool draining a FIFO work queue.
/// When a worker dequeues a request it also claims every queued
/// request with the same MergeKey() (same context, same solver
/// profile, no deadline) and answers the whole group from a single
/// SolveBatch budget sweep over the merged budget list — each response
/// is bit-identical to solving that request alone, because the shared
/// samples cannot grow mid-sweep for merge-eligible requests.
///
/// Deadlines: PlanSpec::deadline_ms is measured from the moment the
/// reader enqueues the request, so queue wait counts against it. The
/// remaining budget becomes PlanRequest::deadline_ms (clamped to at
/// least 1 ms — a request already past its deadline is cancelled at
/// the solver's first progress poll) and the solver is cut off
/// mid-search through the progress hook; the response rows carry
/// "cancelled"/"deadline_exceeded" plus the partial telemetry of the
/// work done up to the cutoff.
///
/// Shutdown: RequestShutdown() is async-signal-safe (oipa_serve calls
/// it from SIGINT/SIGTERM handlers). Stop() then stops accepting,
/// answers any late requests with a FailedPrecondition error, drains
/// every already-queued solve, and joins all threads.
///
/// Locking: mu_ guards the work queue, the connection table, and the
/// drain flag; each connection carries its own write mutex so workers
/// and its reader serialize response lines without sharing mu_. Lock
/// order: mu_ and conn->write_mu are never held together.
class PlanServer {
 public:
  explicit PlanServer(const ServerOptions& options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds, listens, and spawns the accept/worker threads. IoError on
  /// socket failures (bad host, port in use).
  Status Start();

  /// The bound TCP port (valid after a successful Start()).
  int port() const { return bound_port_; }

  /// Flags the server for shutdown and wakes Wait()/the accept loop.
  /// Async-signal-safe: one atomic store and one pipe write.
  void RequestShutdown();

  /// Blocks until RequestShutdown() is called (signal handlers, tests).
  void Wait();

  /// Graceful shutdown: stop accepting, drain queued solves, join all
  /// threads, close all sockets. Idempotent; implies RequestShutdown().
  void Stop();

 private:
  /// One client connection. The fd is closed by the destructor, i.e.
  /// when the reader thread AND every worker still answering queued
  /// requests for it have dropped their references.
  struct Connection {
    ~Connection();
    int fd = -1;
    /// Serializes response lines (the reader writes parse errors, any
    /// worker writes solve responses).
    Mutex write_mu;
    /// Requests from this connection queued or solving right now;
    /// incremented at enqueue (under mu_), decremented after the
    /// response write. Atomic so workers decrement without mu_.
    std::atomic<int> inflight{0};
  };

  /// One queued request.
  struct Work {
    std::shared_ptr<Connection> conn;
    WireRequest request;
    std::string merge_key;
    std::chrono::steady_clock::time_point accepted_at;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  /// Answers one merge group from a single SolveBatch sweep.
  /// `queue_depth` is the depth observed at dispatch (telemetry).
  void HandleGroup(std::vector<Work> group, size_t queue_depth);
  /// Telemetry block attached to every success response.
  JsonValue ServeTelemetry(const ContextCache::Entry& entry,
                           bool cache_hit, size_t batch_size,
                           size_t queue_depth,
                           int64_t samples_generated) const;
  /// Answers a {"type":"health"} request (reader thread, no queueing).
  std::string HealthResponseLine(const std::string& id) const;
  /// Deterministic client back-off hint for an overload rejection at
  /// the given queue depth.
  int64_t RetryAfterMs(size_t queue_depth) const;

  /// Periodic checkpointing (own thread; wakes every
  /// checkpoint_interval_ms or on shutdown via the wake pipe).
  void CheckpointLoop();
  /// Saves every source-keyed registry store whose size changed since
  /// its last checkpoint, then rewrites the manifest. Never throws or
  /// aborts — failures count into checkpoint_failures. Only called
  /// from the checkpoint thread and from Stop() after joining it, so
  /// checkpointed_ needs no lock.
  void CheckpointNow();
  /// Parks every decodable checkpoint under its source_key (see
  /// SampleStore::OfferRecoveredSnapshot); corrupt or unreadable files
  /// are skipped. Called from Start() before the daemon goes live.
  void RecoverCheckpoints();

  void WriteLine(Connection* conn, const std::string& line);

  const ServerOptions options_;
  ContextCache cache_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  /// Self-pipe waking poll() in AcceptLoop()/Wait(); the payload is
  /// never consumed, so every poller sees it.
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread checkpoint_thread_;

  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<Work> queue_ OIPA_GUARDED_BY(mu_);
  bool draining_ OIPA_GUARDED_BY(mu_) = false;
  std::vector<std::shared_ptr<Connection>> conns_ OIPA_GUARDED_BY(mu_);
  std::vector<std::thread> readers_ OIPA_GUARDED_BY(mu_);
  /// Requests answered as part of a multi-request batch (telemetry).
  int64_t batched_requests_ OIPA_GUARDED_BY(mu_) = 0;

  /// Robustness telemetry, reported by {"type":"health"}. Atomics:
  /// bumped from reader/worker/checkpoint threads without mu_.
  struct Counters {
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> rejected_queue_full{0};
    std::atomic<int64_t> rejected_inflight{0};
    std::atomic<int64_t> write_timeouts{0};
    std::atomic<int64_t> write_failures{0};
    std::atomic<int64_t> checkpoint_saves{0};
    std::atomic<int64_t> checkpoint_failures{0};
    std::atomic<int64_t> recovered_snapshots{0};
  };
  mutable Counters counters_;

  /// (in-sample theta, holdout theta) at each store's last successful
  /// checkpoint, keyed by source_key — unchanged stores are skipped.
  /// Single-threaded by construction (see CheckpointNow).
  std::map<std::string, std::pair<int64_t, int64_t>> checkpointed_;
};

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_SERVER_H_
