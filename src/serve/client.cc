#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "serve/json_parser.h"
#include "util/random.h"

namespace oipa {
namespace serve {
namespace {

/// Closes the fd on every exit path.
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;
  ~FdCloser() { ::close(fd_); }

 private:
  const int fd_;
};

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// One connect+send+read attempt under the option timeouts. Transport
/// failures come back as IoError, expired budgets as DeadlineExceeded;
/// the retry loop below distinguishes the retryable codes.
StatusOr<std::string> AttemptOnce(const std::string& host, int port,
                                  const std::string& framed,
                                  const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  FdCloser closer(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable IPv4 host '" + host + "'");
  }

  const std::string peer = host + ":" + std::to_string(port);
  // Non-blocking connect + poll: a dead or unreachable daemon costs at
  // most connect_timeout_ms, never the kernel's multi-minute default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      return Status::IoError(Errno("connect " + peer));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, options.connect_timeout_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded(
          "connect " + peer + " timed out after " +
          std::to_string(options.connect_timeout_ms) + " ms");
    }
    if (ready < 0) return Status::IoError(Errno("poll"));
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      return Status::IoError("connect " + peer + ": " +
                             std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  // The read budget bounds each recv() — a silent daemon surfaces as
  // DeadlineExceeded instead of hanging the caller forever. A daemon
  // still streaming keeps resetting the clock, so long solves are fine.
  timeval io_timeout{};
  io_timeout.tv_sec = options.read_timeout_ms / 1000;
  io_timeout.tv_usec = (options.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
               sizeof(io_timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
               sizeof(io_timeout));

  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::DeadlineExceeded("send to " + peer +
                                        " timed out");
      }
      return Status::IoError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  char chunk[4096];
  while (true) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      buffer.resize(newline);
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "no response from " + peer + " within " +
            std::to_string(options.read_timeout_ms) + " ms");
      }
      return Status::IoError(Errno("recv"));
    }
    if (n == 0) {
      return Status::IoError(
          "connection closed before a full response line");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

/// Recognizes the daemon's structured overload rejection. Pulls out
/// error.retry_after_ms (left untouched when absent) and the message.
bool IsOverloadRejection(const std::string& line, int64_t* retry_after_ms,
                         std::string* message) {
  const StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->bool_value()) return false;
  const JsonValue* error = parsed->Find("error");
  if (error == nullptr || !error->is_object()) return false;
  const JsonValue* code = error->Find("code");
  if (code == nullptr || !code->is_string() ||
      code->string_value() != "resource_exhausted") {
    return false;
  }
  const JsonValue* retry = error->Find("retry_after_ms");
  if (retry != nullptr && retry->is_number()) {
    *retry_after_ms = retry->int_value();
  }
  const JsonValue* msg = error->Find("message");
  if (msg != nullptr && msg->is_string()) *message = msg->string_value();
  return true;
}

bool IsRetryableTransportError(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line,
                                     const ClientOptions& options) {
  const std::string framed = line + "\n";
  const int attempts = 1 + std::max(0, options.retries);
  Rng rng(options.jitter_seed);
  Status last_error = Status::IoError("no attempt was made");

  for (int attempt = 0; attempt < attempts; ++attempt) {
    int64_t retry_after_ms = -1;
    StatusOr<std::string> response =
        AttemptOnce(host, port, framed, options);
    if (response.ok()) {
      std::string rejection_message = "server overloaded";
      if (!IsOverloadRejection(*response, &retry_after_ms,
                               &rejection_message)) {
        // Any other response — success or structured error — IS the
        // answer; retrying would just repeat it.
        return response;
      }
      last_error = Status::ResourceExhausted(
          rejection_message + " (after " + std::to_string(attempt + 1) +
          " attempt(s))");
    } else {
      if (!IsRetryableTransportError(response.status())) {
        return response.status();
      }
      last_error = response.status();
    }
    if (attempt + 1 == attempts) break;

    // Exponential back-off with seeded jitter; an explicit server hint
    // (retry_after_ms) replaces the exponential base but still gets
    // jitter so synchronized clients do not re-stampede in lockstep.
    int64_t base_ms =
        retry_after_ms >= 0
            ? retry_after_ms
            : std::min<int64_t>(
                  options.backoff_max_ms,
                  static_cast<int64_t>(options.backoff_initial_ms)
                      << std::min(attempt, 20));
    base_ms = std::max<int64_t>(1, base_ms);
    const auto wait_ms = static_cast<int64_t>(
        static_cast<double>(base_ms) * (0.5 + 0.5 * rng.NextDouble()));
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  return last_error;
}

StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line) {
  return RequestOverTcp(host, port, line, ClientOptions());
}

}  // namespace serve
}  // namespace oipa
