#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oipa {
namespace serve {
namespace {

/// Closes the fd on every exit path.
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;
  ~FdCloser() { ::close(fd_); }

 private:
  const int fd_;
};

}  // namespace

StatusOr<std::string> RequestOverTcp(const std::string& host, int port,
                                     const std::string& line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  FdCloser closer(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable IPv4 host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IoError("connect " + host + ":" +
                           std::to_string(port) + ": " +
                           std::strerror(errno));
  }

  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  char chunk[4096];
  while (true) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      buffer.resize(newline);
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError(
          "connection closed before a full response line");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace serve
}  // namespace oipa
