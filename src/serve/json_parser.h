#ifndef OIPA_SERVE_JSON_PARSER_H_
#define OIPA_SERVE_JSON_PARSER_H_

#include <string_view>

#include "cli/json_writer.h"
#include "util/status.h"

namespace oipa {
namespace serve {

/// Parses one JSON document into the same JsonValue tree json_writer
/// builds, so the serve wire protocol reads requests and writes
/// responses through a single value type. Strict where it matters for a
/// network-facing parser: every error is an InvalidArgument Status (the
/// daemon never aborts on client bytes), trailing non-whitespace after
/// the document is rejected, nesting is capped, and only valid JSON
/// escapes are accepted. Numbers parse as integers when they are
/// integral and fit int64, as doubles otherwise.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace serve
}  // namespace oipa

#endif  // OIPA_SERVE_JSON_PARSER_H_
