#include "topic/lda.h"

#include <cmath>

#include "util/logging.h"

namespace oipa {

int64_t Corpus::num_tokens() const {
  int64_t total = 0;
  for (const auto& d : documents) total += static_cast<int64_t>(d.size());
  return total;
}

void LdaModel::Train(const Corpus& corpus) {
  const int K = options_.num_topics;
  OIPA_CHECK_GT(K, 0);
  OIPA_CHECK_GT(corpus.vocab_size, 0);
  vocab_size_ = corpus.vocab_size;
  num_docs_ = corpus.num_documents();

  doc_topic_.assign(static_cast<size_t>(num_docs_) * K, 0);
  topic_word_.assign(static_cast<size_t>(K) * vocab_size_, 0);
  topic_total_.assign(K, 0);
  doc_len_.assign(num_docs_, 0);

  Rng rng(options_.seed);

  // Token-level topic assignments, flattened per document.
  std::vector<std::vector<int>> assignment(num_docs_);
  for (int d = 0; d < num_docs_; ++d) {
    const auto& words = corpus.documents[d];
    doc_len_[d] = static_cast<int>(words.size());
    assignment[d].resize(words.size());
    for (size_t i = 0; i < words.size(); ++i) {
      const int w = words[i];
      OIPA_CHECK_GE(w, 0);
      OIPA_CHECK_LT(w, vocab_size_);
      const int z = static_cast<int>(rng.NextBounded(K));
      assignment[d][i] = z;
      ++doc_topic_[static_cast<size_t>(d) * K + z];
      ++topic_word_[static_cast<size_t>(z) * vocab_size_ + w];
      ++topic_total_[z];
    }
  }

  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double beta_sum = beta * vocab_size_;
  std::vector<double> probs(K);

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (int d = 0; d < num_docs_; ++d) {
      const auto& words = corpus.documents[d];
      for (size_t i = 0; i < words.size(); ++i) {
        const int w = words[i];
        const int old_z = assignment[d][i];
        // Remove the token from the counts.
        --doc_topic_[static_cast<size_t>(d) * K + old_z];
        --topic_word_[static_cast<size_t>(old_z) * vocab_size_ + w];
        --topic_total_[old_z];
        // Collapsed conditional p(z | rest).
        for (int z = 0; z < K; ++z) {
          const double theta =
              doc_topic_[static_cast<size_t>(d) * K + z] + alpha;
          const double phi =
              (topic_word_[static_cast<size_t>(z) * vocab_size_ + w] + beta) /
              (topic_total_[z] + beta_sum);
          probs[z] = theta * phi;
        }
        const int new_z = SampleDiscrete(probs, &rng);
        assignment[d][i] = new_z;
        ++doc_topic_[static_cast<size_t>(d) * K + new_z];
        ++topic_word_[static_cast<size_t>(new_z) * vocab_size_ + w];
        ++topic_total_[new_z];
      }
    }
  }
}

TopicVector LdaModel::DocumentTopics(int doc) const {
  OIPA_CHECK_GE(doc, 0);
  OIPA_CHECK_LT(doc, num_docs_);
  const int K = options_.num_topics;
  TopicVector out(K);
  const double denom = doc_len_[doc] + options_.alpha * K;
  for (int z = 0; z < K; ++z) {
    out[z] =
        (doc_topic_[static_cast<size_t>(doc) * K + z] + options_.alpha) /
        denom;
  }
  return out;
}

std::vector<double> LdaModel::TopicWords(int topic) const {
  OIPA_CHECK_GE(topic, 0);
  OIPA_CHECK_LT(topic, options_.num_topics);
  std::vector<double> out(vocab_size_);
  const double denom =
      topic_total_[topic] + options_.beta * vocab_size_;
  for (int w = 0; w < vocab_size_; ++w) {
    out[w] =
        (topic_word_[static_cast<size_t>(topic) * vocab_size_ + w] +
         options_.beta) /
        denom;
  }
  return out;
}

double LdaModel::TokenLogLikelihood(const Corpus& corpus) const {
  OIPA_CHECK_EQ(corpus.num_documents(), num_docs_);
  const int K = options_.num_topics;
  double ll = 0.0;
  int64_t tokens = 0;
  for (int d = 0; d < num_docs_; ++d) {
    const TopicVector theta = DocumentTopics(d);
    for (int w : corpus.documents[d]) {
      double pw = 0.0;
      for (int z = 0; z < K; ++z) {
        const double phi =
            (topic_word_[static_cast<size_t>(z) * vocab_size_ + w] +
             options_.beta) /
            (topic_total_[z] + options_.beta * vocab_size_);
        pw += theta[z] * phi;
      }
      ll += std::log(std::max(pw, 1e-300));
      ++tokens;
    }
  }
  return tokens > 0 ? ll / static_cast<double>(tokens) : 0.0;
}

Corpus GenerateSyntheticCorpus(int num_documents, int num_topics,
                               int vocab_size, int doc_length,
                               uint64_t seed,
                               std::vector<TopicVector>* true_mixtures) {
  OIPA_CHECK_GT(num_topics, 0);
  OIPA_CHECK_GE(vocab_size, num_topics);
  Rng rng(seed);

  // Ground-truth topics: mostly disjoint word blocks with Dirichlet noise,
  // so topics are identifiable by the sampler.
  std::vector<std::vector<double>> topic_word(num_topics);
  const int block = vocab_size / num_topics;
  for (int z = 0; z < num_topics; ++z) {
    topic_word[z] = rng.NextDirichlet(vocab_size, 0.05);
    // Boost this topic's own word block.
    for (int w = z * block; w < (z + 1) * block; ++w) {
      topic_word[z][w] += 5.0 / block;
    }
    double sum = 0.0;
    for (double p : topic_word[z]) sum += p;
    for (double& p : topic_word[z]) p /= sum;
  }

  Corpus corpus;
  corpus.vocab_size = vocab_size;
  corpus.documents.resize(num_documents);
  if (true_mixtures != nullptr) true_mixtures->clear();
  for (int d = 0; d < num_documents; ++d) {
    const TopicVector mixture =
        TopicVector::SampleSparse(num_topics,
                                  std::min(2, num_topics), &rng);
    if (true_mixtures != nullptr) true_mixtures->push_back(mixture);
    auto& doc = corpus.documents[d];
    doc.reserve(doc_length);
    for (int t = 0; t < doc_length; ++t) {
      const int z = SampleDiscrete(mixture.values(), &rng);
      doc.push_back(SampleDiscrete(topic_word[z], &rng));
    }
  }
  return corpus;
}

}  // namespace oipa
