#include "topic/edge_topic_probs.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

EdgeTopicProbs::EdgeTopicProbs(EdgeId num_edges, int num_topics)
    : num_topics_(num_topics) {
  OIPA_CHECK_GE(num_edges, 0);
  OIPA_CHECK_GT(num_topics, 0);
  offsets_.assign(num_edges + 1, 0);
}

void EdgeTopicProbs::SetEdge(EdgeId e, std::vector<TopicProb> entries) {
  OIPA_CHECK_EQ(e, next_edge_) << "SetEdge must be called in EdgeId order";
  OIPA_CHECK_LT(e, num_edges());
  std::sort(entries.begin(), entries.end(),
            [](const TopicProb& a, const TopicProb& b) {
              return a.topic < b.topic;
            });
  for (size_t i = 0; i < entries.size(); ++i) {
    OIPA_CHECK_GE(entries[i].topic, 0);
    OIPA_CHECK_LT(entries[i].topic, num_topics_);
    OIPA_CHECK_GE(entries[i].prob, 0.0f);
    OIPA_CHECK_LE(entries[i].prob, 1.0f);
    if (i > 0) OIPA_CHECK_NE(entries[i].topic, entries[i - 1].topic);
    entries_.push_back(entries[i]);
  }
  offsets_[e + 1] = static_cast<int64_t>(entries_.size());
  ++next_edge_;
}

double EdgeTopicProbs::AverageNonZeros() const {
  if (num_edges() == 0) return 0.0;
  return static_cast<double>(entries_.size()) /
         static_cast<double>(num_edges());
}

double EdgeTopicProbs::Prob(EdgeId e, int topic) const {
  for (const TopicProb& tp : EdgeEntries(e)) {
    if (tp.topic == topic) return tp.prob;
  }
  return 0.0;
}

double EdgeTopicProbs::PieceProb(EdgeId e, const TopicVector& piece) const {
  OIPA_CHECK_EQ(piece.num_topics(), num_topics_);
  double p = 0.0;
  for (const TopicProb& tp : EdgeEntries(e)) {
    p += piece[tp.topic] * static_cast<double>(tp.prob);
  }
  return std::clamp(p, 0.0, 1.0);
}

double EdgeTopicProbs::MeanProb(EdgeId e) const {
  double sum = 0.0;
  for (const TopicProb& tp : EdgeEntries(e)) sum += tp.prob;
  return sum / static_cast<double>(num_topics_);
}

}  // namespace oipa
