#include "topic/topic_vector.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "util/logging.h"

namespace oipa {

TopicVector TopicVector::PureTopic(int num_topics, int topic) {
  OIPA_CHECK_GE(topic, 0);
  OIPA_CHECK_LT(topic, num_topics);
  TopicVector v(num_topics);
  v[topic] = 1.0;
  return v;
}

TopicVector TopicVector::Uniform(int num_topics) {
  OIPA_CHECK_GT(num_topics, 0);
  TopicVector v(num_topics);
  const double u = 1.0 / num_topics;
  for (int z = 0; z < num_topics; ++z) v[z] = u;
  return v;
}

TopicVector TopicVector::SampleDirichlet(int num_topics, double alpha,
                                         Rng* rng) {
  return TopicVector(rng->NextDirichlet(num_topics, alpha));
}

TopicVector TopicVector::SampleSparse(int num_topics, int num_nonzero,
                                      Rng* rng) {
  OIPA_CHECK_GE(num_nonzero, 1);
  OIPA_CHECK_LE(num_nonzero, num_topics);
  std::vector<int> topics(num_topics);
  std::iota(topics.begin(), topics.end(), 0);
  rng->Shuffle(&topics);
  TopicVector v(num_topics);
  const std::vector<double> weights =
      rng->NextDirichlet(num_nonzero, 1.0);
  for (int i = 0; i < num_nonzero; ++i) v[topics[i]] = weights[i];
  return v;
}

double TopicVector::Sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

void TopicVector::Normalize() {
  const double s = Sum();
  if (s <= 0.0) return;
  for (double& v : values_) v /= s;
}

int TopicVector::NumNonZero() const {
  return static_cast<int>(
      std::count_if(values_.begin(), values_.end(),
                    [](double v) { return v > 0.0; }));
}

std::string TopicVector::DebugString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%.3f", i ? ", " : "", values_[i]);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace oipa
