#ifndef OIPA_TOPIC_EDGE_TOPIC_PROBS_H_
#define OIPA_TOPIC_EDGE_TOPIC_PROBS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "topic/topic_vector.h"

namespace oipa {

/// A (topic, probability) pair on an edge: p(e | z).
struct TopicProb {
  int32_t topic;
  float prob;
};

/// Sparse per-edge topic-aware influence probabilities: for each edge e and
/// topic z, p(e|z) is the probability that e transmits a pure-topic-z piece
/// (the TIC model of Barbieri et al.). Stored CSR-style over EdgeIds since
/// real-world edges carry only a few non-zero topics (the paper reports an
/// average of 1.5 on tweet).
class EdgeTopicProbs {
 public:
  EdgeTopicProbs(EdgeId num_edges, int num_topics);

  /// Builder-style population: call once per edge in increasing EdgeId
  /// order; entries must have valid topic ids and probs in [0, 1].
  void SetEdge(EdgeId e, std::vector<TopicProb> entries);

  EdgeId num_edges() const {
    return static_cast<EdgeId>(offsets_.size()) - 1;
  }
  int num_topics() const { return num_topics_; }
  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

  /// Average number of non-zero topic probabilities per edge.
  double AverageNonZeros() const;

  std::span<const TopicProb> EdgeEntries(EdgeId e) const {
    return {entries_.data() + offsets_[e], entries_.data() + offsets_[e + 1]};
  }

  /// p(e | z): 0 if the topic is not present on the edge.
  double Prob(EdgeId e, int topic) const;

  /// p(t, e) = t . p(e): probability that piece `t` crosses edge e,
  /// clamped to [0, 1].
  double PieceProb(EdgeId e, const TopicVector& piece) const;

  /// Topic-blind probability: mean of p(e|z) over all |Z| topics (zeros
  /// included). This is the edge weight the topic-agnostic IM baseline
  /// sees.
  double MeanProb(EdgeId e) const;

 private:
  int num_topics_;
  std::vector<int64_t> offsets_;
  std::vector<TopicProb> entries_;
  EdgeId next_edge_ = 0;  // SetEdge must be called in order
};

}  // namespace oipa

#endif  // OIPA_TOPIC_EDGE_TOPIC_PROBS_H_
