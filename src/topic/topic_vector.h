#ifndef OIPA_TOPIC_TOPIC_VECTOR_H_
#define OIPA_TOPIC_TOPIC_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace oipa {

/// A distribution over the hidden topic set Z: entry z is the probability
/// that a viral piece (or a user's interest) relates to topic z. Entries
/// are non-negative; Normalize() rescales to sum 1.
class TopicVector {
 public:
  TopicVector() = default;
  explicit TopicVector(int num_topics) : values_(num_topics, 0.0) {}
  explicit TopicVector(std::vector<double> values)
      : values_(std::move(values)) {}

  /// A one-hot vector concentrated on `topic`.
  static TopicVector PureTopic(int num_topics, int topic);

  /// Uniform distribution over all topics.
  static TopicVector Uniform(int num_topics);

  /// Dirichlet(alpha) sample over `num_topics` dimensions.
  static TopicVector SampleDirichlet(int num_topics, double alpha, Rng* rng);

  /// A sparse mixture: `num_nonzero` topics chosen uniformly without
  /// replacement, with Dirichlet(1) weights among them. This matches how
  /// the paper generates piece topic vectors ("uniformly sampling a
  /// non-zero topic dimension").
  static TopicVector SampleSparse(int num_topics, int num_nonzero, Rng* rng);

  int num_topics() const { return static_cast<int>(values_.size()); }
  double operator[](int z) const { return values_[z]; }
  double& operator[](int z) { return values_[z]; }
  const std::vector<double>& values() const { return values_; }

  double Sum() const;
  /// Rescales entries to sum to 1; no-op on the all-zero vector.
  void Normalize();
  /// Number of strictly positive entries.
  int NumNonZero() const;

  std::string DebugString() const;

 private:
  std::vector<double> values_;
};

}  // namespace oipa

#endif  // OIPA_TOPIC_TOPIC_VECTOR_H_
