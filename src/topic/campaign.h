#ifndef OIPA_TOPIC_CAMPAIGN_H_
#define OIPA_TOPIC_CAMPAIGN_H_

#include <string>
#include <vector>

#include "topic/topic_vector.h"
#include "util/random.h"

namespace oipa {

/// One facet of a multifaceted campaign: a named message piece with a
/// topic distribution that governs its propagation.
struct ViralPiece {
  std::string name;
  TopicVector topics;
};

/// A multifaceted campaign T = {t_1 .. t_l}. Each piece spreads in the
/// network independently; users adopt the campaign after receiving enough
/// distinct pieces (logistic model, see oipa/logistic_model.h).
class Campaign {
 public:
  Campaign() = default;
  explicit Campaign(std::vector<ViralPiece> pieces)
      : pieces_(std::move(pieces)) {}

  /// Generates `num_pieces` pieces, each with a one-hot topic vector on a
  /// uniformly sampled topic dimension — the paper's experimental setup
  /// ("we generate the topic vector by uniformly sampling a non-zero topic
  /// dimension", Section VI-A).
  static Campaign SampleUniformPieces(int num_pieces, int num_topics,
                                      Rng* rng);

  /// Generates pieces with sparse mixed topic vectors (`nonzeros` non-zero
  /// dimensions each) — used by examples that model realistic facets.
  static Campaign SampleSparsePieces(int num_pieces, int num_topics,
                                     int nonzeros, Rng* rng);

  int num_pieces() const { return static_cast<int>(pieces_.size()); }
  const ViralPiece& piece(int j) const { return pieces_[j]; }
  const std::vector<ViralPiece>& pieces() const { return pieces_; }

  void AddPiece(ViralPiece piece) { pieces_.push_back(std::move(piece)); }

 private:
  std::vector<ViralPiece> pieces_;
};

}  // namespace oipa

#endif  // OIPA_TOPIC_CAMPAIGN_H_
