#ifndef OIPA_TOPIC_PROB_MODELS_H_
#define OIPA_TOPIC_PROB_MODELS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "topic/edge_topic_probs.h"
#include "topic/topic_vector.h"

namespace oipa {

/// Synthetic topic-aware probability assignments. These stand in for the
/// TIC-learned probabilities of the paper's datasets (see DESIGN.md §4);
/// all give each edge a small set of non-zero topics so that different
/// pieces have genuinely different influence graphs — the heterogeneity
/// OIPA exploits.

/// Weighted-cascade flavored: the total mass on edge (u,v) is
/// 1/in-degree(v), split across `avg_nonzeros` (on average, >= 1) randomly
/// chosen topics with Dirichlet weights, each then jittered by a uniform
/// factor in [0.5, 1.5] and clamped to [0, 1].
EdgeTopicProbs AssignWeightedCascadeTopics(const Graph& graph,
                                           int num_topics,
                                           double avg_nonzeros,
                                           uint64_t seed);

/// Trivalency flavored: each selected (edge, topic) pair draws its
/// probability uniformly from {0.1, 0.01, 0.001}.
EdgeTopicProbs AssignTrivalencyTopics(const Graph& graph, int num_topics,
                                      double avg_nonzeros, uint64_t seed);

/// Affinity-based: given one topic distribution per node (e.g. research
/// fields, or LDA output over a user's hashtags), edge (u,v) carries
/// topic z with affinity (theta_u[z] + theta_v[z]) / 2; the `top_k`
/// strongest topics whose affinity is at least `min_rel` times the
/// strongest are kept, scaled so the total edge mass is
/// `scale`/in-degree(v). This mirrors how the paper derives dblp
/// probabilities from conference fields and tweet probabilities from
/// LDA; raising `min_rel` thins secondary topics (the paper's tweet
/// table averages ~1.5 non-zero probabilities per edge).
EdgeTopicProbs AssignAffinityTopics(
    const Graph& graph, const std::vector<TopicVector>& node_topics,
    int top_k, double scale, double min_rel = 0.0);

/// Per-node topic profiles drawn from a sparse Dirichlet: every node gets
/// Dirichlet(alpha) over `num_topics` truncated to its `keep` largest
/// entries (renormalized).
std::vector<TopicVector> SampleNodeTopicProfiles(VertexId n, int num_topics,
                                                 double alpha, int keep,
                                                 uint64_t seed);

}  // namespace oipa

#endif  // OIPA_TOPIC_PROB_MODELS_H_
