#include "topic/influence_graph.h"

#include "util/logging.h"

namespace oipa {

InfluenceGraph::InfluenceGraph(const Graph* graph,
                               std::vector<float> edge_probs)
    : graph_(graph), edge_probs_(std::move(edge_probs)) {
  OIPA_CHECK(graph_ != nullptr);
  OIPA_CHECK_EQ(static_cast<EdgeId>(edge_probs_.size()),
                graph_->num_edges());
  for (float p : edge_probs_) {
    OIPA_CHECK_GE(p, 0.0f);
    OIPA_CHECK_LE(p, 1.0f);
  }
}

InfluenceGraph InfluenceGraph::ForPiece(const Graph& graph,
                                        const EdgeTopicProbs& probs,
                                        const TopicVector& piece) {
  OIPA_CHECK_EQ(probs.num_edges(), graph.num_edges());
  std::vector<float> edge_probs(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edge_probs[e] = static_cast<float>(probs.PieceProb(e, piece));
  }
  return InfluenceGraph(&graph, std::move(edge_probs));
}

InfluenceGraph InfluenceGraph::TopicBlind(const Graph& graph,
                                          const EdgeTopicProbs& probs) {
  OIPA_CHECK_EQ(probs.num_edges(), graph.num_edges());
  std::vector<float> edge_probs(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edge_probs[e] = static_cast<float>(probs.MeanProb(e));
  }
  return InfluenceGraph(&graph, std::move(edge_probs));
}

InfluenceGraph InfluenceGraph::Uniform(const Graph& graph, float p) {
  return InfluenceGraph(
      &graph, std::vector<float>(graph.num_edges(), p));
}

InfluenceGraph InfluenceGraph::WeightedCascade(const Graph& graph) {
  std::vector<float> edge_probs(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const int64_t indeg = graph.InDegree(graph.edge(e).dst);
    edge_probs[e] = indeg > 0 ? 1.0f / static_cast<float>(indeg) : 0.0f;
  }
  return InfluenceGraph(&graph, std::move(edge_probs));
}

std::vector<InfluenceGraph> BuildPieceGraphs(const Graph& graph,
                                             const EdgeTopicProbs& probs,
                                             const Campaign& campaign) {
  std::vector<InfluenceGraph> out;
  out.reserve(campaign.num_pieces());
  for (int j = 0; j < campaign.num_pieces(); ++j) {
    out.push_back(
        InfluenceGraph::ForPiece(graph, probs, campaign.piece(j).topics));
  }
  return out;
}

}  // namespace oipa
