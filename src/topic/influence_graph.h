#ifndef OIPA_TOPIC_INFLUENCE_GRAPH_H_
#define OIPA_TOPIC_INFLUENCE_GRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"

namespace oipa {

/// A homogeneous influence graph: the social graph plus one activation
/// probability per edge. This is what a single viral piece "sees": the
/// topic-aware model collapses to p(t, e) = t . p(e) for a piece t
/// (Section III-A of the paper).
class InfluenceGraph {
 public:
  InfluenceGraph(const Graph* graph, std::vector<float> edge_probs);

  /// Collapses the topic-aware probabilities for one piece.
  static InfluenceGraph ForPiece(const Graph& graph,
                                 const EdgeTopicProbs& probs,
                                 const TopicVector& piece);

  /// Topic-blind collapse: mean probability across all topics (what the
  /// classical-IM baseline runs on).
  static InfluenceGraph TopicBlind(const Graph& graph,
                                   const EdgeTopicProbs& probs);

  /// Uniform probability p on every edge (classic IC benchmarks).
  static InfluenceGraph Uniform(const Graph& graph, float p);

  /// Weighted-cascade: probability 1/in-degree(dst) on each edge.
  static InfluenceGraph WeightedCascade(const Graph& graph);

  const Graph& graph() const { return *graph_; }
  float EdgeProb(EdgeId e) const { return edge_probs_[e]; }
  const std::vector<float>& edge_probs() const { return edge_probs_; }

 private:
  const Graph* graph_;  // not owned
  std::vector<float> edge_probs_;
};

/// Builds one InfluenceGraph per campaign piece. The returned graphs alias
/// `graph`, which must outlive them.
std::vector<InfluenceGraph> BuildPieceGraphs(const Graph& graph,
                                             const EdgeTopicProbs& probs,
                                             const Campaign& campaign);

}  // namespace oipa

#endif  // OIPA_TOPIC_INFLUENCE_GRAPH_H_
