#include "topic/campaign.h"

namespace oipa {

Campaign Campaign::SampleUniformPieces(int num_pieces, int num_topics,
                                       Rng* rng) {
  std::vector<ViralPiece> pieces;
  pieces.reserve(num_pieces);
  for (int j = 0; j < num_pieces; ++j) {
    const int topic = static_cast<int>(rng->NextBounded(num_topics));
    pieces.push_back({"piece_" + std::to_string(j),
                      TopicVector::PureTopic(num_topics, topic)});
  }
  return Campaign(std::move(pieces));
}

Campaign Campaign::SampleSparsePieces(int num_pieces, int num_topics,
                                      int nonzeros, Rng* rng) {
  std::vector<ViralPiece> pieces;
  pieces.reserve(num_pieces);
  for (int j = 0; j < num_pieces; ++j) {
    pieces.push_back({"piece_" + std::to_string(j),
                      TopicVector::SampleSparse(num_topics, nonzeros, rng)});
  }
  return Campaign(std::move(pieces));
}

}  // namespace oipa
