#include "topic/prob_models.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace oipa {

namespace {

/// Samples a topic-count for one edge so that the mean across edges is
/// `avg_nonzeros`, with at least one topic per edge.
int SampleNonZeroCount(double avg_nonzeros, int num_topics, Rng* rng) {
  OIPA_CHECK_GE(avg_nonzeros, 1.0);
  const int base = static_cast<int>(avg_nonzeros);
  const double frac = avg_nonzeros - base;
  int count = base + (rng->NextBernoulli(frac) ? 1 : 0);
  return std::clamp(count, 1, num_topics);
}

/// Picks `count` distinct topics uniformly.
std::vector<int> SampleTopics(int num_topics, int count, Rng* rng) {
  std::vector<int> chosen;
  chosen.reserve(count);
  while (static_cast<int>(chosen.size()) < count) {
    const int z = static_cast<int>(rng->NextBounded(num_topics));
    if (std::find(chosen.begin(), chosen.end(), z) == chosen.end()) {
      chosen.push_back(z);
    }
  }
  return chosen;
}

}  // namespace

EdgeTopicProbs AssignWeightedCascadeTopics(const Graph& graph,
                                           int num_topics,
                                           double avg_nonzeros,
                                           uint64_t seed) {
  Rng rng(seed);
  EdgeTopicProbs probs(graph.num_edges(), num_topics);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const int64_t indeg = graph.InDegree(graph.edge(e).dst);
    const double base = indeg > 0 ? 1.0 / static_cast<double>(indeg) : 0.0;
    const int count = SampleNonZeroCount(avg_nonzeros, num_topics, &rng);
    const std::vector<int> topics = SampleTopics(num_topics, count, &rng);
    const std::vector<double> weights = rng.NextDirichlet(count, 1.0);
    std::vector<TopicProb> entries;
    entries.reserve(count);
    for (int i = 0; i < count; ++i) {
      // The jitter keeps per-topic probabilities heterogeneous even for
      // edges with equal in-degree.
      const double jitter = 0.5 + rng.NextDouble();
      const double p =
          std::clamp(base * weights[i] * count * jitter, 0.0, 1.0);
      entries.push_back({topics[i], static_cast<float>(p)});
    }
    probs.SetEdge(e, std::move(entries));
  }
  return probs;
}

EdgeTopicProbs AssignTrivalencyTopics(const Graph& graph, int num_topics,
                                      double avg_nonzeros, uint64_t seed) {
  Rng rng(seed);
  static constexpr float kLevels[3] = {0.1f, 0.01f, 0.001f};
  EdgeTopicProbs probs(graph.num_edges(), num_topics);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const int count = SampleNonZeroCount(avg_nonzeros, num_topics, &rng);
    const std::vector<int> topics = SampleTopics(num_topics, count, &rng);
    std::vector<TopicProb> entries;
    entries.reserve(count);
    for (int z : topics) {
      entries.push_back({z, kLevels[rng.NextBounded(3)]});
    }
    probs.SetEdge(e, std::move(entries));
  }
  return probs;
}

EdgeTopicProbs AssignAffinityTopics(
    const Graph& graph, const std::vector<TopicVector>& node_topics,
    int top_k, double scale, double min_rel) {
  OIPA_CHECK_EQ(static_cast<VertexId>(node_topics.size()),
                graph.num_vertices());
  OIPA_CHECK_GE(top_k, 1);
  OIPA_CHECK_GT(scale, 0.0);
  OIPA_CHECK_GE(min_rel, 0.0);
  OIPA_CHECK_LE(min_rel, 1.0);
  const int num_topics =
      node_topics.empty() ? 1 : node_topics[0].num_topics();
  EdgeTopicProbs probs(graph.num_edges(), num_topics);
  std::vector<std::pair<double, int>> affinity;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    const TopicVector& tu = node_topics[edge.src];
    const TopicVector& tv = node_topics[edge.dst];
    affinity.clear();
    for (int z = 0; z < num_topics; ++z) {
      // Arithmetic mean: an edge carries a topic if either endpoint
      // cares about it (a pure geometric mean would leave edges between
      // users with disjoint interests topicless and thus unusable).
      const double a = 0.5 * (tu[z] + tv[z]);
      if (a > 0.0) affinity.emplace_back(a, z);
    }
    std::sort(affinity.begin(), affinity.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (static_cast<int>(affinity.size()) > top_k) affinity.resize(top_k);
    while (affinity.size() > 1 &&
           affinity.back().first < min_rel * affinity.front().first) {
      affinity.pop_back();
    }

    double total = 0.0;
    for (const auto& [a, z] : affinity) total += a;
    const int64_t indeg = graph.InDegree(edge.dst);
    const double mass =
        indeg > 0 ? scale / static_cast<double>(indeg) : scale;
    std::vector<TopicProb> entries;
    entries.reserve(affinity.size());
    for (const auto& [a, z] : affinity) {
      const double p =
          total > 0.0 ? std::clamp(mass * a / total * affinity.size(), 0.0,
                                   1.0)
                      : 0.0;
      entries.push_back({z, static_cast<float>(p)});
    }
    probs.SetEdge(e, std::move(entries));
  }
  return probs;
}

std::vector<TopicVector> SampleNodeTopicProfiles(VertexId n, int num_topics,
                                                 double alpha, int keep,
                                                 uint64_t seed) {
  OIPA_CHECK_GE(keep, 1);
  Rng rng(seed);
  std::vector<TopicVector> out;
  out.reserve(n);
  std::vector<std::pair<double, int>> sorted(num_topics);
  for (VertexId v = 0; v < n; ++v) {
    TopicVector full = TopicVector::SampleDirichlet(num_topics, alpha, &rng);
    for (int z = 0; z < num_topics; ++z) sorted[z] = {full[z], z};
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    TopicVector truncated(num_topics);
    const int limit = std::min(keep, num_topics);
    for (int i = 0; i < limit; ++i) {
      truncated[sorted[i].second] = sorted[i].first;
    }
    truncated.Normalize();
    out.push_back(std::move(truncated));
  }
  return out;
}

}  // namespace oipa
