#ifndef OIPA_TOPIC_LDA_H_
#define OIPA_TOPIC_LDA_H_

#include <cstdint>
#include <vector>

#include "topic/topic_vector.h"
#include "util/random.h"

namespace oipa {

/// A bag-of-words corpus: documents[d] is the list of word ids in
/// document d (with repetition).
struct Corpus {
  int vocab_size = 0;
  std::vector<std::vector<int>> documents;

  int num_documents() const {
    return static_cast<int>(documents.size());
  }
  int64_t num_tokens() const;
};

/// Configuration for the collapsed-Gibbs LDA sampler.
struct LdaOptions {
  int num_topics = 10;
  double alpha = 0.5;   // document-topic Dirichlet prior
  double beta = 0.01;   // topic-word Dirichlet prior
  int iterations = 100;
  uint64_t seed = 1;
};

/// Latent Dirichlet Allocation via collapsed Gibbs sampling (Griffiths &
/// Steyvers). The paper applies LDA to each user's hashtag "document" to
/// obtain user topic distributions for the tweet dataset; this is the
/// substrate that role plays here.
class LdaModel {
 public:
  explicit LdaModel(LdaOptions options) : options_(options) {}

  /// Runs `options.iterations` Gibbs sweeps over the corpus. Deterministic
  /// given options.seed.
  void Train(const Corpus& corpus);

  /// Posterior document-topic distribution (smoothed by alpha).
  /// Valid after Train(); document index is the corpus order.
  TopicVector DocumentTopics(int doc) const;

  /// Posterior topic-word distribution for topic z (smoothed by beta).
  std::vector<double> TopicWords(int topic) const;

  /// Per-token log-likelihood of the training corpus under the fitted
  /// model (higher is better); used to test sampler convergence.
  double TokenLogLikelihood(const Corpus& corpus) const;

  int num_topics() const { return options_.num_topics; }

 private:
  LdaOptions options_;
  int vocab_size_ = 0;
  int num_docs_ = 0;
  // Count matrices maintained by the collapsed sampler.
  std::vector<int> doc_topic_;    // num_docs x K
  std::vector<int> topic_word_;   // K x vocab
  std::vector<int> topic_total_;  // K
  std::vector<int> doc_len_;      // num_docs
};

/// Generates a synthetic hashtag corpus with known ground-truth structure:
/// `num_topics` topics, each a Dirichlet(topic_word_alpha) distribution
/// over `vocab_size` words; each document picks a sparse topic mixture and
/// emits `doc_length` tokens. Returns the corpus and (via out-param) the
/// ground-truth document mixtures, so tests can check LDA recovery.
Corpus GenerateSyntheticCorpus(int num_documents, int num_topics,
                               int vocab_size, int doc_length,
                               uint64_t seed,
                               std::vector<TopicVector>* true_mixtures);

}  // namespace oipa

#endif  // OIPA_TOPIC_LDA_H_
