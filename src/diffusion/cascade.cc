#include "diffusion/cascade.h"

#include <cmath>

#include "util/logging.h"

namespace oipa {

std::vector<uint8_t> SimulateCascade(const InfluenceGraph& ig,
                                     const std::vector<VertexId>& seeds,
                                     Rng* rng) {
  const Graph& g = ig.graph();
  std::vector<uint8_t> active(g.num_vertices(), 0);
  std::vector<VertexId> frontier;
  for (VertexId s : seeds) {
    OIPA_CHECK_GE(s, 0);
    OIPA_CHECK_LT(s, g.num_vertices());
    if (!active[s]) {
      active[s] = 1;
      frontier.push_back(s);
    }
  }
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId u : frontier) {
      const auto nbrs = g.OutNeighbors(u);
      const auto eids = g.OutEdgeIds(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        if (active[v]) continue;
        if (rng->NextBernoulli(ig.EdgeProb(eids[i]))) {
          active[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return active;
}

double EstimateSpread(const InfluenceGraph& ig,
                      const std::vector<VertexId>& seeds, int trials,
                      uint64_t seed) {
  OIPA_CHECK_GT(trials, 0);
  Rng rng(seed);
  int64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    const std::vector<uint8_t> active = SimulateCascade(ig, seeds, &rng);
    for (uint8_t a : active) total += a;
  }
  return static_cast<double>(total) / trials;
}

std::vector<double> ExactReachProbabilities(
    const InfluenceGraph& ig, const std::vector<VertexId>& seeds) {
  const Graph& g = ig.graph();
  const EdgeId m = g.num_edges();
  OIPA_CHECK_LE(m, 24) << "exact enumeration is exponential in m";
  const VertexId n = g.num_vertices();
  std::vector<double> reach(n, 0.0);
  if (seeds.empty()) return reach;

  std::vector<uint8_t> active(n);
  std::vector<VertexId> stack;
  // Enumerate all live-edge worlds; world probability is the product of
  // per-edge live/blocked probabilities.
  for (uint32_t world = 0; world < (1u << m); ++world) {
    double world_prob = 1.0;
    for (EdgeId e = 0; e < m; ++e) {
      const double p = ig.EdgeProb(e);
      world_prob *= (world >> e) & 1u ? p : 1.0 - p;
      if (world_prob == 0.0) break;
    }
    if (world_prob == 0.0) continue;
    // BFS over live edges.
    std::fill(active.begin(), active.end(), 0);
    stack.clear();
    for (VertexId s : seeds) {
      if (!active[s]) {
        active[s] = 1;
        stack.push_back(s);
      }
    }
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      const auto nbrs = g.OutNeighbors(u);
      const auto eids = g.OutEdgeIds(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (((world >> eids[i]) & 1u) && !active[nbrs[i]]) {
          active[nbrs[i]] = 1;
          stack.push_back(nbrs[i]);
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (active[v]) reach[v] += world_prob;
    }
  }
  return reach;
}

double ExactSpread(const InfluenceGraph& ig,
                   const std::vector<VertexId>& seeds) {
  double total = 0.0;
  for (double p : ExactReachProbabilities(ig, seeds)) total += p;
  return total;
}

}  // namespace oipa
