#ifndef OIPA_DIFFUSION_CASCADE_H_
#define OIPA_DIFFUSION_CASCADE_H_

#include <cstdint>
#include <vector>

#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {

/// Runs one forward Independent Cascade from `seeds` on `ig`: every newly
/// activated node gets a single chance to activate each out-neighbor with
/// the edge's probability. Returns the activation indicator for every
/// vertex (seeds included). Duplicate seeds are tolerated.
std::vector<uint8_t> SimulateCascade(const InfluenceGraph& ig,
                                     const std::vector<VertexId>& seeds,
                                     Rng* rng);

/// Monte-Carlo estimate of the expected influence spread sigma_im(seeds):
/// the mean number of activated nodes over `trials` cascades.
double EstimateSpread(const InfluenceGraph& ig,
                      const std::vector<VertexId>& seeds, int trials,
                      uint64_t seed);

/// Exact per-vertex reach probabilities P[v activated | seeds] by
/// enumerating all 2^m live-edge worlds. Only feasible for tiny graphs;
/// checked to m <= 24. Used by tests to validate samplers.
std::vector<double> ExactReachProbabilities(
    const InfluenceGraph& ig, const std::vector<VertexId>& seeds);

/// Exact expected spread: sum of ExactReachProbabilities.
double ExactSpread(const InfluenceGraph& ig,
                   const std::vector<VertexId>& seeds);

}  // namespace oipa

#endif  // OIPA_DIFFUSION_CASCADE_H_
