#ifndef OIPA_DIFFUSION_LT_CASCADE_H_
#define OIPA_DIFFUSION_LT_CASCADE_H_

#include <cstdint>
#include <vector>

#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {

/// Linear Threshold (LT) diffusion — the second classical model of Kempe
/// et al. (the paper's hardness discussion covers both IC and LT). Edge
/// probabilities are interpreted as influence weights; each vertex's
/// incoming weights are normalized to sum to at most 1 by LtWeights.
///
/// Forward process: every vertex draws a threshold uniformly from [0,1];
/// it activates once the weight sum of its active in-neighbors reaches
/// the threshold.
///
/// Reverse-reachable sampling under LT (live-edge formulation): each
/// vertex picks AT MOST ONE incoming edge, edge (u,v) with probability
/// weight(u,v) and no edge with the leftover probability; an RR set is
/// the reverse path from the root through picked edges.

/// Per-edge LT weights derived from `ig`: each in-neighborhood is
/// rescaled by min(1, 1/sum) so incoming weights sum to <= 1.
std::vector<float> LtWeights(const InfluenceGraph& ig);

/// Runs one forward LT cascade from `seeds` using `weights` (from
/// LtWeights); returns activation indicators.
std::vector<uint8_t> SimulateLtCascade(const Graph& graph,
                                       const std::vector<float>& weights,
                                       const std::vector<VertexId>& seeds,
                                       Rng* rng);

/// Monte-Carlo estimate of the LT spread of `seeds`.
double EstimateLtSpread(const Graph& graph,
                        const std::vector<float>& weights,
                        const std::vector<VertexId>& seeds, int trials,
                        uint64_t seed);

/// Samples one LT RR set rooted at `root` (live-edge path sampling),
/// appending members to `out` (cleared first).
void SampleLtRrSet(const Graph& graph, const std::vector<float>& weights,
                   VertexId root, Rng* rng, std::vector<VertexId>* out);

}  // namespace oipa

#endif  // OIPA_DIFFUSION_LT_CASCADE_H_
