#include "diffusion/lt_cascade.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

std::vector<float> LtWeights(const InfluenceGraph& ig) {
  const Graph& g = ig.graph();
  std::vector<float> weights(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto eids = g.InEdgeIds(v);
    double sum = 0.0;
    for (EdgeId e : eids) sum += ig.EdgeProb(e);
    const double scale = sum > 1.0 ? 1.0 / sum : 1.0;
    for (EdgeId e : eids) {
      weights[e] = static_cast<float>(ig.EdgeProb(e) * scale);
    }
  }
  return weights;
}

std::vector<uint8_t> SimulateLtCascade(const Graph& graph,
                                       const std::vector<float>& weights,
                                       const std::vector<VertexId>& seeds,
                                       Rng* rng) {
  OIPA_CHECK_EQ(static_cast<EdgeId>(weights.size()), graph.num_edges());
  const VertexId n = graph.num_vertices();
  std::vector<uint8_t> active(n, 0);
  // Thresholds are sampled lazily: a vertex draws its threshold the
  // first time an active neighbor pushes weight at it.
  std::vector<float> threshold(n, -1.0f);
  std::vector<float> incoming(n, 0.0f);
  std::vector<VertexId> frontier, next;
  for (VertexId s : seeds) {
    OIPA_CHECK_GE(s, 0);
    OIPA_CHECK_LT(s, n);
    if (!active[s]) {
      active[s] = 1;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    next.clear();
    for (VertexId u : frontier) {
      const auto nbrs = graph.OutNeighbors(u);
      const auto eids = graph.OutEdgeIds(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        if (active[v]) continue;
        if (threshold[v] < 0.0f) threshold[v] = rng->NextFloat();
        incoming[v] += weights[eids[i]];
        if (incoming[v] >= threshold[v]) {
          active[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return active;
}

double EstimateLtSpread(const Graph& graph,
                        const std::vector<float>& weights,
                        const std::vector<VertexId>& seeds, int trials,
                        uint64_t seed) {
  OIPA_CHECK_GT(trials, 0);
  Rng rng(seed);
  int64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    const auto active = SimulateLtCascade(graph, weights, seeds, &rng);
    for (uint8_t a : active) total += a;
  }
  return static_cast<double>(total) / trials;
}

void SampleLtRrSet(const Graph& graph, const std::vector<float>& weights,
                   VertexId root, Rng* rng, std::vector<VertexId>* out) {
  OIPA_CHECK_GE(root, 0);
  OIPA_CHECK_LT(root, graph.num_vertices());
  out->clear();
  out->push_back(root);
  // Under LT's live-edge distribution each vertex keeps at most one
  // incoming edge, so the reverse walk is a path (cycle-checked).
  VertexId cur = root;
  for (;;) {
    const auto nbrs = graph.InNeighbors(cur);
    const auto eids = graph.InEdgeIds(cur);
    double r = rng->NextDouble();
    VertexId picked = -1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      r -= weights[eids[i]];
      if (r < 0.0) {
        picked = nbrs[i];
        break;
      }
    }
    if (picked < 0) break;  // leftover mass: no incoming live edge
    if (std::find(out->begin(), out->end(), picked) != out->end()) break;
    out->push_back(picked);
    cur = picked;
  }
}

}  // namespace oipa
