#ifndef OIPA_IM_HEURISTICS_H_
#define OIPA_IM_HEURISTICS_H_

#include <vector>

#include "topic/influence_graph.h"

namespace oipa {

/// Classic seed-selection heuristics from the IM literature (Chen et al.
/// KDD'09 and earlier), used as cheap reference points in ablations.

/// Top-k vertices by out-degree. `candidates` empty means all vertices.
std::vector<VertexId> HighDegreeSeeds(
    const Graph& graph, int k,
    const std::vector<VertexId>& candidates = {});

/// DegreeDiscount (Chen et al.): iteratively picks the highest
/// discounted-degree vertex, discounting neighbors of chosen seeds by
/// dd(v) = d(v) - 2*t(v) - (d(v) - t(v)) * t(v) * p, where t(v) counts
/// already-selected in/out neighbors and p is a representative
/// propagation probability (mean edge probability of `ig`).
std::vector<VertexId> DegreeDiscountSeeds(
    const InfluenceGraph& ig, int k,
    const std::vector<VertexId>& candidates = {});

/// k uniform random candidates (baseline floor).
std::vector<VertexId> RandomSeeds(const Graph& graph, int k, uint64_t seed,
                                  const std::vector<VertexId>& candidates = {});

}  // namespace oipa

#endif  // OIPA_IM_HEURISTICS_H_
