#ifndef OIPA_IM_MAX_COVER_H_
#define OIPA_IM_MAX_COVER_H_

#include <vector>

#include "rrset/rr_collection.h"

namespace oipa {

/// Result of a maximum-coverage seed selection over RR sets.
struct MaxCoverResult {
  std::vector<VertexId> seeds;
  /// Number of RR sets covered by `seeds`.
  int64_t covered = 0;
  /// Spread estimate n * covered / theta.
  double spread_estimate = 0.0;
};

/// Plain greedy maximum coverage: k rounds, each scanning all candidates
/// for the vertex covering the most yet-uncovered RR sets. `candidates`
/// empty means "all vertices". The classical (1 - 1/e) max-cover greedy.
MaxCoverResult GreedyMaxCover(const RrCollection& rr, int k,
                              const std::vector<VertexId>& candidates = {});

/// CELF lazy greedy: identical output to GreedyMaxCover (ties broken by
/// vertex id in both), typically far fewer marginal evaluations.
MaxCoverResult CelfMaxCover(const RrCollection& rr, int k,
                            const std::vector<VertexId>& candidates = {});

}  // namespace oipa

#endif  // OIPA_IM_MAX_COVER_H_
