#include "im/imm.h"

#include <algorithm>
#include <cmath>

#include "rrset/rr_collection.h"
#include "util/logging.h"
#include "util/math.h"

namespace oipa {

namespace {

/// lambda' of IMM Theorem 2 (sampling phase batch sizes).
double LambdaPrime(double eps_prime, int k, double ell, double n) {
  const double log_nck = LogBinomial(static_cast<int64_t>(n), k);
  return (2.0 + 2.0 / 3.0 * eps_prime) *
         (log_nck + ell * std::log(n) + std::log(std::log2(n))) * n /
         (eps_prime * eps_prime);
}

/// lambda* of IMM Equation (6) (selection phase size).
double LambdaStar(double eps, int k, double ell, double n) {
  const double log_nck = LogBinomial(static_cast<int64_t>(n), k);
  const double alpha = std::sqrt(ell * std::log(n) + std::log(2.0));
  const double beta =
      std::sqrt((1.0 - 1.0 / M_E) * (log_nck + ell * std::log(n) +
                                     std::log(2.0)));
  const double inv = 2.0 * n *
                     ((1.0 - 1.0 / M_E) * alpha + beta) *
                     ((1.0 - 1.0 / M_E) * alpha + beta) /
                     (eps * eps);
  return inv;
}

}  // namespace

ImmResult Imm(const InfluenceGraph& ig, int k, const ImmOptions& options) {
  const double n = static_cast<double>(ig.graph().num_vertices());
  OIPA_CHECK_GE(k, 1);
  OIPA_CHECK_GT(n, 1.0);
  OIPA_CHECK_GT(options.epsilon, 0.0);

  // Boost ell so the union bound over the sampling phase holds (IMM
  // Section 4.2 sets l' = l * (1 + log 2 / log n)).
  const double ell =
      options.failure_exponent * (1.0 + std::log(2.0) / std::log(n));
  const double eps = options.epsilon;
  const double eps_prime = std::sqrt(2.0) * eps;

  RrCollection rr = RrCollection::Generate(ig, 0, options.seed);
  double lb = 1.0;
  const int max_rounds =
      std::max(1, static_cast<int>(std::log2(n)) - 1);
  const double lambda_p = LambdaPrime(eps_prime, k, ell, n);

  for (int i = 1; i <= max_rounds; ++i) {
    const double x = n / std::pow(2.0, i);
    const int64_t theta_i = std::min<int64_t>(
        options.max_theta,
        static_cast<int64_t>(std::ceil(lambda_p / x)));
    if (rr.theta() < theta_i) rr.Extend(ig, theta_i - rr.theta());
    const MaxCoverResult cover = GreedyMaxCover(rr, k);
    const double frac =
        static_cast<double>(cover.covered) /
        static_cast<double>(rr.theta());
    if (n * frac >= (1.0 + eps_prime) * x) {
      lb = n * frac / (1.0 + eps_prime);
      break;
    }
  }

  const double lambda_s = LambdaStar(eps, k, ell, n);
  const int64_t theta = std::min<int64_t>(
      options.max_theta,
      static_cast<int64_t>(std::ceil(lambda_s / lb)));
  if (rr.theta() < theta) rr.Extend(ig, theta - rr.theta());

  const MaxCoverResult cover = CelfMaxCover(rr, k);
  ImmResult result;
  result.seeds = cover.seeds;
  result.spread_estimate = cover.spread_estimate;
  result.theta_used = rr.theta();
  result.opt_lower_bound = lb;
  return result;
}

ImmResult FixedThetaRis(const InfluenceGraph& ig, int k, int64_t theta,
                        uint64_t seed) {
  RrCollection rr = RrCollection::Generate(ig, theta, seed);
  const MaxCoverResult cover = CelfMaxCover(rr, k);
  ImmResult result;
  result.seeds = cover.seeds;
  result.spread_estimate = cover.spread_estimate;
  result.theta_used = theta;
  result.opt_lower_bound = 0.0;
  return result;
}

}  // namespace oipa
