#include "im/heuristics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace oipa {

namespace {

std::vector<VertexId> PoolOrAll(const Graph& graph,
                                const std::vector<VertexId>& candidates) {
  if (!candidates.empty()) return candidates;
  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

}  // namespace

std::vector<VertexId> HighDegreeSeeds(
    const Graph& graph, int k, const std::vector<VertexId>& candidates) {
  OIPA_CHECK_GE(k, 0);
  std::vector<VertexId> pool = PoolOrAll(graph, candidates);
  std::sort(pool.begin(), pool.end(), [&graph](VertexId a, VertexId b) {
    const int64_t da = graph.OutDegree(a), db = graph.OutDegree(b);
    return da != db ? da > db : a < b;
  });
  if (static_cast<int>(pool.size()) > k) pool.resize(k);
  return pool;
}

std::vector<VertexId> DegreeDiscountSeeds(
    const InfluenceGraph& ig, int k,
    const std::vector<VertexId>& candidates) {
  OIPA_CHECK_GE(k, 0);
  const Graph& graph = ig.graph();
  const std::vector<VertexId> pool = PoolOrAll(graph, candidates);

  // Representative propagation probability: mean over edges (0 if none).
  double p = 0.0;
  if (graph.num_edges() > 0) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) p += ig.EdgeProb(e);
    p /= static_cast<double>(graph.num_edges());
  }

  std::vector<double> discounted(graph.num_vertices());
  std::vector<int> taken_neighbors(graph.num_vertices(), 0);
  std::vector<uint8_t> selected(graph.num_vertices(), 0);
  for (VertexId v : pool) {
    discounted[v] = static_cast<double>(graph.OutDegree(v));
  }

  std::vector<VertexId> seeds;
  for (int round = 0; round < k && round < static_cast<int>(pool.size());
       ++round) {
    VertexId best = -1;
    double best_score = -1.0;
    for (VertexId v : pool) {
      if (selected[v]) continue;
      if (discounted[v] > best_score ||
          (discounted[v] == best_score && v < best)) {
        best_score = discounted[v];
        best = v;
      }
    }
    if (best < 0) break;
    selected[best] = 1;
    seeds.push_back(best);
    // Discount every (skeleton) neighbor of the chosen seed exactly once.
    std::vector<VertexId> nbrs;
    for (VertexId v : graph.OutNeighbors(best)) nbrs.push_back(v);
    for (VertexId v : graph.InNeighbors(best)) nbrs.push_back(v);
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (VertexId v : nbrs) {
      if (selected[v]) continue;
      const double d = static_cast<double>(graph.OutDegree(v));
      const double t = static_cast<double>(++taken_neighbors[v]);
      discounted[v] = d - 2.0 * t - (d - t) * t * p;
    }
  }
  return seeds;
}

std::vector<VertexId> RandomSeeds(const Graph& graph, int k, uint64_t seed,
                                  const std::vector<VertexId>& candidates) {
  OIPA_CHECK_GE(k, 0);
  std::vector<VertexId> pool = PoolOrAll(graph, candidates);
  Rng rng(seed);
  rng.Shuffle(&pool);
  if (static_cast<int>(pool.size()) > k) pool.resize(k);
  return pool;
}

}  // namespace oipa
