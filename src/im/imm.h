#ifndef OIPA_IM_IMM_H_
#define OIPA_IM_IMM_H_

#include <cstdint>
#include <vector>

#include "im/max_cover.h"
#include "topic/influence_graph.h"

namespace oipa {

/// Parameters for IMM (Tang, Shi, Xiao: "Influence Maximization in
/// Near-Linear Time: A Martingale Approach", SIGMOD 2015).
struct ImmOptions {
  /// Approximation slack: the output is a (1 - 1/e - epsilon)
  /// approximation with probability >= 1 - n^-failure_exponent.
  double epsilon = 0.5;
  double failure_exponent = 1.0;  // "l" in the paper
  uint64_t seed = 1;
  /// Safety cap on the total number of RR sets.
  int64_t max_theta = 10'000'000;
};

struct ImmResult {
  std::vector<VertexId> seeds;
  double spread_estimate = 0.0;
  /// RR sets generated across all phases (sampling + selection).
  int64_t theta_used = 0;
  /// The lower bound LB on OPT found by the sampling phase.
  double opt_lower_bound = 0.0;
};

/// Full IMM: the sampling phase estimates a lower bound on OPT via
/// geometrically increasing RR batches and martingale concentration
/// bounds, then the selection phase runs greedy max cover on
/// theta = lambda* / LB sets. Used as the "state-of-the-art IM algorithm"
/// the paper's baselines are built from.
ImmResult Imm(const InfluenceGraph& ig, int k, const ImmOptions& options);

/// Fixed-theta RIS: generates exactly `theta` RR sets and greedily covers.
/// This is the paper's experimental configuration (theta fixed at 1e6 for
/// all compared approaches).
ImmResult FixedThetaRis(const InfluenceGraph& ig, int k, int64_t theta,
                        uint64_t seed);

}  // namespace oipa

#endif  // OIPA_IM_IMM_H_
