#include "im/max_cover.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace oipa {

namespace {

std::vector<VertexId> AllVertices(VertexId n) {
  std::vector<VertexId> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

double Scale(const RrCollection& rr) {
  return rr.theta() == 0
             ? 0.0
             : static_cast<double>(rr.num_vertices()) /
                   static_cast<double>(rr.theta());
}

}  // namespace

MaxCoverResult GreedyMaxCover(const RrCollection& rr, int k,
                              const std::vector<VertexId>& candidates) {
  OIPA_CHECK_GE(k, 0);
  const std::vector<VertexId> pool =
      candidates.empty() ? AllVertices(rr.num_vertices()) : candidates;
  std::vector<uint8_t> covered(rr.theta(), 0);
  std::vector<uint8_t> taken(rr.num_vertices(), 0);

  MaxCoverResult result;
  for (int round = 0; round < k; ++round) {
    VertexId best = -1;
    int64_t best_gain = 0;
    for (VertexId v : pool) {
      if (taken[v]) continue;
      int64_t gain = 0;
      for (int64_t i : rr.SamplesContaining(v)) gain += !covered[i];
      // Ties broken toward the smaller vertex id (strict > keeps first).
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0) break;  // no positive marginal gain left
    taken[best] = 1;
    result.seeds.push_back(best);
    result.covered += best_gain;
    for (int64_t i : rr.SamplesContaining(best)) covered[i] = 1;
  }
  result.spread_estimate = static_cast<double>(result.covered) * Scale(rr);
  return result;
}

MaxCoverResult CelfMaxCover(const RrCollection& rr, int k,
                            const std::vector<VertexId>& candidates) {
  OIPA_CHECK_GE(k, 0);
  const std::vector<VertexId> pool =
      candidates.empty() ? AllVertices(rr.num_vertices()) : candidates;
  std::vector<uint8_t> covered(rr.theta(), 0);

  // Entries ordered by (gain desc, vertex asc) to match plain greedy's
  // tie-breaking exactly.
  struct Entry {
    int64_t gain;
    VertexId v;
    int round;  // round at which gain was computed
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.v > b.v;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (VertexId v : pool) {
    const int64_t gain =
        static_cast<int64_t>(rr.SamplesContaining(v).size());
    if (gain > 0) heap.push({gain, v, 0});
  }

  MaxCoverResult result;
  int round = 0;
  while (static_cast<int>(result.seeds.size()) < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round != round) {
      // Stale: recompute marginal gain under current coverage.
      int64_t gain = 0;
      for (int64_t i : rr.SamplesContaining(top.v)) gain += !covered[i];
      if (gain > 0) heap.push({gain, top.v, round});
      continue;
    }
    if (top.gain <= 0) break;
    result.seeds.push_back(top.v);
    result.covered += top.gain;
    for (int64_t i : rr.SamplesContaining(top.v)) covered[i] = 1;
    ++round;
  }
  result.spread_estimate = static_cast<double>(result.covered) * Scale(rr);
  return result;
}

}  // namespace oipa
