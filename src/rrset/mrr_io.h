#ifndef OIPA_RRSET_MRR_IO_H_
#define OIPA_RRSET_MRR_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "rrset/mrr_collection.h"
#include "rrset/sample_store.h"
#include "topic/influence_graph.h"
#include "util/status.h"

namespace oipa {

/// Binary snapshotting for MRR collections. At the paper's theta = 10^6
/// the sampling phase dominates setup time (Table III), so benches and
/// applications cache collections between runs. Format: little-endian,
/// magic "OIPAMRR2", then theta/l/n, sampling provenance (base seed,
/// diffusion model, extendable flag), roots, set offsets, members; the
/// inverted index is rebuilt on load (cheaper to rebuild than to store).
/// The format is append-aware: a grown collection round-trips exactly,
/// and because provenance is preserved, save -> load -> Extend produces
/// the same samples as extending the original. Legacy "OIPAMRR1" files
/// still load (as non-extendable collections).
Status SaveMrrCollection(const MrrCollection& mrr, const std::string& path);

StatusOr<MrrCollection> LoadMrrCollection(const std::string& path);

/// Snapshot persistence for sample stores: writes the store's *current*
/// generation — the in-sample collection plus the holdout, when present
/// — as one file (magic "OIPASTO1" framing two OIPAMRR2 blobs).
/// Retired generations are never written; a store round-trips through
/// its snapshot.
Status SaveSampleStore(const SampleStore& store, const std::string& path);

/// Rebuilds a private (unregistered) SampleStore from a snapshot file.
/// Because sampling provenance round-trips, passing the piece graphs
/// the store was sampled over makes the loaded store growable again:
/// save -> load -> Grow continues the exact sample stream. Pass null
/// for a frozen (non-growable) store.
StatusOr<std::shared_ptr<SampleStore>> LoadSampleStore(
    const std::string& path,
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces = nullptr);

}  // namespace oipa

#endif  // OIPA_RRSET_MRR_IO_H_
