#ifndef OIPA_RRSET_MRR_IO_H_
#define OIPA_RRSET_MRR_IO_H_

#include <string>

#include "rrset/mrr_collection.h"
#include "util/status.h"

namespace oipa {

/// Binary snapshotting for MRR collections. At the paper's theta = 10^6
/// the sampling phase dominates setup time (Table III), so benches and
/// applications cache collections between runs. Format: little-endian,
/// magic "OIPAMRR1", then theta/l/n, roots, set offsets, members; the
/// inverted index is rebuilt on load (cheaper to rebuild than to store).
Status SaveMrrCollection(const MrrCollection& mrr, const std::string& path);

StatusOr<MrrCollection> LoadMrrCollection(const std::string& path);

}  // namespace oipa

#endif  // OIPA_RRSET_MRR_IO_H_
