#ifndef OIPA_RRSET_MRR_IO_H_
#define OIPA_RRSET_MRR_IO_H_

#include <string>

#include "rrset/mrr_collection.h"
#include "util/status.h"

namespace oipa {

/// Binary snapshotting for MRR collections. At the paper's theta = 10^6
/// the sampling phase dominates setup time (Table III), so benches and
/// applications cache collections between runs. Format: little-endian,
/// magic "OIPAMRR2", then theta/l/n, sampling provenance (base seed,
/// diffusion model, extendable flag), roots, set offsets, members; the
/// inverted index is rebuilt on load (cheaper to rebuild than to store).
/// The format is append-aware: a grown collection round-trips exactly,
/// and because provenance is preserved, save -> load -> Extend produces
/// the same samples as extending the original. Legacy "OIPAMRR1" files
/// still load (as non-extendable collections).
Status SaveMrrCollection(const MrrCollection& mrr, const std::string& path);

StatusOr<MrrCollection> LoadMrrCollection(const std::string& path);

}  // namespace oipa

#endif  // OIPA_RRSET_MRR_IO_H_
