#ifndef OIPA_RRSET_COVERAGE_KERNELS_H_
#define OIPA_RRSET_COVERAGE_KERNELS_H_

#include <cstdint>
#include <span>

namespace oipa {

/// Batched evaluation kernels for the coverage hot loops: each call
/// processes one contiguous inverted-index posting span (the sample ids
/// containing a candidate vertex) against the flat per-sample arrays of
/// CoverageState / BoundEvaluator.
///
/// Bit-identity contract: every kernel computes one branchless term per
/// posting (skipped postings contribute a literal 0.0, which is exact —
/// the accumulators never hold -0.0) and then reduces STRICTLY in
/// posting order into the carried-in accumulator. The floating-point
/// result is therefore bit-identical to the historical scalar
/// skip-and-add loop, to the scalar fallback kernels below, and across
/// index segmentations (a grown collection sums in the same global
/// order as a fresh one). Only the term computation is vectorized.
///
/// Dispatch: on x86-64 the dispatched entry points resolve once, at
/// first use, to AVX2+FMA clones when the CPU supports them; otherwise
/// (and on other architectures) to the scalar kernels. The scalar path
/// is forced at runtime by setting the OIPA_NO_SIMD environment
/// variable to anything but "0", or at build time with the OIPA_NO_SIMD
/// CMake option — CI exercises both sides of the seam.

/// Sum of delta_f[cover_count[id]] over uncovered postings
/// (mult[id] == 0), accumulated in posting order starting from `acc`.
/// `delta_f` must be indexable at every cover_count value that occurs
/// (callers pad it with a zero entry at index l so the branchless
/// gather never reads out of bounds).
double CoverageGainSum(std::span<const int64_t> ids, const uint16_t* mult,
                       const uint8_t* cover_count, const double* delta_f,
                       double acc);

/// CoverageGainSum plus the matching suffix-max bound sum: for each
/// uncovered posting adds delta_f[c] to *gain_acc and
/// delta_f_sufmax[c] to *bound_acc, both in posting order.
void CoverageGainBoundSum(std::span<const int64_t> ids,
                          const uint16_t* mult, const uint8_t* cover_count,
                          const double* delta_f,
                          const double* delta_f_sufmax, double* gain_acc,
                          double* bound_acc);

/// The BoundEvaluator::CandidateGain inner loop: for each posting not
/// covered by the anchor plan (mult[id] == 0) and not yet greedily
/// covered this bound call (greedy_epoch[id] != epoch), adds the
/// tangent-surrogate marginal
///   lv = line_epoch[id] == epoch ? line_value[id]
///                                : anchor_by_count[cover_count[id]]
///   headroom = 1 - lv
///   term = headroom <= 0 ? 0 : min(slope_by_count[cover_count[id]],
///                                  headroom)
/// in posting order starting from `acc`. Read-only: unlike the
/// historical loop it never warms the line-value cache (the cached
/// value would equal the anchor value it reads instead, so results are
/// bit-identical; ApplyCandidate still initializes the cache).
double TangentGainSum(std::span<const int64_t> ids, const uint16_t* mult,
                      const uint32_t* greedy_epoch, uint32_t epoch,
                      const uint32_t* line_epoch, const double* line_value,
                      const uint8_t* cover_count,
                      const double* anchor_by_count,
                      const double* slope_by_count, double acc);

/// Scalar reference implementations: always compiled, never dispatched
/// to SIMD clones. The rrset_test SIMD-vs-scalar suite asserts exact
/// (bitwise) double equality between these and the dispatched entry
/// points above.
double CoverageGainSumScalar(std::span<const int64_t> ids,
                             const uint16_t* mult,
                             const uint8_t* cover_count,
                             const double* delta_f, double acc);
void CoverageGainBoundSumScalar(std::span<const int64_t> ids,
                                const uint16_t* mult,
                                const uint8_t* cover_count,
                                const double* delta_f,
                                const double* delta_f_sufmax,
                                double* gain_acc, double* bound_acc);
double TangentGainSumScalar(std::span<const int64_t> ids,
                            const uint16_t* mult,
                            const uint32_t* greedy_epoch, uint32_t epoch,
                            const uint32_t* line_epoch,
                            const double* line_value,
                            const uint8_t* cover_count,
                            const double* anchor_by_count,
                            const double* slope_by_count, double acc);

/// True when the dispatched entry points run the vectorized clones
/// (x86-64 with AVX2, not forced scalar). Telemetry/diagnostics only.
bool SimdKernelsActive();

}  // namespace oipa

#endif  // OIPA_RRSET_COVERAGE_KERNELS_H_
