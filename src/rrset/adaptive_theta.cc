#include "rrset/adaptive_theta.h"

#include <cmath>

#include "rrset/coverage_state.h"
#include "util/logging.h"
#include "util/math.h"

namespace oipa {

namespace {

std::vector<double> AdoptionTable(double alpha, double beta, int l) {
  std::vector<double> f(l + 1, 0.0);
  for (int c = 1; c <= l; ++c) f[c] = Sigmoid(beta * c - alpha);
  return f;
}

/// Greedy probe plan on `state` (coverage-gain greedy over the pool),
/// applied in place. Returns the (piece, vertex) selections.
std::vector<std::pair<int, VertexId>> BuildProbePlan(
    CoverageState* state, const std::vector<VertexId>& pool, int budget) {
  std::vector<std::pair<int, VertexId>> plan;
  const int l = state->mrr().num_pieces();
  for (int round = 0; round < budget; ++round) {
    double best_gain = 0.0;
    int best_piece = -1;
    VertexId best_v = -1;
    for (int j = 0; j < l; ++j) {
      for (VertexId v : pool) {
        const double gain = state->GainOfAdding(v, j);
        if (gain > best_gain) {
          best_gain = gain;
          best_piece = j;
          best_v = v;
        }
      }
    }
    if (best_piece < 0) break;
    state->AddSeed(best_v, best_piece);
    plan.emplace_back(best_piece, best_v);
  }
  return plan;
}

}  // namespace

AdaptiveThetaResult ChooseTheta(
    const std::vector<InfluenceGraph>& piece_graphs,
    const std::vector<VertexId>& promoter_pool,
    const AdaptiveThetaOptions& options) {
  OIPA_CHECK(!piece_graphs.empty());
  OIPA_CHECK(!promoter_pool.empty());
  OIPA_CHECK_GT(options.initial_theta, 0);
  OIPA_CHECK_GT(options.relative_tolerance, 0.0);
  const int l = static_cast<int>(piece_graphs.size());
  const std::vector<double> f = AdoptionTable(options.alpha, options.beta, l);

  AdaptiveThetaResult result;
  int64_t theta = options.initial_theta;
  for (;; theta *= 2, ++result.rounds) {
    const MrrCollection train =
        MrrCollection::Generate(piece_graphs, theta, options.seed + 1);
    const MrrCollection test =
        MrrCollection::Generate(piece_graphs, theta, options.seed + 2);
    CoverageState train_state(&train, f);
    const auto plan = BuildProbePlan(&train_state, promoter_pool,
                                     options.probe_budget);
    const double train_utility = train_state.Utility();
    CoverageState test_state(&test, f);
    for (const auto& [piece, v] : plan) test_state.AddSeed(v, piece);
    const double test_utility = test_state.Utility();

    const double scale =
        std::max(1e-9, std::max(train_utility, test_utility));
    result.achieved_disagreement =
        std::fabs(train_utility - test_utility) / scale;
    result.theta = theta;
    if (result.achieved_disagreement <= options.relative_tolerance ||
        theta * 2 > options.max_theta) {
      return result;
    }
  }
}

}  // namespace oipa
