#include "rrset/adaptive_theta.h"

#include <cmath>

#include "rrset/coverage_state.h"
#include "util/logging.h"

namespace oipa {

namespace {

/// Greedy probe plan on `state` (coverage-gain greedy over the pool),
/// applied in place. Returns the (piece, vertex) selections.
std::vector<std::pair<int, VertexId>> BuildProbePlan(
    CoverageState* state, const std::vector<VertexId>& pool, int budget) {
  std::vector<std::pair<int, VertexId>> plan;
  const int l = state->mrr().num_pieces();
  for (int round = 0; round < budget; ++round) {
    double best_gain = 0.0;
    int best_piece = -1;
    VertexId best_v = -1;
    for (int j = 0; j < l; ++j) {
      for (VertexId v : pool) {
        const double gain = state->GainOfAdding(v, j);
        if (gain > best_gain) {
          best_gain = gain;
          best_piece = j;
          best_v = v;
        }
      }
    }
    if (best_piece < 0) break;
    state->AddSeed(best_v, best_piece);
    plan.emplace_back(best_piece, best_v);
  }
  return plan;
}

}  // namespace

AdaptiveThetaResult ChooseTheta(
    const std::vector<InfluenceGraph>& piece_graphs,
    const std::vector<VertexId>& promoter_pool,
    const AdaptiveThetaOptions& options) {
  OIPA_CHECK(!piece_graphs.empty());
  OIPA_CHECK(!promoter_pool.empty());
  OIPA_CHECK_GT(options.initial_theta, 0);
  OIPA_CHECK_GT(options.relative_tolerance, 0.0);
  const int l = static_cast<int>(piece_graphs.size());
  const std::vector<double> f = options.model.AdoptionTable(l);

  // One pair of collections for the whole search, grown in place each
  // round — per-sample seeding makes round r's estimates bit-identical
  // to the old regenerate-from-scratch scheme while paying for each
  // sample exactly once.
  MrrCollection train = MrrCollection::Generate(
      piece_graphs, options.initial_theta, options.seed + 1,
      options.diffusion);
  MrrCollection test = MrrCollection::Generate(
      piece_graphs, options.initial_theta, options.seed + 2,
      options.diffusion);
  CoverageState train_state(&train, f);
  CoverageState test_state(&test, f);

  AdaptiveThetaResult result;
  for (int64_t theta = options.initial_theta;; ++result.rounds) {
    const auto plan = BuildProbePlan(&train_state, promoter_pool,
                                     options.probe_budget);
    const double train_utility = train_state.Utility();
    for (const auto& [piece, v] : plan) test_state.AddSeed(v, piece);
    const double test_utility = test_state.Utility();

    const double scale =
        std::max(1e-9, std::max(train_utility, test_utility));
    result.achieved_disagreement =
        std::fabs(train_utility - test_utility) / scale;
    result.theta = theta;
    if (result.achieved_disagreement <= options.relative_tolerance ||
        theta * 2 > options.max_theta) {
      // Both collections were grown in place, so their final sizes ARE
      // the total draw (a process-global counter diff would pick up
      // unrelated sampling on other threads).
      result.total_samples_generated = train.theta() + test.theta();
      return result;
    }

    // Next round: double both collections in place and rebind the
    // states to the appended samples (probe plans are rebuilt from
    // scratch, so rebinding starts from an empty plan).
    theta *= 2;
    train_state.Clear();
    test_state.Clear();
    train.Extend(piece_graphs, theta);
    test.Extend(piece_graphs, theta);
    train_state.ExtendToCollection();
    test_state.ExtendToCollection();
  }
}

}  // namespace oipa
