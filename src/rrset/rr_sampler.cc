#include "rrset/rr_sampler.h"

#include "util/logging.h"

namespace oipa {

RrSampler::RrSampler(VertexId num_vertices)
    : visit_epoch_(num_vertices, 0) {}

void RrSampler::Sample(const InfluenceGraph& ig, VertexId root, Rng* rng,
                       std::vector<VertexId>* out) {
  const Graph& g = ig.graph();
  OIPA_CHECK_EQ(static_cast<VertexId>(visit_epoch_.size()),
                g.num_vertices());
  OIPA_CHECK_GE(root, 0);
  OIPA_CHECK_LT(root, g.num_vertices());

  out->clear();
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: reset stamps
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0u);
    epoch_ = 1;
  }

  queue_.clear();
  visit_epoch_[root] = epoch_;
  queue_.push_back(root);
  out->push_back(root);
  size_t head = 0;
  while (head < queue_.size()) {
    const VertexId u = queue_[head++];
    const auto nbrs = g.InNeighbors(u);
    const auto eids = g.InEdgeIds(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (visit_epoch_[w] == epoch_) continue;
      const float p = ig.EdgeProb(eids[i]);
      if (p > 0.0f && rng->NextFloat() < p) {
        visit_epoch_[w] = epoch_;
        queue_.push_back(w);
        out->push_back(w);
      }
    }
  }
}

uint64_t PerSampleSeed(uint64_t base_seed, int64_t sample, int piece) {
  uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL *
                                (static_cast<uint64_t>(sample) + 1));
  state ^= 0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(piece) + 1);
  return SplitMix64Next(&state);
}

}  // namespace oipa
