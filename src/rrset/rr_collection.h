#ifndef OIPA_RRSET_RR_COLLECTION_H_
#define OIPA_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "topic/influence_graph.h"

namespace oipa {

/// A batch of theta random RR sets for one influence graph, stored CSR
/// style, with an inverted vertex -> samples index for max-cover style
/// algorithms. For any seed set S, (n/theta) * |{i : R_i and S intersect}|
/// is an unbiased estimate of the expected spread sigma_im(S).
class RrCollection {
 public:
  /// Generates `theta` RR sets with uniformly random roots. Deterministic
  /// given `seed` (independent of thread count); generation is
  /// parallelized across samples.
  static RrCollection Generate(const InfluenceGraph& ig, int64_t theta,
                               uint64_t seed);

  /// Generates `extra` additional sets (sample indices continue from the
  /// current theta, so Extend is equivalent to having generated
  /// theta+extra sets up front with the same base seed).
  void Extend(const InfluenceGraph& ig, int64_t extra);

  int64_t theta() const { return static_cast<int64_t>(roots_.size()); }
  VertexId num_vertices() const { return num_vertices_; }
  VertexId root(int64_t i) const { return roots_[i]; }

  std::span<const VertexId> Set(int64_t i) const {
    return {nodes_.data() + offsets_[i], nodes_.data() + offsets_[i + 1]};
  }

  /// Total number of (sample, vertex) memberships.
  int64_t TotalSize() const { return static_cast<int64_t>(nodes_.size()); }

  /// Sample ids whose RR set contains v. (Re)built lazily after
  /// generation/extension.
  std::span<const int64_t> SamplesContaining(VertexId v) const;

  /// Unbiased spread estimate for `seeds`: n * covered fraction.
  double EstimateSpread(const std::vector<VertexId>& seeds) const;

 private:
  RrCollection(VertexId num_vertices, uint64_t base_seed)
      : num_vertices_(num_vertices), base_seed_(base_seed) {}

  void BuildInvertedIndex() const;

  VertexId num_vertices_;
  uint64_t base_seed_;
  std::vector<VertexId> roots_;
  std::vector<int64_t> offsets_{0};
  std::vector<VertexId> nodes_;

  // Lazily built inverted index.
  mutable bool index_valid_ = false;
  mutable std::vector<int64_t> inv_offsets_;
  mutable std::vector<int64_t> inv_samples_;
};

}  // namespace oipa

#endif  // OIPA_RRSET_RR_COLLECTION_H_
