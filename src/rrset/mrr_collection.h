#ifndef OIPA_RRSET_MRR_COLLECTION_H_
#define OIPA_RRSET_MRR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "topic/influence_graph.h"

namespace oipa {

/// Multi-RR (MRR) sets — the paper's Section V-A extension of RR sets to
/// multifaceted campaigns. Each of the `theta` samples draws one uniform
/// root v_i and, for every piece j, one RR set R_i^j on that piece's
/// influence graph, all rooted at v_i. A plan S̄ covers piece j of sample
/// i iff S_j intersects R_i^j; the adoption-utility estimator of Lemma 2
/// is (n/theta) * sum_i f(#covered pieces of sample i).
/// Which diffusion model the reverse-reachable sets are sampled under.
enum class DiffusionModel {
  kIndependentCascade,  // the paper's model
  kLinearThreshold,     // extension: LT live-edge path sampling
};

/// A growable collection of MRR samples. Sample i's randomness depends
/// only on (base seed, i, piece) — PerSampleSeed — so the collection can
/// be grown in place: Generate(theta1) followed by Extend(theta2) is
/// bit-identical (roots, offsets, nodes, and inverted-index queries) to a
/// fresh Generate(theta2), regardless of thread count. Growth appends an
/// inverted-index segment covering only the new samples, so an Extend
/// costs O(new samples), never a full index rebuild.
class MrrCollection {
 public:
  /// Generates theta samples over `piece_graphs` (all sharing one social
  /// graph). Deterministic given `seed`, independent of thread count:
  /// sample i's randomness is PerSampleSeed(seed, i, piece), so any
  /// `num_threads` (0 = the GetNumThreads() default, N > 0 = exactly N
  /// workers) yields bit-identical samples.
  /// Under kLinearThreshold, each piece's edge probabilities are first
  /// normalized to LT weights (see diffusion/lt_cascade.h) and RR sets
  /// are reverse live-edge paths; everything downstream (estimators,
  /// bounds, solvers) works unchanged, so OIPA can be solved under LT.
  static MrrCollection Generate(
      const std::vector<InfluenceGraph>& piece_graphs, int64_t theta,
      uint64_t seed,
      DiffusionModel model = DiffusionModel::kIndependentCascade,
      int num_threads = 0);

  /// Grows the collection in place to `new_theta` samples (no-op when
  /// new_theta <= theta()). `piece_graphs` must be the graphs the
  /// collection was generated over; sampling continues from the stored
  /// base seed under the stored diffusion model, so the result is
  /// bit-identical to a fresh Generate(new_theta) — at any
  /// `num_threads` (same convention as Generate). CHECK-fails on
  /// collections without sampling provenance (FromParts-built ones with
  /// extendable() == false).
  void Extend(const std::vector<InfluenceGraph>& piece_graphs,
              int64_t new_theta, int num_threads = 0);

  /// Rebuilds a collection from raw storage (deserialization path; see
  /// rrset/mrr_io.h). `offsets` has theta*num_pieces+1 entries indexing
  /// into `nodes`; all vertex ids must lie in [0, num_vertices). The
  /// inverted index is rebuilt (as one segment). CHECK-fails on malformed
  /// input — callers (the loader) validate untrusted bytes first. When
  /// `extendable` is true, `base_seed`/`model` record the sampling
  /// provenance so the rebuilt collection keeps growing bit-identically
  /// to the original (the append-aware IO path).
  static MrrCollection FromParts(int64_t theta, int num_pieces,
                                 VertexId num_vertices,
                                 std::vector<VertexId> roots,
                                 std::vector<int64_t> offsets,
                                 std::vector<VertexId> nodes,
                                 uint64_t base_seed = 0,
                                 DiffusionModel model =
                                     DiffusionModel::kIndependentCascade,
                                 bool extendable = false);

  int64_t theta() const { return theta_; }
  int num_pieces() const { return num_pieces_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Sampling provenance: true when the collection knows its base seed
  /// and diffusion model, i.e. Extend is allowed.
  bool extendable() const { return extendable_; }
  uint64_t base_seed() const { return base_seed_; }
  DiffusionModel model() const { return model_; }

  VertexId root(int64_t i) const { return roots_[i]; }

  /// Members of RR set R_i^j.
  std::span<const VertexId> Set(int64_t i, int piece) const {
    const int64_t s = i * num_pieces_ + piece;
    return {nodes_.data() + offsets_[s], nodes_.data() + offsets_[s + 1]};
  }

  /// Invokes fn(sample_id) for every sample i with v in R_i^piece whose
  /// id is >= min_sample, in ascending id order. `min_sample` must be a
  /// growth boundary (0, or a theta at which Extend was called) — the
  /// index is segmented at exactly those boundaries, which is what lets
  /// incremental consumers (CoverageState::ExtendToCollection) bind only
  /// the appended samples in O(new samples).
  template <typename Fn>
  void ForEachSampleContaining(int piece, VertexId v, Fn&& fn,
                               int64_t min_sample = 0) const {
    const int64_t key =
        static_cast<int64_t>(piece) * (num_vertices_ + 1) + v;
    for (const IndexSegment& seg : segments_) {
      if (seg.end_sample <= min_sample) continue;
      const int64_t* p = seg.samples.data() + seg.offsets[key];
      const int64_t* end = seg.samples.data() + seg.offsets[key + 1];
      for (; p != end; ++p) fn(*p);
    }
  }

  /// Span-granular variant of ForEachSampleContaining: invokes
  /// fn(std::span<const int64_t>) once per non-empty index segment with
  /// the contiguous ascending sample ids of that segment's posting
  /// list, in segment order. Concatenated, the spans are exactly the
  /// ForEachSampleContaining iteration — this is the entry point of the
  /// batched coverage kernels (rrset/coverage_kernels.h), which need
  /// contiguous blocks rather than a per-id callback.
  template <typename Fn>
  void ForEachSampleSpan(int piece, VertexId v, Fn&& fn,
                         int64_t min_sample = 0) const {
    const int64_t key =
        static_cast<int64_t>(piece) * (num_vertices_ + 1) + v;
    for (const IndexSegment& seg : segments_) {
      if (seg.end_sample <= min_sample) continue;
      const int64_t* p = seg.samples.data() + seg.offsets[key];
      const int64_t* end = seg.samples.data() + seg.offsets[key + 1];
      if (p != end) fn(std::span<const int64_t>(p, end));
    }
  }

  /// Materialized sample ids i such that v is in R_i^piece, ascending.
  /// Convenience for tests and cold paths; hot loops should use
  /// ForEachSampleContaining (no allocation).
  std::vector<int64_t> SamplesContaining(int piece, VertexId v) const;

  /// Inverted-index segments currently held: one per Generate/Extend
  /// growth step (exposed for tests and diagnostics).
  int num_index_segments() const {
    return static_cast<int>(segments_.size());
  }

  /// Total number of (sample, piece, vertex) memberships.
  int64_t TotalSize() const { return static_cast<int64_t>(nodes_.size()); }

  /// Heap bytes held by this collection: roots, offsets, members, and
  /// every inverted-index segment (capacity, not size — what the
  /// allocator actually handed out). Store telemetry; O(#segments).
  int64_t MemoryBytes() const;

  /// Scaling factor n/theta that converts per-sample sums to utilities.
  double UtilityScale() const {
    return theta_ == 0 ? 0.0
                       : static_cast<double>(num_vertices_) /
                             static_cast<double>(theta_);
  }

  /// Process-wide count of MRR samples drawn by Generate/Extend since
  /// startup (one unit = one root plus its l RR sets). Benches and tests
  /// diff it around a call to prove no sample is ever generated twice.
  static int64_t GeneratedSampleCount();

 private:
  /// Inverted-index postings for one contiguous growth step
  /// [begin_sample, end_sample): offsets is keyed by piece*(n+1)+v and
  /// samples holds ascending sample ids. Segments are append-only —
  /// growing the collection never touches earlier segments.
  struct IndexSegment {
    int64_t begin_sample = 0;
    int64_t end_sample = 0;
    std::vector<int64_t> offsets;  // l*(n+1) + 1
    std::vector<int64_t> samples;
  };

  MrrCollection() = default;

  /// Builds the index segment for samples [begin, theta_).
  void AppendIndexSegment(int64_t begin);

  int64_t theta_ = 0;
  int num_pieces_ = 0;
  VertexId num_vertices_ = 0;
  uint64_t base_seed_ = 0;
  DiffusionModel model_ = DiffusionModel::kIndependentCascade;
  bool extendable_ = false;
  std::vector<VertexId> roots_;
  std::vector<int64_t> offsets_{0};  // theta*l + 1
  std::vector<VertexId> nodes_;
  std::vector<IndexSegment> segments_;
};

}  // namespace oipa

#endif  // OIPA_RRSET_MRR_COLLECTION_H_
