#ifndef OIPA_RRSET_MRR_COLLECTION_H_
#define OIPA_RRSET_MRR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "topic/influence_graph.h"

namespace oipa {

/// Multi-RR (MRR) sets — the paper's Section V-A extension of RR sets to
/// multifaceted campaigns. Each of the `theta` samples draws one uniform
/// root v_i and, for every piece j, one RR set R_i^j on that piece's
/// influence graph, all rooted at v_i. A plan S̄ covers piece j of sample
/// i iff S_j intersects R_i^j; the adoption-utility estimator of Lemma 2
/// is (n/theta) * sum_i f(#covered pieces of sample i).
/// Which diffusion model the reverse-reachable sets are sampled under.
enum class DiffusionModel {
  kIndependentCascade,  // the paper's model
  kLinearThreshold,     // extension: LT live-edge path sampling
};

class MrrCollection {
 public:
  /// Generates theta samples over `piece_graphs` (all sharing one social
  /// graph). Deterministic given `seed`, independent of thread count.
  /// Under kLinearThreshold, each piece's edge probabilities are first
  /// normalized to LT weights (see diffusion/lt_cascade.h) and RR sets
  /// are reverse live-edge paths; everything downstream (estimators,
  /// bounds, solvers) works unchanged, so OIPA can be solved under LT.
  static MrrCollection Generate(
      const std::vector<InfluenceGraph>& piece_graphs, int64_t theta,
      uint64_t seed,
      DiffusionModel model = DiffusionModel::kIndependentCascade);

  /// Rebuilds a collection from raw storage (deserialization path; see
  /// rrset/mrr_io.h). `offsets` has theta*num_pieces+1 entries indexing
  /// into `nodes`; all vertex ids must lie in [0, num_vertices). The
  /// inverted index is rebuilt. CHECK-fails on malformed input — callers
  /// (the loader) validate untrusted bytes first.
  static MrrCollection FromParts(int64_t theta, int num_pieces,
                                 VertexId num_vertices,
                                 std::vector<VertexId> roots,
                                 std::vector<int64_t> offsets,
                                 std::vector<VertexId> nodes);

  int64_t theta() const { return theta_; }
  int num_pieces() const { return num_pieces_; }
  VertexId num_vertices() const { return num_vertices_; }

  VertexId root(int64_t i) const { return roots_[i]; }

  /// Members of RR set R_i^j.
  std::span<const VertexId> Set(int64_t i, int piece) const {
    const int64_t s = i * num_pieces_ + piece;
    return {nodes_.data() + offsets_[s], nodes_.data() + offsets_[s + 1]};
  }

  /// Sample ids i such that v is in R_i^piece.
  std::span<const int64_t> SamplesContaining(int piece, VertexId v) const {
    const int64_t key =
        static_cast<int64_t>(piece) * (num_vertices_ + 1) + v;
    return {inv_samples_.data() + inv_offsets_[key],
            inv_samples_.data() + inv_offsets_[key + 1]};
  }

  /// Total number of (sample, piece, vertex) memberships.
  int64_t TotalSize() const { return static_cast<int64_t>(nodes_.size()); }

  /// Scaling factor n/theta that converts per-sample sums to utilities.
  double UtilityScale() const {
    return theta_ == 0 ? 0.0
                       : static_cast<double>(num_vertices_) /
                             static_cast<double>(theta_);
  }

 private:
  MrrCollection() = default;

  void BuildInvertedIndex();

  int64_t theta_ = 0;
  int num_pieces_ = 0;
  VertexId num_vertices_ = 0;
  std::vector<VertexId> roots_;
  std::vector<int64_t> offsets_{0};  // theta*l + 1
  std::vector<VertexId> nodes_;

  // Inverted index keyed by piece * (n+1) + v.
  std::vector<int64_t> inv_offsets_;
  std::vector<int64_t> inv_samples_;
};

}  // namespace oipa

#endif  // OIPA_RRSET_MRR_COLLECTION_H_
