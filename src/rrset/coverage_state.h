#ifndef OIPA_RRSET_COVERAGE_STATE_H_
#define OIPA_RRSET_COVERAGE_STATE_H_

#include <cstdint>
#include <vector>

#include "rrset/mrr_collection.h"

namespace oipa {

/// Incremental coverage bookkeeping for an assignment plan over an
/// MrrCollection, with a pluggable per-count value function f (for OIPA, f
/// is the logistic adoption probability; f(0) must be 0 for the "no piece
/// received" case unless a caller deliberately overrides it).
///
/// Maintains, per sample i: how many seeds of piece j hit R_i^j
/// (multiplicity), the covered-piece count c_i, and the running sum of
/// f(c_i) — so AddSeed / RemoveSeed are O(|inverted list|) and the
/// branch-and-bound engine can move between plans by diffing.
class CoverageState {
 public:
  /// `f_by_count` has num_pieces()+1 entries: f[c] is the value of a
  /// sample covered on c distinct pieces. Not owned; copied.
  CoverageState(const MrrCollection* mrr, std::vector<double> f_by_count);

  /// Registers one more seed `v` for piece `j`. Multiple seeds covering
  /// the same (sample, piece) are counted, so removal is exact.
  void AddSeed(VertexId v, int piece);

  /// Reverses a prior AddSeed(v, piece).
  void RemoveSeed(VertexId v, int piece);

  /// Removes all seeds (O(#touched samples), not O(theta)).
  void Clear();

  /// Marginal utility (in utility units, i.e. scaled by n/theta) of adding
  /// seed v for piece j, without mutating the state.
  double GainOfAdding(VertexId v, int piece) const;

  /// Current adoption-utility estimate: (n/theta) * sum_i f(c_i).
  double Utility() const { return sum_f_ * mrr_->UtilityScale(); }

  /// Raw per-sample sum (unscaled).
  double RawSum() const { return sum_f_; }

  int CoverCount(int64_t sample) const { return cover_count_[sample]; }
  bool IsCovered(int64_t sample, int piece) const {
    return multiplicity_[sample * num_pieces_ + piece] > 0;
  }

  /// Histogram over coverage counts: entry c is the number of samples
  /// currently covered on exactly c pieces. Size num_pieces()+1.
  const std::vector<int64_t>& CountHistogram() const { return count_hist_; }

  const MrrCollection& mrr() const { return *mrr_; }
  const std::vector<double>& f_by_count() const { return f_by_count_; }

 private:
  const MrrCollection* mrr_;  // not owned
  int num_pieces_;
  std::vector<double> f_by_count_;
  std::vector<uint16_t> multiplicity_;  // theta x l
  std::vector<uint8_t> cover_count_;    // theta
  std::vector<int64_t> touched_;        // samples with any multiplicity
  std::vector<int64_t> count_hist_;     // l + 1
  double sum_f_ = 0.0;
};

}  // namespace oipa

#endif  // OIPA_RRSET_COVERAGE_STATE_H_
