#ifndef OIPA_RRSET_COVERAGE_STATE_H_
#define OIPA_RRSET_COVERAGE_STATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rrset/mrr_collection.h"

namespace oipa {

/// Incremental coverage bookkeeping for an assignment plan over an
/// MrrCollection, with a pluggable per-count value function f (for OIPA, f
/// is the logistic adoption probability; f(0) must be 0 for the "no piece
/// received" case unless a caller deliberately overrides it).
///
/// Maintains, per sample i: how many seeds of piece j hit R_i^j
/// (multiplicity), the covered-piece count c_i, and the running sum of
/// f(c_i) — so AddSeed / RemoveSeed are O(|inverted list|) and the
/// branch-and-bound engine can move between plans by diffing. The
/// marginal table delta_f[c] = f[c+1] - f[c] is precomputed so every
/// touched sample costs one flat-array lookup, not two.
///
/// The state binds the collection's theta at construction. If the
/// collection is grown (MrrCollection::Extend), call
/// ExtendToCollection() before the next mutation or gain query — every
/// entry point CHECK-fails on a stale binding.
class CoverageState {
 public:
  /// `f_by_count` has num_pieces()+1 entries: f[c] is the value of a
  /// sample covered on c distinct pieces. Not owned; copied.
  CoverageState(const MrrCollection* mrr, std::vector<double> f_by_count);

  /// Registers one more seed `v` for piece `j`. Multiple seeds covering
  /// the same (sample, piece) are counted, so removal is exact.
  void AddSeed(VertexId v, int piece);

  /// Reverses a prior AddSeed(v, piece).
  void RemoveSeed(VertexId v, int piece);

  /// Rebinds the state to its (grown) collection after MrrCollection::
  /// Extend: per-sample arrays are appended (not rebuilt) and every seed
  /// in `applied` — which must list exactly the AddSeed calls currently
  /// in effect, duplicates included — is bound to the NEW samples only,
  /// so the whole call costs O(new samples' index lists). Afterwards the
  /// state is exactly what a fresh CoverageState over the grown
  /// collection plus the same AddSeed calls would be. Must not be called
  /// inside an open Snapshot.
  void ExtendToCollection(
      const std::vector<std::pair<int, VertexId>>& applied = {});

  /// Removes all seeds (O(#touched samples), not O(theta)). Must not be
  /// called while a Snapshot is open.
  void Clear();

  /// Marginal utility (in utility units, i.e. scaled by n/theta) of adding
  /// seed v for piece j, without mutating the state.
  double GainOfAdding(VertexId v, int piece) const;

  /// GainOfAdding plus a forward-valid upper bound on that same gain:
  /// while only AddSeed is applied (a greedy run), coverage counts only
  /// grow, so the bound — built from suffix maxima of delta_f — can only
  /// shrink. Lets CELF-lazy selection stay exact even when f has
  /// increasing marginals (the paper's non-submodular regime).
  std::pair<double, double> GainAndBoundOfAdding(VertexId v,
                                                 int piece) const;

  /// Opens a checkpoint: every subsequent AddSeed/RemoveSeed is journaled
  /// until the matching Restore. Checkpoints nest (LIFO).
  void Snapshot();

  /// Rewinds to the most recent Snapshot in O(#journaled touches) — no
  /// inverted-list re-traversal, no full Clear+rebuild.
  void Restore();

  /// Depth of open Snapshot() checkpoints.
  int snapshot_depth() const { return static_cast<int>(marks_.size()); }

  /// Current adoption-utility estimate: (n/theta) * sum_i f(c_i).
  double Utility() const { return sum_f_ * mrr_->UtilityScale(); }

  /// Raw per-sample sum (unscaled).
  double RawSum() const { return sum_f_; }

  int CoverCount(int64_t sample) const { return cover_count_[sample]; }
  bool IsCovered(int64_t sample, int piece) const {
    return multiplicity_[piece][sample] > 0;
  }

  /// Flat per-sample rows for the batched kernels
  /// (rrset/coverage_kernels.h): seed multiplicities of one piece, and
  /// the covered-piece counts. Piece-major storage keeps each row
  /// contiguous over samples, which is what the kernels gather from.
  const uint16_t* MultiplicityRow(int piece) const {
    return multiplicity_[piece].data();
  }
  const uint8_t* CoverCounts() const { return cover_count_.data(); }

  /// Histogram over coverage counts: entry c is the number of samples
  /// currently covered on exactly c pieces. Size num_pieces()+1.
  const std::vector<int64_t>& CountHistogram() const { return count_hist_; }

  const MrrCollection& mrr() const { return *mrr_; }
  const std::vector<double>& f_by_count() const { return f_by_count_; }

 private:
  /// One journaled touch: sample `sample` had its multiplicity for
  /// `piece` moved by `delta` (+1 for AddSeed, -1 for RemoveSeed).
  struct JournalEntry {
    int64_t sample;
    int32_t piece;
    int32_t delta;
  };

  bool journaling() const { return !marks_.empty(); }

  /// The collection must not have grown past this state's arrays.
  void CheckSynced() const;

  const MrrCollection* mrr_;  // not owned
  int num_pieces_;
  std::vector<double> f_by_count_;
  /// delta_f_[c] = f[c+1] - f[c] and its suffix max. Sized l+1 with a
  /// zero pad at index l: the branchless kernels gather
  /// delta_f_[cover_count_[i]] before masking covered samples, and a
  /// fully covered sample legitimately carries cover_count_ == l.
  std::vector<double> delta_f_;
  std::vector<double> delta_f_sufmax_;
  /// Piece-major seed multiplicities: multiplicity_[j][i] counts the
  /// seeds of piece j hitting R_i^j. One contiguous theta-sized row per
  /// piece, so the kernels index rows by sample id directly and
  /// ExtendToCollection appends per row in O(new samples).
  std::vector<std::vector<uint16_t>> multiplicity_;  // l x theta
  std::vector<uint8_t> cover_count_;                 // theta
  std::vector<int64_t> touched_;        // samples with any multiplicity
  std::vector<int64_t> count_hist_;     // l + 1
  std::vector<JournalEntry> journal_;   // touches since the first Snapshot
  std::vector<size_t> marks_;           // journal sizes at open Snapshots
  double sum_f_ = 0.0;
};

}  // namespace oipa

#endif  // OIPA_RRSET_COVERAGE_STATE_H_
