#include "rrset/sample_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

#include "util/fault_injector.h"
#include "util/logging.h"

namespace oipa {

namespace {

std::shared_ptr<const MrrCollection> GenerateCollection(
    const std::vector<InfluenceGraph>& pieces,
    const SampleStore::Options& options, int64_t theta, uint64_t seed) {
  return std::make_shared<const MrrCollection>(MrrCollection::Generate(
      pieces, theta, seed, options.diffusion, options.sampling_threads));
}

/// The holdout stream is decorrelated from the in-sample stream by the
/// same seed perturbation PlanningContext used before the store existed
/// (keeps pre-refactor runs bit-identical).
constexpr uint64_t kHoldoutSeedXor = 0xABCDEF12345ULL;

int64_t ResolvedHoldoutTheta(const SampleStore::Options& options) {
  return options.holdout_theta < 0 ? options.theta : options.holdout_theta;
}

}  // namespace

std::shared_ptr<SampleStore> SampleStore::Build(
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
    const Options& options, bool shared) {
  OIPA_CHECK(pieces != nullptr && !pieces->empty());
  OIPA_CHECK_GE(options.theta, 1);
  std::shared_ptr<SampleStore> store(new SampleStore());
  store->pieces_ = std::move(pieces);
  store->options_ = options;
  store->options_.holdout_theta = ResolvedHoldoutTheta(options);
  store->shared_ = shared;
  auto mrr = GenerateCollection(*store->pieces_, options, options.theta,
                                options.seed);
  std::shared_ptr<const MrrCollection> holdout;
  if (store->options_.holdout_theta > 0) {
    holdout = GenerateCollection(*store->pieces_, options,
                                 store->options_.holdout_theta,
                                 options.seed ^ kHoldoutSeedXor);
  }
  {
    MutexLock grow_lock(&store->grow_mu_);
    store->Publish(std::move(mrr), std::move(holdout));
  }
  return store;
}

std::shared_ptr<SampleStore> SampleStore::Create(
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
    const Options& options) {
  return Build(std::move(pieces), options, /*shared=*/false);
}

std::shared_ptr<SampleStore> SampleStore::Adopt(
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
    std::shared_ptr<const MrrCollection> mrr,
    std::shared_ptr<const MrrCollection> holdout) {
  OIPA_CHECK(mrr != nullptr);
  std::shared_ptr<SampleStore> store(new SampleStore());
  store->pieces_ = std::move(pieces);
  store->options_.theta = mrr->theta();
  store->options_.holdout_theta = holdout == nullptr ? 0 : holdout->theta();
  store->options_.seed = mrr->base_seed();
  store->options_.diffusion = mrr->model();
  {
    MutexLock grow_lock(&store->grow_mu_);
    store->Publish(std::move(mrr), std::move(holdout));
  }
  return store;
}

// ----------------------------------------------------------- registry

namespace {

/// Identity key of a shareable sampling configuration. Graph and probs
/// are keyed by object identity (a live store keeps them alive, so a
/// key can never alias a recycled address of a dead object); campaign
/// pieces are keyed by content, since equal piece topic vectors produce
/// equal influence graphs regardless of which Campaign object carries
/// them. Theta is deliberately absent — a live store at a larger theta
/// strictly contains any smaller same-key request (prefix sharing), and
/// a larger request grows the store in place. Only the presence of a
/// holdout stream is keyed: stores with and without one have different
/// generation histories and cannot substitute for each other.
struct StoreKey {
  const void* graph = nullptr;
  const void* probs = nullptr;
  /// Content key replacing graph/probs identity when the caller set
  /// Options::source_key (both pointers stay null in that case, so a
  /// source-keyed entry can never collide with an identity-keyed one).
  std::string source;
  uint64_t campaign_fingerprint = 0;
  int diffusion = 0;
  uint64_t seed = 0;
  bool has_holdout = false;

  bool operator<(const StoreKey& o) const {
    return std::tie(graph, probs, source, campaign_fingerprint, diffusion,
                    seed, has_holdout) <
           std::tie(o.graph, o.probs, o.source, o.campaign_fingerprint,
                    o.diffusion, o.seed, o.has_holdout);
  }
};

/// Exact piece-content equality — the fingerprint routes to a slot,
/// this guards against 64-bit hash collisions before samples are
/// shared (a collision would silently serve one campaign's samples to
/// another).
bool SamePieceTopics(const Campaign& a, const Campaign& b) {
  if (a.num_pieces() != b.num_pieces()) return false;
  for (int j = 0; j < a.num_pieces(); ++j) {
    if (a.piece(j).topics.values() != b.piece(j).topics.values()) {
      return false;
    }
  }
  return true;
}

uint64_t FingerprintCampaign(const Campaign& campaign) {
  // FNV-1a over piece count and each topic value's bit pattern.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(campaign.num_pieces()));
  for (const ViralPiece& piece : campaign.pieces()) {
    mix(static_cast<uint64_t>(piece.topics.num_topics()));
    for (const double value : piece.topics.values()) {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(value));
      std::memcpy(&bits, &value, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

/// Guards the registry map, every slot's published weak_ptr, and the
/// retention/budget bookkeeping. Lock order: a slot's mu first, then
/// g_registry_mu — nothing takes them in the opposite order (Acquire
/// releases g_registry_mu before locking a slot). Budget enforcement
/// additionally takes a store's history_mu_ (inside GetStats) while
/// holding g_registry_mu, which fixes the order g_registry_mu →
/// history_mu_; no store method takes the registry lock, so the order
/// cannot invert.
Mutex g_registry_mu;

/// Per-key creation slot: concurrent Acquires of one key serialize on
/// the slot mutex (exactly one sampling pass; prefix growth also
/// happens under it), while different keys sample concurrently. The
/// published weak_ptr and the pin/retention state live under
/// g_registry_mu so that PruneRegistryLocked/RegistrySize and the
/// budget sweep can walk every slot under the one registry lock.
struct RegistrySlot {
  Mutex mu;
  std::weak_ptr<SampleStore> store OIPA_GUARDED_BY(g_registry_mu);
  /// Keeps the store alive past its last pinned handle when a nonzero
  /// registry budget is set (null otherwise): the retention the LRU
  /// eviction sweep trades against the byte budget.
  std::shared_ptr<SampleStore> retained OIPA_GUARDED_BY(g_registry_mu);
  /// Outstanding pinned handles; a pinned store is never evicted.
  int pins OIPA_GUARDED_BY(g_registry_mu) = 0;
  /// Global use tick at the last pin/unpin — the LRU ordering.
  uint64_t last_use OIPA_GUARDED_BY(g_registry_mu) = 0;
};

std::map<StoreKey, std::shared_ptr<RegistrySlot>>& Registry()
    OIPA_REQUIRES(g_registry_mu) {
  static auto* registry =
      new std::map<StoreKey, std::shared_ptr<RegistrySlot>>();
  return *registry;
}

int64_t g_budget_bytes OIPA_GUARDED_BY(g_registry_mu) = 0;
uint64_t g_use_tick OIPA_GUARDED_BY(g_registry_mu) = 0;
int64_t g_evictions OIPA_GUARDED_BY(g_registry_mu) = 0;
int64_t g_recovered_stores OIPA_GUARDED_BY(g_registry_mu) = 0;

/// Recovery snapshots parked by OfferRecoveredSnapshot, keyed by
/// source_key and consumed lazily by the first matching source-keyed
/// Acquire (see SampleStore::BuildFromRecovered).
std::map<std::string, SampleSnapshot>& RecoveryMap()
    OIPA_REQUIRES(g_registry_mu) {
  static auto* parked = new std::map<std::string, SampleSnapshot>();
  return *parked;
}

/// Drops slots whose store died and which no Acquire currently holds.
void PruneRegistryLocked() OIPA_REQUIRES(g_registry_mu) {
  auto& registry = Registry();
  for (auto it = registry.begin(); it != registry.end();) {
    if (it->second.use_count() == 1 && it->second->store.expired()) {
      it = registry.erase(it);
    } else {
      ++it;
    }
  }
}

/// Applies the byte budget: with budget 0, drops every retained handle
/// (no-retention mode); otherwise evicts the least-recently-used
/// unpinned retained store until the summed MemoryBytes() of live
/// registered stores fits the budget or nothing evictable remains
/// (pinned stores can legitimately hold the total above budget).
void EnforceBudgetLocked() OIPA_REQUIRES(g_registry_mu) {
  if (g_budget_bytes <= 0) {
    for (auto& [key, slot] : Registry()) {
      (void)key;
      slot->retained.reset();
    }
    return;
  }
  for (;;) {
    int64_t total = 0;
    RegistrySlot* victim = nullptr;
    for (auto& [key, slot] : Registry()) {
      (void)key;
      const std::shared_ptr<SampleStore> live = slot->store.lock();
      if (live == nullptr) continue;
      total += live->GetStats().memory_bytes;
      if (slot->retained != nullptr && slot->pins == 0 &&
          (victim == nullptr || slot->last_use < victim->last_use)) {
        victim = slot.get();
      }
    }
    if (total <= g_budget_bytes || victim == nullptr) return;
    victim->retained.reset();
    ++g_evictions;
  }
}

/// The handle Acquire returns is an aliasing shared_ptr whose control
/// block owns one of these: the store stays pinned (and the slot's
/// pin count raised) until the last copy of the handle dies, at which
/// point the budget sweep may evict it.
class PinnedHandle {
 public:
  PinnedHandle(std::shared_ptr<RegistrySlot> slot,
               std::shared_ptr<SampleStore> store)
      : slot_(std::move(slot)), store_(std::move(store)) {}
  PinnedHandle(const PinnedHandle&) = delete;
  PinnedHandle& operator=(const PinnedHandle&) = delete;

  ~PinnedHandle() {
    MutexLock lock(&g_registry_mu);
    --slot_->pins;
    slot_->last_use = ++g_use_tick;
    EnforceBudgetLocked();
    // store_ itself is released after this body — outside the lock —
    // so a store whose retention was just evicted is destroyed without
    // g_registry_mu held.
  }

  SampleStore* get() const { return store_.get(); }

 private:
  std::shared_ptr<RegistrySlot> slot_;
  std::shared_ptr<SampleStore> store_;
};

/// Pins `store` in `slot` and wraps it in the handle described above.
std::shared_ptr<SampleStore> PinStore(std::shared_ptr<RegistrySlot> slot,
                                      std::shared_ptr<SampleStore> store) {
  {
    MutexLock lock(&g_registry_mu);
    ++slot->pins;
    slot->last_use = ++g_use_tick;
    if (g_budget_bytes > 0) slot->retained = store;
  }
  auto holder =
      std::make_shared<PinnedHandle>(std::move(slot), std::move(store));
  return {holder, holder->get()};
}

}  // namespace

std::shared_ptr<SampleStore> SampleStore::BuildFromRecovered(
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
    const Options& options) {
  SampleSnapshot parked;
  {
    MutexLock lock(&g_registry_mu);
    auto it = RecoveryMap().find(options.source_key);
    if (it == RecoveryMap().end()) return nullptr;
    parked = it->second;
  }
  // Provenance gate: a parked snapshot only substitutes for fresh
  // generation when it demonstrably came from this exact sampling
  // configuration — otherwise fall back to sampling from scratch (a
  // wrong checkpoint must cost cold-start time, never correctness).
  // The entry stays parked on mismatch: a differently-configured
  // request under the same key (e.g. with vs without holdout) is not
  // evidence the snapshot is bad.
  const int64_t want_holdout = ResolvedHoldoutTheta(options);
  const bool usable =
      parked.mrr != nullptr && parked.mrr->extendable() &&
      parked.mrr->base_seed() == options.seed &&
      parked.mrr->model() == options.diffusion &&
      parked.mrr->num_pieces() == static_cast<int>(pieces->size()) &&
      parked.mrr->num_vertices() ==
          pieces->front().graph().num_vertices() &&
      (want_holdout > 0) == (parked.holdout != nullptr) &&
      (parked.holdout == nullptr ||
       (parked.holdout->extendable() &&
        parked.holdout->base_seed() == (options.seed ^ kHoldoutSeedXor) &&
        parked.holdout->model() == options.diffusion &&
        parked.holdout->num_pieces() == parked.mrr->num_pieces() &&
        parked.holdout->num_vertices() == parked.mrr->num_vertices()));
  if (!usable) return nullptr;
  std::shared_ptr<SampleStore> store(new SampleStore());
  store->pieces_ = std::move(pieces);
  store->options_ = options;
  store->options_.theta = parked.mrr->theta();
  store->options_.holdout_theta =
      parked.holdout == nullptr ? 0 : parked.holdout->theta();
  store->shared_ = true;
  {
    MutexLock grow_lock(&store->grow_mu_);
    store->Publish(parked.mrr, parked.holdout);
  }
  // A request past the checkpointed sizes resumes the sample stream
  // (growth is bit-identical to up-front generation); only the delta
  // is sampled. A recovered store that cannot grow that far is useless
  // for this request — discard it and sample afresh.
  const int64_t have_holdout =
      parked.holdout == nullptr ? 0 : parked.holdout->theta();
  if (parked.mrr->theta() < options.theta || have_holdout < want_holdout) {
    if (!store->Grow(std::max(options.theta, want_holdout)).ok()) {
      return nullptr;
    }
  }
  MutexLock lock(&g_registry_mu);
  RecoveryMap().erase(options.source_key);
  ++g_recovered_stores;
  return store;
}

Status SampleStore::OfferRecoveredSnapshot(
    const std::string& source_key,
    std::shared_ptr<const MrrCollection> mrr,
    std::shared_ptr<const MrrCollection> holdout) {
  if (source_key.empty()) {
    return Status::InvalidArgument(
        "recovery snapshots need a non-empty source_key");
  }
  if (mrr == nullptr) {
    return Status::InvalidArgument(
        "recovery snapshot for '" + source_key + "' has no collection");
  }
  MutexLock lock(&g_registry_mu);
  RecoveryMap()[source_key] =
      SampleSnapshot{std::move(mrr), std::move(holdout)};
  return Status::Ok();
}

void SampleStore::ClearRecoveredSnapshots() {
  MutexLock lock(&g_registry_mu);
  RecoveryMap().clear();
}

std::vector<std::shared_ptr<SampleStore>>
SampleStore::RegistryStoresForCheckpoint() {
  MutexLock lock(&g_registry_mu);
  std::vector<std::shared_ptr<SampleStore>> out;
  for (const auto& [key, slot] : Registry()) {
    (void)key;
    std::shared_ptr<SampleStore> live = slot->store.lock();
    if (live != nullptr && !live->options().source_key.empty()) {
      out.push_back(std::move(live));
    }
  }
  return out;
}

/// Out-of-line so the store's private constructor stays private: builds
/// the registered store, including its piece graphs and keep-alives.
std::shared_ptr<SampleStore> MakeStoreForAcquire(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign,
    const SampleStore::Options& options) {
  auto pieces = std::make_shared<const std::vector<InfluenceGraph>>(
      BuildPieceGraphs(*graph, *probs, *campaign));
  std::shared_ptr<SampleStore> store;
  if (!options.source_key.empty()) {
    store = SampleStore::BuildFromRecovered(pieces, options);
  }
  if (store == nullptr) {
    store = SampleStore::Build(std::move(pieces), options, /*shared=*/true);
  }
  // The campaign keep-alive is an owned deep copy, never the caller's
  // pointer: campaigns are keyed by content, so a later Acquire may
  // compare against it after the original (possibly Borrow-aliased,
  // non-owning) object is gone. Graph/probs need no copy — they are
  // keyed by identity, so every sharer passes the same live object.
  store->campaign_keepalive_ = std::make_shared<const Campaign>(*campaign);
  store->graph_keepalive_ = std::move(graph);
  store->probs_keepalive_ = std::move(probs);
  return store;
}

std::shared_ptr<SampleStore> SampleStore::Acquire(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign, const Options& options) {
  OIPA_CHECK(graph != nullptr && probs != nullptr && campaign != nullptr);
  if (FaultInjector::ShouldFail("store.acquire")) return nullptr;
  StoreKey key;
  if (options.source_key.empty()) {
    key.graph = graph.get();
    key.probs = probs.get();
  } else {
    key.source = options.source_key;
  }
  key.campaign_fingerprint = FingerprintCampaign(*campaign);
  key.diffusion = static_cast<int>(options.diffusion);
  key.seed = options.seed;
  const int64_t want_holdout = ResolvedHoldoutTheta(options);
  key.has_holdout = want_holdout > 0;

  std::shared_ptr<RegistrySlot> slot;
  {
    MutexLock lock(&g_registry_mu);
    PruneRegistryLocked();
    auto& entry = Registry()[key];
    if (entry == nullptr) entry = std::make_shared<RegistrySlot>();
    slot = entry;
  }
  // Sampling happens under the slot mutex only: a concurrent Acquire of
  // the same key waits for (and then shares) this pass — including a
  // prefix Grow below, so racing smaller requests see the grown store —
  // while other keys proceed. The published weak_ptr itself lives under
  // g_registry_mu (guard declared on RegistrySlot::store), so the read
  // and the write below take it briefly — map-op-sized critical
  // sections. Lock order here: slot->mu, then (briefly) g_registry_mu
  // or the store's internal grow/snapshot locks; never the reverse.
  MutexLock slot_lock(&slot->mu);
  std::shared_ptr<SampleStore> existing;
  {
    MutexLock registry_lock(&g_registry_mu);
    existing = slot->store.lock();
  }
  if (existing != nullptr) {
    if (!SamePieceTopics(*existing->campaign_keepalive_, *campaign)) {
      // Fingerprint collision between distinct campaigns: never share —
      // fall through to a store that bypasses the occupied slot.
      return MakeStoreForAcquire(std::move(graph), std::move(probs),
                                 std::move(campaign), options);
    }
    // Theta-prefix sharing: a request larger than the live store grows
    // it in place (only the delta is sampled — bit-identical to an
    // up-front generation at the larger size); a smaller or equal
    // request shares as-is, zero new samples.
    const SampleSnapshot snap = existing->snapshot();
    const int64_t have_holdout =
        snap.holdout == nullptr ? 0 : snap.holdout->theta();
    if (snap.mrr->theta() < options.theta || have_holdout < want_holdout) {
      const Status grown =
          existing->Grow(std::max(options.theta, want_holdout));
      if (!grown.ok()) {
        // A registered store that cannot extend (adopted collections
        // without provenance cannot reach this slot, but stay safe):
        // serve the larger request from a private bypass store.
        return MakeStoreForAcquire(std::move(graph), std::move(probs),
                                   std::move(campaign), options);
      }
    }
    return PinStore(std::move(slot), std::move(existing));
  }
  std::shared_ptr<SampleStore> store = MakeStoreForAcquire(
      std::move(graph), std::move(probs), std::move(campaign), options);
  {
    MutexLock registry_lock(&g_registry_mu);
    slot->store = store;
    EnforceBudgetLocked();
  }
  return PinStore(std::move(slot), std::move(store));
}

void SampleStore::SetRegistryBudget(int64_t bytes) {
  MutexLock lock(&g_registry_mu);
  g_budget_bytes = bytes < 0 ? 0 : bytes;
  EnforceBudgetLocked();
}

SampleStore::RegistryStats SampleStore::GetRegistryStats() {
  MutexLock lock(&g_registry_mu);
  PruneRegistryLocked();
  RegistryStats stats;
  stats.budget_bytes = g_budget_bytes;
  stats.evictions = g_evictions;
  stats.recovered_stores = g_recovered_stores;
  for (const auto& [key, slot] : Registry()) {
    (void)key;
    const std::shared_ptr<SampleStore> live = slot->store.lock();
    if (live == nullptr) continue;
    ++stats.live_stores;
    if (slot->pins > 0) ++stats.pinned_stores;
    stats.memory_bytes += live->GetStats().memory_bytes;
  }
  return stats;
}

int SampleStore::RegistrySize() {
  MutexLock lock(&g_registry_mu);
  PruneRegistryLocked();
  int live = 0;
  for (const auto& [key, slot] : Registry()) {
    (void)key;
    if (!slot->store.expired()) ++live;
  }
  return live;
}

// ---------------------------------------------------- snapshot + grow

void SampleStore::Publish(std::shared_ptr<const MrrCollection> mrr,
                          std::shared_ptr<const MrrCollection> holdout) {
  {
    MutexLock lock(&history_mu_);
    // A republished (unchanged) collection must not appear twice —
    // live_generations()/GetStats() count history entries.
    if (mrr_history_.empty() || mrr_history_.back().lock() != mrr) {
      mrr_history_.push_back(mrr);
    }
    if (holdout != nullptr &&
        (holdout_history_.empty() ||
         holdout_history_.back().lock() != holdout)) {
      holdout_history_.push_back(holdout);
    }
  }
  auto next = std::make_shared<const SampleSnapshot>(
      SampleSnapshot{std::move(mrr), std::move(holdout)});
  MutexLock lock(&snapshot_mu_);
  current_ = std::move(next);
}

SampleSnapshot SampleStore::snapshot() const {
  std::shared_ptr<const SampleSnapshot> current;
  {
    MutexLock lock(&snapshot_mu_);
    current = current_;
  }
  return *current;
}

bool SampleStore::CanGrow() const {
  if (pieces_ == nullptr) return false;
  const SampleSnapshot snap = snapshot();
  return snap.mrr->extendable() &&
         (snap.holdout == nullptr || snap.holdout->extendable());
}

Status SampleStore::Grow(int64_t target_theta) {
  if (target_theta < 1) {
    return Status::InvalidArgument("Grow target must be >= 1");
  }
  if (FaultInjector::ShouldFail("store.grow")) {
    return InjectedFault("store.grow");
  }
  // Growers serialize for the whole sampling phase; the snapshot read
  // below therefore stays current until the Publish.
  MutexLock grow_lock(&grow_mu_);
  const SampleSnapshot current = snapshot();
  const bool mrr_below = current.mrr->theta() < target_theta;
  const bool holdout_below = current.holdout != nullptr &&
                             current.holdout->theta() < target_theta;
  if (!mrr_below && !holdout_below) return Status::Ok();
  if (pieces_ == nullptr || !current.mrr->extendable() ||
      (current.holdout != nullptr && !current.holdout->extendable())) {
    return Status::FailedPrecondition(
        "store samples lack sampling provenance and cannot grow "
        "(collections loaded via legacy FromParts are not extendable)");
  }
  // Copy-on-grow: extend copies, then publish them as the next
  // generation. The superseded generation is only pinned by whatever
  // snapshots are still outstanding — once the last one drops, it is
  // freed (compaction), which live_generations() observes. A collection
  // already at target (a holdout catching up to a larger in-sample
  // stream, or vice versa) is republished untouched.
  std::shared_ptr<const MrrCollection> grown = current.mrr;
  if (mrr_below) {
    auto g = std::make_shared<MrrCollection>(*current.mrr);
    g->Extend(*pieces_, target_theta, options_.sampling_threads);
    grown = std::move(g);
  }
  std::shared_ptr<const MrrCollection> grown_holdout = current.holdout;
  if (holdout_below) {
    auto h = std::make_shared<MrrCollection>(*current.holdout);
    h->Extend(*pieces_, target_theta, options_.sampling_threads);
    grown_holdout = std::move(h);
  }
  Publish(std::move(grown), std::move(grown_holdout));
  return Status::Ok();
}

int SampleStore::live_generations() const {
  MutexLock lock(&history_mu_);
  auto expired = [](const std::weak_ptr<const MrrCollection>& w) {
    return w.expired();
  };
  mrr_history_.erase(
      std::remove_if(mrr_history_.begin(), mrr_history_.end(), expired),
      mrr_history_.end());
  holdout_history_.erase(std::remove_if(holdout_history_.begin(),
                                        holdout_history_.end(), expired),
                         holdout_history_.end());
  return static_cast<int>(mrr_history_.size());
}

SampleStore::Stats SampleStore::GetStats() const {
  Stats stats;
  const SampleSnapshot snap = snapshot();
  stats.theta = snap.mrr->theta();
  stats.holdout_theta =
      snap.holdout == nullptr ? 0 : snap.holdout->theta();
  stats.shared = shared_;
  // One locked pass over the history so the generation count and the
  // memory sum describe the same instant.
  MutexLock lock(&history_mu_);
  for (const auto* history : {&mrr_history_, &holdout_history_}) {
    for (const auto& weak : *history) {
      if (const auto live = weak.lock()) {
        stats.memory_bytes += live->MemoryBytes();
        if (history == &mrr_history_) ++stats.live_generations;
      }
    }
  }
  return stats;
}

// ----------------------------------------------------- stopping rules

namespace {

/// Shared statistic of both rules: relative disagreement between the
/// optimizer's in-sample estimate and the unbiased holdout estimate
/// (mirrors AdaptiveTheta's convergence test).
double SamplingGap(const StoppingInputs& in) {
  const double scale =
      std::max(1e-9, std::max(in.utility, in.holdout_utility));
  return std::fabs(in.utility - in.holdout_utility) / scale;
}

class HoldoutGapRule final : public StoppingRule {
 public:
  std::string_view name() const override { return "holdout"; }

  StoppingVerdict Evaluate(const StoppingInputs& in) const override {
    StoppingVerdict verdict;
    verdict.sampling_gap = SamplingGap(in);
    verdict.satisfied = verdict.sampling_gap <= in.epsilon;
    return verdict;
  }
};

/// OPIM-C-style online bound pair (Tang et al., SIGMOD'18), adapted to
/// MRR adoption estimates. Per-sample scores f(#covered pieces) lie in
/// [0, 1], so a utility u over a collection of size theta corresponds
/// to a score mass Lambda = u * theta / n and Chernoff bounds for
/// [0,1]-valued sums apply:
///
///   lower(S)   = ((sqrt(Lv + 2a/9) - sqrt(a/2))^2 - a/18) * n / theta_v
///   upper(OPT) = ((sqrt(Lu + a/2) + sqrt(a/2))^2)         * n / theta_u
///
/// with a = ln(2 * max_rounds / delta) (union-bounded over the
/// adaptive loop), Lv the holdout score mass of the solved plan
/// and Lu the in-sample score-mass *bound* on the optimum (the BAB
/// family's reported upper bound; solvers without bounds contribute
/// their own estimate, making the ratio a self-certification). The
/// solve stops once lower/upper reaches (1 - 1/e - epsilon) — the
/// paper's ε-guarantee certified online, without holdout re-solves.
class OpimBoundsRule final : public StoppingRule {
 public:
  std::string_view name() const override { return "opim"; }

  StoppingVerdict Evaluate(const StoppingInputs& in) const override {
    StoppingVerdict verdict;
    verdict.sampling_gap = SamplingGap(in);
    if (in.num_vertices <= 0 || in.theta <= 0 || in.holdout_theta <= 0) {
      return verdict;  // no certification possible; keep growing
    }
    const double n = static_cast<double>(in.num_vertices);
    // Union-bound the failure probability across the whole adaptive
    // loop (OPIM-C divides delta across rounds for the same reason):
    // theta doubles each round so there are at most 63 rounds, and each
    // round evaluates two bounds. The certificate therefore holds at
    // confidence 1 - kDelta for the *first* round that satisfies it,
    // not merely per evaluation.
    constexpr double kMaxRounds = 63.0;
    const double a = std::log(2.0 * kMaxRounds / kDelta);
    const double lambda_v =
        in.holdout_utility * static_cast<double>(in.holdout_theta) / n;
    const double lambda_u = std::max(in.utility, in.upper_bound) *
                            static_cast<double>(in.theta) / n;
    const double sqrt_lower =
        std::sqrt(lambda_v + 2.0 * a / 9.0) - std::sqrt(a / 2.0);
    const double lower =
        std::max(0.0, (sqrt_lower * sqrt_lower - a / 18.0) * n /
                          static_cast<double>(in.holdout_theta));
    const double sqrt_upper = std::sqrt(lambda_u + a / 2.0) +
                              std::sqrt(a / 2.0);
    const double upper =
        sqrt_upper * sqrt_upper * n / static_cast<double>(in.theta);
    if (upper <= 0.0) return verdict;
    verdict.certified_ratio = std::min(1.0, lower / upper);
    verdict.satisfied =
        verdict.certified_ratio >= 1.0 - 1.0 / kE - in.epsilon;
    return verdict;
  }

 private:
  /// Overall failure probability of the certificate, union-bounded
  /// over every bound evaluation the progressive loop can make.
  static constexpr double kDelta = 0.01;
  static constexpr double kE = 2.718281828459045;
};

}  // namespace

const StoppingRule& GetStoppingRule(StoppingRuleKind kind) {
  static const HoldoutGapRule holdout_rule;
  static const OpimBoundsRule opim_rule;
  switch (kind) {
    case StoppingRuleKind::kOpimBounds:
      return opim_rule;
    case StoppingRuleKind::kHoldoutGap:
    default:
      return holdout_rule;
  }
}

StatusOr<StoppingRuleKind> ParseStoppingRule(const std::string& name) {
  if (name == "holdout") return StoppingRuleKind::kHoldoutGap;
  if (name == "opim") return StoppingRuleKind::kOpimBounds;
  return Status::InvalidArgument("unknown stopping rule '" + name +
                                 "' (expected holdout|opim)");
}

}  // namespace oipa
