#ifndef OIPA_RRSET_SAMPLE_STORE_H_
#define OIPA_RRSET_SAMPLE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/threading.h"

namespace oipa {

/// One published generation of a SampleStore: the in-sample MRR
/// collection plus the (optional) holdout. Snapshots are value types —
/// copying one is two shared_ptr bumps — and pin their generation: the
/// collections stay valid for as long as any snapshot referencing them
/// is alive, even after the store grows past them. Take one snapshot per
/// solve and read it throughout; re-snapshot to see newer samples.
struct SampleSnapshot {
  std::shared_ptr<const MrrCollection> mrr;
  /// Null when the store was built without a holdout.
  std::shared_ptr<const MrrCollection> holdout;
};

/// A reference-counted, generation-published MRR sample store — the
/// sampling half of a planning configuration, pulled out of
/// PlanningContext so that
///
///  (a) superseded generations are *compacted*: growth publishes a new
///      SampleSnapshot and drops the store's reference to the old one,
///      so a retired generation is freed the moment the last outstanding
///      reader snapshot goes away (live_generations() observes this),
///  (b) stores can be *shared* across contexts: MRR samples depend only
///      on (graph, probabilities, campaign pieces, diffusion model,
///      seed) — not on the logistic adoption model — so N contexts that
///      differ only in alpha/beta resolve to one store and one sampling
///      pass through the process-wide keyed registry behind Acquire().
///
/// Concurrency: snapshot() is a pointer copy under a micro-mutex —
/// readers never wait on sample generation, not even while a grower is
/// sampling. Grow() serializes growers on a separate mutex, samples
/// outside any reader-visible lock, and publishes by swapping the
/// current snapshot pointer. (The publication slot would be a
/// std::atomic<std::shared_ptr> swap, but libstdc++'s lock-bit
/// implementation trips ThreadSanitizer, which CI runs — the mutex
/// keeps the same no-reader-waits property with a few-ns critical
/// section.) All methods are safe to call from any thread.
///
/// Sharing semantics: a store acquired by several contexts has one
/// sample stream. A Grow() issued through one context (e.g. its
/// progressive ε-loop) is visible to the others' *next* snapshot —
/// their in-flight solves keep reading the generation they pinned.
/// Because growth is bit-identical to up-front generation
/// (MrrCollection::Extend), the shared samples are always a valid
/// prefix-extension of what any sharer originally requested.
class SampleStore {
 public:
  /// Sampling configuration of a store; mirrors the sampling slice of
  /// ContextOptions.
  struct Options {
    int64_t theta = 100'000;
    /// -1 draws `theta` holdout samples, 0 skips the holdout.
    int64_t holdout_theta = -1;
    uint64_t seed = 1;
    DiffusionModel diffusion = DiffusionModel::kIndependentCascade;
    /// Worker threads for sample generation and growth (0 = the
    /// GetNumThreads() default, N > 0 = exactly N workers). Samples
    /// are bit-identical at any thread count (PerSampleSeed), so this
    /// is deliberately NOT part of the Acquire() registry key — two
    /// requests differing only in sampling_threads share one store
    /// (the first acquirer's setting generates; growth uses the
    /// store's stored value).
    int sampling_threads = 0;
    /// When non-empty, the Acquire() registry keys graph and probs by
    /// this string instead of by object identity. Callers that rebuild
    /// bit-identical inputs from a deterministic recipe (the serve
    /// daemon's dataset specs) use this so a rebuilt context re-hits a
    /// store retained under SetRegistryBudget() — identity keying can
    /// never match a fresh object. The caller asserts that equal
    /// source_keys imply equal graph/probs content; unequal content
    /// under one key would silently serve one dataset's samples to
    /// another.
    std::string source_key;
  };

  /// One row of store telemetry (surfaced in oipa_cli JSON output).
  struct Stats {
    int64_t theta = 0;
    /// 0 when the store has no holdout.
    int64_t holdout_theta = 0;
    /// Bytes held by every still-live generation (in-sample + holdout).
    int64_t memory_bytes = 0;
    /// In-sample generations still alive (current + pinned retired).
    int live_generations = 0;
    /// True when the store came out of the Acquire() registry.
    bool shared = false;
  };

  /// Generates a private (unregistered) store over `pieces`.
  /// `pieces` must be non-null and non-empty and must outlive the store
  /// (they alias the social graph; see BuildPieceGraphs).
  static std::shared_ptr<SampleStore> Create(
      std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
      const Options& options);

  /// Wraps pre-built collections (BorrowWithSamples, snapshot loads)
  /// in a private store. `holdout` may be null. The store can grow iff
  /// the collections carry sampling provenance and `pieces` is non-null.
  static std::shared_ptr<SampleStore> Adopt(
      std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
      std::shared_ptr<const MrrCollection> mrr,
      std::shared_ptr<const MrrCollection> holdout);

  /// Process-wide keyed registry: returns the live store already
  /// serving (graph, probs, campaign pieces, diffusion, seed,
  /// has-holdout) — keyed by graph/probs identity and campaign piece
  /// content — or creates, registers, and returns a new one. Concurrent
  /// Acquires of the same key serialize so exactly one sampling pass
  /// happens; different keys sample concurrently.
  ///
  /// Theta-prefix sharing: theta is deliberately NOT part of the key.
  /// Because growth is bit-identical to up-front generation, a live
  /// store at theta T strictly contains every same-key request with
  /// theta <= T (it is served as-is, zero new samples), and a request
  /// with theta > T grows the store in place — only the delta is
  /// sampled. Callers therefore observe upward theta drift, which is
  /// the documented sharing contract (see the class comment).
  ///
  /// Pinning and eviction: the returned handle pins the store in the
  /// registry for the handle's lifetime (a pinned store is never
  /// evicted). With a nonzero SetRegistryBudget(), the registry
  /// additionally retains unpinned stores — a later Acquire of the same
  /// key is a cache hit with zero sampling — and evicts the
  /// least-recently-used unpinned store whenever the summed
  /// MemoryBytes() of live registered stores exceeds the budget. With
  /// the default budget of 0 nothing is retained: a store dies with its
  /// last handle and a later Acquire samples afresh (the pre-budget
  /// behavior). Retention keeps the store's graph/probs keep-alives
  /// reachable past the last context, so only Create-style contexts
  /// whose inputs are genuinely shared_ptr-owned (the serve daemon's)
  /// should run with a nonzero budget — Borrow-built contexts pass
  /// non-owning handles whose referents may die with the caller.
  ///
  /// Fault injection: returns null when the "store.acquire" site fires
  /// (util/fault_injector.h). Callers on fallible paths must treat a
  /// null handle as a transient internal error; with the injector
  /// disabled (production) Acquire never returns null.
  static std::shared_ptr<SampleStore> Acquire(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign, const Options& options);

  /// Crash-recovery seam: parks a loaded snapshot (LoadSampleStore)
  /// under `source_key` so the *next* source-keyed Acquire of that key
  /// resumes the persisted sample stream instead of sampling from
  /// scratch. The snapshot is consumed lazily, on first matching
  /// Acquire, and only when its provenance matches the request (seed,
  /// diffusion model, holdout presence, piece count, vertex count,
  /// extendable) — a mismatch falls back to fresh generation, so a
  /// stale or foreign checkpoint can degrade only to the cold-start
  /// cost, never to wrong samples. `holdout` may be null. Re-offering a
  /// key replaces the parked snapshot.
  static Status OfferRecoveredSnapshot(
      const std::string& source_key,
      std::shared_ptr<const MrrCollection> mrr,
      std::shared_ptr<const MrrCollection> holdout);

  /// Drops every parked (not-yet-consumed) recovery snapshot.
  static void ClearRecoveredSnapshots();

  /// Registered live stores that carry a source_key — the stores a
  /// serving checkpointer can persist and later recover by key. The
  /// returned references keep the stores alive but do not pin them
  /// (eviction bookkeeping is untouched).
  static std::vector<std::shared_ptr<SampleStore>>
  RegistryStoresForCheckpoint();

  /// Number of live registered stores (test/diagnostic hook; prunes
  /// dead registry entries as a side effect).
  static int RegistrySize();

  /// Registry-wide byte budget over the summed MemoryBytes() of live
  /// registered stores. 0 (default) disables retention entirely;
  /// negative values clamp to 0. Lowering the budget evicts immediately.
  static void SetRegistryBudget(int64_t bytes);

  /// Registry telemetry (surfaced per-response by oipa_serve).
  struct RegistryStats {
    /// Registered stores still alive (pinned or retained).
    int live_stores = 0;
    /// Live stores currently pinned by at least one handle.
    int pinned_stores = 0;
    /// Summed MemoryBytes() over every live registered store.
    int64_t memory_bytes = 0;
    /// Current SetRegistryBudget() value (0 = no retention).
    int64_t budget_bytes = 0;
    /// Stores evicted under memory pressure since process start.
    int64_t evictions = 0;
    /// Acquires satisfied from a recovered (checkpointed) snapshot
    /// since process start — each one resumed a persisted sample
    /// stream with zero regenerated samples.
    int64_t recovered_stores = 0;
  };
  static RegistryStats GetRegistryStats();

  /// The current generation; never blocks on growers (the critical
  /// section is one shared_ptr copy).
  SampleSnapshot snapshot() const;

  /// Current in-sample theta (== snapshot().mrr->theta()).
  int64_t theta() const { return snapshot().mrr->theta(); }
  bool has_holdout() const { return snapshot().holdout != nullptr; }

  /// True when Grow() can extend the store: the collections carry
  /// sampling provenance and the store knows its piece graphs.
  bool CanGrow() const;

  /// Grows the in-sample collection (and the holdout, when present) to
  /// at least `target_theta` samples, bit-identically to collections
  /// generated at that size up front, and publishes the result as a new
  /// generation. No-op when already that large. Thread-safe: growers
  /// serialize, readers keep their pinned snapshots. FailedPrecondition
  /// when CanGrow() is false, InvalidArgument for target_theta < 1.
  Status Grow(int64_t target_theta);

  /// In-sample generations still alive: the current one plus any
  /// retired generation pinned by an outstanding snapshot. With no
  /// outstanding readers this is exactly 1, however often the store
  /// grew — retired generations are compacted, not accumulated.
  int live_generations() const;

  Stats GetStats() const;

  const std::shared_ptr<const std::vector<InfluenceGraph>>& pieces()
      const {
    return pieces_;
  }
  const Options& options() const { return options_; }
  /// True when the store was handed out by Acquire().
  bool shared() const { return shared_; }

  SampleStore(const SampleStore&) = delete;
  SampleStore& operator=(const SampleStore&) = delete;

 private:
  SampleStore() = default;

  static std::shared_ptr<SampleStore> Build(
      std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
      const Options& options, bool shared);

  /// Consumes a parked recovery snapshot for options.source_key, or
  /// returns null when none is parked or the provenance does not match
  /// (see OfferRecoveredSnapshot).
  static std::shared_ptr<SampleStore> BuildFromRecovered(
      std::shared_ptr<const std::vector<InfluenceGraph>> pieces,
      const Options& options);

  /// Swaps in a new generation and records it for live_generations().
  /// Publication is serialized by the grower lock (the construction
  /// paths take it too, so every generation swap is ordered).
  void Publish(std::shared_ptr<const MrrCollection> mrr,
               std::shared_ptr<const MrrCollection> holdout)
      OIPA_REQUIRES(grow_mu_);

  std::shared_ptr<const std::vector<InfluenceGraph>> pieces_;
  Options options_;
  bool shared_ = false;
  /// Keep-alives for registry-shared stores. Graph/probs hold the
  /// acquirer's handles (identity-keyed; non-owning for Borrow-built
  /// contexts, whose lifetime contract covers them). The campaign is
  /// an owned deep copy: it is content-keyed and later Acquires
  /// compare against it, possibly after every original object died.
  std::shared_ptr<const Graph> graph_keepalive_;
  std::shared_ptr<const EdgeTopicProbs> probs_keepalive_;
  std::shared_ptr<const Campaign> campaign_keepalive_;

  /// Serializes growers for the whole (expensive) sampling phase.
  /// Lock order within a store: grow_mu_ first, then snapshot_mu_ /
  /// history_mu_ (both taken briefly inside Publish); the two
  /// micro-mutexes are never held together with each other.
  Mutex grow_mu_;
  /// Guards only the `current_` pointer itself (see class comment) —
  /// sampling never happens under it.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const SampleSnapshot> current_
      OIPA_GUARDED_BY(snapshot_mu_);
  /// Every generation ever published, weakly: expired entries are
  /// pruned on read, so the vectors stay as small as the number of
  /// generations actually still pinned.
  mutable Mutex history_mu_;
  mutable std::vector<std::weak_ptr<const MrrCollection>> mrr_history_
      OIPA_GUARDED_BY(history_mu_);
  mutable std::vector<std::weak_ptr<const MrrCollection>> holdout_history_
      OIPA_GUARDED_BY(history_mu_);

  friend std::shared_ptr<SampleStore> MakeStoreForAcquire(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign,
      const SampleStore::Options& options);
};

// ------------------------------------------------------ stopping rules

/// Which rule decides when the progressive (ε)-loop may stop growing
/// the sample store (PlanRequest::stopping).
enum class StoppingRuleKind {
  /// Stop when the solved plan's in-sample and holdout utility
  /// estimates agree within epsilon (relative) — the pre-OPIM rule.
  kHoldoutGap,
  /// OPIM-style online bound pair: stop when a Chernoff lower bound on
  /// the plan's holdout utility divided by a Chernoff upper bound on
  /// the optimum (from the solver's in-sample upper bound) certifies a
  /// (1 - 1/e - epsilon)-style ratio. No extra solves — both bounds
  /// come from quantities the solve already produced.
  kOpimBounds,
};

/// Everything a stopping rule may look at, gathered from one solve
/// against one pinned snapshot.
struct StoppingInputs {
  /// In-sample utility estimate of the solved plan.
  double utility = 0.0;
  /// Solver's in-sample upper bound on the optimum (== utility for
  /// solvers without bounds; the BAB family reports a true bound).
  double upper_bound = 0.0;
  /// Holdout utility estimate of the solved plan.
  double holdout_utility = 0.0;
  /// Sizes of the collections the estimates were computed on.
  int64_t theta = 0;
  int64_t holdout_theta = 0;
  VertexId num_vertices = 0;
  /// The request's tolerance (PlanRequest::epsilon).
  double epsilon = 0.0;
};

/// A rule's verdict on one solve round.
struct StoppingVerdict {
  /// Relative in-sample/holdout disagreement (reported for every rule).
  double sampling_gap = 0.0;
  /// Certified lower(plan)/upper(OPT) ratio; 0 under kHoldoutGap.
  double certified_ratio = 0.0;
  /// True when the rule's tolerance is met and growth may stop.
  bool satisfied = false;
};

/// Stateless stopping-rule strategy. Implementations must be safe to
/// call concurrently.
class StoppingRule {
 public:
  virtual ~StoppingRule() = default;
  virtual std::string_view name() const = 0;
  virtual StoppingVerdict Evaluate(const StoppingInputs& inputs) const = 0;
};

/// The process-wide rule instance for `kind` (rules are stateless).
const StoppingRule& GetStoppingRule(StoppingRuleKind kind);

/// Maps a rule name ("holdout" | "opim") to its kind (CLI parsing).
StatusOr<StoppingRuleKind> ParseStoppingRule(const std::string& name);

}  // namespace oipa

#endif  // OIPA_RRSET_SAMPLE_STORE_H_
