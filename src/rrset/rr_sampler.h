#ifndef OIPA_RRSET_RR_SAMPLER_H_
#define OIPA_RRSET_RR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {

/// Generates single random reverse-reachable (RR) sets under the IC model.
/// An RR set for root x contains every vertex that reaches x in a randomly
/// sampled live-edge world; a seed set S activates x with probability
/// P[S intersects RR(x)] (Borgs et al.).
///
/// The sampler is reusable: it keeps an epoch-stamped visited array sized
/// to the graph so repeated calls do not reallocate or clear.
class RrSampler {
 public:
  explicit RrSampler(VertexId num_vertices);

  /// Samples the RR set of `root` on `ig`, appending members (root
  /// included) to `out` (cleared first). Edge (u -> v) is considered live
  /// with probability ig.EdgeProb(e) — evaluated lazily during the reverse
  /// BFS, which is equivalent to sampling the world up front.
  void Sample(const InfluenceGraph& ig, VertexId root, Rng* rng,
              std::vector<VertexId>* out);

 private:
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> queue_;
};

/// Derives the deterministic per-sample RNG seed used by the collection
/// generators: depends only on (base_seed, sample_index, piece), so results
/// are reproducible regardless of thread count.
uint64_t PerSampleSeed(uint64_t base_seed, int64_t sample, int piece);

}  // namespace oipa

#endif  // OIPA_RRSET_RR_SAMPLER_H_
