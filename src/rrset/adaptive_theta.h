#ifndef OIPA_RRSET_ADAPTIVE_THETA_H_
#define OIPA_RRSET_ADAPTIVE_THETA_H_

#include <cstdint>

#include "rrset/mrr_collection.h"
#include "topic/influence_graph.h"

namespace oipa {

/// Options for adaptive MRR sample-size selection.
struct AdaptiveThetaOptions {
  /// Initial sample count; doubles each round.
  int64_t initial_theta = 2'000;
  /// Hard cap.
  int64_t max_theta = 2'000'000;
  /// Convergence test: two independent half-collections must agree on a
  /// probe plan's estimated utility within this relative tolerance.
  double relative_tolerance = 0.05;
  /// Probe budget: the utility probe is a greedy plan of this many
  /// assignments built on one half.
  int probe_budget = 10;
  /// Values of f(1..l) are taken from this logistic model.
  double alpha = 2.0;
  double beta = 1.0;
  uint64_t seed = 1;
};

struct AdaptiveThetaResult {
  int64_t theta = 0;
  /// Relative disagreement achieved at the chosen theta.
  double achieved_disagreement = 0.0;
  /// Rounds of doubling performed.
  int rounds = 0;
};

/// Practical theta selection for OIPA (a convenience the paper leaves to
/// "a large theta"): doubles theta until two INDEPENDENT MRR collections
/// of that size agree on the utility of a non-trivial probe plan within
/// `relative_tolerance`. The probe plan is built greedily on the first
/// collection, so the check also captures the optimizer's overfitting
/// exposure at that sample size, not just estimator variance.
AdaptiveThetaResult ChooseTheta(
    const std::vector<InfluenceGraph>& piece_graphs,
    const std::vector<VertexId>& promoter_pool,
    const AdaptiveThetaOptions& options);

}  // namespace oipa

#endif  // OIPA_RRSET_ADAPTIVE_THETA_H_
