#ifndef OIPA_RRSET_ADAPTIVE_THETA_H_
#define OIPA_RRSET_ADAPTIVE_THETA_H_

#include <cstdint>

#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/influence_graph.h"

namespace oipa {

/// Options for adaptive MRR sample-size selection.
struct AdaptiveThetaOptions {
  /// Initial sample count; doubles each round.
  int64_t initial_theta = 2'000;
  /// Hard cap.
  int64_t max_theta = 2'000'000;
  /// Convergence test: two independent half-collections must agree on a
  /// probe plan's estimated utility within this relative tolerance.
  double relative_tolerance = 0.05;
  /// Probe budget: the utility probe is a greedy plan of this many
  /// assignments built on one half.
  int probe_budget = 10;
  /// The adoption curve the solver will actually optimize: f(1..l) is
  /// taken from model.AdoptionTable(), so the chosen theta reflects the
  /// variance of the real objective, not a hardcoded surrogate.
  LogisticAdoptionModel model{2.0, 1.0};
  /// Diffusion model the collections are sampled under (must match the
  /// solver's ContextOptions::diffusion).
  DiffusionModel diffusion = DiffusionModel::kIndependentCascade;
  uint64_t seed = 1;
};

struct AdaptiveThetaResult {
  int64_t theta = 0;
  /// Relative disagreement achieved at the chosen theta.
  double achieved_disagreement = 0.0;
  /// Rounds of doubling performed.
  int rounds = 0;
  /// MRR samples drawn across the whole search: exactly 2 * theta (one
  /// train + one test collection, each grown in place) — every sample is
  /// generated at most once per collection, never regenerated between
  /// rounds.
  int64_t total_samples_generated = 0;
};

/// Practical theta selection for OIPA (a convenience the paper leaves to
/// "a large theta"): doubles theta until two INDEPENDENT MRR collections
/// of that size agree on the utility of a non-trivial probe plan within
/// `relative_tolerance`. The probe plan is built greedily on the first
/// collection, so the check also captures the optimizer's overfitting
/// exposure at that sample size, not just estimator variance.
///
/// The two collections are generated once at `initial_theta` and grown
/// in place (MrrCollection::Extend) every round, with the coverage
/// states rebound incrementally — per-round cost is O(new samples), and
/// the per-round estimates are bit-identical to regenerating both
/// collections from scratch at each size (per-sample seeding).
AdaptiveThetaResult ChooseTheta(
    const std::vector<InfluenceGraph>& piece_graphs,
    const std::vector<VertexId>& promoter_pool,
    const AdaptiveThetaOptions& options);

}  // namespace oipa

#endif  // OIPA_RRSET_ADAPTIVE_THETA_H_
