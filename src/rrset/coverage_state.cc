#include "rrset/coverage_state.h"

#include <algorithm>

#include "rrset/coverage_kernels.h"
#include "util/logging.h"

namespace oipa {

CoverageState::CoverageState(const MrrCollection* mrr,
                             std::vector<double> f_by_count)
    : mrr_(mrr),
      num_pieces_(mrr->num_pieces()),
      f_by_count_(std::move(f_by_count)) {
  OIPA_CHECK_EQ(static_cast<int>(f_by_count_.size()), num_pieces_ + 1);
  // One zero pad entry at index l keeps the kernels' unmasked gathers
  // in bounds for fully covered samples (see the header).
  delta_f_.assign(num_pieces_ + 1, 0.0);
  for (int c = 0; c < num_pieces_; ++c) {
    delta_f_[c] = f_by_count_[c + 1] - f_by_count_[c];
  }
  delta_f_sufmax_.assign(num_pieces_ + 1, 0.0);
  double running = 0.0;
  for (int c = num_pieces_ - 1; c >= 0; --c) {
    running = c == num_pieces_ - 1 ? delta_f_[c]
                                   : std::max(delta_f_[c], running);
    delta_f_sufmax_[c] = running;
  }
  multiplicity_.resize(num_pieces_);
  for (auto& row : multiplicity_) row.assign(mrr_->theta(), 0);
  cover_count_.assign(mrr_->theta(), 0);
  count_hist_.assign(num_pieces_ + 1, 0);
  count_hist_[0] = mrr_->theta();
}

void CoverageState::CheckSynced() const {
  OIPA_CHECK_EQ(static_cast<int64_t>(cover_count_.size()), mrr_->theta())
      << "collection grew; call ExtendToCollection() first";
}

void CoverageState::AddSeed(VertexId v, int piece) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces_);
  CheckSynced();
  const bool journal = journaling();
  std::vector<uint16_t>& row = multiplicity_[piece];
  mrr_->ForEachSampleContaining(piece, v, [&](int64_t i) {
    uint16_t& mult = row[i];
    OIPA_CHECK_LT(mult, UINT16_MAX);
    if (journal) journal_.push_back({i, piece, +1});
    if (mult++ == 0) {
      const int c = cover_count_[i]++;
      sum_f_ += delta_f_[c];
      --count_hist_[c];
      ++count_hist_[c + 1];
      if (c == 0) touched_.push_back(i);
    }
  });
}

void CoverageState::RemoveSeed(VertexId v, int piece) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces_);
  CheckSynced();
  const bool journal = journaling();
  std::vector<uint16_t>& row = multiplicity_[piece];
  mrr_->ForEachSampleContaining(piece, v, [&](int64_t i) {
    uint16_t& mult = row[i];
    OIPA_CHECK_GT(mult, 0) << "RemoveSeed without matching AddSeed";
    if (journal) journal_.push_back({i, piece, -1});
    if (--mult == 0) {
      const int c = cover_count_[i]--;
      sum_f_ -= delta_f_[c - 1];
      --count_hist_[c];
      ++count_hist_[c - 1];
    }
  });
}

void CoverageState::ExtendToCollection(
    const std::vector<std::pair<int, VertexId>>& applied) {
  OIPA_CHECK(!journaling())
      << "ExtendToCollection() inside an open Snapshot";
  const int64_t old_theta = static_cast<int64_t>(cover_count_.size());
  const int64_t new_theta = mrr_->theta();
  OIPA_CHECK_GE(new_theta, old_theta);
  if (new_theta == old_theta) return;
  for (auto& row : multiplicity_) row.resize(new_theta, 0);
  cover_count_.resize(new_theta, 0);
  count_hist_[0] += new_theta - old_theta;
  // Bind the active seeds to the appended samples only; samples below
  // old_theta already carry them.
  for (const auto& [piece, v] : applied) {
    OIPA_CHECK_GE(piece, 0);
    OIPA_CHECK_LT(piece, num_pieces_);
    std::vector<uint16_t>& row = multiplicity_[piece];
    mrr_->ForEachSampleContaining(
        piece, v,
        [&](int64_t i) {
          uint16_t& mult = row[i];
          OIPA_CHECK_LT(mult, UINT16_MAX);
          if (mult++ == 0) {
            const int c = cover_count_[i]++;
            sum_f_ += delta_f_[c];
            --count_hist_[c];
            ++count_hist_[c + 1];
            if (c == 0) touched_.push_back(i);
          }
        },
        /*min_sample=*/old_theta);
  }
}

void CoverageState::Clear() {
  OIPA_CHECK(!journaling()) << "Clear() inside an open Snapshot";
  // touched_ may contain duplicates and samples whose count has already
  // returned to zero; both are harmless to re-clear.
  for (int64_t i : touched_) {
    cover_count_[i] = 0;
    for (int j = 0; j < num_pieces_; ++j) multiplicity_[j][i] = 0;
  }
  touched_.clear();
  sum_f_ = 0.0;
  std::fill(count_hist_.begin(), count_hist_.end(), 0);
  // The bound theta, not mrr_->theta(): the collection may have grown
  // since the last ExtendToCollection.
  count_hist_[0] = static_cast<int64_t>(cover_count_.size());
}

void CoverageState::Snapshot() { marks_.push_back(journal_.size()); }

void CoverageState::Restore() {
  OIPA_CHECK(!marks_.empty()) << "Restore() without an open Snapshot";
  const size_t mark = marks_.back();
  marks_.pop_back();
  // Undo in reverse journal order: at each step the state is exactly
  // what it was right after that entry was applied, so the inverse
  // per-sample step is always legal — any interleaving of adds and
  // removes inside the scope (including add-then-remove of the same
  // seed) rewinds cleanly.
  for (size_t k = journal_.size(); k-- > mark;) {
    const JournalEntry& entry = journal_[k];
    uint16_t& mult = multiplicity_[entry.piece][entry.sample];
    if (entry.delta > 0) {
      OIPA_CHECK_GT(mult, 0);
      if (--mult == 0) {
        const int c = cover_count_[entry.sample]--;
        sum_f_ -= delta_f_[c - 1];
        --count_hist_[c];
        ++count_hist_[c - 1];
      }
    } else {
      if (mult++ == 0) {
        const int c = cover_count_[entry.sample]++;
        sum_f_ += delta_f_[c];
        --count_hist_[c];
        ++count_hist_[c + 1];
        if (c == 0) touched_.push_back(entry.sample);
      }
    }
  }
  journal_.resize(mark);
}

double CoverageState::GainOfAdding(VertexId v, int piece) const {
  CheckSynced();
  // The accumulator threads through the segment spans so the reduction
  // order matches the historical per-posting loop exactly — a grown
  // (multi-segment) collection sums bit-identically to a fresh one.
  double gain = 0.0;
  const uint16_t* mult = multiplicity_[piece].data();
  const uint8_t* counts = cover_count_.data();
  mrr_->ForEachSampleSpan(piece, v, [&](std::span<const int64_t> ids) {
    gain = CoverageGainSum(ids, mult, counts, delta_f_.data(), gain);
  });
  return gain * mrr_->UtilityScale();
}

std::pair<double, double> CoverageState::GainAndBoundOfAdding(
    VertexId v, int piece) const {
  CheckSynced();
  double gain = 0.0;
  double bound = 0.0;
  const uint16_t* mult = multiplicity_[piece].data();
  const uint8_t* counts = cover_count_.data();
  mrr_->ForEachSampleSpan(piece, v, [&](std::span<const int64_t> ids) {
    CoverageGainBoundSum(ids, mult, counts, delta_f_.data(),
                         delta_f_sufmax_.data(), &gain, &bound);
  });
  const double scale = mrr_->UtilityScale();
  return {gain * scale, bound * scale};
}

}  // namespace oipa
