#include "rrset/coverage_state.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

CoverageState::CoverageState(const MrrCollection* mrr,
                             std::vector<double> f_by_count)
    : mrr_(mrr),
      num_pieces_(mrr->num_pieces()),
      f_by_count_(std::move(f_by_count)) {
  OIPA_CHECK_EQ(static_cast<int>(f_by_count_.size()), num_pieces_ + 1);
  multiplicity_.assign(
      static_cast<size_t>(mrr_->theta()) * num_pieces_, 0);
  cover_count_.assign(mrr_->theta(), 0);
  count_hist_.assign(num_pieces_ + 1, 0);
  count_hist_[0] = mrr_->theta();
}

void CoverageState::AddSeed(VertexId v, int piece) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces_);
  for (int64_t i : mrr_->SamplesContaining(piece, v)) {
    uint16_t& mult = multiplicity_[i * num_pieces_ + piece];
    OIPA_CHECK_LT(mult, UINT16_MAX);
    if (mult++ == 0) {
      const int c = cover_count_[i]++;
      sum_f_ += f_by_count_[c + 1] - f_by_count_[c];
      --count_hist_[c];
      ++count_hist_[c + 1];
      if (c == 0) touched_.push_back(i);
    }
  }
}

void CoverageState::RemoveSeed(VertexId v, int piece) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces_);
  for (int64_t i : mrr_->SamplesContaining(piece, v)) {
    uint16_t& mult = multiplicity_[i * num_pieces_ + piece];
    OIPA_CHECK_GT(mult, 0) << "RemoveSeed without matching AddSeed";
    if (--mult == 0) {
      const int c = cover_count_[i]--;
      sum_f_ += f_by_count_[c - 1] - f_by_count_[c];
      --count_hist_[c];
      ++count_hist_[c - 1];
    }
  }
}

void CoverageState::Clear() {
  // touched_ may contain duplicates and samples whose count has already
  // returned to zero; both are harmless to re-clear.
  for (int64_t i : touched_) {
    cover_count_[i] = 0;
    for (int j = 0; j < num_pieces_; ++j) {
      multiplicity_[i * num_pieces_ + j] = 0;
    }
  }
  touched_.clear();
  sum_f_ = 0.0;
  std::fill(count_hist_.begin(), count_hist_.end(), 0);
  count_hist_[0] = mrr_->theta();
}

double CoverageState::GainOfAdding(VertexId v, int piece) const {
  double gain = 0.0;
  for (int64_t i : mrr_->SamplesContaining(piece, v)) {
    if (multiplicity_[i * num_pieces_ + piece] == 0) {
      const int c = cover_count_[i];
      gain += f_by_count_[c + 1] - f_by_count_[c];
    }
  }
  return gain * mrr_->UtilityScale();
}

}  // namespace oipa
