#include "rrset/rr_collection.h"

#include <algorithm>

#include "rrset/rr_sampler.h"
#include "util/logging.h"
#include "util/threading.h"

namespace oipa {

RrCollection RrCollection::Generate(const InfluenceGraph& ig, int64_t theta,
                                    uint64_t seed) {
  OIPA_CHECK_GE(theta, 0);
  RrCollection rc(ig.graph().num_vertices(), seed);
  rc.Extend(ig, theta);
  return rc;
}

void RrCollection::Extend(const InfluenceGraph& ig, int64_t extra) {
  OIPA_CHECK_GE(extra, 0);
  OIPA_CHECK_EQ(ig.graph().num_vertices(), num_vertices_);
  if (extra == 0) return;
  const int64_t begin_sample = theta();
  const VertexId n = num_vertices_;

  // Shard-local buffers, stitched afterwards so results are independent of
  // the number of threads (per-sample seeds fix the randomness).
  const int shards = GetNumThreads();
  std::vector<std::vector<VertexId>> shard_roots(shards);
  std::vector<std::vector<int32_t>> shard_sizes(shards);
  std::vector<std::vector<VertexId>> shard_nodes(shards);

  ParallelFor(extra, [&](int shard, int64_t lo, int64_t hi) {
    RrSampler sampler(n);
    std::vector<VertexId> set;
    auto& roots = shard_roots[shard];
    auto& sizes = shard_sizes[shard];
    auto& nodes = shard_nodes[shard];
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t sample = begin_sample + s;
      Rng root_rng(PerSampleSeed(base_seed_, sample, -1));
      const VertexId root = static_cast<VertexId>(root_rng.NextBounded(n));
      Rng rng(PerSampleSeed(base_seed_, sample, 0));
      sampler.Sample(ig, root, &rng, &set);
      roots.push_back(root);
      sizes.push_back(static_cast<int32_t>(set.size()));
      nodes.insert(nodes.end(), set.begin(), set.end());
    }
  });

  for (int shard = 0; shard < shards; ++shard) {
    roots_.insert(roots_.end(), shard_roots[shard].begin(),
                  shard_roots[shard].end());
    for (int32_t size : shard_sizes[shard]) {
      offsets_.push_back(offsets_.back() + size);
    }
    nodes_.insert(nodes_.end(), shard_nodes[shard].begin(),
                  shard_nodes[shard].end());
  }
  index_valid_ = false;
}

void RrCollection::BuildInvertedIndex() const {
  inv_offsets_.assign(num_vertices_ + 1, 0);
  for (VertexId v : nodes_) ++inv_offsets_[v + 1];
  for (VertexId v = 0; v < num_vertices_; ++v) {
    inv_offsets_[v + 1] += inv_offsets_[v];
  }
  inv_samples_.resize(nodes_.size());
  std::vector<int64_t> fill(inv_offsets_.begin(), inv_offsets_.end() - 1);
  for (int64_t i = 0; i < theta(); ++i) {
    for (VertexId v : Set(i)) {
      inv_samples_[fill[v]++] = i;
    }
  }
  index_valid_ = true;
}

std::span<const int64_t> RrCollection::SamplesContaining(VertexId v) const {
  if (!index_valid_) BuildInvertedIndex();
  return {inv_samples_.data() + inv_offsets_[v],
          inv_samples_.data() + inv_offsets_[v + 1]};
}

double RrCollection::EstimateSpread(
    const std::vector<VertexId>& seeds) const {
  if (theta() == 0) return 0.0;
  std::vector<uint8_t> covered(theta(), 0);
  for (VertexId s : seeds) {
    for (int64_t i : SamplesContaining(s)) covered[i] = 1;
  }
  int64_t count = 0;
  for (uint8_t c : covered) count += c;
  return static_cast<double>(num_vertices_) * static_cast<double>(count) /
         static_cast<double>(theta());
}

}  // namespace oipa
