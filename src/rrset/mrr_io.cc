#include "rrset/mrr_io.h"

#include <cstdint>
#include <fstream>
#include <utility>
#include <vector>

#include "util/fault_injector.h"

namespace oipa {

namespace {

// Version 2 ("OIPAMRR2") appends sampling provenance — base seed,
// diffusion model, extendable flag — so a loaded collection keeps
// growing bit-identically to the one that was saved. Version 1 files
// are still readable; they load as non-extendable.
constexpr uint64_t kMagicV1 = 0x4f4950414d525231ULL;  // "OIPAMRR1"
constexpr uint64_t kMagicV2 = 0x4f4950414d525232ULL;  // "OIPAMRR2"
// Store snapshot framing: flags word, then one embedded (and still
// self-describing) collection blob per held collection.
constexpr uint64_t kMagicStore = 0x4f49504153544f31ULL;  // "OIPASTO1"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > (1ULL << 34)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

/// Writes one self-describing OIPAMRR2 blob at the stream position
/// (shared by the collection-level and store-snapshot formats).
void WriteCollectionBlob(std::ofstream& out, const MrrCollection& mrr) {
  WritePod(out, kMagicV2);
  WritePod(out, static_cast<int64_t>(mrr.theta()));
  WritePod(out, static_cast<int32_t>(mrr.num_pieces()));
  WritePod(out, static_cast<int32_t>(mrr.num_vertices()));
  WritePod(out, static_cast<uint64_t>(mrr.base_seed()));
  WritePod(out, static_cast<int32_t>(mrr.model()));
  WritePod(out, static_cast<int32_t>(mrr.extendable() ? 1 : 0));

  std::vector<VertexId> roots(mrr.theta());
  for (int64_t i = 0; i < mrr.theta(); ++i) roots[i] = mrr.root(i);
  WriteVector(out, roots);

  std::vector<int64_t> offsets;
  std::vector<VertexId> nodes;
  offsets.reserve(mrr.theta() * mrr.num_pieces() + 1);
  offsets.push_back(0);
  for (int64_t i = 0; i < mrr.theta(); ++i) {
    for (int j = 0; j < mrr.num_pieces(); ++j) {
      const auto set = mrr.Set(i, j);
      nodes.insert(nodes.end(), set.begin(), set.end());
      offsets.push_back(static_cast<int64_t>(nodes.size()));
    }
  }
  WriteVector(out, offsets);
  WriteVector(out, nodes);
}

/// Reads and validates one collection blob at the stream position.
StatusOr<MrrCollection> ReadCollectionBlob(std::ifstream& in,
                                           const std::string& path) {
  uint64_t magic = 0;
  if (!ReadPod(in, &magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::InvalidArgument(path + ": bad MRR magic");
  }
  int64_t theta = 0;
  int32_t pieces = 0, n = 0;
  if (!ReadPod(in, &theta) || !ReadPod(in, &pieces) || !ReadPod(in, &n) ||
      theta < 0 || pieces <= 0 || n < 0) {
    return Status::InvalidArgument(path + ": bad MRR header");
  }
  uint64_t base_seed = 0;
  int32_t model_raw = 0;
  int32_t extendable_raw = 0;
  if (magic == kMagicV2) {
    if (!ReadPod(in, &base_seed) || !ReadPod(in, &model_raw) ||
        !ReadPod(in, &extendable_raw) || model_raw < 0 || model_raw > 1 ||
        extendable_raw < 0 || extendable_raw > 1) {
      return Status::InvalidArgument(path + ": bad MRR provenance header");
    }
  }
  std::vector<VertexId> roots;
  std::vector<int64_t> offsets;
  std::vector<VertexId> nodes;
  if (!ReadVector(in, &roots) || !ReadVector(in, &offsets) ||
      !ReadVector(in, &nodes)) {
    return Status::InvalidArgument(path + ": truncated MRR arrays");
  }
  if (static_cast<int64_t>(roots.size()) != theta ||
      static_cast<int64_t>(offsets.size()) != theta * pieces + 1 ||
      (offsets.empty() ? !nodes.empty()
                       : offsets.back() !=
                             static_cast<int64_t>(nodes.size()))) {
    return Status::InvalidArgument(path + ": inconsistent MRR sizes");
  }
  if (!offsets.empty() && offsets.front() != 0) {
    return Status::InvalidArgument(path + ": offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i]) {
      return Status::InvalidArgument(path + ": non-monotone offsets");
    }
  }
  for (VertexId v : nodes) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument(path + ": member out of range");
    }
  }
  for (VertexId r : roots) {
    if (r < 0 || r >= n) {
      return Status::InvalidArgument(path + ": root out of range");
    }
  }
  return MrrCollection::FromParts(
      theta, pieces, n, std::move(roots), std::move(offsets),
      std::move(nodes), base_seed, static_cast<DiffusionModel>(model_raw),
      extendable_raw != 0);
}

}  // namespace

Status SaveMrrCollection(const MrrCollection& mrr,
                         const std::string& path) {
  if (FaultInjector::ShouldFail("io.save")) return InjectedFault("io.save");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteCollectionBlob(out, mrr);
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<MrrCollection> LoadMrrCollection(const std::string& path) {
  if (FaultInjector::ShouldFail("io.load")) return InjectedFault("io.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadCollectionBlob(in, path);
}

Status SaveSampleStore(const SampleStore& store, const std::string& path) {
  if (FaultInjector::ShouldFail("io.save")) return InjectedFault("io.save");
  // One snapshot for the whole write: both collections come from the
  // same generation even if the store grows mid-save.
  const SampleSnapshot snap = store.snapshot();
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WritePod(out, kMagicStore);
  WritePod(out, static_cast<int32_t>(snap.holdout == nullptr ? 0 : 1));
  WriteCollectionBlob(out, *snap.mrr);
  if (snap.holdout != nullptr) WriteCollectionBlob(out, *snap.holdout);
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<std::shared_ptr<SampleStore>> LoadSampleStore(
    const std::string& path,
    std::shared_ptr<const std::vector<InfluenceGraph>> pieces) {
  if (FaultInjector::ShouldFail("io.load")) return InjectedFault("io.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagicStore) {
    return Status::InvalidArgument(path + ": bad store-snapshot magic");
  }
  int32_t has_holdout = 0;
  if (!ReadPod(in, &has_holdout) || has_holdout < 0 || has_holdout > 1) {
    return Status::InvalidArgument(path + ": bad store-snapshot header");
  }
  StatusOr<MrrCollection> mrr = ReadCollectionBlob(in, path);
  if (!mrr.ok()) return mrr.status();
  if (pieces != nullptr) {
    // Catch a pieces/snapshot mismatch here as a Status — otherwise it
    // would surface as a CHECK-abort inside the first Grow().
    if (static_cast<int>(pieces->size()) != mrr->num_pieces()) {
      return Status::InvalidArgument(
          path + ": snapshot has " + std::to_string(mrr->num_pieces()) +
          " pieces but " + std::to_string(pieces->size()) +
          " piece graphs were supplied");
    }
    if (!pieces->empty() &&
        (*pieces)[0].graph().num_vertices() != mrr->num_vertices()) {
      return Status::InvalidArgument(
          path + ": snapshot covers " +
          std::to_string(mrr->num_vertices()) +
          " vertices but the piece graphs have " +
          std::to_string((*pieces)[0].graph().num_vertices()));
    }
  }
  std::shared_ptr<const MrrCollection> holdout;
  if (has_holdout == 1) {
    StatusOr<MrrCollection> loaded = ReadCollectionBlob(in, path);
    if (!loaded.ok()) return loaded.status();
    if (loaded->num_pieces() != mrr->num_pieces() ||
        loaded->num_vertices() != mrr->num_vertices()) {
      // Same guard as above for the holdout blob: a mismatched file
      // must be a Status, not a later CHECK-abort in Grow().
      return Status::InvalidArgument(
          path + ": holdout blob shape (" +
          std::to_string(loaded->num_pieces()) + " pieces, " +
          std::to_string(loaded->num_vertices()) +
          " vertices) does not match the in-sample blob");
    }
    holdout = std::make_shared<const MrrCollection>(
        std::move(loaded).value());
  }
  return SampleStore::Adopt(
      std::move(pieces),
      std::make_shared<const MrrCollection>(std::move(mrr).value()),
      holdout);
}

}  // namespace oipa
