#include "rrset/coverage_kernels.h"

#include <cstdlib>
#include <cstring>

namespace oipa {

namespace {

/// Per-chunk term buffer: the vectorizable half of each kernel fills it
/// branchlessly, the strictly-ordered scalar reduction drains it. Small
/// enough to stay in L1 alongside the gathered rows.
constexpr size_t kBlock = 128;

/// True when the environment forces the scalar kernels
/// (OIPA_NO_SIMD set to anything but "0"). Read exactly once, under the
/// magic-static guard, before the first kernel dispatch.
bool ScalarForcedByEnv() {
  static const bool forced = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at first use.
    const char* s = std::getenv("OIPA_NO_SIMD");
    return s != nullptr && *s != '\0' && std::strcmp(s, "0") != 0;
  }();
  return forced;
}

/// The three kernel bodies as macros so the scalar functions and the
/// AVX2-target clones compile the exact same code — elementwise
/// identical terms, identical posting-order reduction — differing only
/// in the ISA the compiler may use for the term loop.
#define OIPA_COVERAGE_GAIN_BODY                                         \
  const int64_t* p = ids.data();                                        \
  size_t n = ids.size();                                                \
  double terms[kBlock];                                                 \
  while (n > 0) {                                                       \
    const size_t blk = n < kBlock ? n : kBlock;                         \
    for (size_t u = 0; u < blk; ++u) {                                  \
      const int64_t id = p[u];                                          \
      const double d = delta_f[cover_count[id]];                        \
      terms[u] = mult[id] == 0 ? d : 0.0;                               \
    }                                                                   \
    for (size_t u = 0; u < blk; ++u) acc += terms[u];                   \
    p += blk;                                                           \
    n -= blk;                                                           \
  }                                                                     \
  return acc;

#define OIPA_COVERAGE_GAIN_BOUND_BODY                                   \
  const int64_t* p = ids.data();                                        \
  size_t n = ids.size();                                                \
  double gain = *gain_acc;                                              \
  double bound = *bound_acc;                                            \
  double gain_terms[kBlock];                                            \
  double bound_terms[kBlock];                                           \
  while (n > 0) {                                                       \
    const size_t blk = n < kBlock ? n : kBlock;                         \
    for (size_t u = 0; u < blk; ++u) {                                  \
      const int64_t id = p[u];                                          \
      const int c = cover_count[id];                                    \
      const bool uncovered = mult[id] == 0;                             \
      gain_terms[u] = uncovered ? delta_f[c] : 0.0;                     \
      bound_terms[u] = uncovered ? delta_f_sufmax[c] : 0.0;             \
    }                                                                   \
    for (size_t u = 0; u < blk; ++u) {                                  \
      gain += gain_terms[u];                                            \
      bound += bound_terms[u];                                          \
    }                                                                   \
    p += blk;                                                           \
    n -= blk;                                                           \
  }                                                                     \
  *gain_acc = gain;                                                     \
  *bound_acc = bound;

#define OIPA_TANGENT_GAIN_BODY                                          \
  const int64_t* p = ids.data();                                        \
  size_t n = ids.size();                                                \
  double terms[kBlock];                                                 \
  while (n > 0) {                                                       \
    const size_t blk = n < kBlock ? n : kBlock;                         \
    for (size_t u = 0; u < blk; ++u) {                                  \
      const int64_t id = p[u];                                          \
      const int c = cover_count[id];                                    \
      const bool skip = mult[id] != 0 || greedy_epoch[id] == epoch;     \
      const double lv = line_epoch[id] == epoch ? line_value[id]        \
                                                : anchor_by_count[c];   \
      const double headroom = 1.0 - lv;                                 \
      const double slope = slope_by_count[c];                           \
      const double g = slope < headroom ? slope : headroom;             \
      terms[u] = (skip || headroom <= 0.0) ? 0.0 : g;                   \
    }                                                                   \
    for (size_t u = 0; u < blk; ++u) acc += terms[u];                   \
    p += blk;                                                           \
    n -= blk;                                                           \
  }                                                                     \
  return acc;

#if defined(__x86_64__) && (defined(__clang__) || defined(__GNUC__)) && \
    !defined(OIPA_NO_SIMD_BUILD)
#define OIPA_KERNELS_HAVE_AVX2 1

__attribute__((target("avx2,fma"))) double CoverageGainSumAvx2(
    std::span<const int64_t> ids, const uint16_t* mult,
    const uint8_t* cover_count, const double* delta_f, double acc) {
  OIPA_COVERAGE_GAIN_BODY
}

__attribute__((target("avx2,fma"))) void CoverageGainBoundSumAvx2(
    std::span<const int64_t> ids, const uint16_t* mult,
    const uint8_t* cover_count, const double* delta_f,
    const double* delta_f_sufmax, double* gain_acc, double* bound_acc) {
  OIPA_COVERAGE_GAIN_BOUND_BODY
}

__attribute__((target("avx2,fma"))) double TangentGainSumAvx2(
    std::span<const int64_t> ids, const uint16_t* mult,
    const uint32_t* greedy_epoch, uint32_t epoch,
    const uint32_t* line_epoch, const double* line_value,
    const uint8_t* cover_count, const double* anchor_by_count,
    const double* slope_by_count, double acc) {
  OIPA_TANGENT_GAIN_BODY
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
#define OIPA_KERNELS_HAVE_AVX2 0
#endif

bool UseSimd() {
#if OIPA_KERNELS_HAVE_AVX2
  static const bool use = !ScalarForcedByEnv() && CpuHasAvx2();
  return use;
#else
  // Keep the env probe referenced so the scalar-only build stays
  // warning-clean and the forcing knob is uniformly accepted.
  (void)ScalarForcedByEnv();
  return false;
#endif
}

}  // namespace

double CoverageGainSumScalar(std::span<const int64_t> ids,
                             const uint16_t* mult,
                             const uint8_t* cover_count,
                             const double* delta_f, double acc) {
  OIPA_COVERAGE_GAIN_BODY
}

void CoverageGainBoundSumScalar(std::span<const int64_t> ids,
                                const uint16_t* mult,
                                const uint8_t* cover_count,
                                const double* delta_f,
                                const double* delta_f_sufmax,
                                double* gain_acc, double* bound_acc) {
  OIPA_COVERAGE_GAIN_BOUND_BODY
}

double TangentGainSumScalar(std::span<const int64_t> ids,
                            const uint16_t* mult,
                            const uint32_t* greedy_epoch, uint32_t epoch,
                            const uint32_t* line_epoch,
                            const double* line_value,
                            const uint8_t* cover_count,
                            const double* anchor_by_count,
                            const double* slope_by_count, double acc) {
  OIPA_TANGENT_GAIN_BODY
}

double CoverageGainSum(std::span<const int64_t> ids, const uint16_t* mult,
                       const uint8_t* cover_count, const double* delta_f,
                       double acc) {
#if OIPA_KERNELS_HAVE_AVX2
  if (UseSimd()) {
    return CoverageGainSumAvx2(ids, mult, cover_count, delta_f, acc);
  }
#endif
  return CoverageGainSumScalar(ids, mult, cover_count, delta_f, acc);
}

void CoverageGainBoundSum(std::span<const int64_t> ids,
                          const uint16_t* mult, const uint8_t* cover_count,
                          const double* delta_f,
                          const double* delta_f_sufmax, double* gain_acc,
                          double* bound_acc) {
#if OIPA_KERNELS_HAVE_AVX2
  if (UseSimd()) {
    CoverageGainBoundSumAvx2(ids, mult, cover_count, delta_f,
                             delta_f_sufmax, gain_acc, bound_acc);
    return;
  }
#endif
  CoverageGainBoundSumScalar(ids, mult, cover_count, delta_f,
                             delta_f_sufmax, gain_acc, bound_acc);
}

double TangentGainSum(std::span<const int64_t> ids, const uint16_t* mult,
                      const uint32_t* greedy_epoch, uint32_t epoch,
                      const uint32_t* line_epoch, const double* line_value,
                      const uint8_t* cover_count,
                      const double* anchor_by_count,
                      const double* slope_by_count, double acc) {
#if OIPA_KERNELS_HAVE_AVX2
  if (UseSimd()) {
    return TangentGainSumAvx2(ids, mult, greedy_epoch, epoch, line_epoch,
                              line_value, cover_count, anchor_by_count,
                              slope_by_count, acc);
  }
#endif
  return TangentGainSumScalar(ids, mult, greedy_epoch, epoch, line_epoch,
                              line_value, cover_count, anchor_by_count,
                              slope_by_count, acc);
}

bool SimdKernelsActive() { return UseSimd(); }

}  // namespace oipa
