#include "rrset/mrr_collection.h"

#include <atomic>

#include "diffusion/lt_cascade.h"
#include "rrset/rr_sampler.h"
#include "util/logging.h"
#include "util/threading.h"

namespace oipa {

namespace {

std::atomic<int64_t> g_generated_samples{0};

}  // namespace

int64_t MrrCollection::GeneratedSampleCount() {
  return g_generated_samples.load(std::memory_order_relaxed);
}

MrrCollection MrrCollection::Generate(
    const std::vector<InfluenceGraph>& piece_graphs, int64_t theta,
    uint64_t seed, DiffusionModel model, int num_threads) {
  OIPA_CHECK_GE(theta, 0);
  OIPA_CHECK(!piece_graphs.empty());
  const VertexId n = piece_graphs[0].graph().num_vertices();

  MrrCollection mc;
  mc.theta_ = 0;
  mc.num_pieces_ = static_cast<int>(piece_graphs.size());
  mc.num_vertices_ = n;
  mc.base_seed_ = seed;
  mc.model_ = model;
  mc.extendable_ = true;
  mc.Extend(piece_graphs, theta, num_threads);
  return mc;
}

void MrrCollection::Extend(const std::vector<InfluenceGraph>& piece_graphs,
                           int64_t new_theta, int num_threads) {
  OIPA_CHECK(extendable_)
      << "Extend on a collection without sampling provenance";
  OIPA_CHECK_EQ(static_cast<int>(piece_graphs.size()), num_pieces_);
  const VertexId n = num_vertices_;
  for (const InfluenceGraph& ig : piece_graphs) {
    OIPA_CHECK_EQ(ig.graph().num_vertices(), n)
        << "all pieces must share the social graph";
  }
  if (new_theta <= theta_) return;
  const int64_t begin = theta_;
  const int64_t extra = new_theta - begin;
  const int ell = num_pieces_;
  if (n == 0) {
    // No vertices: every sample is empty and there is nothing to index.
    theta_ = new_theta;
    return;
  }

  // Precompute LT weights once per piece when sampling under LT.
  std::vector<std::vector<float>> lt_weights;
  if (model_ == DiffusionModel::kLinearThreshold) {
    lt_weights.reserve(ell);
    for (const InfluenceGraph& ig : piece_graphs) {
      lt_weights.push_back(LtWeights(ig));
    }
  }

  // Shard-local buffers stitched afterwards, so results are independent
  // of the thread count (per-sample seeds fix the randomness).
  const int shards = ResolveThreadCount(num_threads);
  std::vector<std::vector<VertexId>> shard_roots(shards);
  std::vector<std::vector<int32_t>> shard_sizes(shards);
  std::vector<std::vector<VertexId>> shard_nodes(shards);

  ParallelFor(extra, shards, [&](int shard, int64_t lo, int64_t hi) {
    RrSampler sampler(n);
    std::vector<VertexId> set;
    auto& roots = shard_roots[shard];
    auto& sizes = shard_sizes[shard];
    auto& nodes = shard_nodes[shard];
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t i = begin + s;
      Rng root_rng(PerSampleSeed(base_seed_, i, -1));
      const VertexId root = static_cast<VertexId>(root_rng.NextBounded(n));
      roots.push_back(root);
      for (int j = 0; j < ell; ++j) {
        Rng rng(PerSampleSeed(base_seed_, i, j));
        if (model_ == DiffusionModel::kLinearThreshold) {
          SampleLtRrSet(piece_graphs[j].graph(), lt_weights[j], root,
                        &rng, &set);
        } else {
          sampler.Sample(piece_graphs[j], root, &rng, &set);
        }
        sizes.push_back(static_cast<int32_t>(set.size()));
        nodes.insert(nodes.end(), set.begin(), set.end());
      }
    }
  });

  for (int shard = 0; shard < shards; ++shard) {
    roots_.insert(roots_.end(), shard_roots[shard].begin(),
                  shard_roots[shard].end());
    for (int32_t size : shard_sizes[shard]) {
      offsets_.push_back(offsets_.back() + size);
    }
    nodes_.insert(nodes_.end(), shard_nodes[shard].begin(),
                  shard_nodes[shard].end());
  }
  theta_ = new_theta;
  OIPA_CHECK_EQ(static_cast<int64_t>(roots_.size()), theta_);
  OIPA_CHECK_EQ(static_cast<int64_t>(offsets_.size()),
                theta_ * ell + 1);

  AppendIndexSegment(begin);
  g_generated_samples.fetch_add(extra, std::memory_order_relaxed);
}

MrrCollection MrrCollection::FromParts(
    int64_t theta, int num_pieces, VertexId num_vertices,
    std::vector<VertexId> roots, std::vector<int64_t> offsets,
    std::vector<VertexId> nodes, uint64_t base_seed, DiffusionModel model,
    bool extendable) {
  OIPA_CHECK_GE(theta, 0);
  OIPA_CHECK_GT(num_pieces, 0);
  OIPA_CHECK_GE(num_vertices, 0);
  OIPA_CHECK_EQ(static_cast<int64_t>(roots.size()), theta);
  OIPA_CHECK_EQ(static_cast<int64_t>(offsets.size()),
                theta * num_pieces + 1);
  OIPA_CHECK(offsets.empty() || offsets.front() == 0);
  OIPA_CHECK(offsets.empty() ||
             offsets.back() == static_cast<int64_t>(nodes.size()));
  for (size_t i = 1; i < offsets.size(); ++i) {
    OIPA_CHECK_LE(offsets[i - 1], offsets[i]);
  }
  for (VertexId v : nodes) {
    OIPA_CHECK_GE(v, 0);
    OIPA_CHECK_LT(v, num_vertices);
  }
  for (VertexId r : roots) {
    OIPA_CHECK_GE(r, 0);
    OIPA_CHECK_LT(r, num_vertices);
  }
  MrrCollection mc;
  mc.theta_ = theta;
  mc.num_pieces_ = num_pieces;
  mc.num_vertices_ = num_vertices;
  mc.base_seed_ = base_seed;
  mc.model_ = model;
  mc.extendable_ = extendable;
  mc.roots_ = std::move(roots);
  mc.offsets_ = std::move(offsets);
  mc.nodes_ = std::move(nodes);
  if (theta > 0 && num_vertices > 0) mc.AppendIndexSegment(0);
  return mc;
}

void MrrCollection::AppendIndexSegment(int64_t begin) {
  if (begin == theta_) return;  // zero-sample growth: nothing to index
  const int64_t keys =
      static_cast<int64_t>(num_pieces_) * (num_vertices_ + 1);
  IndexSegment seg;
  seg.begin_sample = begin;
  seg.end_sample = theta_;
  seg.offsets.assign(keys + 1, 0);
  for (int64_t i = begin; i < theta_; ++i) {
    for (int j = 0; j < num_pieces_; ++j) {
      for (VertexId v : Set(i, j)) {
        const int64_t key =
            static_cast<int64_t>(j) * (num_vertices_ + 1) + v;
        ++seg.offsets[key + 1];
      }
    }
  }
  for (int64_t k = 0; k < keys; ++k) seg.offsets[k + 1] += seg.offsets[k];
  seg.samples.resize(
      static_cast<size_t>(offsets_[theta_ * num_pieces_] -
                          offsets_[begin * num_pieces_]));
  std::vector<int64_t> fill(seg.offsets.begin(), seg.offsets.end() - 1);
  for (int64_t i = begin; i < theta_; ++i) {
    for (int j = 0; j < num_pieces_; ++j) {
      for (VertexId v : Set(i, j)) {
        const int64_t key =
            static_cast<int64_t>(j) * (num_vertices_ + 1) + v;
        seg.samples[fill[key]++] = i;
      }
    }
  }
  segments_.push_back(std::move(seg));
}

int64_t MrrCollection::MemoryBytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<int64_t>(v.capacity() * sizeof(v[0]));
  };
  int64_t total = bytes(roots_) + bytes(offsets_) + bytes(nodes_);
  for (const IndexSegment& seg : segments_) {
    total += bytes(seg.offsets) + bytes(seg.samples);
  }
  return total;
}

std::vector<int64_t> MrrCollection::SamplesContaining(int piece,
                                                      VertexId v) const {
  std::vector<int64_t> out;
  ForEachSampleContaining(piece, v,
                          [&out](int64_t i) { out.push_back(i); });
  return out;
}

}  // namespace oipa
