#include "rrset/mrr_collection.h"

#include "diffusion/lt_cascade.h"
#include "rrset/rr_sampler.h"
#include "util/logging.h"
#include "util/threading.h"

namespace oipa {

MrrCollection MrrCollection::Generate(
    const std::vector<InfluenceGraph>& piece_graphs, int64_t theta,
    uint64_t seed, DiffusionModel model) {
  OIPA_CHECK_GE(theta, 0);
  OIPA_CHECK(!piece_graphs.empty());
  const VertexId n = piece_graphs[0].graph().num_vertices();
  for (const InfluenceGraph& ig : piece_graphs) {
    OIPA_CHECK_EQ(ig.graph().num_vertices(), n)
        << "all pieces must share the social graph";
  }
  const int ell = static_cast<int>(piece_graphs.size());

  MrrCollection mc;
  mc.theta_ = theta;
  mc.num_pieces_ = ell;
  mc.num_vertices_ = n;
  if (theta == 0 || n == 0) {
    mc.inv_offsets_.assign(
        static_cast<size_t>(ell) * (n + 1) + 1, 0);
    return mc;
  }

  // Precompute LT weights once per piece when sampling under LT.
  std::vector<std::vector<float>> lt_weights;
  if (model == DiffusionModel::kLinearThreshold) {
    lt_weights.reserve(ell);
    for (const InfluenceGraph& ig : piece_graphs) {
      lt_weights.push_back(LtWeights(ig));
    }
  }

  const int shards = GetNumThreads();
  std::vector<std::vector<VertexId>> shard_roots(shards);
  std::vector<std::vector<int32_t>> shard_sizes(shards);
  std::vector<std::vector<VertexId>> shard_nodes(shards);

  ParallelFor(theta, [&](int shard, int64_t lo, int64_t hi) {
    RrSampler sampler(n);
    std::vector<VertexId> set;
    auto& roots = shard_roots[shard];
    auto& sizes = shard_sizes[shard];
    auto& nodes = shard_nodes[shard];
    for (int64_t i = lo; i < hi; ++i) {
      Rng root_rng(PerSampleSeed(seed, i, -1));
      const VertexId root = static_cast<VertexId>(root_rng.NextBounded(n));
      roots.push_back(root);
      for (int j = 0; j < ell; ++j) {
        Rng rng(PerSampleSeed(seed, i, j));
        if (model == DiffusionModel::kLinearThreshold) {
          SampleLtRrSet(piece_graphs[j].graph(), lt_weights[j], root,
                        &rng, &set);
        } else {
          sampler.Sample(piece_graphs[j], root, &rng, &set);
        }
        sizes.push_back(static_cast<int32_t>(set.size()));
        nodes.insert(nodes.end(), set.begin(), set.end());
      }
    }
  });

  for (int shard = 0; shard < shards; ++shard) {
    mc.roots_.insert(mc.roots_.end(), shard_roots[shard].begin(),
                     shard_roots[shard].end());
    for (int32_t size : shard_sizes[shard]) {
      mc.offsets_.push_back(mc.offsets_.back() + size);
    }
    mc.nodes_.insert(mc.nodes_.end(), shard_nodes[shard].begin(),
                     shard_nodes[shard].end());
  }
  OIPA_CHECK_EQ(static_cast<int64_t>(mc.roots_.size()), theta);
  OIPA_CHECK_EQ(static_cast<int64_t>(mc.offsets_.size()),
                theta * ell + 1);

  mc.BuildInvertedIndex();
  return mc;
}

MrrCollection MrrCollection::FromParts(int64_t theta, int num_pieces,
                                       VertexId num_vertices,
                                       std::vector<VertexId> roots,
                                       std::vector<int64_t> offsets,
                                       std::vector<VertexId> nodes) {
  OIPA_CHECK_GE(theta, 0);
  OIPA_CHECK_GT(num_pieces, 0);
  OIPA_CHECK_GE(num_vertices, 0);
  OIPA_CHECK_EQ(static_cast<int64_t>(roots.size()), theta);
  OIPA_CHECK_EQ(static_cast<int64_t>(offsets.size()),
                theta * num_pieces + 1);
  OIPA_CHECK(offsets.empty() || offsets.front() == 0);
  OIPA_CHECK(offsets.empty() ||
             offsets.back() == static_cast<int64_t>(nodes.size()));
  for (size_t i = 1; i < offsets.size(); ++i) {
    OIPA_CHECK_LE(offsets[i - 1], offsets[i]);
  }
  for (VertexId v : nodes) {
    OIPA_CHECK_GE(v, 0);
    OIPA_CHECK_LT(v, num_vertices);
  }
  for (VertexId r : roots) {
    OIPA_CHECK_GE(r, 0);
    OIPA_CHECK_LT(r, num_vertices);
  }
  MrrCollection mc;
  mc.theta_ = theta;
  mc.num_pieces_ = num_pieces;
  mc.num_vertices_ = num_vertices;
  mc.roots_ = std::move(roots);
  mc.offsets_ = std::move(offsets);
  mc.nodes_ = std::move(nodes);
  mc.BuildInvertedIndex();
  return mc;
}

void MrrCollection::BuildInvertedIndex() {
  const int64_t keys =
      static_cast<int64_t>(num_pieces_) * (num_vertices_ + 1);
  inv_offsets_.assign(keys + 1, 0);
  for (int64_t i = 0; i < theta_; ++i) {
    for (int j = 0; j < num_pieces_; ++j) {
      for (VertexId v : Set(i, j)) {
        const int64_t key =
            static_cast<int64_t>(j) * (num_vertices_ + 1) + v;
        ++inv_offsets_[key + 1];
      }
    }
  }
  for (int64_t k = 0; k < keys; ++k) inv_offsets_[k + 1] += inv_offsets_[k];
  inv_samples_.resize(nodes_.size());
  std::vector<int64_t> fill(inv_offsets_.begin(), inv_offsets_.end() - 1);
  for (int64_t i = 0; i < theta_; ++i) {
    for (int j = 0; j < num_pieces_; ++j) {
      for (VertexId v : Set(i, j)) {
        const int64_t key =
            static_cast<int64_t>(j) * (num_vertices_ + 1) + v;
        inv_samples_[fill[key]++] = i;
      }
    }
  }
}

}  // namespace oipa
