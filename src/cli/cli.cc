#include "cli/cli.h"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "cli/json_writer.h"
#include "data/datasets.h"
#include "graph/generators.h"
#include "learn/action_log.h"
#include "learn/tic_learner.h"
#include "oipa/adoption.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "oipa/branch_and_bound.h"
#include "rrset/mrr_collection.h"
#include "serve/client.h"
#include "serve/json_parser.h"
#include "serve/server.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "topic/prob_models.h"
#include "topic/topic_vector.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/threading.h"
#include "util/timer.h"

namespace oipa {
namespace cli {
namespace {

constexpr const char* kCommands[] = {"generate", "learn", "plan",
                                     "simulate", "bench", "serve"};

bool IsKnownCommand(const std::string& name) {
  for (const char* c : kCommands) {
    if (name == c) return true;
  }
  return false;
}

// ------------------------------------------------------------- pipeline

/// Accumulated state of one CLI run: each stage fills its slice and
/// records its JSON fragment, so deeper subcommands reuse the shallower
/// stages unchanged (generate ⊂ learn ⊂ plan ⊂ simulate).
struct Pipeline {
  const CliConfig* config = nullptr;
  Dataset dataset;
  double dataset_seconds = 0.0;

  /// Probabilities the planner optimizes on: the dataset truth, or the
  /// TIC-learned recovery when --learn is set.
  std::unique_ptr<EdgeTopicProbs> learned;
  JsonValue learn_json;

  Campaign campaign;
  /// Shared planning state (piece graphs + MRR samples) under the
  /// planning probabilities; every solve request dispatches against it.
  std::shared_ptr<const PlanningContext> context;
  double sample_seconds = 0.0;

  const EdgeTopicProbs& planning_probs() const {
    return learned ? *learned : *dataset.probs;
  }
};

/// Effective solver worker count for this run: flag absent (-1) = the
/// deterministic sequential engine, --threads=0 = auto-detect,
/// --threads=N = exactly N. Single source for both the request sent to
/// the solver and the config echoed in the JSON result.
int ResolvedSolverThreads(const CliConfig& c) {
  if (c.threads < 0) return 1;
  // Auto-detection stays within the solver's worker cap (a larger
  // OIPA_THREADS would otherwise bounce off request validation).
  if (c.threads == 0) return std::min(GetNumThreads(), kMaxBabWorkers);
  return c.threads;
}

/// Effective sampling worker count: --threads=N (N > 0) pins sample
/// generation to N workers too; flag absent or 0 leaves sampling on
/// the GetNumThreads() auto path (which also honors OIPA_THREADS).
/// Unlike the solver, an absent flag does not force 1: samples are
/// bit-identical at any thread count, so there is no determinism to
/// protect by staying sequential.
int ResolvedSamplingThreads(const CliConfig& c) {
  return c.threads > 0 ? c.threads : 0;
}

void BuildDataset(Pipeline* p, std::ostream& err) {
  const CliConfig& c = *p->config;
  err << "[oipa_cli] building dataset '" << c.dataset << "'...\n";
  WallTimer timer;
  p->dataset = c.dataset == "synthetic"
                   ? MakeSynthetic(static_cast<VertexId>(c.n),
                                   c.num_topics, c.pool_fraction, c.seed)
                   : MakeDatasetByName(c.dataset, c.scale, c.seed);
  p->dataset_seconds = timer.Seconds();
}

JsonValue DatasetJson(const Pipeline& p) {
  JsonValue j = JsonValue::Object();
  j.Set("name", p.dataset.name)
      .Set("vertices", static_cast<int64_t>(p.dataset.graph->num_vertices()))
      .Set("edges", p.dataset.graph->num_edges())
      .Set("topics", p.dataset.num_topics)
      .Set("avg_nonzero_topics", p.dataset.probs->AverageNonZeros())
      .Set("pool_size", static_cast<int64_t>(p.dataset.promoter_pool.size()))
      .Set("seconds", p.dataset_seconds);
  return j;
}

/// Simulates an action log over the dataset truth and recovers the
/// probabilities with TIC EM; reports edge-level Spearman agreement
/// between learned and true probabilities under a uniform piece.
void RunLearning(Pipeline* p, std::ostream& err) {
  const CliConfig& c = *p->config;
  const Graph& graph = *p->dataset.graph;
  const EdgeTopicProbs& truth = *p->dataset.probs;

  err << "[oipa_cli] simulating " << c.cascades
      << " cascades and learning TIC probabilities...\n";
  WallTimer timer;
  const ActionLog log =
      GenerateActionLog(graph, truth, c.cascades, 5, c.seed + 3);
  const double log_seconds = timer.Seconds();

  timer.Reset();
  TicLearnerOptions opts;
  opts.iterations = c.em_iterations;
  p->learned = std::make_unique<EdgeTopicProbs>(
      LearnTicProbabilities(graph, log, p->dataset.num_topics, opts));
  const double em_seconds = timer.Seconds();

  std::vector<double> true_vals, learned_vals;
  true_vals.reserve(graph.num_edges());
  learned_vals.reserve(graph.num_edges());
  const TopicVector uniform = TopicVector::Uniform(p->dataset.num_topics);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    true_vals.push_back(truth.PieceProb(e, uniform));
    learned_vals.push_back(p->learned->PieceProb(e, uniform));
  }

  p->learn_json = JsonValue::Object();
  p->learn_json.Set("cascades", c.cascades)
      .Set("events", static_cast<int64_t>(log.events.size()))
      .Set("em_iterations", c.em_iterations)
      .Set("learned_entries", p->learned->num_entries())
      .Set("spearman", SpearmanCorrelation(true_vals, learned_vals))
      .Set("log_seconds", log_seconds)
      .Set("em_seconds", em_seconds);
}

/// Campaign + planning context (piece influence graphs + theta MRR
/// samples), all under the planning probabilities. Returns non-OK when
/// the context inputs are inconsistent (cannot normally happen for
/// driver-built datasets).
Status BuildContext(Pipeline* p, std::ostream& err) {
  const CliConfig& c = *p->config;
  Rng rng(c.seed + 4);
  p->campaign =
      Campaign::SampleUniformPieces(c.ell, p->dataset.num_topics, &rng);
  err << "[oipa_cli] sampling " << c.theta << " MRR sets over " << c.ell
      << " pieces...\n";
  ContextOptions options;
  options.theta = c.theta;
  // One-shot runs validate by forward simulation only; progressive runs
  // additionally need the holdout the (ε)-stopping rule compares
  // against.
  options.holdout_theta = c.sampling_epsilon > 0.0 ? -1 : 0;
  options.seed = c.seed + 5;
  options.sampling_threads = ResolvedSamplingThreads(c);
  options.share_samples = c.share_samples;
  WallTimer timer;
  auto context = PlanningContext::Borrow(
      *p->dataset.graph, p->planning_probs(), p->campaign,
      LogisticAdoptionModel(c.alpha, c.beta), options);
  if (!context.ok()) return context.status();
  p->context = *std::move(context);
  p->sample_seconds = timer.Seconds();
  return Status::Ok();
}

/// The request every plan|simulate|bench solve dispatches with; only the
/// budget list differs between the single solve and the bench sweep.
PlanRequest MakeRequest(const CliConfig& c, std::vector<int> budgets) {
  PlanRequest request;
  request.solver = c.method;
  request.pool = {};  // filled by the caller from the dataset pool
  request.budgets = std::move(budgets);
  request.options.gap = c.gap;
  request.options.epsilon = c.epsilon;
  request.options.variant = c.variant;
  request.options.max_nodes = c.max_nodes;
  request.num_threads = ResolvedSolverThreads(c);
  request.epsilon = c.sampling_epsilon;
  request.max_theta = c.max_theta;
  request.stopping = c.stopping_rule;
  request.seed = c.seed;
  if (c.deadline_ms > 0) request.deadline_ms = c.deadline_ms;
  return request;
}

StatusOr<PlanResponse> SolvePlan(const Pipeline& p, int budget,
                                 std::ostream& err) {
  const CliConfig& c = *p.config;
  err << "[oipa_cli] solving OIPA (k=" << budget << ", method="
      << c.method << ")...\n";
  PlanRequest request = MakeRequest(c, {budget});
  request.pool = p.dataset.promoter_pool;
  return Solve(*p.context, request);
}

JsonValue PlanJson(const Pipeline& p, const PlanResponse& result) {
  JsonValue seed_sets = JsonValue::Array();
  for (int j = 0; j < result.plan.num_pieces(); ++j) {
    JsonValue piece = JsonValue::Array();
    for (const VertexId v : result.plan.SeedSet(j)) {
      piece.Append(static_cast<int64_t>(v));
    }
    seed_sets.Append(std::move(piece));
  }
  JsonValue j = JsonValue::Object();
  j.Set("method", result.solver)
      .Set("seed_sets", std::move(seed_sets))
      .Set("budget_used", result.plan.size())
      .Set("utility", result.utility)
      .Set("upper_bound", result.upper_bound)
      .Set("nodes_expanded", result.nodes_expanded)
      .Set("bound_calls", result.bound_calls)
      .Set("tau_evals", result.tau_evals)
      .Set("converged", result.converged)
      .Set("theta_used", result.theta_used)
      .Set("sampling_rounds", result.sampling_rounds)
      .Set("sample_seconds", p.sample_seconds)
      .Set("solve_seconds", result.seconds);
  if (p.config->deadline_ms > 0) {
    j.Set("cancelled", result.cancelled)
        .Set("deadline_exceeded", result.deadline_exceeded);
  }
  if (p.config->sampling_epsilon > 0.0) {
    j.Set("holdout_utility", result.holdout_utility)
        .Set("sampling_gap", result.sampling_gap);
    if (p.config->stopping_rule == StoppingRuleKind::kOpimBounds) {
      j.Set("certified_ratio", result.certified_ratio);
    }
  }
  return j;
}

/// Forward Monte-Carlo validation of `plan` under the dataset TRUTH (when
/// planning used learned probabilities this measures the real utility of
/// the learned-model plan, as in examples/learning_pipeline.cpp).
JsonValue SimulateJson(const Pipeline& p, const AssignmentPlan& plan,
                       std::ostream& err) {
  const CliConfig& c = *p.config;
  err << "[oipa_cli] validating with " << c.trials
      << " forward simulations...\n";
  const LogisticAdoptionModel model(c.alpha, c.beta);
  WallTimer timer;
  double utility = 0.0;
  if (p.learned) {
    const auto truth_pieces =
        BuildPieceGraphs(*p.dataset.graph, *p.dataset.probs, p.campaign);
    utility = SimulateAdoptionUtility(truth_pieces, model, plan, c.trials,
                                      c.seed + 6);
  } else {
    utility = p.context->SimulateUtility(plan, c.trials, c.seed + 6);
  }
  JsonValue j = JsonValue::Object();
  j.Set("trials", c.trials)
      .Set("utility", utility)
      .Set("seconds", timer.Seconds());
  return j;
}

/// Sample-store telemetry: size, live memory, generation count, and
/// whether the run resolved the store through the sharing registry.
JsonValue SampleStoreJson(const Pipeline& p) {
  const SampleStore::Stats stats = p.context->sample_store().GetStats();
  JsonValue j = JsonValue::Object();
  j.Set("theta", stats.theta)
      .Set("holdout_theta", stats.holdout_theta)
      .Set("memory_bytes", stats.memory_bytes)
      .Set("live_generations", stats.live_generations)
      .Set("shared", stats.shared);
  return j;
}

JsonValue ConfigJson(const CliConfig& c) {
  JsonValue j = JsonValue::Object();
  j.Set("dataset", c.dataset)
      .Set("method", c.method)
      .Set("k", c.k)
      .Set("ell", c.ell)
      .Set("theta", c.theta)
      .Set("epsilon", c.epsilon)
      .Set("sampling_epsilon", c.sampling_epsilon)
      .Set("max_theta", c.max_theta)
      .Set("gap", c.gap)
      .Set("alpha", c.alpha)
      .Set("beta", c.beta)
      .Set("bound", c.bound)
      .Set("progressive", c.progressive)
      .Set("stopping", c.stopping)
      .Set("share_samples", c.share_samples)
      .Set("learn", c.learn)
      .Set("threads", ResolvedSolverThreads(c))
      // The worker count sample generation actually ran with (plumbed
      // through ContextOptions::sampling_threads). It can legitimately
      // differ from "threads": a default run samples on every core but
      // solves sequentially.
      .Set("sampling_threads",
           ResolveThreadCount(ResolvedSamplingThreads(c)))
      .Set("seed", static_cast<int64_t>(c.seed));
  return j;
}

/// Prints the result and, when --output is set, writes it to the file.
/// Returns the process exit code: a requested file that cannot be
/// written is an error (scripts rely on the exit code to know the
/// trajectory file exists), though the JSON still reaches stdout.
int EmitResult(const CliConfig& c, const JsonValue& result,
               std::ostream& out, std::ostream& err) {
  const std::string text = result.Dump(c.indent);
  out << text << "\n";
  if (!c.output.empty()) {
    std::ofstream file(c.output);
    if (file) file << text << "\n";
    if (!file) {
      err << "oipa_cli: cannot write --output file '" << c.output << "'\n";
      return 1;
    }
    err << "[oipa_cli] wrote " << c.output << "\n";
  }
  return 0;
}

int RunPipeline(const CliConfig& c, std::ostream& out, std::ostream& err) {
  Pipeline p;
  p.config = &c;

  JsonValue result = JsonValue::Object();
  result.Set("command", c.command).Set("config", ConfigJson(c));

  BuildDataset(&p, err);
  result.Set("dataset", DatasetJson(p));
  if (c.command == "generate") {
    return EmitResult(c, result, out, err);
  }

  if (c.command == "learn" || c.learn) {
    RunLearning(&p, err);
    result.Set("learn", p.learn_json);
    if (c.command == "learn") {
      return EmitResult(c, result, out, err);
    }
  }

  if (const Status status = BuildContext(&p, err); !status.ok()) {
    err << "oipa_cli: " << status.ToString() << "\n";
    return 1;
  }

  if (c.command == "bench") {
    err << "[oipa_cli] benching method=" << c.method << " over "
        << c.k_sweep.size() << " budgets...\n";
    PlanRequest request = MakeRequest(
        c, std::vector<int>(c.k_sweep.begin(), c.k_sweep.end()));
    request.pool = p.dataset.promoter_pool;
    const StatusOr<std::vector<PlanResponse>> sweep_responses =
        SolveBatch(*p.context, request);
    if (!sweep_responses.ok()) {
      err << "oipa_cli: " << sweep_responses.status().ToString() << "\n";
      return 1;
    }
    JsonValue sweep = JsonValue::Array();
    for (const PlanResponse& r : *sweep_responses) {
      JsonValue row = PlanJson(p, r);
      row.Set("k", r.budget);
      sweep.Append(std::move(row));
    }
    result.Set("sweep", std::move(sweep));
    result.Set("sample_store", SampleStoreJson(p));
    return EmitResult(c, result, out, err);
  }

  const StatusOr<PlanResponse> r = SolvePlan(p, c.k, err);
  if (!r.ok()) {
    err << "oipa_cli: " << r.status().ToString() << "\n";
    return 1;
  }
  result.Set("plan", PlanJson(p, *r));
  result.Set("sample_store", SampleStoreJson(p));
  if (c.command == "simulate") {
    result.Set("simulate", SimulateJson(p, r->plan, err));
  }
  return EmitResult(c, result, out, err);
}

// --------------------------------------------------------------- serving

/// Renders this config's plan stage as one wire-protocol request line
/// (see src/serve/wire.h). Seed slots mirror the local pipeline's
/// per-stage derivations, so daemon and local answers agree
/// bit-for-bit.
std::string WirePlanRequestLine(const CliConfig& c) {
  JsonValue dataset = JsonValue::Object();
  dataset.Set("name", c.dataset)
      .Set("n", c.n)
      .Set("topics", static_cast<int64_t>(c.num_topics))
      .Set("scale", c.scale)
      .Set("pool_fraction", c.pool_fraction)
      .Set("seed", static_cast<int64_t>(c.seed))
      .Set("ell", static_cast<int64_t>(c.ell))
      .Set("alpha", c.alpha)
      .Set("beta", c.beta);
  JsonValue sampling = JsonValue::Object();
  // BuildContext samples at seed+5 (each local pipeline stage draws
  // from its own derived stream); the daemon uses sampling.seed as-is.
  sampling.Set("theta", c.theta)
      .Set("seed", static_cast<int64_t>(c.seed + 5))
      .Set("epsilon", c.sampling_epsilon)
      .Set("max_theta", c.max_theta)
      .Set("stopping", c.stopping);
  if (c.threads > 0) {
    // Pin the daemon's sampling width like the local pipeline's; the
    // samples (and therefore the answer) are identical either way.
    sampling.Set("threads", static_cast<int64_t>(c.threads));
  }
  JsonValue plan = JsonValue::Object();
  plan.Set("method", c.method);
  JsonValue budgets = JsonValue::Array();
  budgets.Append(static_cast<int64_t>(c.k));
  plan.Set("budgets", std::move(budgets))
      .Set("gap", c.gap)
      .Set("epsilon", c.epsilon)
      .Set("bound", c.bound)
      .Set("max_nodes", c.max_nodes);
  if (c.threads >= 0) {
    plan.Set("threads", static_cast<int64_t>(c.threads));
  }
  if (c.deadline_ms > 0) plan.Set("deadline_ms", c.deadline_ms);
  plan.Set("seed", static_cast<int64_t>(c.seed));

  JsonValue request = JsonValue::Object();
  request.Set("id", "oipa_cli")
      .Set("dataset", std::move(dataset))
      .Set("sampling", std::move(sampling))
      .Set("plan", std::move(plan));
  return request.Dump(-1);
}

Status SplitHostPort(const std::string& server, std::string* host,
                     int* port) {
  const size_t colon = server.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == server.size()) {
    return Status::InvalidArgument("--server expects host:port, got '" +
                                   server + "'");
  }
  *host = server.substr(0, colon);
  const std::string port_text = server.substr(colon + 1);
  int parsed = 0;
  for (const char ch : port_text) {
    if (ch < '0' || ch > '9' || parsed > 65535) {
      return Status::InvalidArgument("--server port '" + port_text +
                                     "' is not in [1, 65535]");
    }
    parsed = parsed * 10 + (ch - '0');
  }
  if (parsed < 1 || parsed > 65535) {
    return Status::InvalidArgument("--server port '" + port_text +
                                   "' is not in [1, 65535]");
  }
  *host = *host == "localhost" ? "127.0.0.1" : *host;
  *port = parsed;
  return Status::Ok();
}

/// `plan --server=host:port`: ship the plan stage to a running
/// oipa_serve daemon and print its response (pretty-printed at
/// --indent). Exit code mirrors the response's "ok" flag.
int RunRemotePlan(const CliConfig& c, std::ostream& out,
                  std::ostream& err) {
  std::string host;
  int port = 0;
  if (const Status split = SplitHostPort(c.server, &host, &port);
      !split.ok()) {
    err << "oipa_cli: " << split.ToString() << "\n";
    return 2;
  }
  err << "[oipa_cli] planning via oipa_serve at " << c.server << "...\n";
  serve::ClientOptions client_options;
  client_options.retries = c.retries;
  client_options.read_timeout_ms = static_cast<int>(c.timeout_ms);
  // Determinism contract: the retry schedule derives from --seed.
  client_options.jitter_seed = c.seed;
  const StatusOr<std::string> response = serve::RequestOverTcp(
      host, port, WirePlanRequestLine(c), client_options);
  if (!response.ok()) {
    err << "oipa_cli: " << response.status().ToString() << "\n";
    return 1;
  }
  const StatusOr<JsonValue> parsed = serve::ParseJson(*response);
  if (!parsed.ok()) {
    err << "oipa_cli: unparsable daemon response: "
        << parsed.status().ToString() << "\n";
    out << *response << "\n";
    return 1;
  }
  const std::string rendered = parsed->Dump(c.indent);
  out << rendered << "\n";
  if (!c.output.empty()) {
    std::ofstream file(c.output);
    file << rendered << "\n";
    if (!file) {
      err << "oipa_cli: cannot write --output file '" << c.output << "'\n";
      return 1;
    }
    err << "[oipa_cli] wrote " << c.output << "\n";
  }
  const JsonValue* ok = parsed->Find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value() ? 0 : 1;
}

/// Signal handlers may only call the async-signal-safe
/// PlanServer::RequestShutdown; the pointer is published before the
/// handlers are installed and cleared after they are restored.
serve::PlanServer* g_serve_command_server = nullptr;

extern "C" void HandleServeSignal(int /*signum*/) {
  if (g_serve_command_server != nullptr) {
    g_serve_command_server->RequestShutdown();
  }
}

/// `serve`: run the planning daemon in-process until SIGINT/SIGTERM,
/// then drain in-flight solves and exit (the standalone oipa_serve
/// binary is this loop minus the CLI flag surface).
int RunServe(const CliConfig& c, std::ostream& out, std::ostream& err) {
  serve::ServerOptions options;
  options.host = c.host;
  options.port = c.port;
  options.workers = c.workers;
  options.max_contexts = c.max_contexts;
  options.store_budget_bytes = c.store_budget_mb * 1024 * 1024;

  serve::PlanServer server(options);
  if (const Status started = server.Start(); !started.ok()) {
    err << "oipa_cli: " << started.ToString() << "\n";
    return 1;
  }
  g_serve_command_server = &server;
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);

  // The smoke harness and humans both scrape this line for the port.
  out << "oipa_serve listening on " << options.host << ":"
      << server.port() << std::endl;

  server.Wait();
  err << "[oipa_cli] draining...\n";
  server.Stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_command_server = nullptr;
  err << "[oipa_cli] stopped\n";
  return 0;
}

}  // namespace

// --------------------------------------------------------------- parsing

Status ParseBoundVariant(const std::string& name, BoundVariant* out) {
  if (name == "zero") {
    *out = BoundVariant::kZeroAnchored;
    return Status::Ok();
  }
  if (name == "paper") {
    *out = BoundVariant::kPaperTangent;
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown --bound '" + name +
                                 "' (expected zero|paper)");
}

Status ParseCliConfig(const FlagParser& flags, CliConfig* config) {
  CliConfig c;
  if (flags.positional().empty()) {
    return Status::InvalidArgument("missing subcommand");
  }
  c.command = flags.positional().front();
  if (!IsKnownCommand(c.command)) {
    return Status::InvalidArgument("unknown subcommand '" + c.command +
                                   "' (expected generate|learn|plan|"
                                   "simulate|bench|serve)");
  }

  c.dataset = flags.GetString("dataset", c.dataset);
  if (c.dataset != "synthetic" && c.dataset != "lastfm" &&
      c.dataset != "dblp" && c.dataset != "tweet") {
    return Status::InvalidArgument(
        "unknown --dataset '" + c.dataset +
        "' (expected synthetic|lastfm|dblp|tweet)");
  }
  c.n = flags.GetInt("n", c.n);
  c.num_topics = static_cast<int>(flags.GetInt("topics", c.num_topics));
  c.scale = flags.GetDouble("scale", c.scale);
  c.pool_fraction = flags.GetDouble("pool_fraction", c.pool_fraction);

  c.learn = flags.GetBool("learn", c.learn);
  c.cascades = static_cast<int>(flags.GetInt("cascades", c.cascades));
  c.em_iterations =
      static_cast<int>(flags.GetInt("em_iterations", c.em_iterations));

  c.progressive = flags.GetBool("progressive", c.progressive);
  c.method = flags.GetString("method", c.method);
  if (c.method.empty()) {
    // Back-compat: --progressive picked between the two paper solvers
    // before --method existed.
    c.method = c.progressive ? "bab-p" : "bab";
  }
  if (c.method != "list" && !SolverRegistry::Global().Contains(c.method)) {
    // Find() composes the "unknown solver ... (registered: ...)" message.
    return SolverRegistry::Global().Find(c.method).status();
  }

  c.k = static_cast<int>(flags.GetInt("k", c.k));
  c.ell = static_cast<int>(flags.GetInt("ell", c.ell));
  c.theta = flags.GetInt("theta", c.theta);
  c.epsilon = flags.GetDouble("epsilon", c.epsilon);
  c.sampling_epsilon =
      flags.GetDouble("sampling_epsilon", c.sampling_epsilon);
  c.max_theta = flags.GetInt("max_theta", c.max_theta);
  c.stopping = flags.GetString("stopping", c.stopping);
  c.share_samples = flags.GetBool("share_samples", c.share_samples);
  c.gap = flags.GetDouble("gap", c.gap);
  c.alpha = flags.GetDouble("alpha", c.alpha);
  c.beta = flags.GetDouble("beta", c.beta);
  c.bound = flags.GetString("bound", c.bound);
  c.max_nodes = flags.GetInt("max_nodes", c.max_nodes);
  c.deadline_ms = flags.GetInt("deadline_ms", c.deadline_ms);
  c.server = flags.GetString("server", c.server);
  c.retries = static_cast<int>(flags.GetInt("retries", c.retries));
  c.timeout_ms = flags.GetInt("timeout_ms", c.timeout_ms);
  c.host = flags.GetString("host", c.host);
  c.port = static_cast<int>(flags.GetInt("port", c.port));
  c.workers = static_cast<int>(flags.GetInt("workers", c.workers));
  c.max_contexts =
      static_cast<int>(flags.GetInt("max_contexts", c.max_contexts));
  c.store_budget_mb = flags.GetInt("store_budget_mb", c.store_budget_mb);
  c.trials = static_cast<int>(flags.GetInt("trials", c.trials));
  c.k_sweep = flags.GetIntList("k", {c.k});

  if (flags.Has("threads")) {
    c.threads = static_cast<int>(flags.GetInt("threads", 0));
  }
  c.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  c.indent = static_cast<int>(flags.GetInt("indent", c.indent));
  c.output = flags.GetString("output", c.output);

  if (c.n < 1) return Status::InvalidArgument("--n must be >= 1");
  if (c.num_topics < 1) {
    return Status::InvalidArgument("--topics must be >= 1");
  }
  if (c.k < 1) return Status::InvalidArgument("--k must be >= 1");
  if (c.ell < 1) return Status::InvalidArgument("--ell must be >= 1");
  if (c.theta < 1) return Status::InvalidArgument("--theta must be >= 1");
  if (c.epsilon <= 0.0 || c.epsilon >= 1.0) {
    return Status::InvalidArgument("--epsilon must be in (0, 1)");
  }
  if (c.sampling_epsilon < 0.0 || c.sampling_epsilon >= 1.0) {
    return Status::InvalidArgument(
        "--sampling_epsilon must be in [0, 1) (0 = one-shot solve)");
  }
  if (c.sampling_epsilon > 0.0 && c.max_theta < c.theta) {
    // Only meaningful for progressive runs; a plain --theta above the
    // default growth cap is fine.
    return Status::InvalidArgument("--max_theta must be >= --theta");
  }
  if (c.trials < 1) return Status::InvalidArgument("--trials must be >= 1");
  if (flags.Has("threads") &&
      (c.threads < 0 || c.threads > kMaxBabWorkers)) {
    // Rejected at parse time: the request layer would refuse the same
    // value only after the full dataset/sampling pipeline has run.
    return Status::InvalidArgument("--threads must be in [0, " +
                                   std::to_string(kMaxBabWorkers) + "]");
  }
  for (const int64_t budget : c.k_sweep) {
    if (budget < 1) return Status::InvalidArgument("--k entries must be >= 1");
  }
  if (c.command != "bench" && c.k_sweep.size() > 1) {
    return Status::InvalidArgument(
        "--k accepts a list only with the bench subcommand");
  }
  if (flags.Has("deadline_ms") && c.deadline_ms < 1) {
    // Mirrors the request layer (PlanRequest::deadline_ms must be >= 1)
    // but fails before the dataset/sampling pipeline runs.
    return Status::InvalidArgument("--deadline_ms must be >= 1");
  }
  if (!c.server.empty() && c.command != "plan") {
    return Status::InvalidArgument(
        "--server is only supported with the plan subcommand");
  }
  if (c.retries < 0) {
    return Status::InvalidArgument("--retries must be >= 0");
  }
  if (c.timeout_ms < 1) {
    return Status::InvalidArgument("--timeout_ms must be >= 1");
  }
  if (c.port < 0 || c.port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  if (c.workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  if (c.max_contexts < 1) {
    return Status::InvalidArgument("--max_contexts must be >= 1");
  }
  if (c.store_budget_mb < 0) {
    return Status::InvalidArgument("--store_budget_mb must be >= 0");
  }
  OIPA_RETURN_IF_ERROR(ParseBoundVariant(c.bound, &c.variant));
  StatusOr<StoppingRuleKind> stopping = ParseStoppingRule(c.stopping);
  if (!stopping.ok()) return stopping.status();
  c.stopping_rule = *stopping;

  *config = std::move(c);
  return Status::Ok();
}

std::string UsageString() {
  std::ostringstream os;
  os << "usage: oipa_cli <command> [--flag=value ...]\n"
     << "\n"
     << "commands:\n"
     << "  generate   build a dataset and report its shape\n"
     << "  learn      + simulate an action log and learn TIC probabilities\n"
     << "  plan       + sample MRR sets and solve OIPA with BAB/BAB-P\n"
     << "  simulate   + validate the plan with forward Monte-Carlo\n"
     << "  bench      plan across a budget sweep (--k=10,20,50)\n"
     << "  serve      run the planning daemon (newline-delimited JSON\n"
     << "             over TCP; see README.md \"Serving\")\n"
     << "\n"
     << "flags (defaults in parentheses):\n"
     << "  --dataset=synthetic|lastfm|dblp|tweet  (synthetic)\n"
     << "  --n=<vertices>           synthetic graph size (2000)\n"
     << "  --topics=<count>         synthetic topic count (10)\n"
     << "  --scale=<frac>           dblp/tweet scale (0.01)\n"
     << "  --method=<solver|list>   registered solver name; 'list' prints\n"
     << "                           the registry (bab-p; bab when\n"
     << "                           --progressive=false)\n"
     << "  --k=<budget[,budget..]>  assignment budget; list for bench (10)\n"
     << "  --ell=<pieces>           campaign pieces L (3)\n"
     << "  --theta=<samples>        MRR samples (20000); the starting\n"
     << "                           size under --sampling_epsilon\n"
     << "  --epsilon=<0..1>         BAB-P threshold decay (0.5)\n"
     << "  --sampling_epsilon=<0..1> progressive (ε)-stopping: grow the\n"
     << "                           samples and re-solve until in-sample\n"
     << "                           and holdout utilities agree within\n"
     << "                           this relative gap (0 = off)\n"
     << "  --max_theta=<samples>    growth cap for --sampling_epsilon\n"
     << "                           (2000000)\n"
     << "  --stopping=holdout|opim  progressive stopping rule: holdout\n"
     << "                           gap agreement, or OPIM-style bound\n"
     << "                           pair certifying a (1-1/e-eps) ratio\n"
     << "                           (holdout)\n"
     << "  --share_samples=<bool>   resolve MRR samples through the\n"
     << "                           process-wide shared store registry\n"
     << "                           (true)\n"
     << "  --gap=<frac>             termination gap (0.01)\n"
     << "  --alpha --beta           logistic adoption model (2.0, 1.0)\n"
     << "  --bound=zero|paper       tangent-bound variant (zero)\n"
     << "  --progressive=<bool>     BAB-P vs plain BAB (true)\n"
     << "  --learn                  plan on TIC-learned probabilities\n"
     << "  --cascades=<count>       action-log cascades for --learn (1000)\n"
     << "  --trials=<count>         simulate Monte-Carlo trials (2000)\n"
     << "  --threads=<count>        solver worker threads; 0 = auto via\n"
     << "                           hardware/OIPA_THREADS; absent = the\n"
     << "                           deterministic sequential solver\n"
     << "  --deadline_ms=<ms>       wall-clock budget for the solve; an\n"
     << "                           expired deadline cancels at the next\n"
     << "                           progress poll with partial telemetry\n"
     << "                           (0 = none)\n"
     << "  --server=<host:port>     plan only: send the request to a\n"
     << "                           running oipa_serve daemon instead of\n"
     << "                           solving locally\n"
     << "  --retries=<count>        --server only: extra attempts on\n"
     << "                           transport errors or overload\n"
     << "                           rejections, with jittered back-off\n"
     << "                           honoring retry_after_ms (2)\n"
     << "  --timeout_ms=<ms>        --server only: per-read response\n"
     << "                           budget; a dead daemon errors instead\n"
     << "                           of hanging (120000)\n"
     << "  --seed=<u64>             master RNG seed (1)\n"
     << "  --indent=<n>             JSON indent; negative = compact (2)\n"
     << "  --output=<path>          also write the JSON result to a file\n"
     << "\n"
     << "serve flags:\n"
     << "  --host=<addr> --port=<p> bind address (127.0.0.1:0; port 0\n"
     << "                           picks a free port, printed on stdout)\n"
     << "  --workers=<count>        solver worker threads (2)\n"
     << "  --max_contexts=<count>   planning contexts kept hot (8)\n"
     << "  --store_budget_mb=<mb>   sample-store retention budget; 0\n"
     << "                           retains nothing (0)\n";
  return os.str();
}

int RunCommand(const CliConfig& config, std::ostream& out,
               std::ostream& err) {
  if (config.command == "serve") return RunServe(config, out, err);
  if (config.command == "plan" && !config.server.empty()) {
    return RunRemotePlan(config, out, err);
  }
  if (config.threads > 0) SetNumThreads(config.threads);
  return RunPipeline(config, out, err);
}

int RunCli(int argc, char** argv, std::ostream& out, std::ostream& err) {
  const FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    out << UsageString();
    return 0;
  }
  if (flags.GetString("method", "") == "list") {
    out << SolverRegistry::Global().DescribeAll();
    return 0;
  }
  CliConfig config;
  const Status status = ParseCliConfig(flags, &config);
  if (!status.ok()) {
    err << "oipa_cli: " << status.ToString() << "\n\n" << UsageString();
    return 2;
  }
  return RunCommand(config, out, err);
}

}  // namespace cli
}  // namespace oipa
