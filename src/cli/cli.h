#ifndef OIPA_CLI_CLI_H_
#define OIPA_CLI_CLI_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "oipa/tangent_bound.h"
#include "rrset/sample_store.h"
#include "util/flags.h"
#include "util/status.h"

namespace oipa {
namespace cli {

/// Fully-resolved configuration of one oipa_cli invocation. Every field
/// maps to a --flag (see UsageString()); defaults mirror
/// examples/quickstart.cpp so `oipa_cli plan` out of the box reproduces
/// the quickstart scenario with JSON output.
struct CliConfig {
  /// generate | learn | plan | simulate | bench | serve.
  std::string command;

  // ------------------------------------------------------ dataset stage
  /// synthetic | lastfm | dblp | tweet.
  std::string dataset = "synthetic";
  /// Vertices of the synthetic graph (ignored for named datasets).
  int64_t n = 2000;
  /// Topics of the synthetic probability model.
  int num_topics = 10;
  /// Scale of the dblp/tweet datasets (fraction of paper-size vertices).
  double scale = 0.01;
  /// Fraction of users eligible as promoters (synthetic dataset).
  double pool_fraction = 0.1;

  // ------------------------------------------------------ learning stage
  /// If true, `plan`/`simulate`/`bench` optimize on TIC-learned
  /// probabilities (generate log -> EM) instead of the ground truth.
  bool learn = false;
  /// Item cascades simulated into the action log.
  int cascades = 1000;
  /// TIC EM credit-attribution iterations.
  int em_iterations = 5;

  // ------------------------------------------------------ planning stage
  /// Registered solver name (see SolverRegistry::Global().Names());
  /// resolved from --progressive when --method is not given. The special
  /// value "list" makes oipa_cli print the registry and exit.
  std::string method;
  /// Total assignment budget k.
  int k = 10;
  /// Campaign pieces L (the paper's l).
  int ell = 3;
  /// MRR samples (the starting theta under --sampling_epsilon).
  int64_t theta = 20'000;
  /// BAB-P threshold decay epsilon.
  double epsilon = 0.5;
  /// Progressive (ε)-stopping tolerance: > 0 enables a holdout
  /// collection and grows the sample store (doubling from --theta, up to
  /// --max_theta) until the solved plan's in-sample and holdout
  /// estimates agree within this relative gap. 0 = one-shot solve.
  double sampling_epsilon = 0.0;
  /// Growth cap for --sampling_epsilon.
  int64_t max_theta = 2'000'000;
  /// holdout (in-sample/holdout gap) | opim (certified bound ratio):
  /// which rule ends the progressive loop under --sampling_epsilon.
  std::string stopping = "holdout";
  StoppingRuleKind stopping_rule = StoppingRuleKind::kHoldoutGap;
  /// Resolve the MRR sample store through the process-wide registry so
  /// runs sharing a sampling configuration share one sampling pass
  /// (--share_samples=false forces a private store).
  bool share_samples = true;
  /// Relative termination gap.
  double gap = 0.01;
  /// Logistic adoption parameters.
  double alpha = 2.0;
  double beta = 1.0;
  /// zero (kZeroAnchored) | paper (kPaperTangent).
  std::string bound = "zero";
  BoundVariant variant = BoundVariant::kZeroAnchored;
  /// BAB-P (true) vs plain BAB (false).
  bool progressive = true;
  /// Node-expansion safety cap.
  int64_t max_nodes = 100'000;
  /// Wall-clock budget for the solve (0 = none): an expired deadline
  /// cancels at the solver's next progress poll and the JSON result
  /// carries cancelled/deadline_exceeded plus partial telemetry.
  int64_t deadline_ms = 0;

  // ------------------------------------------------------ serving
  /// `plan` only: "host:port" of a running oipa_serve daemon. When set,
  /// the dataset/sampling/plan stages run in the daemon (sharing its
  /// context cache) and the response JSON is printed instead.
  std::string server;
  /// `plan --server` resilience: extra attempts after the first on
  /// transport errors and overload rejections (exponential back-off
  /// with seeded jitter, honoring the daemon's retry_after_ms hint).
  int retries = 2;
  /// `plan --server` per-recv() read budget; a dead daemon surfaces as
  /// a DeadlineExceeded error instead of a hang.
  int64_t timeout_ms = 120'000;
  /// `serve` subcommand: bind address, worker pool, and cache budgets
  /// (mirrors the standalone oipa_serve binary's flags).
  std::string host = "127.0.0.1";
  int port = 0;
  int workers = 2;
  int max_contexts = 8;
  int64_t store_budget_mb = 0;

  // ------------------------------------------------------ validation
  /// Forward Monte-Carlo trials for `simulate`.
  int trials = 2000;

  // ------------------------------------------------------ bench sweep
  /// Budgets swept by `bench` (--k=10,20,50); falls back to {k}.
  std::vector<int64_t> k_sweep;

  // ------------------------------------------------------ runtime
  /// Worker threads. -1 (flag absent) keeps the pre-flag behavior:
  /// auto-parallel MRR sampling but the deterministic sequential solver,
  /// so default runs reproduce bit-for-bit per --seed. --threads=0 =
  /// full auto (hardware concurrency / OIPA_THREADS, parallel solver);
  /// N = exactly N solver workers (N > 1: utility within --gap of
  /// sequential, plan may differ between runs).
  int threads = -1;
  uint64_t seed = 1;
  /// Pretty-print indent for the JSON result (<0 = compact).
  int indent = 2;
  /// Also write the JSON result to this file (empty = stdout only).
  std::string output;
};

/// Maps a bound name ("zero" | "paper") to its BoundVariant.
Status ParseBoundVariant(const std::string& name, BoundVariant* out);

/// Parses and validates flags into `config`. The subcommand itself comes
/// from the first positional argument and is validated here too.
Status ParseCliConfig(const FlagParser& flags, CliConfig* config);

/// One-screen usage text.
std::string UsageString();

/// Dispatches a parsed config. JSON results go to `out`; progress and
/// errors go to `err`. Returns a process exit code (0 = success).
int RunCommand(const CliConfig& config, std::ostream& out,
               std::ostream& err);

/// Full entry point used by main(): parse argv, dispatch, report errors.
int RunCli(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace cli
}  // namespace oipa

#endif  // OIPA_CLI_CLI_H_
