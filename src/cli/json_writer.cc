#include "cli/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace oipa {

JsonValue::JsonValue() : kind_(Kind::kNull) {}
JsonValue::JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
JsonValue::JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
JsonValue::JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}
JsonValue::JsonValue(uint64_t v)
    : kind_(Kind::kInt), int_(static_cast<int64_t>(v)) {}
JsonValue::JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
JsonValue::JsonValue(const char* s)
    : kind_(Kind::kString), string_(s) {}
JsonValue::JsonValue(std::string s)
    : kind_(Kind::kString), string_(std::move(s)) {}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  OIPA_CHECK(is_object()) << "Set() on a non-object JsonValue";
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  OIPA_CHECK(is_array()) << "Append() on a non-array JsonValue";
  elements_.push_back(std::move(value));
  return *this;
}

bool JsonValue::bool_value() const {
  OIPA_CHECK(is_bool()) << "bool_value() on a non-bool JsonValue";
  return bool_;
}

int64_t JsonValue::int_value() const {
  OIPA_CHECK(is_number()) << "int_value() on a non-number JsonValue";
  return is_int() ? int_ : static_cast<int64_t>(double_);
}

double JsonValue::double_value() const {
  OIPA_CHECK(is_number()) << "double_value() on a non-number JsonValue";
  return is_double() ? double_ : static_cast<double>(int_);
}

const std::string& JsonValue::string_value() const {
  OIPA_CHECK(is_string()) << "string_value() on a non-string JsonValue";
  return string_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  OIPA_CHECK(is_object()) << "Find() on a non-object JsonValue";
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(size_t i) const {
  OIPA_CHECK(is_array()) << "at() on a non-array JsonValue";
  OIPA_CHECK_LT(i, elements_.size());
  return elements_[i];
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  OIPA_CHECK(is_object()) << "members() on a non-object JsonValue";
  return members_;
}

size_t JsonValue::size() const {
  if (is_object()) return members_.size();
  if (is_array()) return elements_.size();
  return 0;
}

std::string JsonValue::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  const char* sep = pretty ? ": " : ":";

  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) *out += ',';
        first = false;
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        *out += '"';
        *out += Escape(k);
        *out += '"';
        *out += sep;
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      bool first = true;
      for (const auto& v : elements_) {
        if (!first) *out += ',';
        first = false;
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += ']';
      break;
    }
  }
}

}  // namespace oipa
