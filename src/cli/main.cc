// oipa_cli: the end-to-end OIPA scenario driver.
//
// Chains dataset generation -> (optional) TIC learning -> MRR sampling ->
// branch-and-bound planning -> forward-simulation validation in one
// invocation and emits a JSON result on stdout (progress on stderr).
//
// Solvers are dispatched by name through SolverRegistry (oipa/api/).
//
//   oipa_cli plan --dataset=synthetic --k=10
//   oipa_cli plan --method=tim --k=10
//   oipa_cli simulate --dataset=lastfm --k=20 --ell=5 --theta=50000
//   oipa_cli bench --method=bab-p --k=10,20,50 --output=BENCH_cli.json
//   oipa_cli --method=list
//   oipa_cli --help

#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return oipa::cli::RunCli(argc, argv, std::cout, std::cerr);
}
