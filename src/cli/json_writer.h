#ifndef OIPA_CLI_JSON_WRITER_H_
#define OIPA_CLI_JSON_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace oipa {

/// A minimal ordered JSON document builder for CLI / benchmark output.
/// Insertion order of object keys is preserved so emitted results are
/// stable and diff-friendly across runs (important for BENCH_*.json
/// trajectories). Build values bottom-up and Dump() the root:
///
///   JsonValue row = JsonValue::Object();
///   row.Set("k", 10).Set("utility", 12.5);
///   JsonValue rows = JsonValue::Array();
///   rows.Append(std::move(row));
///   std::string text = rows.Dump(/*indent=*/2);
class JsonValue {
 public:
  /// A JSON null.
  JsonValue();
  JsonValue(bool b);                      // NOLINT(runtime/explicit)
  JsonValue(int v);                       // NOLINT(runtime/explicit)
  JsonValue(int64_t v);                   // NOLINT(runtime/explicit)
  JsonValue(uint64_t v);                  // NOLINT(runtime/explicit)
  JsonValue(double v);                    // NOLINT(runtime/explicit)
  JsonValue(const char* s);               // NOLINT(runtime/explicit)
  JsonValue(std::string s);               // NOLINT(runtime/explicit)

  static JsonValue Object();
  static JsonValue Array();

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Scalar readers (the serve wire protocol parses requests back into
  /// JsonValue trees). Each aborts on a kind mismatch — callers gate on
  /// the is_*() predicates first; is_number() admits both readers below
  /// (int_value() truncates a double, double_value() widens an int).
  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const;

  /// Object only: the member named `key`, or nullptr when absent.
  const JsonValue* Find(const std::string& key) const;

  /// Array only: element `i` (aborts out of range).
  const JsonValue& at(size_t i) const;

  /// Object only: members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object only: inserts (or overwrites) `key`. Returns *this so sets
  /// chain. New keys keep insertion order.
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Array only: appends an element. Returns *this.
  JsonValue& Append(JsonValue value);

  size_t size() const;

  /// Serializes the value. `indent` < 0 emits compact one-line JSON;
  /// otherwise pretty-prints with `indent` spaces per nesting level.
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  std::string Dump(int indent = -1) const;

  /// Escapes `s` as the contents of a JSON string literal (no quotes).
  static std::string Escape(const std::string& s);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;  // object
  std::vector<JsonValue> elements_;                         // array
};

}  // namespace oipa

#endif  // OIPA_CLI_JSON_WRITER_H_
