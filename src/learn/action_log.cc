#include "learn/action_log.h"

#include <algorithm>

#include "topic/influence_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace oipa {

ActionLog GenerateActionLog(const Graph& graph, const EdgeTopicProbs& truth,
                            int num_items, int seeds_per_item,
                            uint64_t seed) {
  OIPA_CHECK_GT(num_items, 0);
  OIPA_CHECK_GT(seeds_per_item, 0);
  OIPA_CHECK_GT(graph.num_vertices(), 0);
  Rng rng(seed);
  const int num_topics = truth.num_topics();

  ActionLog log;
  log.item_topics.reserve(num_items);

  std::vector<int> activation_round(graph.num_vertices());
  std::vector<VertexId> frontier, next;
  for (int item = 0; item < num_items; ++item) {
    const TopicVector topics = TopicVector::SampleSparse(
        num_topics, std::min(2, num_topics), &rng);
    const InfluenceGraph ig =
        InfluenceGraph::ForPiece(graph, truth, topics);
    log.item_topics.push_back(topics);

    // Round-stamped forward cascade.
    std::fill(activation_round.begin(), activation_round.end(), -1);
    frontier.clear();
    for (int s = 0; s < seeds_per_item; ++s) {
      const VertexId v =
          static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
      if (activation_round[v] < 0) {
        activation_round[v] = 0;
        frontier.push_back(v);
        log.events.push_back({v, item, 0});
      }
    }
    int round = 1;
    while (!frontier.empty()) {
      next.clear();
      for (VertexId u : frontier) {
        const auto nbrs = graph.OutNeighbors(u);
        const auto eids = graph.OutEdgeIds(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const VertexId v = nbrs[i];
          if (activation_round[v] >= 0) continue;
          if (rng.NextBernoulli(ig.EdgeProb(eids[i]))) {
            activation_round[v] = round;
            next.push_back(v);
            log.events.push_back({v, item, round});
          }
        }
      }
      frontier.swap(next);
      ++round;
    }
  }
  std::sort(log.events.begin(), log.events.end(),
            [](const ActionEvent& a, const ActionEvent& b) {
              if (a.item != b.item) return a.item < b.item;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.user < b.user;
            });
  return log;
}

}  // namespace oipa
