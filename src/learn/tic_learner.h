#ifndef OIPA_LEARN_TIC_LEARNER_H_
#define OIPA_LEARN_TIC_LEARNER_H_

#include <cstdint>

#include "graph/graph.h"
#include "learn/action_log.h"
#include "topic/edge_topic_probs.h"

namespace oipa {

/// Options for the topic-aware influence learner.
struct TicLearnerOptions {
  /// EM credit-attribution iterations (1 = plain frequency estimation).
  int iterations = 5;
  /// Pseudo-count of prior successes. Together with `prior_failures`
  /// this sets the probability of a never-observed (edge, topic) pair to
  /// smoothing / (smoothing + prior_failures) ~ 1% — unobserved edges
  /// must NOT default to coin-flip influence, or the learned influence
  /// graphs become absurdly dense.
  double smoothing = 0.01;
  /// Pseudo-count of prior failed attempts.
  double prior_failures = 1.0;
  /// Entries below this probability are dropped from the output (keeps
  /// the learned table sparse like the TIC tables the paper uses).
  double min_prob = 0.005;
  /// A parent activation at time t can explain a child activation only at
  /// t+1 (IC semantics); no window parameter needed for synthetic logs.
};

/// Learns sparse topic-wise influence probabilities p(e|z) from an action
/// log, in the spirit of the TIC model (Barbieri et al., ICDM 2012) the
/// paper trains on lastfm. EM credit attribution: each activation of v at
/// round t is explained by its in-neighbors active at round t-1; credit
/// is split proportionally to the current estimate p(t_item, e), then
/// per-topic probabilities are re-estimated as weighted success/trial
/// ratios with the item's topic mixture as weights.
EdgeTopicProbs LearnTicProbabilities(const Graph& graph,
                                     const ActionLog& log, int num_topics,
                                     const TicLearnerOptions& options);

}  // namespace oipa

#endif  // OIPA_LEARN_TIC_LEARNER_H_
