#include "learn/tic_learner.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace oipa {

namespace {

/// Per-item activation table: user -> timestamp.
using ActivationMap = std::unordered_map<VertexId, int>;

}  // namespace

EdgeTopicProbs LearnTicProbabilities(const Graph& graph,
                                     const ActionLog& log, int num_topics,
                                     const TicLearnerOptions& options) {
  OIPA_CHECK_GT(num_topics, 0);
  OIPA_CHECK_GE(options.iterations, 1);
  const EdgeId m = graph.num_edges();

  // Group events per item.
  std::vector<ActivationMap> activations(log.num_items());
  for (const ActionEvent& ev : log.events) {
    OIPA_CHECK_GE(ev.item, 0);
    OIPA_CHECK_LT(ev.item, log.num_items());
    activations[ev.item].emplace(ev.user, ev.timestamp);
  }

  // Current estimate, dense per (edge, topic); starts uniform small.
  std::vector<double> prob(static_cast<size_t>(m) * num_topics, 0.1);

  std::vector<double> success(static_cast<size_t>(m) * num_topics);
  std::vector<double> trial(static_cast<size_t>(m) * num_topics);

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::fill(success.begin(), success.end(), 0.0);
    std::fill(trial.begin(), trial.end(), 0.0);

    for (int item = 0; item < log.num_items(); ++item) {
      const ActivationMap& act = activations[item];
      const TopicVector& topics = log.item_topics[item];
      for (const auto& [v, tv] : act) {
        // Collect potential influencers: in-neighbors active exactly one
        // round earlier (IC semantics). Seeds (round 0) have no parents.
        const auto nbrs = graph.InNeighbors(v);
        const auto eids = graph.InEdgeIds(v);
        // First pass: total explanation weight for credit splitting.
        double total_weight = 0.0;
        for (size_t i = 0; i < nbrs.size(); ++i) {
          auto it = act.find(nbrs[i]);
          if (it == act.end() || it->second != tv - 1) continue;
          double pe = 0.0;
          for (int z = 0; z < num_topics; ++z) {
            pe += topics[z] *
                  prob[static_cast<size_t>(eids[i]) * num_topics + z];
          }
          total_weight += pe;
        }
        for (size_t i = 0; i < nbrs.size(); ++i) {
          auto it = act.find(nbrs[i]);
          if (it == act.end()) continue;
          const int tu = it->second;
          if (tu >= tv) continue;  // no chance to influence
          // Every earlier-active parent had one chance (trial); only
          // parents active at tv-1 can carry credit for the success.
          double pe = 0.0;
          for (int z = 0; z < num_topics; ++z) {
            pe += topics[z] *
                  prob[static_cast<size_t>(eids[i]) * num_topics + z];
          }
          double credit = 0.0;
          if (tu == tv - 1 && total_weight > 0.0) {
            credit = pe / total_weight;
          }
          for (int z = 0; z < num_topics; ++z) {
            const size_t idx =
                static_cast<size_t>(eids[i]) * num_topics + z;
            trial[idx] += topics[z];
            success[idx] += credit * topics[z];
          }
        }
        // Failed attempts: active parents whose target v never activated
        // are handled below (v not in act), so nothing to do here.
      }
      // Trials from parents whose activation never converted the child.
      for (EdgeId e = 0; e < m; ++e) {
        const Edge& edge = graph.edge(e);
        auto itu = act.find(edge.src);
        if (itu == act.end()) continue;
        if (act.count(edge.dst)) continue;  // handled above
        for (int z = 0; z < num_topics; ++z) {
          trial[static_cast<size_t>(e) * num_topics + z] += topics[z];
        }
      }
    }

    for (size_t idx = 0; idx < prob.size(); ++idx) {
      prob[idx] =
          (success[idx] + options.smoothing) /
          (trial[idx] + options.smoothing + options.prior_failures);
      prob[idx] = std::clamp(prob[idx], 0.0, 1.0);
    }
  }

  // Emit sparse output, dropping negligible entries.
  EdgeTopicProbs learned(m, num_topics);
  for (EdgeId e = 0; e < m; ++e) {
    std::vector<TopicProb> entries;
    for (int z = 0; z < num_topics; ++z) {
      const double p = prob[static_cast<size_t>(e) * num_topics + z];
      if (p >= options.min_prob) {
        entries.push_back({z, static_cast<float>(p)});
      }
    }
    learned.SetEdge(e, std::move(entries));
  }
  return learned;
}

}  // namespace oipa
