#ifndef OIPA_LEARN_ACTION_LOG_H_
#define OIPA_LEARN_ACTION_LOG_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "topic/edge_topic_probs.h"
#include "topic/topic_vector.h"

namespace oipa {

/// One entry of a propagation log: `user` performed the action on `item`
/// at (discrete) time `timestamp`. This is the "log of past propagation
/// activities" the paper learns influence probabilities from (lastfm).
struct ActionEvent {
  VertexId user;
  int item;
  int timestamp;
};

/// A propagation log over a set of items with known topic mixtures.
struct ActionLog {
  /// Topic mixture of each item (items are what propagate in cascades).
  std::vector<TopicVector> item_topics;
  /// Events sorted by (item, timestamp).
  std::vector<ActionEvent> events;

  int num_items() const { return static_cast<int>(item_topics.size()); }
};

/// Generates a synthetic action log by running topic-aware IC cascades of
/// `num_items` items (each a sparse topic mixture) from random seed users
/// over the ground-truth probabilities; the BFS round of each activation
/// is its timestamp. The log is the training input for TicLearner; tests
/// compare learned probabilities against `truth`.
ActionLog GenerateActionLog(const Graph& graph, const EdgeTopicProbs& truth,
                            int num_items, int seeds_per_item,
                            uint64_t seed);

}  // namespace oipa

#endif  // OIPA_LEARN_ACTION_LOG_H_
