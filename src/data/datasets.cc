#include "data/datasets.h"

#include <algorithm>

#include "graph/generators.h"
#include "topic/prob_models.h"
#include "util/logging.h"
#include "util/random.h"

namespace oipa {

std::vector<VertexId> SamplePromoterPool(VertexId n, double fraction,
                                         uint64_t seed) {
  OIPA_CHECK_GT(fraction, 0.0);
  OIPA_CHECK_LE(fraction, 1.0);
  Rng rng(seed);
  const VertexId target = std::max<VertexId>(
      1, static_cast<VertexId>(fraction * static_cast<double>(n)));
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  rng.Shuffle(&all);
  all.resize(std::min<VertexId>(target, n));
  std::sort(all.begin(), all.end());
  return all;
}

Dataset MakeSynthetic(VertexId n, int num_topics, double pool_fraction,
                      uint64_t seed) {
  OIPA_CHECK_GE(n, 1);
  OIPA_CHECK_GE(num_topics, 1);
  Dataset ds;
  ds.name = "synthetic";
  ds.num_topics = num_topics;
  ds.graph = std::make_unique<Graph>(GenerateHolmeKim(n, 4, 0.4, seed));
  ds.probs = std::make_unique<EdgeTopicProbs>(AssignWeightedCascadeTopics(
      *ds.graph, num_topics, /*avg_nonzeros=*/2.5, seed + 1));
  ds.promoter_pool =
      SamplePromoterPool(ds.graph->num_vertices(), pool_fraction, seed + 2);
  return ds;
}

Dataset MakeLastFmLike(uint64_t seed) {
  Dataset ds;
  ds.name = "lastfm";
  ds.num_topics = 20;
  // 1.3K users; Holme-Kim with m=6 gives ~ 2*6*1300 = 15.6K directed
  // edges and lastfm-like clustering.
  ds.graph = std::make_unique<Graph>(GenerateHolmeKim(1300, 6, 0.4, seed));
  ds.probs = std::make_unique<EdgeTopicProbs>(AssignWeightedCascadeTopics(
      *ds.graph, ds.num_topics, /*avg_nonzeros=*/3.0, seed + 1));
  ds.promoter_pool =
      SamplePromoterPool(ds.graph->num_vertices(), 0.10, seed + 2);
  return ds;
}

Dataset MakeDblpLike(double scale, uint64_t seed) {
  OIPA_CHECK_GT(scale, 0.0);
  OIPA_CHECK_LE(scale, 1.0);
  Dataset ds;
  ds.name = "dblp";
  ds.num_topics = 9;
  const VertexId n = std::max<VertexId>(
      64, static_cast<VertexId>(500'000.0 * scale));
  // Average total degree ~12 in the paper => m_per_node = 6 undirected.
  ds.graph = std::make_unique<Graph>(GenerateHolmeKim(n, 6, 0.6, seed));
  // Research-field profiles: concentrated (authors stick to few fields).
  const std::vector<TopicVector> fields = SampleNodeTopicProfiles(
      n, ds.num_topics, /*alpha=*/0.25, /*keep=*/3, seed + 1);
  ds.probs = std::make_unique<EdgeTopicProbs>(AssignAffinityTopics(
      *ds.graph, fields, /*top_k=*/3, /*scale=*/1.0));
  ds.promoter_pool =
      SamplePromoterPool(ds.graph->num_vertices(), 0.10, seed + 2);
  return ds;
}

Dataset MakeTweetLike(double scale, uint64_t seed) {
  OIPA_CHECK_GT(scale, 0.0);
  OIPA_CHECK_LE(scale, 1.0);
  Dataset ds;
  ds.name = "tweet";
  ds.num_topics = 50;
  const VertexId n = std::max<VertexId>(
      128, static_cast<VertexId>(10'000'000.0 * scale));
  ds.graph = std::make_unique<Graph>(
      GenerateRetweetForest(n, /*avg_degree=*/1.2, seed));
  // Hashtag-derived topic profiles (the paper runs LDA on hashtag
  // documents; examples/learning_pipeline.cc demonstrates that path).
  // Very sparse per-node interests yield ~1.5 non-zero probs per edge.
  const std::vector<TopicVector> interests = SampleNodeTopicProfiles(
      n, ds.num_topics, /*alpha=*/0.08, /*keep=*/2, seed + 1);
  // min_rel thins weak secondary topics so edges average ~1.5 non-zero
  // probabilities, matching the paper's tweet statistics.
  ds.probs = std::make_unique<EdgeTopicProbs>(AssignAffinityTopics(
      *ds.graph, interests, /*top_k=*/2, /*scale=*/1.0, /*min_rel=*/0.4));
  ds.promoter_pool =
      SamplePromoterPool(ds.graph->num_vertices(), 0.10, seed + 2);
  return ds;
}

Dataset MakeDatasetByName(const std::string& name, double scale,
                          uint64_t seed) {
  if (name == "lastfm") return MakeLastFmLike(seed);
  if (name == "dblp") return MakeDblpLike(scale, seed);
  if (name == "tweet") return MakeTweetLike(scale, seed);
  OIPA_CHECK(false) << "unknown dataset: " << name;
  return {};
}

}  // namespace oipa
