#ifndef OIPA_DATA_SERIALIZATION_H_
#define OIPA_DATA_SERIALIZATION_H_

#include <string>

#include "data/datasets.h"
#include "util/status.h"

namespace oipa {

/// Binary snapshot of a Dataset (graph topology + sparse topic
/// probabilities + promoter pool). Format: little-endian, magic-tagged,
/// versioned; see serialization.cc for the layout. Intended for caching
/// generated datasets between bench runs.
Status SaveDataset(const Dataset& dataset, const std::string& path);

StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace oipa

#endif  // OIPA_DATA_SERIALIZATION_H_
