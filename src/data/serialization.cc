#include "data/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.h"

namespace oipa {

namespace {

constexpr uint64_t kMagic = 0x4f49504144533031ULL;  // "OIPADS01"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > (1ULL << 33)) return false;  // sanity bound
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  OIPA_CHECK(dataset.graph != nullptr);
  OIPA_CHECK(dataset.probs != nullptr);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(dataset.name.size()));
  out.write(dataset.name.data(),
            static_cast<std::streamsize>(dataset.name.size()));
  WritePod(out, static_cast<int32_t>(dataset.num_topics));

  const Graph& g = *dataset.graph;
  WritePod(out, static_cast<int32_t>(g.num_vertices()));
  std::vector<int32_t> srcs(g.num_edges()), dsts(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    srcs[e] = g.edge(e).src;
    dsts[e] = g.edge(e).dst;
  }
  WriteVector(out, srcs);
  WriteVector(out, dsts);

  // Probabilities: per edge entry counts followed by flat entries.
  std::vector<int32_t> counts(g.num_edges());
  std::vector<int32_t> topics;
  std::vector<float> values;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto entries = dataset.probs->EdgeEntries(e);
    counts[e] = static_cast<int32_t>(entries.size());
    for (const TopicProb& tp : entries) {
      topics.push_back(tp.topic);
      values.push_back(tp.prob);
    }
  }
  WriteVector(out, counts);
  WriteVector(out, topics);
  WriteVector(out, values);
  WriteVector(out, dataset.promoter_pool);

  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  uint64_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument(path + ": bad magic");
  }
  Dataset ds;
  uint64_t name_size = 0;
  if (!ReadPod(in, &name_size) || name_size > 4096) {
    return Status::InvalidArgument(path + ": bad name length");
  }
  ds.name.resize(name_size);
  in.read(ds.name.data(), static_cast<std::streamsize>(name_size));
  int32_t num_topics = 0;
  if (!ReadPod(in, &num_topics) || num_topics <= 0) {
    return Status::InvalidArgument(path + ": bad topic count");
  }
  ds.num_topics = num_topics;

  int32_t n = 0;
  if (!ReadPod(in, &n) || n < 0) {
    return Status::InvalidArgument(path + ": bad vertex count");
  }
  std::vector<int32_t> srcs, dsts;
  if (!ReadVector(in, &srcs) || !ReadVector(in, &dsts) ||
      srcs.size() != dsts.size()) {
    return Status::InvalidArgument(path + ": bad edge arrays");
  }
  std::vector<Edge> edges(srcs.size());
  for (size_t e = 0; e < srcs.size(); ++e) {
    if (srcs[e] < 0 || srcs[e] >= n || dsts[e] < 0 || dsts[e] >= n) {
      return Status::InvalidArgument(path + ": edge endpoint out of range");
    }
    edges[e] = {srcs[e], dsts[e]};
  }
  ds.graph = std::make_unique<Graph>(n, std::move(edges));

  std::vector<int32_t> counts, topics;
  std::vector<float> values;
  if (!ReadVector(in, &counts) || !ReadVector(in, &topics) ||
      !ReadVector(in, &values) || topics.size() != values.size() ||
      counts.size() != static_cast<size_t>(ds.graph->num_edges())) {
    return Status::InvalidArgument(path + ": bad probability arrays");
  }
  ds.probs = std::make_unique<EdgeTopicProbs>(ds.graph->num_edges(),
                                              ds.num_topics);
  size_t cursor = 0;
  for (EdgeId e = 0; e < ds.graph->num_edges(); ++e) {
    if (counts[e] < 0 || cursor + counts[e] > topics.size()) {
      return Status::InvalidArgument(path + ": truncated entries");
    }
    std::vector<TopicProb> entries;
    entries.reserve(counts[e]);
    for (int32_t i = 0; i < counts[e]; ++i, ++cursor) {
      if (topics[cursor] < 0 || topics[cursor] >= ds.num_topics ||
          values[cursor] < 0.0f || values[cursor] > 1.0f) {
        return Status::InvalidArgument(path + ": invalid entry");
      }
      entries.push_back({topics[cursor], values[cursor]});
    }
    ds.probs->SetEdge(e, std::move(entries));
  }
  if (!ReadVector(in, &ds.promoter_pool)) {
    return Status::InvalidArgument(path + ": bad promoter pool");
  }
  for (VertexId v : ds.promoter_pool) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument(path + ": promoter out of range");
    }
  }
  return ds;
}

}  // namespace oipa
