#ifndef OIPA_DATA_DATASETS_H_
#define OIPA_DATA_DATASETS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "topic/edge_topic_probs.h"

namespace oipa {

/// A ready-to-use experimental dataset: social graph, learned/synthetic
/// topic-aware probabilities, and the promoter pool V_p (the paper draws
/// V_p as 10% of users).
struct Dataset {
  std::string name;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<EdgeTopicProbs> probs;
  int num_topics = 0;
  std::vector<VertexId> promoter_pool;
};

/// Deterministically samples `fraction` of all vertices as promoters.
std::vector<VertexId> SamplePromoterPool(VertexId n, double fraction,
                                         uint64_t seed);

/// lastfm-like (Table III row 1): ~1.3K vertices, ~15K directed edges,
/// 20 topics. Clustered power-law social graph; weighted-cascade style
/// topic probabilities (the paper learns these with TIC from the lastfm
/// action log — see DESIGN.md §4 for the substitution argument and
/// examples/learning_pipeline.cc for the full generate->log->learn
/// pipeline run end to end).
Dataset MakeLastFmLike(uint64_t seed = 7);

/// dblp-like (Table III row 2): co-authorship-style clustered power-law
/// graph with 9 research-field topics derived from per-author field
/// profiles. Paper scale is 0.5M/6M; `scale` shrinks vertex count
/// (default 0.1 => ~50K vertices) to keep bench defaults laptop-sized.
Dataset MakeDblpLike(double scale = 0.1, uint64_t seed = 11);

/// tweet-like (Table III row 3): extremely sparse retweet graph (average
/// degree ~1.2), 50 topics, ~1.5 non-zero topic probabilities per edge.
/// Paper scale is 10M/12M; `scale` shrinks vertex count (default 0.01 =>
/// ~100K vertices).
Dataset MakeTweetLike(double scale = 0.01, uint64_t seed = 13);

/// Free-form synthetic dataset (the CLI's and the serve daemon's
/// default): clustered power-law Holme-Kim graph with weighted-cascade
/// topic probabilities and a `pool_fraction` promoter pool.
Dataset MakeSynthetic(VertexId n, int num_topics, double pool_fraction,
                      uint64_t seed);

/// Looks up a dataset by name ("lastfm", "dblp", "tweet") at the given
/// scale (ignored for lastfm, which is already full-scale).
Dataset MakeDatasetByName(const std::string& name, double scale,
                          uint64_t seed);

}  // namespace oipa

#endif  // OIPA_DATA_DATASETS_H_
