#include "graph/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace oipa {

namespace {

/// Undirected-skeleton neighbor set of v (out + in, deduplicated).
std::vector<VertexId> SkeletonNeighbors(const Graph& graph, VertexId v) {
  std::vector<VertexId> nbrs;
  for (VertexId u : graph.OutNeighbors(v)) nbrs.push_back(u);
  for (VertexId u : graph.InNeighbors(v)) nbrs.push_back(u);
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs;
}

}  // namespace

double LocalClusteringCoefficient(const Graph& graph, VertexId v) {
  const std::vector<VertexId> nbrs = SkeletonNeighbors(graph, v);
  const size_t deg = nbrs.size();
  if (deg < 2) return 0.0;
  std::unordered_set<VertexId> nbr_set(nbrs.begin(), nbrs.end());
  int64_t links = 0;
  for (VertexId u : nbrs) {
    // Count each undirected neighbor pair once (u < w); skeleton
    // neighbors are deduplicated across edge directions.
    for (VertexId w : SkeletonNeighbors(graph, u)) {
      if (w > u && nbr_set.count(w)) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(deg) * static_cast<double>(deg - 1));
}

double AverageClusteringCoefficient(const Graph& graph, int sample_size) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return 0.0;
  std::vector<VertexId> vertices;
  if (sample_size > 0 && sample_size < n) {
    Rng rng(0x5eed);
    for (int i = 0; i < sample_size; ++i) {
      vertices.push_back(static_cast<VertexId>(rng.NextBounded(n)));
    }
  } else {
    vertices.resize(n);
    for (VertexId v = 0; v < n; ++v) vertices[v] = v;
  }
  double sum = 0.0;
  int64_t counted = 0;
  for (VertexId v : vertices) {
    if (SkeletonNeighbors(graph, v).size() >= 2) {
      sum += LocalClusteringCoefficient(graph, v);
      ++counted;
    }
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

std::vector<int32_t> WeaklyConnectedComponents(const Graph& graph,
                                               int* num_components) {
  const VertexId n = graph.num_vertices();
  std::vector<int32_t> component(n, -1);
  int next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    const int32_t id = next_id++;
    component[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : graph.OutNeighbors(u)) {
        if (component[v] < 0) {
          component[v] = id;
          stack.push_back(v);
        }
      }
      for (VertexId v : graph.InNeighbors(u)) {
        if (component[v] < 0) {
          component[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next_id;
  return component;
}

int64_t LargestComponentSize(const Graph& graph) {
  int num = 0;
  const std::vector<int32_t> component =
      WeaklyConnectedComponents(graph, &num);
  if (num == 0) return 0;
  std::vector<int64_t> sizes(num, 0);
  for (int32_t c : component) ++sizes[c];
  return *std::max_element(sizes.begin(), sizes.end());
}

DegreeStats ComputeOutDegreeStats(const Graph& graph, double x_min) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;
  std::vector<double> degrees = graph.OutDegreeSequence();
  RunningStats rs;
  for (double d : degrees) rs.Add(d);
  stats.min = static_cast<int64_t>(rs.min());
  stats.max = static_cast<int64_t>(rs.max());
  stats.mean = rs.mean();
  stats.median = Quantile(degrees, 0.5);
  stats.p99 = Quantile(degrees, 0.99);
  stats.power_law_alpha = PowerLawExponentMle(degrees, x_min);
  return stats;
}

}  // namespace oipa
