#ifndef OIPA_GRAPH_GRAPH_BUILDER_H_
#define OIPA_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace oipa {

/// Mutable edge accumulator that produces an immutable Graph.
/// Deduplicates edges and drops self-loops at Build() time; grows the
/// vertex count to cover every endpoint seen.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices = 0)
      : num_vertices_(num_vertices) {}

  /// Appends a directed edge u -> v. Endpoints may exceed the current
  /// vertex count; the count expands to fit.
  void AddEdge(VertexId u, VertexId v);

  /// Appends u -> v and v -> u.
  void AddUndirectedEdge(VertexId u, VertexId v);

  /// Ensures the graph has at least `n` vertices.
  void ReserveVertices(VertexId n);

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_pending_edges() const { return edges_.size(); }

  /// Sorts, deduplicates, removes self-loops, and builds the CSR graph.
  /// The builder is left empty afterwards.
  Graph Build();

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace oipa

#endif  // OIPA_GRAPH_GRAPH_BUILDER_H_
