#ifndef OIPA_GRAPH_METRICS_H_
#define OIPA_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace oipa {

/// Structural measurements used to validate that the synthetic datasets
/// match the regimes of the paper's real graphs (power-law tails,
/// clustering, component structure).

/// Local clustering coefficient of v, treating the digraph as its
/// undirected skeleton: (#links among neighbors) / (deg * (deg-1) / 2).
/// 0 for degree < 2.
double LocalClusteringCoefficient(const Graph& graph, VertexId v);

/// Average of LocalClusteringCoefficient over all vertices of (skeleton)
/// degree >= 2; 0 if none. For large graphs, pass sample_size > 0 to
/// average over a deterministic vertex sample instead of all vertices.
double AverageClusteringCoefficient(const Graph& graph,
                                    int sample_size = 0);

/// Weakly connected components: returns the component id per vertex
/// (ids are 0-based, assigned in discovery order) and fills
/// *num_components.
std::vector<int32_t> WeaklyConnectedComponents(const Graph& graph,
                                               int* num_components);

/// Size of the largest weakly connected component.
int64_t LargestComponentSize(const Graph& graph);

/// Summary of a degree sequence.
struct DegreeStats {
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p99 = 0.0;
  /// Continuous power-law MLE exponent over degrees >= x_min (see
  /// PowerLawExponentMle); 0 when too few tail samples.
  double power_law_alpha = 0.0;
};

/// Out-degree statistics; `x_min` is the power-law tail cutoff.
DegreeStats ComputeOutDegreeStats(const Graph& graph, double x_min = 5.0);

}  // namespace oipa

#endif  // OIPA_GRAPH_METRICS_H_
