#ifndef OIPA_GRAPH_GRAPH_IO_H_
#define OIPA_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace oipa {

/// Parses a SNAP-style edge-list text file: one "src dst" pair per line
/// (whitespace separated), '#' comment lines ignored. Vertex ids may be
/// arbitrary non-negative integers; they are remapped to a dense [0, n)
/// range in first-seen order.
StatusOr<Graph> LoadEdgeListFile(const std::string& path);

/// Parses an edge list from an in-memory string (same format).
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Writes "src dst" lines (dense ids) with a leading "# n m" comment.
Status SaveEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace oipa

#endif  // OIPA_GRAPH_GRAPH_IO_H_
