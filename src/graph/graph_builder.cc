#include "graph/graph_builder.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  OIPA_CHECK_GE(u, 0);
  OIPA_CHECK_GE(v, 0);
  edges_.push_back({u, v});
  num_vertices_ = std::max(num_vertices_, std::max(u, v) + 1);
}

void GraphBuilder::AddUndirectedEdge(VertexId u, VertexId v) {
  AddEdge(u, v);
  AddEdge(v, u);
}

void GraphBuilder::ReserveVertices(VertexId n) {
  num_vertices_ = std::max(num_vertices_, n);
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
  Graph g(num_vertices_, std::move(edges_));
  edges_.clear();
  num_vertices_ = 0;
  return g;
}

}  // namespace oipa
