#include "graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace oipa {

namespace {

StatusOr<Graph> ParseEdgeListStream(std::istream& in) {
  GraphBuilder builder;
  std::unordered_map<int64_t, VertexId> remap;
  auto dense_id = [&remap](int64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    int64_t raw_src, raw_dst;
    if (!(ls >> raw_src)) continue;  // blank or comment-only line
    if (!(ls >> raw_dst)) {
      return Status::InvalidArgument("edge list line " +
                                     std::to_string(line_no) +
                                     ": missing target vertex");
    }
    if (raw_src < 0 || raw_dst < 0) {
      return Status::InvalidArgument("edge list line " +
                                     std::to_string(line_no) +
                                     ": negative vertex id");
    }
    builder.AddEdge(dense_id(raw_src), dense_id(raw_dst));
  }
  return builder.Build();
}

}  // namespace

StatusOr<Graph> LoadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ParseEdgeListStream(in);
}

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseEdgeListStream(in);
}

Status SaveEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge(e).src << " " << graph.edge(e).dst << "\n";
  }
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

}  // namespace oipa
