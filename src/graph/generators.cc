#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace oipa {

Graph GenerateErdosRenyi(VertexId n, double p, uint64_t seed) {
  OIPA_CHECK_GE(n, 0);
  OIPA_CHECK_GE(p, 0.0);
  OIPA_CHECK_LE(p, 1.0);
  GraphBuilder builder(n);
  if (n <= 1 || p <= 0.0) return builder.Build();

  Rng rng(seed);
  // Geometric skipping over the n*(n-1) candidate ordered pairs.
  const double log_1mp = std::log1p(-p);
  const int64_t total = static_cast<int64_t>(n) * (n - 1);
  int64_t idx = -1;
  for (;;) {
    if (p >= 1.0) {
      ++idx;
    } else {
      double u = rng.NextDouble();
      while (u <= 0.0) u = rng.NextDouble();
      idx += 1 + static_cast<int64_t>(std::floor(std::log(u) / log_1mp));
    }
    if (idx >= total) break;
    // Decode pair index -> (u, v) skipping the diagonal.
    const VertexId src = static_cast<VertexId>(idx / (n - 1));
    VertexId dst = static_cast<VertexId>(idx % (n - 1));
    if (dst >= src) ++dst;
    builder.AddEdge(src, dst);
  }
  return builder.Build();
}

Graph GenerateBarabasiAlbert(VertexId n, int m_per_node, uint64_t seed) {
  OIPA_CHECK_GE(m_per_node, 1);
  OIPA_CHECK_GE(n, m_per_node + 1);
  Rng rng(seed);
  GraphBuilder builder(n);

  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoint_pool;
  const VertexId seed_size = static_cast<VertexId>(m_per_node + 1);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = 0; v < seed_size; ++v) {
      if (u < v) {
        builder.AddUndirectedEdge(u, v);
        endpoint_pool.push_back(u);
        endpoint_pool.push_back(v);
      }
    }
  }
  std::vector<VertexId> targets;
  for (VertexId v = seed_size; v < n; ++v) {
    targets.clear();
    while (static_cast<int>(targets.size()) < m_per_node) {
      const VertexId t =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (VertexId t : targets) {
      builder.AddUndirectedEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.Build();
}

Graph GenerateHolmeKim(VertexId n, int m_per_node, double triad_p,
                       uint64_t seed) {
  OIPA_CHECK_GE(m_per_node, 1);
  OIPA_CHECK_GE(n, m_per_node + 1);
  OIPA_CHECK_GE(triad_p, 0.0);
  OIPA_CHECK_LE(triad_p, 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);

  std::vector<VertexId> endpoint_pool;
  std::vector<std::vector<VertexId>> adj(n);
  auto connect = [&](VertexId a, VertexId b) {
    builder.AddUndirectedEdge(a, b);
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  const VertexId seed_size = static_cast<VertexId>(m_per_node + 1);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = static_cast<VertexId>(u + 1); v < seed_size; ++v) {
      connect(u, v);
    }
  }

  std::vector<VertexId> chosen;
  for (VertexId v = seed_size; v < n; ++v) {
    chosen.clear();
    VertexId last_target = -1;
    int added = 0;
    int guard = 0;
    while (added < m_per_node && guard++ < 50 * m_per_node) {
      VertexId t = -1;
      // Triad closure: link to a random neighbor of the previous target.
      if (last_target >= 0 && rng.NextBernoulli(triad_p) &&
          !adj[last_target].empty()) {
        t = adj[last_target][rng.NextBounded(adj[last_target].size())];
      }
      if (t < 0 || t == v ||
          std::find(chosen.begin(), chosen.end(), t) != chosen.end()) {
        t = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      }
      if (t == v ||
          std::find(chosen.begin(), chosen.end(), t) != chosen.end()) {
        continue;
      }
      chosen.push_back(t);
      connect(v, t);
      last_target = t;
      ++added;
    }
  }
  return builder.Build();
}

Graph GenerateWattsStrogatz(VertexId n, int k_ring, double rewire_p,
                            uint64_t seed) {
  OIPA_CHECK_GE(k_ring, 1);
  OIPA_CHECK_GT(n, 2 * k_ring);
  Rng rng(seed);
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (int d = 1; d <= k_ring; ++d) {
      VertexId v = static_cast<VertexId>((u + d) % n);
      if (rng.NextBernoulli(rewire_p)) {
        // Rewire to a uniform random non-self target.
        do {
          v = static_cast<VertexId>(rng.NextBounded(n));
        } while (v == u);
      }
      builder.AddUndirectedEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GenerateRetweetForest(VertexId n, double avg_degree, uint64_t seed) {
  OIPA_CHECK_GT(n, 1);
  OIPA_CHECK_GT(avg_degree, 0.0);
  Rng rng(seed);
  GraphBuilder builder(n);

  // A small celebrity set receives a Zipf-like share of all edges; the
  // remainder land on uniform random targets. This reproduces the key
  // regime of the paper's tweet graph: avg degree ~1.2 with a heavy tail.
  const VertexId num_celebrities = std::max<VertexId>(
      1, static_cast<VertexId>(std::sqrt(static_cast<double>(n))));
  const int64_t target_edges = static_cast<int64_t>(avg_degree * n);
  std::vector<double> celebrity_weight(num_celebrities);
  for (VertexId i = 0; i < num_celebrities; ++i) {
    celebrity_weight[i] = 1.0 / static_cast<double>(i + 1);  // Zipf(1)
  }
  for (int64_t e = 0; e < target_edges; ++e) {
    const VertexId src = static_cast<VertexId>(rng.NextBounded(n));
    VertexId dst = 0;
    if (rng.NextBernoulli(0.35)) {
      dst = static_cast<VertexId>(SampleDiscrete(celebrity_weight, &rng));
    } else {
      dst = static_cast<VertexId>(rng.NextBounded(n));
    }
    if (src != dst) builder.AddEdge(src, dst);
  }
  builder.ReserveVertices(n);
  return builder.Build();
}

Graph MakePath(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  builder.ReserveVertices(n);
  return builder.Build();
}

Graph MakeCycle(VertexId n) {
  OIPA_CHECK_GE(n, 2);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.AddEdge(v, static_cast<VertexId>((v + 1) % n));
  }
  return builder.Build();
}

Graph MakeStar(VertexId leaves) {
  GraphBuilder builder(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  builder.ReserveVertices(leaves + 1);
  return builder.Build();
}

Graph MakeCompleteDigraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  builder.ReserveVertices(n);
  return builder.Build();
}

Graph MakeGrid(VertexId rows, VertexId cols) {
  OIPA_CHECK_GE(rows, 1);
  OIPA_CHECK_GE(cols, 1);
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddUndirectedEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddUndirectedEdge(id(r, c), id(r + 1, c));
    }
  }
  return builder.Build();
}

}  // namespace oipa
