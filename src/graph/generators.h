#ifndef OIPA_GRAPH_GENERATORS_H_
#define OIPA_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace oipa {

/// Random graph generators. All are deterministic given `seed` and return
/// directed graphs (undirected models emit both edge directions).

/// G(n, p) Erdős–Rényi digraph: each ordered pair (u, v), u != v, is an
/// edge independently with probability p. Uses geometric skipping, so
/// sparse graphs cost O(m) not O(n^2).
Graph GenerateErdosRenyi(VertexId n, double p, uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_per_node` existing vertices chosen
/// proportionally to degree. Produces a power-law degree distribution
/// (exponent ~3). Undirected; both directions emitted.
Graph GenerateBarabasiAlbert(VertexId n, int m_per_node, uint64_t seed);

/// Holme–Kim clustered power-law graph: Barabási–Albert with a triad-
/// closure step taken with probability `triad_p` after each preferential
/// attachment, yielding the high clustering typical of co-authorship and
/// social graphs. Undirected; both directions emitted.
Graph GenerateHolmeKim(VertexId n, int m_per_node, double triad_p,
                       uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k_ring` neighbors per
/// side, each edge rewired with probability `rewire_p`. Undirected.
Graph GenerateWattsStrogatz(VertexId n, int k_ring, double rewire_p,
                            uint64_t seed);

/// Sparse "retweet forest" in the spirit of the paper's tweet dataset:
/// average out-degree `avg_degree` (typically ~1.2), heavy-tailed in-degree
/// concentrated on a small celebrity set. Directed.
Graph GenerateRetweetForest(VertexId n, double avg_degree, uint64_t seed);

/// Deterministic shapes for tests.
Graph MakePath(VertexId n);                 // 0 -> 1 -> ... -> n-1
Graph MakeCycle(VertexId n);                // n >= 2
Graph MakeStar(VertexId leaves);            // 0 -> {1..leaves}
Graph MakeCompleteDigraph(VertexId n);      // all ordered pairs
Graph MakeGrid(VertexId rows, VertexId cols);  // 4-neighbor, both dirs

}  // namespace oipa

#endif  // OIPA_GRAPH_GENERATORS_H_
