#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

Graph::Graph(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  OIPA_CHECK_GE(num_vertices_, 0);
  const EdgeId m = static_cast<EdgeId>(edges_.size());

  out_offsets_.assign(num_vertices_ + 1, 0);
  in_offsets_.assign(num_vertices_ + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = edges_[e];
    OIPA_CHECK_GE(edge.src, 0);
    OIPA_CHECK_LT(edge.src, num_vertices_);
    OIPA_CHECK_GE(edge.dst, 0);
    OIPA_CHECK_LT(edge.dst, num_vertices_);
    OIPA_CHECK_NE(edge.src, edge.dst) << "self-loop at vertex " << edge.src;
    if (e > 0) {
      OIPA_CHECK(edges_[e - 1] < edge)
          << "edges must be sorted and deduplicated";
    }
    ++out_offsets_[edge.src + 1];
    ++in_offsets_[edge.dst + 1];
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }

  out_nbrs_.resize(m);
  out_edge_ids_.resize(m);
  in_nbrs_.resize(m);
  in_edge_ids_.resize(m);
  std::vector<int64_t> out_fill(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<int64_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = edges_[e];
    const int64_t op = out_fill[edge.src]++;
    out_nbrs_[op] = edge.dst;
    out_edge_ids_[op] = e;
    const int64_t ip = in_fill[edge.dst]++;
    in_nbrs_[ip] = edge.src;
    in_edge_ids_[ip] = e;
  }
}

Graph Graph::Empty(VertexId num_vertices) {
  return Graph(num_vertices, {});
}

double Graph::AverageDegree() const {
  if (num_vertices_ == 0) return 0.0;
  return static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices_);
}

std::vector<double> Graph::OutDegreeSequence() const {
  std::vector<double> seq(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    seq[v] = static_cast<double>(OutDegree(v));
  }
  return seq;
}

}  // namespace oipa
