#ifndef OIPA_GRAPH_GRAPH_H_
#define OIPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace oipa {

/// Vertex identifier: dense, 0-based.
using VertexId = int32_t;
/// Edge identifier: dense, 0-based; indexes per-edge attribute arrays.
using EdgeId = int64_t;

/// A directed edge (source, target).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Immutable directed graph in compressed sparse row form, with both
/// forward (out-neighbor) and reverse (in-neighbor) adjacency. Every edge
/// has a stable EdgeId shared by both directions, so per-edge attributes
/// (e.g. topic-wise influence probabilities) are stored in parallel arrays
/// indexed by EdgeId.
///
/// Construct via GraphBuilder (graph_builder.h) or the generators
/// (generators.h); the constructor below takes a deduplicated,
/// source-sorted edge list.
class Graph {
 public:
  /// Builds CSR from `edges`, which must be sorted by (src, dst) and free
  /// of duplicates and self-loops (GraphBuilder enforces this). EdgeId i
  /// corresponds to edges[i].
  Graph(VertexId num_vertices, std::vector<Edge> edges);

  /// An empty graph with `num_vertices` isolated vertices.
  static Graph Empty(VertexId num_vertices);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// The i-th edge (EdgeId -> endpoints).
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-neighbors of v as (neighbor, edge id) pairs.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_nbrs_.data() + out_offsets_[v],
            out_nbrs_.data() + out_offsets_[v + 1]};
  }
  std::span<const EdgeId> OutEdgeIds(VertexId v) const {
    return {out_edge_ids_.data() + out_offsets_[v],
            out_edge_ids_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors of v (sources of edges pointing at v) with edge ids.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_nbrs_.data() + in_offsets_[v],
            in_nbrs_.data() + in_offsets_[v + 1]};
  }
  std::span<const EdgeId> InEdgeIds(VertexId v) const {
    return {in_edge_ids_.data() + in_offsets_[v],
            in_edge_ids_.data() + in_offsets_[v + 1]};
  }

  int64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  int64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Average out-degree m/n (0 for empty vertex set).
  double AverageDegree() const;

  /// Out-degree sequence as doubles (for power-law fitting).
  std::vector<double> OutDegreeSequence() const;

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;

  std::vector<int64_t> out_offsets_;
  std::vector<VertexId> out_nbrs_;
  std::vector<EdgeId> out_edge_ids_;

  std::vector<int64_t> in_offsets_;
  std::vector<VertexId> in_nbrs_;
  std::vector<EdgeId> in_edge_ids_;
};

}  // namespace oipa

#endif  // OIPA_GRAPH_GRAPH_H_
