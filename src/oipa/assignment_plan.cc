#include "oipa/assignment_plan.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

AssignmentPlan::AssignmentPlan(int num_pieces) : seed_sets_(num_pieces) {
  OIPA_CHECK_GT(num_pieces, 0);
}

AssignmentPlan AssignmentPlan::FromSeedSets(
    std::vector<std::vector<VertexId>> seed_sets) {
  AssignmentPlan plan(static_cast<int>(seed_sets.size()));
  for (int j = 0; j < plan.num_pieces(); ++j) {
    for (VertexId v : seed_sets[j]) plan.Add(j, v);
  }
  return plan;
}

bool AssignmentPlan::Add(int piece, VertexId v) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces());
  auto& set = seed_sets_[piece];
  if (std::find(set.begin(), set.end(), v) != set.end()) return false;
  set.push_back(v);
  ++size_;
  return true;
}

bool AssignmentPlan::Remove(int piece, VertexId v) {
  OIPA_CHECK_GE(piece, 0);
  OIPA_CHECK_LT(piece, num_pieces());
  auto& set = seed_sets_[piece];
  auto it = std::find(set.begin(), set.end(), v);
  if (it == set.end()) return false;
  set.erase(it);
  --size_;
  return true;
}

bool AssignmentPlan::Contains(int piece, VertexId v) const {
  const auto& set = seed_sets_[piece];
  return std::find(set.begin(), set.end(), v) != set.end();
}

bool AssignmentPlan::ContainedIn(const AssignmentPlan& other) const {
  if (num_pieces() != other.num_pieces()) return false;
  for (int j = 0; j < num_pieces(); ++j) {
    for (VertexId v : seed_sets_[j]) {
      if (!other.Contains(j, v)) return false;
    }
  }
  return true;
}

std::vector<Assignment> AssignmentPlan::Assignments() const {
  std::vector<Assignment> out;
  out.reserve(size_);
  for (int j = 0; j < num_pieces(); ++j) {
    for (VertexId v : seed_sets_[j]) out.emplace_back(j, v);
  }
  return out;
}

std::string AssignmentPlan::DebugString() const {
  std::string out = "{";
  for (int j = 0; j < num_pieces(); ++j) {
    if (j > 0) out += ", ";
    out += "S";
    out += std::to_string(j);
    out += "={";
    std::vector<VertexId> sorted = seed_sets_[j];
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(sorted[i]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace oipa
