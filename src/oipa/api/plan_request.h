#ifndef OIPA_OIPA_API_PLAN_REQUEST_H_
#define OIPA_OIPA_API_PLAN_REQUEST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "oipa/assignment_plan.h"
#include "oipa/tangent_bound.h"
#include "rrset/sample_store.h"

namespace oipa {

/// Solver knobs forwarded verbatim to whichever solver a request names.
/// Every solver reads the subset it understands and ignores the rest, so
/// one options block can be reused across methods in a comparison sweep.
struct SolverOptions {
  /// Relative termination gap of the branch-and-bound family.
  double gap = 0.01;
  /// BAB-P threshold decay (the paper fixes 0.5 after Figure 3).
  double epsilon = 0.5;
  /// Tangent-surrogate anchoring (see oipa/tangent_bound.h).
  BoundVariant variant = BoundVariant::kZeroAnchored;
  /// BAB only: CELF-lazy gain evaluation (identical selections).
  bool lazy_greedy = false;
  /// Scale the pruning bound by e/(e-1) for exact search.
  bool exact_pruning = false;
  /// BAB-P: keep filling candidate plans to the full budget.
  bool progressive_fill = true;
  /// Node-expansion safety cap of the branch-and-bound family.
  int64_t max_nodes = 100'000;
};

/// Progress snapshot handed to PlanRequest::progress. Every solve
/// reports one initial snapshot with zeroed counters before any work;
/// the branch-and-bound family additionally reports before each node
/// expansion (so only those solves can be cancelled mid-search —
/// counters stay zero for heuristics and baselines).
struct PlanProgress {
  /// Registered name of the solver reporting progress.
  std::string_view solver;
  /// Budget of the solve currently running (one entry of the request's
  /// budget list).
  int budget = 0;
  int64_t nodes_expanded = 0;
  /// Best utility found so far.
  double incumbent = 0.0;
  /// Current global upper bound (0 when the solver has none).
  double upper_bound = 0.0;
};

/// Periodic progress callback. Return false to cancel the solve: the
/// solver stops early and returns its incumbent with
/// PlanResponse::cancelled set (converged is false). Must be safe to call
/// from the solving thread.
using ProgressFn = std::function<bool(const PlanProgress&)>;

/// One planning question against a PlanningContext: which solver, which
/// promoter pool, which budget(s), and how the solver should be tuned.
/// Requests are cheap value types — build one per call site and pass it
/// to Solve()/SolveBatch() (solver_registry.h).
struct PlanRequest {
  /// Registered solver name; SolverRegistry::Global().Names() lists all.
  std::string solver = "bab-p";
  /// Promoter pool shared by all pieces. Must be non-empty with vertex
  /// ids inside the context's graph.
  std::vector<VertexId> pool;
  /// Assignment budgets k. Solve() requires exactly one entry;
  /// SolveBatch() sweeps every entry against the same MRR samples.
  std::vector<int> budgets = {10};
  SolverOptions options;
  /// Worker threads for solvers that can parallelize (the
  /// branch-and-bound family). 1 (default) is the sequential engine —
  /// bit-identical, deterministic responses; 0 resolves to
  /// GetNumThreads(); N > 1 runs N workers over a shared frontier:
  /// utility stays within roughly the request's gap of the sequential
  /// result (rigorously under options.exact_pruning) but the specific
  /// equally-good plan may differ between runs. Values above
  /// kMaxBabWorkers (branch_and_bound.h) are InvalidArgument.
  int num_threads = 1;
  /// Progressive (ε)-stopping: when > 0, each budget is re-solved on a
  /// growing sample store — the context's collections are doubled in
  /// place (PlanningContext::GrowSamples) until the relative gap between
  /// the in-sample and holdout utility estimates of the solved plan
  /// falls to `epsilon` or growth hits `max_theta`. Requires a context
  /// with a holdout and extendable samples. 0 (default) solves once on
  /// the samples as-is. Distinct from SolverOptions::epsilon (the BAB-P
  /// threshold decay).
  double epsilon = 0.0;
  /// Cap on the grown in-sample theta for progressive solving.
  int64_t max_theta = 2'000'000;
  /// Which rule ends the progressive loop (see StoppingRuleKind):
  /// kHoldoutGap stops when in-sample and holdout estimates agree
  /// within `epsilon`; kOpimBounds stops when the OPIM-style online
  /// bound pair certifies a (1 - 1/e - epsilon)-style ratio
  /// (PlanResponse::certified_ratio), typically earlier.
  StoppingRuleKind stopping = StoppingRuleKind::kHoldoutGap;
  /// SolveBatch only: with num_threads > 1, run the budget sweep
  /// concurrently (num_threads sweep workers), each budget on the
  /// deterministic sequential engine — responses are bit-identical to
  /// the num_threads == 1 sweep, just faster. Set false to keep the
  /// sweep serial with each individual solve using the parallel
  /// branch-and-bound engine instead (thread-scaling benches).
  bool shard_budgets = true;
  /// Seed for solver-internal randomness (baseline RR sampling, random
  /// heuristic). Independent of the context's sampling seed.
  uint64_t seed = 1;
  /// Wall-clock deadline, measured from Solve()/SolveBatch() entry.
  /// Enforced through the progress hook: the BAB family is cancelled
  /// mid-search (per node expansion), every other solver only at its
  /// initial snapshot and between progressive rounds / sweep budgets —
  /// a non-polling solver already past its initial snapshot runs its
  /// budget to completion. A missed deadline returns the incumbent with
  /// cancelled and deadline_exceeded set, never an error. Unset
  /// (default) = no deadline; a present value must be >= 1
  /// (InvalidArgument otherwise). Composes with a caller progress hook:
  /// both can cancel.
  std::optional<int64_t> deadline_ms;
  /// Optional progress/cancellation hook (see ProgressFn).
  ProgressFn progress;
};

/// A solved plan plus everything a caller needs to judge it: quality on
/// the in-sample and holdout MRR estimates, search-effort counters, and
/// whether the solver actually converged (a tripped max_nodes cap or a
/// cancellation yields a valid but non-optimal plan).
struct PlanResponse {
  /// Registered name of the solver that produced the plan.
  std::string solver;
  /// Budget this response was solved for.
  int budget = 0;
  AssignmentPlan plan{1};
  /// In-sample MRR estimate (what the optimizer maximized).
  double utility = 0.0;
  /// Estimate on the context's independent holdout MRR collection
  /// (unbiased); 0 when the context was built without a holdout.
  double holdout_utility = 0.0;
  /// Global upper bound at termination (bounding solvers only; equals
  /// utility when the search space was exhausted).
  double upper_bound = 0.0;
  int64_t nodes_expanded = 0;
  int64_t bound_calls = 0;
  int64_t tau_evals = 0;
  double seconds = 0.0;
  /// In-sample theta the final solve ran on (grows under progressive
  /// (ε)-stopping; otherwise the context's theta at solve time). Read
  /// just before dispatch — when another thread grows the store
  /// mid-solve (sharded progressive sweeps), the solver may pick up a
  /// generation one round newer than this label.
  int64_t theta_used = 0;
  /// Solve-grow rounds performed: 1 for a plain solve; > 1 when
  /// PlanRequest::epsilon made the sample store grow.
  int sampling_rounds = 1;
  /// Relative in-sample/holdout gap of the returned plan (0 when the
  /// context has no holdout). Progressive solving under kHoldoutGap
  /// drives this to PlanRequest::epsilon unless max_theta stops growth
  /// first.
  double sampling_gap = 0.0;
  /// kOpimBounds only: the certified lower(plan)/upper(OPT) ratio of
  /// the returned plan (see StoppingRuleKind::kOpimBounds); 0 under
  /// kHoldoutGap or without a holdout.
  double certified_ratio = 0.0;
  /// False when the solver stopped early (max_nodes trip, cancellation).
  bool converged = true;
  /// True when the request's progress hook asked to stop.
  bool cancelled = false;
  /// True when the cancellation was caused by PlanRequest::deadline_ms
  /// expiring (cancelled is then also true; the partial telemetry above
  /// still describes the work done up to the cutoff).
  bool deadline_exceeded = false;
};

}  // namespace oipa

#endif  // OIPA_OIPA_API_PLAN_REQUEST_H_
