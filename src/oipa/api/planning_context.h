#ifndef OIPA_OIPA_API_PLANNING_CONTEXT_H_
#define OIPA_OIPA_API_PLANNING_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "oipa/api/plan_request.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "rrset/sample_store.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"
#include "util/status.h"

namespace oipa {

/// Sampling configuration of a PlanningContext.
struct ContextOptions {
  /// In-sample MRR samples the solvers optimize on.
  int64_t theta = 100'000;
  /// Holdout MRR samples for unbiased plan evaluation: -1 draws `theta`
  /// samples (default), 0 skips the holdout entirely (halves sampling
  /// cost; PlanResponse::holdout_utility is then 0).
  int64_t holdout_theta = -1;
  uint64_t seed = 1;
  DiffusionModel diffusion = DiffusionModel::kIndependentCascade;
  /// Worker threads for sample generation/growth: 0 defers to
  /// GetNumThreads(), N > 0 uses exactly N. Samples are bit-identical
  /// at any thread count (see MrrCollection::Generate), so this only
  /// changes sampling wall-clock — and is excluded from the shared
  /// store's registry key.
  int sampling_threads = 0;
  /// Resolve the sample store through the process-wide SampleStore
  /// registry (MRR samples are independent of the adoption model, so
  /// contexts that differ only in alpha/beta share one store and one
  /// sampling pass). Set false for a private store — e.g. when the
  /// context must not observe growth issued through other contexts.
  bool share_samples = true;
  /// When non-empty, keys the registry store by this string instead of
  /// graph/probs identity (see SampleStore::Options::source_key): a
  /// context rebuilt from the same deterministic recipe then re-hits a
  /// store retained under SampleStore::SetRegistryBudget(). The caller
  /// guarantees equal source_keys imply bit-identical graph and probs.
  std::string source_key;
};

/// The shared state of one (graph, probabilities, campaign, adoption
/// model) planning configuration: the per-piece influence graphs plus a
/// handle to the SampleStore holding the in-sample and holdout MRR
/// collections. Everything except the store is read-only after
/// construction; the store mutates only by growing and publishes
/// generations atomically — so any number of threads may Solve()
/// against one context concurrently, and a SolveBatch() budget sweep
/// reuses the same samples for every k.
///
/// Samples are read through snapshots: samples() pins the current
/// generation (a SampleSnapshot keeps its collections alive); after a
/// GrowSamples() the next samples() call sees the larger generation and
/// the superseded one is freed as soon as its last snapshot drops
/// (SampleStore compaction — retired generations no longer accumulate
/// for the context lifetime).
///
///   auto ctx = PlanningContext::Create(graph, probs, campaign,
///                                      LogisticAdoptionModel(2.0, 1.0),
///                                      {.theta = 100'000});
///   if (!ctx.ok()) { /* report ctx.status() */ }
///   PlanRequest req;
///   req.solver = "bab-p";
///   req.pool = pool;
///   req.budgets = {20};
///   StatusOr<PlanResponse> best = Solve(**ctx, req);
///
/// Contexts are handed out as shared_ptr<const PlanningContext>; copies
/// of the handle are cheap and keep the samples alive for as long as any
/// request might still read them.
///
/// Locking: the context itself owns no mutex — every mutable word lives
/// in the SampleStore, whose locks are oipa::Mutex instances with their
/// guards declared in the type system (OIPA_GUARDED_BY, checked by
/// clang -Wthread-safety). See the locking-hierarchy table in README.md
/// before adding any synchronized state here: new fields must either
/// stay immutable after construction or move behind an annotated lock.
class PlanningContext {
 public:
  /// Builds a context that shares ownership of its inputs — the safe
  /// default for servers and concurrent callers.
  static StatusOr<std::shared_ptr<const PlanningContext>> Create(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign,
      LogisticAdoptionModel model, ContextOptions options = {});

  /// Borrows stack- or caller-owned inputs without copying them. The
  /// referenced graph/probs/campaign must outlive every handle to the
  /// returned context (the old OipaPlanner contract).
  static StatusOr<std::shared_ptr<const PlanningContext>> Borrow(
      const Graph& graph, const EdgeTopicProbs& probs,
      const Campaign& campaign, LogisticAdoptionModel model,
      ContextOptions options = {});

  /// Borrows inputs AND pre-generated MRR collections instead of
  /// sampling fresh ones — for benches and tests that must share one
  /// sample set across configurations or exclude sampling from timings.
  /// `holdout` may be null. All referenced objects must outlive the
  /// context. The store is always private (never registry-shared).
  static StatusOr<std::shared_ptr<const PlanningContext>> BorrowWithSamples(
      const Graph& graph, const EdgeTopicProbs& probs,
      const Campaign& campaign, LogisticAdoptionModel model,
      const MrrCollection* mrr, const MrrCollection* holdout = nullptr);

  const Graph& graph() const { return *graph_; }
  const EdgeTopicProbs& probs() const { return *probs_; }
  const Campaign& campaign() const { return *campaign_; }
  const LogisticAdoptionModel& model() const { return model_; }
  const ContextOptions& options() const { return options_; }

  /// Per-piece influence graphs (alias the context's graph; shared with
  /// the sample store, and across contexts sharing one store).
  const std::vector<InfluenceGraph>& pieces() const { return *pieces_; }

  /// Pins and returns the current sample generation. Hold the snapshot
  /// for the duration of one solve: its collections stay valid (and
  /// bit-stable) even while the store grows; re-call to see newer
  /// samples.
  SampleSnapshot samples() const { return store_->snapshot(); }

  /// True when the context was built with a holdout collection.
  bool has_holdout() const { return store_->has_holdout(); }

  /// The context's sample store (telemetry, tests; shared stores show
  /// growth issued through any sharing context).
  const SampleStore& sample_store() const { return *store_; }

  /// True when the sample store can grow: the collections carry
  /// sampling provenance (MrrCollection::extendable()).
  bool CanGrowSamples() const { return store_->CanGrow(); }

  /// Grows the store's collections to at least `target_theta` samples,
  /// bit-identically to collections generated at that size up front.
  /// No-op when the store is already that large. Thread-safe:
  /// concurrent growers serialize, concurrent solves keep reading their
  /// pinned snapshots. For a shared store the growth is visible to
  /// every sharing context. FailedPrecondition when the collections
  /// lack sampling provenance, InvalidArgument for target_theta < 1.
  Status GrowSamples(int64_t target_theta) const {
    return store_->Grow(target_theta);
  }

  /// In-sample MRR estimate of `plan` (what solvers maximize), on the
  /// generation current at call time. Each call pins its own snapshot —
  /// when a consistent in-sample/holdout pair is needed (the store may
  /// grow between calls), use Evaluate(), which reads one snapshot.
  double EstimateUtility(const AssignmentPlan& plan) const;

  /// Holdout MRR estimate of `plan`; 0 when there is no holdout. Same
  /// per-call snapshot semantics as EstimateUtility().
  double EstimateHoldoutUtility(const AssignmentPlan& plan) const;

  /// Scores an externally supplied plan with the same reporting shape as
  /// a solver run. InvalidArgument if the plan's piece count does not
  /// match the campaign. `label` becomes PlanResponse::solver.
  StatusOr<PlanResponse> Evaluate(const AssignmentPlan& plan,
                                  const std::string& label = "external") const;

  /// Ground-truth check by forward Monte-Carlo simulation.
  double SimulateUtility(const AssignmentPlan& plan, int trials,
                         uint64_t seed) const;

 private:
  PlanningContext() = default;

  static StatusOr<std::shared_ptr<const PlanningContext>> Build(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign,
      LogisticAdoptionModel model, ContextOptions options,
      std::shared_ptr<const MrrCollection> mrr,
      std::shared_ptr<const MrrCollection> holdout);

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  LogisticAdoptionModel model_{2.0, 1.0};
  ContextOptions options_;
  /// Shared with the store (and with every context sharing the store).
  std::shared_ptr<const std::vector<InfluenceGraph>> pieces_;
  /// The sample store: private, or registry-shared across contexts that
  /// differ only in the adoption model (options_.share_samples).
  std::shared_ptr<SampleStore> store_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_API_PLANNING_CONTEXT_H_
