#ifndef OIPA_OIPA_API_PLANNING_CONTEXT_H_
#define OIPA_OIPA_API_PLANNING_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "oipa/api/plan_request.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"
#include "util/status.h"

namespace oipa {

/// Sampling configuration of a PlanningContext.
struct ContextOptions {
  /// In-sample MRR samples the solvers optimize on.
  int64_t theta = 100'000;
  /// Holdout MRR samples for unbiased plan evaluation: -1 draws `theta`
  /// samples (default), 0 skips the holdout entirely (halves sampling
  /// cost; PlanResponse::holdout_utility is then 0).
  int64_t holdout_theta = -1;
  uint64_t seed = 1;
  DiffusionModel diffusion = DiffusionModel::kIndependentCascade;
};

/// The shared state of one (graph, probabilities, campaign, adoption
/// model) planning configuration: the per-piece influence graphs plus
/// the in-sample and holdout MRR collections. Everything except the
/// sample store is read-only after construction, and the sample store is
/// mutable only under an internal lock and only by growing — so any
/// number of threads may Solve() against one context concurrently, and a
/// SolveBatch() budget sweep reuses the same samples for every k.
///
/// Progressive (ε)-stopping grows the store through GrowSamples():
/// publication is copy-on-grow — the current collection is copied,
/// extended in place (bit-identical to a fresh generation at the larger
/// theta), and swapped in, while every superseded generation is retained
/// for the context's lifetime. References returned by mrr()/holdout()
/// therefore stay valid forever; they just keep seeing their original
/// sample count. Callers wanting the newest samples re-call mrr().
///
///   auto ctx = PlanningContext::Create(graph, probs, campaign,
///                                      LogisticAdoptionModel(2.0, 1.0),
///                                      {.theta = 100'000});
///   if (!ctx.ok()) { /* report ctx.status() */ }
///   PlanRequest req;
///   req.solver = "bab-p";
///   req.pool = pool;
///   req.budgets = {20};
///   StatusOr<PlanResponse> best = Solve(**ctx, req);
///
/// Contexts are handed out as shared_ptr<const PlanningContext>; copies
/// of the handle are cheap and keep the samples alive for as long as any
/// request might still read them.
class PlanningContext {
 public:
  /// Builds a context that shares ownership of its inputs — the safe
  /// default for servers and concurrent callers.
  static StatusOr<std::shared_ptr<const PlanningContext>> Create(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign,
      LogisticAdoptionModel model, ContextOptions options = {});

  /// Borrows stack- or caller-owned inputs without copying them. The
  /// referenced graph/probs/campaign must outlive every handle to the
  /// returned context (the old OipaPlanner contract).
  static StatusOr<std::shared_ptr<const PlanningContext>> Borrow(
      const Graph& graph, const EdgeTopicProbs& probs,
      const Campaign& campaign, LogisticAdoptionModel model,
      ContextOptions options = {});

  /// Borrows inputs AND pre-generated MRR collections instead of
  /// sampling fresh ones — for benches and tests that must share one
  /// sample set across configurations or exclude sampling from timings.
  /// `holdout` may be null. All referenced objects must outlive the
  /// context.
  static StatusOr<std::shared_ptr<const PlanningContext>> BorrowWithSamples(
      const Graph& graph, const EdgeTopicProbs& probs,
      const Campaign& campaign, LogisticAdoptionModel model,
      const MrrCollection* mrr, const MrrCollection* holdout = nullptr);

  const Graph& graph() const { return *graph_; }
  const EdgeTopicProbs& probs() const { return *probs_; }
  const Campaign& campaign() const { return *campaign_; }
  const LogisticAdoptionModel& model() const { return model_; }
  const ContextOptions& options() const { return options_; }

  /// Per-piece influence graphs (alias the context's graph).
  const std::vector<InfluenceGraph>& pieces() const { return pieces_; }
  /// Current in-sample MRR generation. The reference stays valid for the
  /// context's lifetime even across GrowSamples() (superseded
  /// generations are retained), but a later call may return a larger
  /// collection — read it once per solve.
  const MrrCollection& mrr() const;
  /// Null when the context was built with holdout_theta = 0 (or
  /// BorrowWithSamples without a holdout). Same lifetime contract as
  /// mrr().
  const MrrCollection* holdout() const;

  /// True when the sample store can grow: the in-sample collection (and
  /// the holdout, when present) carries sampling provenance
  /// (MrrCollection::extendable()).
  bool CanGrowSamples() const;

  /// Grows the in-sample collection (and the holdout, when present) to
  /// at least `target_theta` samples, bit-identically to collections
  /// generated at that size up front. No-op when the store is already
  /// that large. Thread-safe: concurrent growers serialize, concurrent
  /// solves keep reading their generation. FailedPrecondition when the
  /// collections lack sampling provenance (CanGrowSamples() == false),
  /// InvalidArgument for target_theta < 1.
  Status GrowSamples(int64_t target_theta) const;

  /// In-sample MRR estimate of `plan` (what solvers maximize).
  double EstimateUtility(const AssignmentPlan& plan) const;

  /// Holdout MRR estimate of `plan`; 0 when there is no holdout.
  double EstimateHoldoutUtility(const AssignmentPlan& plan) const;

  /// Scores an externally supplied plan with the same reporting shape as
  /// a solver run. InvalidArgument if the plan's piece count does not
  /// match the campaign. `label` becomes PlanResponse::solver.
  StatusOr<PlanResponse> Evaluate(const AssignmentPlan& plan,
                                  const std::string& label = "external") const;

  /// Ground-truth check by forward Monte-Carlo simulation.
  double SimulateUtility(const AssignmentPlan& plan, int trials,
                         uint64_t seed) const;

 private:
  PlanningContext() = default;

  static StatusOr<std::shared_ptr<const PlanningContext>> Build(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const EdgeTopicProbs> probs,
      std::shared_ptr<const Campaign> campaign,
      LogisticAdoptionModel model, ContextOptions options,
      std::shared_ptr<const MrrCollection> mrr,
      std::shared_ptr<const MrrCollection> holdout);

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  LogisticAdoptionModel model_{2.0, 1.0};
  ContextOptions options_;
  std::vector<InfluenceGraph> pieces_;

  // The sample store: current generations plus every superseded one
  // (kept so outstanding references survive growth). Pointer reads and
  // swaps are guarded by sample_mu_; growers additionally serialize on
  // grow_mu_ for the whole sampling phase so readers never wait on
  // sample generation. Mutable so GrowSamples can run on the shared
  // const handles the factories give out.
  mutable std::mutex grow_mu_;
  mutable std::mutex sample_mu_;
  mutable std::shared_ptr<const MrrCollection> mrr_;
  mutable std::shared_ptr<const MrrCollection> holdout_;
  mutable std::vector<std::shared_ptr<const MrrCollection>> retired_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_API_PLANNING_CONTEXT_H_
