#ifndef OIPA_OIPA_API_SOLVER_H_
#define OIPA_OIPA_API_SOLVER_H_

#include <string_view>

#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "util/status.h"

namespace oipa {

/// A pluggable OIPA solver: turns (shared context, pinned samples,
/// request, one budget) into a plan. Implementations must be stateless
/// between calls — Solve is const and may be invoked concurrently from
/// many threads against the same context, so all working state lives on
/// the stack.
///
/// Implementations read MRR samples from `samples` (the generation the
/// dispatch layer pinned for this solve), never from the context's
/// store directly — the store may grow mid-solve and a re-read could
/// observe a different generation. `samples.mrr` is always non-null.
///
/// Implementations normally don't fill PlanResponse::solver, ::budget,
/// ::holdout_utility, or ::seconds — the dispatch layer
/// (solver_registry.h) stamps them uniformly. Report errors as Status
/// values (e.g. an infeasibly large instance is InvalidArgument), never
/// by aborting.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key, e.g. "bab-p". Lower-case, stable across releases.
  virtual std::string_view name() const = 0;

  /// One-line human description shown by `oipa_cli --method=list`.
  virtual std::string_view description() const = 0;

  /// Solves for one budget. `request.budgets` should be ignored in favor
  /// of `budget` (SolveBatch calls this once per entry).
  virtual StatusOr<PlanResponse> Solve(const PlanningContext& context,
                                       const SampleSnapshot& samples,
                                       const PlanRequest& request,
                                       int budget) const = 0;
};

}  // namespace oipa

#endif  // OIPA_OIPA_API_SOLVER_H_
