#ifndef OIPA_OIPA_API_SOLVER_REGISTRY_H_
#define OIPA_OIPA_API_SOLVER_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/threading.h"

namespace oipa {

/// String-keyed solver catalog. The process-wide instance
/// (SolverRegistry::Global()) comes pre-populated with every built-in
/// method — the paper's "bab", "bab-p", "im", "tim" plus "brute-force",
/// "greedy-sigma" and the classic IM heuristics "high-degree",
/// "degree-discount", "random" — and applications extend it at startup:
///
///   class MySolver : public Solver { ... };
///   OIPA_CHECK_OK(SolverRegistry::Global().Register(
///       std::make_unique<MySolver>()));
///   ...
///   StatusOr<PlanResponse> r = Solve(*ctx, {.solver = "my-solver", ...});
///
/// All methods are thread-safe; lookups return stable pointers (solvers
/// are never unregistered).
class SolverRegistry {
 public:
  SolverRegistry() = default;
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// The process-wide registry, built-ins already registered.
  static SolverRegistry& Global();

  /// Registers `solver` under solver->name(). FailedPrecondition if the
  /// name is already taken; InvalidArgument for a null solver or an
  /// empty name.
  Status Register(std::unique_ptr<Solver> solver) OIPA_EXCLUDES(mu_);

  /// Looks a solver up by name. NotFound (message lists the registered
  /// names) when absent.
  StatusOr<const Solver*> Find(const std::string& name) const
      OIPA_EXCLUDES(mu_);

  bool Contains(const std::string& name) const OIPA_EXCLUDES(mu_);

  /// All registered names, sorted.
  std::vector<std::string> Names() const OIPA_EXCLUDES(mu_);

  /// "name1 (description1)\nname2 (description2)..." — one line per
  /// solver, sorted by name. Used by `oipa_cli --method=list`.
  std::string DescribeAll() const OIPA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Solver>> solvers_
      OIPA_GUARDED_BY(mu_);
};

/// Solves one request (exactly one budget) against a shared context:
/// validates the request, dispatches to the named solver, and stamps the
/// response with the solver name, budget, wall time, and holdout
/// utility. With request.epsilon > 0 the solve is progressive: the
/// context's sample store grows (doubling, in place and bit-identically
/// to up-front generation) and the budget is re-solved until the
/// in-sample/holdout gap reaches epsilon or theta hits
/// request.max_theta; the response reports theta_used, sampling_rounds,
/// and the achieved sampling_gap. InvalidArgument on a malformed
/// request, NotFound on an unknown solver name.
StatusOr<PlanResponse> Solve(
    const PlanningContext& context, const PlanRequest& request,
    const SolverRegistry& registry = SolverRegistry::Global());

/// Sweeps every budget in `request.budgets` against the same context —
/// the MRR samples are generated once and reused, so a k-sweep costs one
/// sampling pass plus the solves. Responses come back in budget order.
/// If a solve is cancelled via the progress hook, the sweep stops after
/// the cancelled response.
///
/// With request.num_threads != 1 (and shard_budgets, the default), the
/// sweep itself is parallelized: up to num_threads workers each solve
/// whole budgets on the deterministic sequential engine, so fixed-theta
/// responses are bit-identical to the num_threads == 1 sweep — only
/// faster. Set
/// request.shard_budgets = false to instead run budgets serially with
/// each solve using the parallel branch-and-bound engine (the PR-3
/// behavior thread-scaling benches measure). Progressive requests
/// (epsilon > 0) compose with sharding: workers grow the shared store
/// cooperatively, and each response reports the theta it converged at
/// (growth interleaving may differ from a serial sweep's, so per-budget
/// theta_used can be smaller — never the plan quality contract).
StatusOr<std::vector<PlanResponse>> SolveBatch(
    const PlanningContext& context, const PlanRequest& request,
    const SolverRegistry& registry = SolverRegistry::Global());

}  // namespace oipa

#endif  // OIPA_OIPA_API_SOLVER_REGISTRY_H_
