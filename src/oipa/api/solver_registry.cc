#include "oipa/api/solver_registry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "im/heuristics.h"
#include "oipa/adoption.h"
#include "oipa/baselines.h"
#include "oipa/branch_and_bound.h"
#include "oipa/brute_force.h"
#include "util/logging.h"
#include "util/threading.h"
#include "util/timer.h"

namespace oipa {

namespace {

PlanResponse FromBabResult(const BabResult& r) {
  PlanResponse response;
  response.plan = r.plan;
  response.utility = r.utility;
  response.upper_bound = r.upper_bound;
  response.nodes_expanded = r.nodes_expanded;
  response.bound_calls = r.bound_calls;
  response.tau_evals = r.tau_evals;
  response.seconds = r.seconds;
  response.converged = r.converged;
  response.cancelled = r.cancelled;
  return response;
}

PlanResponse FromBaselineResult(const BaselineResult& r) {
  PlanResponse response;
  response.plan = r.plan;
  response.utility = r.utility;
  response.upper_bound = r.utility;
  response.seconds = r.seconds;
  return response;
}

// --------------------------------------------------- branch and bound

/// "bab" and "bab-p": the paper's branch-and-bound framework.
class BabFamilySolver : public Solver {
 public:
  BabFamilySolver(std::string_view name, std::string_view description,
                  bool progressive)
      : name_(name), description_(description), progressive_(progressive) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    BabOptions options;
    options.budget = budget;
    options.gap = request.options.gap;
    options.progressive = progressive_;
    options.lazy_greedy = request.options.lazy_greedy;
    options.epsilon = request.options.epsilon;
    options.progressive_fill = request.options.progressive_fill;
    options.variant = request.options.variant;
    options.exact_pruning = request.options.exact_pruning;
    options.max_nodes = request.options.max_nodes;
    options.num_threads = request.num_threads;
    if (request.progress) {
      options.on_progress = [this, &request,
                             budget](const BabProgress& p) {
        PlanProgress progress;
        progress.solver = name_;
        progress.budget = budget;
        progress.nodes_expanded = p.nodes_expanded;
        progress.incumbent = p.incumbent;
        progress.upper_bound = p.upper_bound;
        return request.progress(progress);
      };
    }
    return FromBabResult(
        BabSolver(samples.mrr.get(), context.model(), request.pool,
                  options)
            .Solve());
  }

 private:
  std::string_view name_;
  std::string_view description_;
  bool progressive_;
};

// ----------------------------------------------------- paper baselines

class ImSolver : public Solver {
 public:
  std::string_view name() const override { return "im"; }
  std::string_view description() const override {
    return "paper IM baseline: topic-blind influence maximization, best "
           "single piece";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    const MrrCollection& mrr = *samples.mrr;
    return FromBaselineResult(ImBaseline(
        context.graph(), context.probs(), context.campaign(), mrr,
        context.model(), request.pool, budget, mrr.theta(),
        request.seed + 17));
  }
};

class TimSolver : public Solver {
 public:
  std::string_view name() const override { return "tim"; }
  std::string_view description() const override {
    return "paper TIM baseline: per-piece influence maximization, best "
           "single piece";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    const MrrCollection& mrr = *samples.mrr;
    return FromBaselineResult(TimBaseline(
        context.graph(), context.probs(), context.campaign(), mrr,
        context.model(), request.pool, budget, mrr.theta(),
        request.seed + 19));
  }
};

// --------------------------------------------------------- exhaustive

class BruteForceSolver : public Solver {
 public:
  std::string_view name() const override { return "brute-force"; }
  std::string_view description() const override {
    return "exhaustive enumeration over the MRR objective (tiny "
           "instances only)";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    // BruteForceSolve CHECK-fails on infeasible instances; turn that
    // into a Status here so an oversized request is an error value.
    const int64_t candidates =
        static_cast<int64_t>(request.pool.size()) *
        context.campaign().num_pieces();
    if (!BruteForceFeasible(candidates, budget)) {
      return Status::InvalidArgument(
          "brute-force instance too large: " +
          std::to_string(candidates) + " candidates at budget " +
          std::to_string(budget) + " exceed 5e7 plans");
    }
    WallTimer timer;
    const BruteForceResult r = BruteForceSolve(
        *samples.mrr, context.model(), request.pool, budget);
    PlanResponse response;
    response.plan = r.plan;
    response.utility = r.utility;
    response.upper_bound = r.utility;  // exhaustive => exact optimum
    response.nodes_expanded = r.plans_evaluated;
    response.seconds = timer.Seconds();
    return response;
  }
};

// --------------------------------------------------------- heuristics

class GreedySigmaSolver : public Solver {
 public:
  std::string_view name() const override { return "greedy-sigma"; }
  std::string_view description() const override {
    return "greedy directly on the MRR-estimated adoption utility (no "
           "guarantee)";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    return FromBabResult(GreedySigmaSolve(*samples.mrr, context.model(),
                                          request.pool, budget));
  }
};

/// Shared tail of the classic-IM heuristic solvers: seeds per piece ->
/// best single-piece assignment (the same reporting path as IM/TIM).
PlanResponse HeuristicResponse(
    const PlanningContext& context, const SampleSnapshot& samples,
    const std::vector<std::vector<VertexId>>& per_piece_seeds,
    const WallTimer& timer) {
  PlanResponse response = FromBaselineResult(BestSinglePieceAssignment(
      *samples.mrr, context.model(), per_piece_seeds));
  response.seconds = timer.Seconds();
  return response;
}

class HighDegreeSolver : public Solver {
 public:
  std::string_view name() const override { return "high-degree"; }
  std::string_view description() const override {
    return "top-k out-degree seeds, best single piece (Chen et al. "
           "heuristic)";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    WallTimer timer;
    const std::vector<VertexId> seeds =
        HighDegreeSeeds(context.graph(), budget, request.pool);
    return HeuristicResponse(
        context, samples,
        std::vector<std::vector<VertexId>>(
            context.campaign().num_pieces(), seeds),
        timer);
  }
};

class DegreeDiscountSolver : public Solver {
 public:
  std::string_view name() const override { return "degree-discount"; }
  std::string_view description() const override {
    return "per-piece DegreeDiscount seeds, best single piece (Chen et "
           "al. heuristic)";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    WallTimer timer;
    std::vector<std::vector<VertexId>> per_piece;
    per_piece.reserve(context.pieces().size());
    for (const InfluenceGraph& piece : context.pieces()) {
      per_piece.push_back(
          DegreeDiscountSeeds(piece, budget, request.pool));
    }
    return HeuristicResponse(context, samples, per_piece, timer);
  }
};

class RandomSolver : public Solver {
 public:
  std::string_view name() const override { return "random"; }
  std::string_view description() const override {
    return "k uniform random pool seeds, best single piece (baseline "
           "floor)";
  }

  StatusOr<PlanResponse> Solve(const PlanningContext& context,
                               const SampleSnapshot& samples,
                               const PlanRequest& request,
                               int budget) const override {
    WallTimer timer;
    const std::vector<VertexId> seeds = RandomSeeds(
        context.graph(), budget, request.seed + 23, request.pool);
    return HeuristicResponse(
        context, samples,
        std::vector<std::vector<VertexId>>(
            context.campaign().num_pieces(), seeds),
        timer);
  }
};

// ----------------------------------------------------------- dispatch

Status ValidateRequest(const PlanningContext& context,
                       const PlanRequest& request) {
  if (request.pool.empty()) {
    return Status::InvalidArgument("request pool is empty");
  }
  const VertexId n = context.graph().num_vertices();
  for (const VertexId v : request.pool) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument(
          "pool vertex " + std::to_string(v) +
          " is outside the context graph [0, " + std::to_string(n) + ")");
    }
  }
  if (request.budgets.empty()) {
    return Status::InvalidArgument("request has no budgets");
  }
  for (const int budget : request.budgets) {
    if (budget < 1) {
      return Status::InvalidArgument("budgets must be >= 1, got " +
                                     std::to_string(budget));
    }
  }
  if (request.num_threads < 0 || request.num_threads > kMaxBabWorkers) {
    return Status::InvalidArgument(
        "num_threads must be in [0, " + std::to_string(kMaxBabWorkers) +
        "] (0 = auto), got " + std::to_string(request.num_threads));
  }
  if (request.epsilon < 0.0) {
    return Status::InvalidArgument(
        "epsilon must be >= 0 (0 disables progressive solving), got " +
        std::to_string(request.epsilon));
  }
  if (request.deadline_ms.has_value() && *request.deadline_ms < 1) {
    return Status::InvalidArgument(
        "deadline_ms must be >= 1 when set (got " +
        std::to_string(*request.deadline_ms) +
        "); leave it unset for no deadline");
  }
  if (request.epsilon > 0.0) {
    if (request.max_theta < 1) {
      return Status::InvalidArgument(
          "progressive solving needs max_theta >= 1, got " +
          std::to_string(request.max_theta));
    }
    if (!context.has_holdout()) {
      return Status::InvalidArgument(
          "progressive solving (epsilon > 0) requires a context with a "
          "holdout collection (ContextOptions::holdout_theta != 0)");
    }
    if (!context.CanGrowSamples()) {
      return Status::InvalidArgument(
          "progressive solving (epsilon > 0) requires extendable context "
          "samples (collections with sampling provenance)");
    }
  }
  return Status::Ok();
}

// ------------------------------------------------------------ deadlines

/// Rewrites request->progress so every poll also checks a wall-clock
/// deadline of deadline_ms from now. Cancellation granularity follows
/// the progress contract: the BAB family polls per node expansion, the
/// other solvers only at their initial snapshot — plus the gaps between
/// progressive rounds and sweep budgets, where SolveOne re-polls.
/// Returns the absolute deadline for StampDeadline.
std::chrono::steady_clock::time_point ComposeDeadline(PlanRequest* request) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(request->deadline_ms.value());
  const ProgressFn inner = std::move(request->progress);
  request->progress = [deadline, inner](const PlanProgress& progress) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    return inner == nullptr || inner(progress);
  };
  return deadline;
}

/// Distinguishes a deadline cancellation from a caller-hook one: a
/// response that came back cancelled after the deadline passed is
/// stamped deadline_exceeded (the caller hook may also have fired, but
/// past the deadline the solve was doomed either way).
void StampDeadline(std::chrono::steady_clock::time_point deadline,
                   PlanResponse* response) {
  if (response->cancelled &&
      std::chrono::steady_clock::now() >= deadline) {
    response->deadline_exceeded = true;
  }
}

/// Runs one budget through `solver` and stamps the uniform response
/// fields the solvers themselves leave blank. Pins one sample
/// generation for the whole solve: the solver, the holdout estimate,
/// and the stopping statistics all read the same snapshot even while
/// the store grows concurrently. Every solver gets one initial progress
/// snapshot (with zeroed counters) before any work, so cancellation is
/// possible even for solvers that never poll the hook; the BAB family
/// additionally polls during the search. When the context has a
/// holdout, `stopping` (optional) receives the configured rule's full
/// verdict for the progressive loop.
StatusOr<PlanResponse> SolveOne(const PlanningContext& context,
                                const PlanRequest& request,
                                const Solver& solver, int budget,
                                StoppingVerdict* stopping = nullptr) {
  WallTimer timer;
  if (request.progress) {
    PlanProgress initial;
    initial.solver = solver.name();
    initial.budget = budget;
    if (!request.progress(initial)) {
      PlanResponse cancelled;
      cancelled.solver = std::string(solver.name());
      cancelled.budget = budget;
      cancelled.plan = AssignmentPlan(context.campaign().num_pieces());
      cancelled.converged = false;
      cancelled.cancelled = true;
      cancelled.seconds = timer.Seconds();
      return cancelled;
    }
  }
  const SampleSnapshot samples = context.samples();
  const int64_t theta_used = samples.mrr->theta();
  StatusOr<PlanResponse> response =
      solver.Solve(context, samples, request, budget);
  if (!response.ok()) return response.status();
  response->solver = std::string(solver.name());
  response->budget = budget;
  if (response->seconds == 0.0) response->seconds = timer.Seconds();
  response->holdout_utility =
      samples.holdout == nullptr
          ? 0.0
          : EstimateAdoptionUtility(*samples.holdout, context.model(),
                                    response->plan);
  response->theta_used = theta_used;
  response->sampling_rounds = 1;
  if (samples.holdout != nullptr) {
    StoppingInputs inputs;
    inputs.utility = response->utility;
    inputs.upper_bound = response->upper_bound;
    inputs.holdout_utility = response->holdout_utility;
    inputs.theta = theta_used;
    inputs.holdout_theta = samples.holdout->theta();
    inputs.num_vertices = context.graph().num_vertices();
    inputs.epsilon = request.epsilon;
    const StoppingVerdict verdict =
        GetStoppingRule(request.stopping).Evaluate(inputs);
    response->sampling_gap = verdict.sampling_gap;
    response->certified_ratio = verdict.certified_ratio;
    if (stopping != nullptr) *stopping = verdict;
  }
  return response;
}

/// Progressive (ε)-stopping around SolveOne: solve, ask the request's
/// StoppingRule whether the round certifies (kHoldoutGap: in-sample and
/// holdout estimates agree within request.epsilon; kOpimBounds: the
/// online bound pair certifies a (1-1/e-ε)-style ratio), and grow the
/// context's sample store (doubling) until it does or growth hits
/// request.max_theta. Thanks to copy-on-grow + per-sample seeding, the
/// final round is bit-identical to a one-shot solve against a context
/// generated at the final theta.
StatusOr<PlanResponse> SolveOneProgressive(const PlanningContext& context,
                                           const PlanRequest& request,
                                           const Solver& solver,
                                           int budget) {
  WallTimer total_timer;
  int rounds = 0;
  for (;;) {
    StoppingVerdict stopping;
    StatusOr<PlanResponse> response =
        SolveOne(context, request, solver, budget, &stopping);
    if (!response.ok()) return response.status();
    ++rounds;
    response->sampling_rounds = rounds;
    if (response->cancelled) return response;
    if (stopping.satisfied) {
      response->seconds = total_timer.Seconds();
      return response;
    }
    // The store may have been grown further by a concurrent budget
    // worker; double whatever is current.
    const int64_t current = context.sample_store().theta();
    const int64_t target =
        std::min(request.max_theta,
                 current > request.max_theta / 2 ? request.max_theta
                                                 : current * 2);
    if (target <= current) {
      // Cannot grow any further: report the best achievable gap.
      response->seconds = total_timer.Seconds();
      return response;
    }
    OIPA_RETURN_IF_ERROR(context.GrowSamples(target));
  }
}

/// Dispatches one budget through the progressive wrapper when the
/// request asks for (ε)-stopping, else plain SolveOne.
StatusOr<PlanResponse> SolveBudget(const PlanningContext& context,
                                   const PlanRequest& request,
                                   const Solver& solver, int budget) {
  if (request.epsilon > 0.0) {
    return SolveOneProgressive(context, request, solver, budget);
  }
  return SolveOne(context, request, solver, budget);
}

/// SolveBatch fan-out: num_threads sweep workers pull budgets off a
/// shared counter; every individual solve runs the deterministic
/// sequential engine, so the sweep's responses are bit-identical to the
/// serial num_threads == 1 sweep. Progress hooks are serialized.
StatusOr<std::vector<PlanResponse>> SolveBatchSharded(
    const PlanningContext& context, const PlanRequest& request,
    const Solver& solver) {
  const int workers = std::min<int>(
      request.num_threads == 0 ? GetNumThreads() : request.num_threads,
      static_cast<int>(request.budgets.size()));

  PlanRequest worker_request = request;
  worker_request.num_threads = 1;
  Mutex progress_mu;
  std::atomic<bool> stop{false};
  if (request.progress) {
    worker_request.progress = [&](const PlanProgress& p) {
      MutexLock lock(&progress_mu);
      const bool keep_going = request.progress(p);
      if (!keep_going) stop.store(true, std::memory_order_relaxed);
      return keep_going;
    };
  }

  // nullopt = budget never attempted (a worker saw the stop flag first).
  std::vector<std::optional<StatusOr<PlanResponse>>> results(
      request.budgets.size());
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (;;) {
      const size_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= request.budgets.size()) return;
      if (stop.load(std::memory_order_relaxed)) return;
      results[idx] = SolveBudget(context, worker_request, solver,
                                 request.budgets[idx]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();

  // Stitch in budget order; mirror the serial contract — propagate the
  // first error, stop after a cancelled response (later budgets may have
  // solved already; they are dropped for contract parity).
  std::vector<PlanResponse> responses;
  responses.reserve(request.budgets.size());
  for (std::optional<StatusOr<PlanResponse>>& result : results) {
    if (!result.has_value()) break;
    if (!result->ok()) return result->status();
    const bool cancelled = (*result)->cancelled;
    responses.push_back(*std::move(*result));
    if (cancelled) break;
  }
  return responses;
}

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    auto add = [r](std::unique_ptr<Solver> solver) {
      const Status status = r->Register(std::move(solver));
      // Startup bootstrap: a duplicate builtin name is a programmer
      // error and there is no caller to hand a Status.
      // lint:allow(api-check): process-init invariant, not a request path
      OIPA_CHECK(status.ok()) << status.ToString();
    };
    add(std::make_unique<BabFamilySolver>(
        "bab", "paper branch-and-bound (Algorithm 1 + Algorithm 2 bound)",
        /*progressive=*/false));
    add(std::make_unique<BabFamilySolver>(
        "bab-p",
        "paper progressive branch-and-bound (Algorithm 3 bound)",
        /*progressive=*/true));
    add(std::make_unique<ImSolver>());
    add(std::make_unique<TimSolver>());
    add(std::make_unique<BruteForceSolver>());
    add(std::make_unique<GreedySigmaSolver>());
    add(std::make_unique<HighDegreeSolver>());
    add(std::make_unique<DegreeDiscountSolver>());
    add(std::make_unique<RandomSolver>());
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(std::unique_ptr<Solver> solver) {
  if (solver == nullptr) {
    return Status::InvalidArgument("cannot register a null solver");
  }
  const std::string name(solver->name());
  if (name.empty()) {
    return Status::InvalidArgument("solver name must be non-empty");
  }
  MutexLock lock(&mu_);
  const auto [it, inserted] = solvers_.emplace(name, std::move(solver));
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("solver '" + name +
                                      "' is already registered");
  }
  return Status::Ok();
}

StatusOr<const Solver*> SolverRegistry::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = solvers_.find(name);
  if (it == solvers_.end()) {
    std::ostringstream names;
    for (const auto& [key, unused] : solvers_) {
      if (names.tellp() > 0) names << ", ";
      names << key;
    }
    return Status::NotFound("unknown solver '" + name +
                            "' (registered: " + names.str() + ")");
  }
  return it->second.get();
}

bool SolverRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return solvers_.count(name) > 0;
}

std::vector<std::string> SolverRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [key, unused] : solvers_) names.push_back(key);
  return names;  // std::map iteration is already sorted
}

std::string SolverRegistry::DescribeAll() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  for (const auto& [key, solver] : solvers_) {
    os << key << "  (" << solver->description() << ")\n";
  }
  return os.str();
}

StatusOr<PlanResponse> Solve(const PlanningContext& context,
                             const PlanRequest& request,
                             const SolverRegistry& registry) {
  if (request.budgets.size() != 1) {
    return Status::InvalidArgument(
        "Solve() takes exactly one budget (got " +
        std::to_string(request.budgets.size()) +
        "); use SolveBatch() for sweeps");
  }
  const StatusOr<const Solver*> solver = registry.Find(request.solver);
  if (!solver.ok()) return solver.status();
  OIPA_RETURN_IF_ERROR(ValidateRequest(context, request));
  if (!request.deadline_ms.has_value()) {
    return SolveBudget(context, request, **solver, request.budgets[0]);
  }
  PlanRequest timed = request;
  const auto deadline = ComposeDeadline(&timed);
  StatusOr<PlanResponse> response =
      SolveBudget(context, timed, **solver, timed.budgets[0]);
  if (response.ok()) StampDeadline(deadline, &*response);
  return response;
}

StatusOr<std::vector<PlanResponse>> SolveBatch(
    const PlanningContext& context, const PlanRequest& request,
    const SolverRegistry& registry) {
  const StatusOr<const Solver*> solver = registry.Find(request.solver);
  if (!solver.ok()) return solver.status();
  OIPA_RETURN_IF_ERROR(ValidateRequest(context, request));
  std::optional<std::chrono::steady_clock::time_point> deadline;
  PlanRequest timed = request;
  if (request.deadline_ms.has_value()) deadline = ComposeDeadline(&timed);
  StatusOr<std::vector<PlanResponse>> responses = [&] {
    if (timed.num_threads != 1 && timed.shard_budgets &&
        timed.budgets.size() > 1) {
      return SolveBatchSharded(context, timed, **solver);
    }
    std::vector<PlanResponse> out;
    out.reserve(timed.budgets.size());
    for (const int budget : timed.budgets) {
      StatusOr<PlanResponse> response =
          SolveBudget(context, timed, **solver, budget);
      if (!response.ok()) {
        return StatusOr<std::vector<PlanResponse>>(response.status());
      }
      const bool cancelled = response->cancelled;
      out.push_back(*std::move(response));
      if (cancelled) break;
    }
    return StatusOr<std::vector<PlanResponse>>(std::move(out));
  }();
  if (responses.ok() && deadline.has_value()) {
    // Only the tail response can be cancelled (the sweep stops there).
    for (PlanResponse& response : *responses) {
      StampDeadline(*deadline, &response);
    }
  }
  return responses;
}

}  // namespace oipa
