#include "oipa/api/planning_context.h"

#include <utility>

#include "oipa/adoption.h"
#include "util/fault_injector.h"

namespace oipa {

namespace {

/// Wraps a caller-owned reference in a non-owning shared_ptr (empty
/// control block). Used by the Borrow* factories; the caller guarantees
/// the referent outlives the context.
template <typename T>
std::shared_ptr<const T> Unowned(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &ref);
}

Status ValidateInputs(const Graph* graph, const EdgeTopicProbs* probs,
                      const Campaign* campaign) {
  if (graph == nullptr || probs == nullptr || campaign == nullptr) {
    return Status::InvalidArgument(
        "PlanningContext requires non-null graph, probs, and campaign");
  }
  if (graph->num_vertices() < 1) {
    return Status::InvalidArgument("graph has no vertices");
  }
  if (probs->num_edges() != graph->num_edges()) {
    return Status::InvalidArgument(
        "probs cover " + std::to_string(probs->num_edges()) +
        " edges but the graph has " + std::to_string(graph->num_edges()));
  }
  if (campaign->num_pieces() < 1) {
    return Status::InvalidArgument("campaign has no pieces");
  }
  for (int j = 0; j < campaign->num_pieces(); ++j) {
    if (campaign->piece(j).topics.num_topics() != probs->num_topics()) {
      return Status::InvalidArgument(
          "campaign piece " + std::to_string(j) + " has " +
          std::to_string(campaign->piece(j).topics.num_topics()) +
          " topic dimensions but probs have " +
          std::to_string(probs->num_topics()));
    }
  }
  return Status::Ok();
}

SampleStore::Options StoreOptions(const ContextOptions& options) {
  SampleStore::Options store_options;
  store_options.theta = options.theta;
  store_options.holdout_theta = options.holdout_theta;
  store_options.seed = options.seed;
  store_options.diffusion = options.diffusion;
  store_options.sampling_threads = options.sampling_threads;
  store_options.source_key = options.source_key;
  return store_options;
}

}  // namespace

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Build(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign, LogisticAdoptionModel model,
    ContextOptions options, std::shared_ptr<const MrrCollection> mrr,
    std::shared_ptr<const MrrCollection> holdout) {
  // Private constructor: build in place, then fill.
  std::shared_ptr<PlanningContext> ctx(new PlanningContext());
  ctx->graph_ = std::move(graph);
  ctx->probs_ = std::move(probs);
  ctx->campaign_ = std::move(campaign);
  ctx->model_ = model;
  ctx->options_ = options;
  if (mrr != nullptr) {
    ctx->pieces_ = std::make_shared<const std::vector<InfluenceGraph>>(
        BuildPieceGraphs(*ctx->graph_, *ctx->probs_, *ctx->campaign_));
    ctx->store_ =
        SampleStore::Adopt(ctx->pieces_, std::move(mrr), std::move(holdout));
  } else if (options.share_samples) {
    // Registry path: the store owns the piece graphs, so a registry hit
    // skips BuildPieceGraphs along with the sampling pass.
    ctx->store_ = SampleStore::Acquire(ctx->graph_, ctx->probs_,
                                       ctx->campaign_, StoreOptions(options));
    if (ctx->store_ == nullptr) {
      // Only fault injection makes Acquire fail (util/fault_injector.h,
      // site "store.acquire"); surface it as a transient error.
      return InjectedFault("store.acquire");
    }
    ctx->pieces_ = ctx->store_->pieces();
  } else {
    ctx->pieces_ = std::make_shared<const std::vector<InfluenceGraph>>(
        BuildPieceGraphs(*ctx->graph_, *ctx->probs_, *ctx->campaign_));
    ctx->store_ = SampleStore::Create(ctx->pieces_, StoreOptions(options));
  }
  return std::shared_ptr<const PlanningContext>(std::move(ctx));
}

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Create(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign, LogisticAdoptionModel model,
    ContextOptions options) {
  OIPA_RETURN_IF_ERROR(
      ValidateInputs(graph.get(), probs.get(), campaign.get()));
  if (options.theta < 1) {
    return Status::InvalidArgument("ContextOptions::theta must be >= 1");
  }
  if (options.holdout_theta < -1) {
    return Status::InvalidArgument(
        "ContextOptions::holdout_theta must be >= -1");
  }
  return Build(std::move(graph), std::move(probs), std::move(campaign),
               model, options, nullptr, nullptr);
}

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Borrow(
    const Graph& graph, const EdgeTopicProbs& probs,
    const Campaign& campaign, LogisticAdoptionModel model,
    ContextOptions options) {
  return Create(Unowned(graph), Unowned(probs), Unowned(campaign), model,
                options);
}

StatusOr<std::shared_ptr<const PlanningContext>>
PlanningContext::BorrowWithSamples(const Graph& graph,
                                   const EdgeTopicProbs& probs,
                                   const Campaign& campaign,
                                   LogisticAdoptionModel model,
                                   const MrrCollection* mrr,
                                   const MrrCollection* holdout) {
  OIPA_RETURN_IF_ERROR(ValidateInputs(&graph, &probs, &campaign));
  if (mrr == nullptr) {
    return Status::InvalidArgument(
        "BorrowWithSamples requires a non-null MRR collection");
  }
  for (const MrrCollection* samples : {mrr, holdout}) {
    if (samples == nullptr) continue;
    if (samples->num_pieces() != campaign.num_pieces()) {
      return Status::InvalidArgument(
          "MRR collection has " + std::to_string(samples->num_pieces()) +
          " pieces but the campaign has " +
          std::to_string(campaign.num_pieces()));
    }
    if (samples->num_vertices() != graph.num_vertices()) {
      return Status::InvalidArgument(
          "MRR collection covers " +
          std::to_string(samples->num_vertices()) +
          " vertices but the graph has " +
          std::to_string(graph.num_vertices()));
    }
  }
  ContextOptions options;
  options.theta = mrr->theta();
  options.holdout_theta = holdout == nullptr ? 0 : holdout->theta();
  options.share_samples = false;
  return Build(Unowned(graph), Unowned(probs), Unowned(campaign), model,
               options, Unowned(*mrr),
               holdout == nullptr
                   ? std::shared_ptr<const MrrCollection>()
                   : Unowned(*holdout));
}

double PlanningContext::EstimateUtility(const AssignmentPlan& plan) const {
  return EstimateAdoptionUtility(*samples().mrr, model_, plan);
}

double PlanningContext::EstimateHoldoutUtility(
    const AssignmentPlan& plan) const {
  const SampleSnapshot snap = samples();
  if (snap.holdout == nullptr) return 0.0;
  return EstimateAdoptionUtility(*snap.holdout, model_, plan);
}

StatusOr<PlanResponse> PlanningContext::Evaluate(
    const AssignmentPlan& plan, const std::string& label) const {
  if (plan.num_pieces() != campaign_->num_pieces()) {
    return Status::InvalidArgument(
        "plan has " + std::to_string(plan.num_pieces()) +
        " pieces but the campaign has " +
        std::to_string(campaign_->num_pieces()));
  }
  // One snapshot for both estimates, so they always come from the same
  // generation even while the store grows.
  const SampleSnapshot snap = samples();
  PlanResponse response;
  response.solver = label;
  response.budget = plan.size();
  response.plan = plan;
  response.utility = EstimateAdoptionUtility(*snap.mrr, model_, plan);
  response.holdout_utility =
      snap.holdout == nullptr
          ? 0.0
          : EstimateAdoptionUtility(*snap.holdout, model_, plan);
  response.upper_bound = response.utility;
  return response;
}

double PlanningContext::SimulateUtility(const AssignmentPlan& plan,
                                        int trials, uint64_t seed) const {
  return SimulateAdoptionUtility(*pieces_, model_, plan, trials, seed);
}

}  // namespace oipa
