#include "oipa/api/planning_context.h"

#include <utility>

#include "oipa/adoption.h"

namespace oipa {

namespace {

/// Wraps a caller-owned reference in a non-owning shared_ptr (empty
/// control block). Used by the Borrow* factories; the caller guarantees
/// the referent outlives the context.
template <typename T>
std::shared_ptr<const T> Unowned(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &ref);
}

Status ValidateInputs(const Graph* graph, const EdgeTopicProbs* probs,
                      const Campaign* campaign) {
  if (graph == nullptr || probs == nullptr || campaign == nullptr) {
    return Status::InvalidArgument(
        "PlanningContext requires non-null graph, probs, and campaign");
  }
  if (graph->num_vertices() < 1) {
    return Status::InvalidArgument("graph has no vertices");
  }
  if (probs->num_edges() != graph->num_edges()) {
    return Status::InvalidArgument(
        "probs cover " + std::to_string(probs->num_edges()) +
        " edges but the graph has " + std::to_string(graph->num_edges()));
  }
  if (campaign->num_pieces() < 1) {
    return Status::InvalidArgument("campaign has no pieces");
  }
  for (int j = 0; j < campaign->num_pieces(); ++j) {
    if (campaign->piece(j).topics.num_topics() != probs->num_topics()) {
      return Status::InvalidArgument(
          "campaign piece " + std::to_string(j) + " has " +
          std::to_string(campaign->piece(j).topics.num_topics()) +
          " topic dimensions but probs have " +
          std::to_string(probs->num_topics()));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Build(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign, LogisticAdoptionModel model,
    ContextOptions options, std::shared_ptr<const MrrCollection> mrr,
    std::shared_ptr<const MrrCollection> holdout) {
  // Private constructor: build in place, then fill.
  std::shared_ptr<PlanningContext> ctx(new PlanningContext());
  ctx->graph_ = std::move(graph);
  ctx->probs_ = std::move(probs);
  ctx->campaign_ = std::move(campaign);
  ctx->model_ = model;
  ctx->options_ = options;
  ctx->pieces_ =
      BuildPieceGraphs(*ctx->graph_, *ctx->probs_, *ctx->campaign_);
  if (mrr != nullptr) {
    ctx->mrr_ = std::move(mrr);
    ctx->holdout_ = std::move(holdout);
  } else {
    ctx->mrr_ = std::make_shared<const MrrCollection>(
        MrrCollection::Generate(ctx->pieces_, options.theta, options.seed,
                                options.diffusion));
    const int64_t holdout_theta =
        options.holdout_theta < 0 ? options.theta : options.holdout_theta;
    if (holdout_theta > 0) {
      ctx->holdout_ = std::make_shared<const MrrCollection>(
          MrrCollection::Generate(ctx->pieces_, holdout_theta,
                                  options.seed ^ 0xABCDEF12345ULL,
                                  options.diffusion));
    }
  }
  return std::shared_ptr<const PlanningContext>(std::move(ctx));
}

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Create(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const EdgeTopicProbs> probs,
    std::shared_ptr<const Campaign> campaign, LogisticAdoptionModel model,
    ContextOptions options) {
  OIPA_RETURN_IF_ERROR(
      ValidateInputs(graph.get(), probs.get(), campaign.get()));
  if (options.theta < 1) {
    return Status::InvalidArgument("ContextOptions::theta must be >= 1");
  }
  if (options.holdout_theta < -1) {
    return Status::InvalidArgument(
        "ContextOptions::holdout_theta must be >= -1");
  }
  return Build(std::move(graph), std::move(probs), std::move(campaign),
               model, options, nullptr, nullptr);
}

StatusOr<std::shared_ptr<const PlanningContext>> PlanningContext::Borrow(
    const Graph& graph, const EdgeTopicProbs& probs,
    const Campaign& campaign, LogisticAdoptionModel model,
    ContextOptions options) {
  return Create(Unowned(graph), Unowned(probs), Unowned(campaign), model,
                options);
}

StatusOr<std::shared_ptr<const PlanningContext>>
PlanningContext::BorrowWithSamples(const Graph& graph,
                                   const EdgeTopicProbs& probs,
                                   const Campaign& campaign,
                                   LogisticAdoptionModel model,
                                   const MrrCollection* mrr,
                                   const MrrCollection* holdout) {
  OIPA_RETURN_IF_ERROR(ValidateInputs(&graph, &probs, &campaign));
  if (mrr == nullptr) {
    return Status::InvalidArgument(
        "BorrowWithSamples requires a non-null MRR collection");
  }
  for (const MrrCollection* samples : {mrr, holdout}) {
    if (samples == nullptr) continue;
    if (samples->num_pieces() != campaign.num_pieces()) {
      return Status::InvalidArgument(
          "MRR collection has " + std::to_string(samples->num_pieces()) +
          " pieces but the campaign has " +
          std::to_string(campaign.num_pieces()));
    }
    if (samples->num_vertices() != graph.num_vertices()) {
      return Status::InvalidArgument(
          "MRR collection covers " +
          std::to_string(samples->num_vertices()) +
          " vertices but the graph has " +
          std::to_string(graph.num_vertices()));
    }
  }
  ContextOptions options;
  options.theta = mrr->theta();
  options.holdout_theta = holdout == nullptr ? 0 : holdout->theta();
  return Build(Unowned(graph), Unowned(probs), Unowned(campaign), model,
               options, Unowned(*mrr),
               holdout == nullptr
                   ? std::shared_ptr<const MrrCollection>()
                   : Unowned(*holdout));
}

const MrrCollection& PlanningContext::mrr() const {
  std::lock_guard<std::mutex> lock(sample_mu_);
  return *mrr_;
}

const MrrCollection* PlanningContext::holdout() const {
  std::lock_guard<std::mutex> lock(sample_mu_);
  return holdout_.get();
}

bool PlanningContext::CanGrowSamples() const {
  std::lock_guard<std::mutex> lock(sample_mu_);
  return mrr_->extendable() &&
         (holdout_ == nullptr || holdout_->extendable());
}

Status PlanningContext::GrowSamples(int64_t target_theta) const {
  if (target_theta < 1) {
    return Status::InvalidArgument("GrowSamples target must be >= 1");
  }
  // grow_mu_ serializes growers for the whole (expensive) sampling
  // phase; sample_mu_ is only taken for the pointer reads/swaps, so
  // concurrent solvers keep reading their generation while new samples
  // are being drawn.
  std::lock_guard<std::mutex> grow_lock(grow_mu_);
  std::shared_ptr<const MrrCollection> current_mrr;
  std::shared_ptr<const MrrCollection> current_holdout;
  {
    std::lock_guard<std::mutex> lock(sample_mu_);
    current_mrr = mrr_;
    current_holdout = holdout_;
  }
  if (current_mrr->theta() >= target_theta) return Status::Ok();
  if (!current_mrr->extendable() ||
      (current_holdout != nullptr && !current_holdout->extendable())) {
    return Status::FailedPrecondition(
        "context samples lack sampling provenance and cannot grow "
        "(collections loaded via legacy FromParts are not extendable)");
  }
  // Copy-on-grow: extend copies, then publish them, retiring the old
  // generations so outstanding references stay valid. Only growers
  // mutate the store and they hold grow_mu_, so the snapshot read above
  // is still current at the swap below.
  auto grown = std::make_shared<MrrCollection>(*current_mrr);
  grown->Extend(pieces_, target_theta);
  std::shared_ptr<const MrrCollection> grown_holdout;
  if (current_holdout != nullptr) {
    auto h = std::make_shared<MrrCollection>(*current_holdout);
    h->Extend(pieces_, target_theta);
    grown_holdout = std::move(h);
  }
  {
    std::lock_guard<std::mutex> lock(sample_mu_);
    retired_.push_back(std::move(mrr_));
    mrr_ = std::move(grown);
    if (grown_holdout != nullptr) {
      retired_.push_back(std::move(holdout_));
      holdout_ = std::move(grown_holdout);
    }
  }
  return Status::Ok();
}

double PlanningContext::EstimateUtility(const AssignmentPlan& plan) const {
  return EstimateAdoptionUtility(mrr(), model_, plan);
}

double PlanningContext::EstimateHoldoutUtility(
    const AssignmentPlan& plan) const {
  const MrrCollection* h = holdout();
  if (h == nullptr) return 0.0;
  return EstimateAdoptionUtility(*h, model_, plan);
}

StatusOr<PlanResponse> PlanningContext::Evaluate(
    const AssignmentPlan& plan, const std::string& label) const {
  if (plan.num_pieces() != campaign_->num_pieces()) {
    return Status::InvalidArgument(
        "plan has " + std::to_string(plan.num_pieces()) +
        " pieces but the campaign has " +
        std::to_string(campaign_->num_pieces()));
  }
  PlanResponse response;
  response.solver = label;
  response.budget = plan.size();
  response.plan = plan;
  response.utility = EstimateUtility(plan);
  response.holdout_utility = EstimateHoldoutUtility(plan);
  response.upper_bound = response.utility;
  return response;
}

double PlanningContext::SimulateUtility(const AssignmentPlan& plan,
                                        int trials, uint64_t seed) const {
  return SimulateAdoptionUtility(pieces_, model_, plan, trials, seed);
}

}  // namespace oipa
