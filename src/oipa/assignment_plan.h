#ifndef OIPA_OIPA_ASSIGNMENT_PLAN_H_
#define OIPA_OIPA_ASSIGNMENT_PLAN_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace oipa {

/// A (piece, promoter) assignment: promoter v is selected to spread piece
/// `piece`. A plan is a set of such pairs; the paper's S̄ = {S_1..S_l}
/// with S_j = {v : (j, v) in plan}.
using Assignment = std::pair<int, VertexId>;

/// An assignment plan for an l-piece campaign. Budget |S̄| is the total
/// number of assignments across pieces (Definition 1).
class AssignmentPlan {
 public:
  explicit AssignmentPlan(int num_pieces);

  /// Builds a plan from per-piece seed sets.
  static AssignmentPlan FromSeedSets(
      std::vector<std::vector<VertexId>> seed_sets);

  int num_pieces() const { return static_cast<int>(seed_sets_.size()); }

  /// Total number of assignments sum_j |S_j|.
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::vector<VertexId>& SeedSet(int piece) const {
    return seed_sets_[piece];
  }

  /// Adds promoter v for `piece`. Returns false (no-op) if already there.
  bool Add(int piece, VertexId v);

  /// Removes promoter v from `piece`. Returns false if absent.
  bool Remove(int piece, VertexId v);

  bool Contains(int piece, VertexId v) const;

  /// True if every seed set of this plan is a subset of `other`'s
  /// (Definition 2 containment).
  bool ContainedIn(const AssignmentPlan& other) const;

  /// All assignments as (piece, vertex) pairs, piece-major order.
  std::vector<Assignment> Assignments() const;

  /// e.g. "{S0={1,5}, S1={3}}".
  std::string DebugString() const;

 private:
  std::vector<std::vector<VertexId>> seed_sets_;
  int size_ = 0;
};

}  // namespace oipa

#endif  // OIPA_OIPA_ASSIGNMENT_PLAN_H_
