#include "oipa/planner.h"

#include "oipa/adoption.h"
#include "util/logging.h"

namespace oipa {

OipaPlanner::OipaPlanner(const Graph& graph, const EdgeTopicProbs& probs,
                         const Campaign& campaign,
                         const LogisticAdoptionModel& model,
                         PlannerOptions options)
    : graph_(graph),
      probs_(probs),
      campaign_(campaign),
      model_(model),
      options_(options) {
  OIPA_CHECK_GT(campaign.num_pieces(), 0);
  pieces_ = BuildPieceGraphs(graph_, probs_, campaign_);
  mrr_ = std::make_unique<MrrCollection>(
      MrrCollection::Generate(pieces_, options_.theta, options_.seed,
                              options_.diffusion));
  holdout_ = std::make_unique<MrrCollection>(MrrCollection::Generate(
      pieces_, options_.theta, options_.seed ^ 0xABCDEF12345ULL,
      options_.diffusion));
}

PlanReport OipaPlanner::Finish(PlanReport report) const {
  report.holdout_utility =
      EstimateAdoptionUtility(*holdout_, model_, report.plan);
  return report;
}

PlanReport OipaPlanner::SolveBab(const std::vector<VertexId>& pool,
                                 int k) const {
  BabOptions opts;
  opts.budget = k;
  opts.gap = options_.gap;
  opts.max_nodes = options_.max_nodes;
  const BabResult r = BabSolver(mrr_.get(), model_, pool, opts).Solve();
  PlanReport report;
  report.plan = r.plan;
  report.utility = r.utility;
  report.seconds = r.seconds;
  report.method = "BAB";
  return Finish(std::move(report));
}

PlanReport OipaPlanner::SolveBabP(const std::vector<VertexId>& pool,
                                  int k) const {
  BabOptions opts;
  opts.budget = k;
  opts.gap = options_.gap;
  opts.max_nodes = options_.max_nodes;
  opts.progressive = true;
  opts.epsilon = options_.epsilon;
  const BabResult r = BabSolver(mrr_.get(), model_, pool, opts).Solve();
  PlanReport report;
  report.plan = r.plan;
  report.utility = r.utility;
  report.seconds = r.seconds;
  report.method = "BAB-P";
  return Finish(std::move(report));
}

PlanReport OipaPlanner::SolveImBaseline(const std::vector<VertexId>& pool,
                                        int k) const {
  const BaselineResult r =
      ImBaseline(graph_, probs_, campaign_, *mrr_, model_, pool, k,
                 options_.theta, options_.seed + 17);
  PlanReport report;
  report.plan = r.plan;
  report.utility = r.utility;
  report.seconds = r.seconds;
  report.method = "IM";
  return Finish(std::move(report));
}

PlanReport OipaPlanner::SolveTimBaseline(const std::vector<VertexId>& pool,
                                         int k) const {
  const BaselineResult r =
      TimBaseline(graph_, probs_, campaign_, *mrr_, model_, pool, k,
                  options_.theta, options_.seed + 19);
  PlanReport report;
  report.plan = r.plan;
  report.utility = r.utility;
  report.seconds = r.seconds;
  report.method = "TIM";
  return Finish(std::move(report));
}

PlanReport OipaPlanner::EvaluatePlan(const AssignmentPlan& plan,
                                     const std::string& label) const {
  PlanReport report;
  report.plan = plan;
  report.utility = EstimateAdoptionUtility(*mrr_, model_, plan);
  report.method = label;
  return Finish(std::move(report));
}

double OipaPlanner::SimulateUtility(const AssignmentPlan& plan, int trials,
                                    uint64_t seed) const {
  return SimulateAdoptionUtility(pieces_, model_, plan, trials, seed);
}

}  // namespace oipa
