#include "oipa/brute_force.h"

#include <algorithm>
#include <cmath>

#include "rrset/coverage_state.h"
#include "util/logging.h"

namespace oipa {

namespace {

/// Depth-first enumeration over the flattened candidate list with an
/// incrementally maintained coverage state.
class Enumerator {
 public:
  Enumerator(const MrrCollection& mrr, const LogisticAdoptionModel& model,
             std::vector<Assignment> candidates, int budget)
      : candidates_(std::move(candidates)),
        budget_(budget),
        state_(&mrr, model.AdoptionTable(mrr.num_pieces())),
        result_{AssignmentPlan(mrr.num_pieces()), -1.0, 0} {}

  BruteForceResult Run() {
    Recurse(0, 0);
    if (result_.utility < 0.0) {
      result_.utility = 0.0;  // empty plan
    }
    return std::move(result_);
  }

 private:
  void Recurse(size_t next, int chosen) {
    // Evaluate the current plan (any size <= budget).
    ++result_.plans_evaluated;
    const double utility = state_.Utility();
    if (utility > result_.utility) {
      result_.utility = utility;
      AssignmentPlan plan(state_.mrr().num_pieces());
      for (const auto& [piece, v] : stack_) plan.Add(piece, v);
      result_.plan = plan;
    }
    if (chosen == budget_) return;
    for (size_t i = next; i < candidates_.size(); ++i) {
      const auto& [piece, v] = candidates_[i];
      state_.AddSeed(v, piece);
      stack_.push_back(candidates_[i]);
      Recurse(i + 1, chosen + 1);
      stack_.pop_back();
      state_.RemoveSeed(v, piece);
    }
  }

  std::vector<Assignment> candidates_;
  int budget_;
  CoverageState state_;
  std::vector<Assignment> stack_;
  BruteForceResult result_;
};

double LogChoose(double n, double k) {
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += std::log((n - i) / (i + 1));
  return sum;
}

}  // namespace

bool BruteForceFeasible(int64_t num_candidates, int budget) {
  const double n = static_cast<double>(num_candidates);
  return LogChoose(n, std::min<double>(budget, n)) <= std::log(5e7);
}

BruteForceResult BruteForceSolve(
    const MrrCollection& mrr, const LogisticAdoptionModel& model,
    const std::vector<std::vector<VertexId>>& pools, int budget) {
  OIPA_CHECK_EQ(static_cast<int>(pools.size()), mrr.num_pieces());
  OIPA_CHECK_GE(budget, 0);
  std::vector<Assignment> candidates;
  for (int j = 0; j < mrr.num_pieces(); ++j) {
    for (VertexId v : pools[j]) candidates.emplace_back(j, v);
  }
  OIPA_CHECK(BruteForceFeasible(static_cast<int64_t>(candidates.size()),
                                budget))
      << "brute force instance too large";
  Enumerator enumerator(mrr, model, std::move(candidates), budget);
  return enumerator.Run();
}

BruteForceResult BruteForceSolve(const MrrCollection& mrr,
                                 const LogisticAdoptionModel& model,
                                 const std::vector<VertexId>& pool,
                                 int budget) {
  return BruteForceSolve(
      mrr, model,
      std::vector<std::vector<VertexId>>(mrr.num_pieces(), pool), budget);
}

}  // namespace oipa
