#include "oipa/tangent_bound.h"

#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace oipa {

namespace {

/// The x > 0 point where the sigmoid has derivative w (0 < w < 1/4):
/// sigmoid'(t) = s(1-s) = w with s > 1/2 gives
/// t = log((1 + sqrt(1-4w)) / (1 - sqrt(1-4w))).
double TangentPointForSlope(double w) {
  const double r = std::sqrt(std::max(0.0, 1.0 - 4.0 * w));
  return std::log((1.0 + r) / (1.0 - r));
}

}  // namespace

double RefineTangentSlope(double x0, double tolerance) {
  if (x0 >= 0.0) {
    // The sigmoid is concave on [0, inf): its own tangent at x0 bounds it.
    return SigmoidDerivative(x0);
  }
  const double y0 = Sigmoid(x0);
  // Binary search on the gradient in (0, 1/4): for candidate w, evaluate
  // the line through (x0, y0) at the matching tangent point t(w); if the
  // line passes above the curve there, the slope is too large.
  double lo = 0.0;
  double hi = 0.25;
  for (int iter = 0; iter < 200 && hi - lo > tolerance; ++iter) {
    const double w = 0.5 * (lo + hi);
    const double t = TangentPointForSlope(w);
    const double line_at_t = w * t + y0 - w * x0;
    if (line_at_t > Sigmoid(t)) {
      hi = w;
    } else {
      lo = w;
    }
  }
  // Return the upper end: the line with slope hi is guaranteed to pass
  // (weakly) above the tangency point, hence above the whole curve.
  return hi;
}

double ZeroAnchoredSlope(const LogisticAdoptionModel& model, int max_count) {
  OIPA_CHECK_GE(max_count, 1);
  double w = 0.0;
  for (int c = 1; c <= max_count; ++c) {
    w = std::max(w, model.AdoptionProb(c) / static_cast<double>(c));
  }
  return w;
}

TangentTable::TangentTable(const LogisticAdoptionModel& model, int max_count,
                           BoundVariant variant)
    : variant_(variant) {
  OIPA_CHECK_GE(max_count, 0);
  lines_.resize(max_count + 1);
  for (int a = 0; a <= max_count; ++a) {
    TangentLine& line = lines_[a];
    if (a == 0 && variant == BoundVariant::kZeroAnchored &&
        max_count >= 1) {
      line.value_at_anchor = 0.0;
      line.slope_per_piece = ZeroAnchoredSlope(model, max_count);
      continue;
    }
    const double x0 = model.beta() * a - model.alpha();
    line.value_at_anchor = Sigmoid(x0);
    line.slope_per_piece = RefineTangentSlope(x0) * model.beta();
  }
}

}  // namespace oipa
