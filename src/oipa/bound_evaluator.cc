#include "oipa/bound_evaluator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <span>

#include "rrset/coverage_kernels.h"
#include "util/logging.h"

namespace oipa {

BoundEvaluator::BoundEvaluator(const MrrCollection* mrr,
                               const LogisticAdoptionModel& model,
                               std::vector<std::vector<VertexId>> pools,
                               BoundVariant variant)
    : mrr_(mrr),
      model_(model),
      table_(model, mrr->num_pieces(), variant),
      pools_(std::move(pools)),
      num_vertices_(mrr->num_vertices()),
      num_pieces_(mrr->num_pieces()) {
  OIPA_CHECK_EQ(static_cast<int>(pools_.size()), num_pieces_);
  for (const auto& pool : pools_) {
    for (VertexId v : pool) {
      OIPA_CHECK_GE(v, 0);
      OIPA_CHECK_LT(v, num_vertices_);
    }
  }
  line_epoch_.assign(mrr_->theta(), 0);
  line_value_.assign(mrr_->theta(), 0.0);
  greedy_cover_epoch_.resize(num_pieces_);
  for (auto& row : greedy_cover_epoch_) row.assign(mrr_->theta(), 0);
  excluded_flag_.assign(
      static_cast<size_t>(num_pieces_) * num_vertices_, 0);
  anchor_by_count_.resize(num_pieces_ + 1);
  slope_by_count_.resize(num_pieces_ + 1);
  for (int c = 0; c <= num_pieces_; ++c) {
    anchor_by_count_[c] = table_.line(c).value_at_anchor;
    slope_by_count_[c] = table_.line(c).slope_per_piece;
  }
}

void BoundEvaluator::SyncWithCollection() {
  const int64_t new_theta = mrr_->theta();
  OIPA_CHECK_GE(new_theta, static_cast<int64_t>(line_epoch_.size()));
  // Per-sample scratch rows grow by plain appends. New entries start at
  // epoch 0; BeginCall keeps epoch_ >= 1, so they are correctly treated
  // as stale on first touch.
  line_epoch_.resize(new_theta, 0);
  line_value_.resize(new_theta, 0.0);
  for (auto& row : greedy_cover_epoch_) row.resize(new_theta, 0);
}

BoundEvaluator::BoundEvaluator(const MrrCollection* mrr,
                               const LogisticAdoptionModel& model,
                               const std::vector<VertexId>& shared_pool,
                               BoundVariant variant)
    : BoundEvaluator(mrr, model,
                     std::vector<std::vector<VertexId>>(
                         mrr->num_pieces(), shared_pool),
                     variant) {}

double BoundEvaluator::LineValue(int64_t i, const CoverageState& state) {
  if (line_epoch_[i] != epoch_) {
    line_epoch_[i] = epoch_;
    line_value_[i] = table_.line(state.CoverCount(i)).value_at_anchor;
  }
  return line_value_[i];
}

double BoundEvaluator::SampleGain(int64_t i, const CoverageState& state) {
  const double lv = LineValue(i, state);
  const double slope = table_.line(state.CoverCount(i)).slope_per_piece;
  const double headroom = 1.0 - lv;
  if (headroom <= 0.0) return 0.0;
  return slope < headroom ? slope : headroom;
}

double BoundEvaluator::CandidateGain(int piece, VertexId v,
                                     const CoverageState& state) {
  ++total_tau_evals_;
  // The search's hot loop, batched through the tangent-gain kernel
  // (rrset/coverage_kernels.h). Read-only: unlike the historical loop
  // it does not warm the line-value cache — the cached value would be
  // exactly the anchor value the kernel reads instead, so results are
  // bit-identical and ApplyCandidate still initializes the cache.
  double gain = 0.0;
  const uint16_t* mult = state.MultiplicityRow(piece);
  const uint32_t* gepoch = greedy_cover_epoch_[piece].data();
  const uint8_t* counts = state.CoverCounts();
  mrr_->ForEachSampleSpan(piece, v, [&](std::span<const int64_t> ids) {
    gain = TangentGainSum(ids, mult, gepoch, epoch_, line_epoch_.data(),
                          line_value_.data(), counts,
                          anchor_by_count_.data(), slope_by_count_.data(),
                          gain);
  });
  return gain;
}

double BoundEvaluator::ApplyCandidate(int piece, VertexId v,
                                      const CoverageState& state) {
  double gain = 0.0;
  std::vector<uint32_t>& marks = greedy_cover_epoch_[piece];
  mrr_->ForEachSampleContaining(piece, v, [&](int64_t i) {
    if (state.IsCovered(i, piece)) return;
    uint32_t& mark = marks[i];
    if (mark == epoch_) return;
    mark = epoch_;
    const double g = SampleGain(i, state);
    line_value_[i] += g;  // LineValue already initialized by SampleGain
    gain += g;
  });
  return gain;
}

double BoundEvaluator::BaseTau(const CoverageState& state) const {
  const std::vector<int64_t>& hist = state.CountHistogram();
  double base = 0.0;
  for (int c = 0; c <= num_pieces_; ++c) {
    base += static_cast<double>(hist[c]) * table_.line(c).value_at_anchor;
  }
  return base;
}

void BoundEvaluator::BeginCall(const std::vector<Assignment>& excluded) {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(line_epoch_.begin(), line_epoch_.end(), 0u);
    for (auto& row : greedy_cover_epoch_) {
      std::fill(row.begin(), row.end(), 0u);
    }
    epoch_ = 1;
  }
  for (const auto& [piece, v] : excluded) {
    excluded_flag_[static_cast<size_t>(piece) * num_vertices_ + v] = 1;
  }
}

void BoundEvaluator::EndCall(const std::vector<Assignment>& excluded) {
  for (const auto& [piece, v] : excluded) {
    excluded_flag_[static_cast<size_t>(piece) * num_vertices_ + v] = 0;
  }
}

bool BoundEvaluator::IsExcluded(int piece, VertexId v) const {
  return excluded_flag_[static_cast<size_t>(piece) * num_vertices_ + v] !=
         0;
}

void BoundEvaluator::FinishResult(CoverageState* state, double tau_raw,
                                  BoundResult* result) {
  // Snapshot/Restore journals the adds and rewinds them without a
  // second inverted-list traversal.
  state->Snapshot();
  for (const auto& [piece, v] : result->additions) {
    state->AddSeed(v, piece);
  }
  result->sigma = state->Utility();
  state->Restore();
  result->tau = tau_raw * mrr_->UtilityScale();
}

BoundResult BoundEvaluator::ComputeBound(
    CoverageState* state, int budget_remaining,
    const std::vector<Assignment>& excluded) {
  OIPA_CHECK_GE(budget_remaining, 0);
  BeginCall(excluded);
  const int64_t evals_before = total_tau_evals_;

  BoundResult result;
  double tau_raw = BaseTau(*state);
  // Plain greedy (Algorithm 2): each round scans every available
  // promoter-piece pair for the maximum surrogate marginal gain.
  for (int round = 0; round < budget_remaining; ++round) {
    BoundPick best;
    for (int j = 0; j < num_pieces_; ++j) {
      for (VertexId v : pools_[j]) {
        if (IsExcluded(j, v)) continue;
        const double gain = CandidateGain(j, v, *state);
        if (gain > best.gain ||
            (gain == best.gain && best.valid() && gain > 0.0 &&
             (j < best.piece || (j == best.piece && v < best.v)))) {
          best = {j, v, gain};
        }
      }
    }
    if (!best.valid() || best.gain <= 0.0) break;
    tau_raw += ApplyCandidate(best.piece, best.v, *state);
    result.additions.emplace_back(best.piece, best.v);
    if (round == 0) result.first_pick = best;
    // A selected pair is no longer a candidate.
    excluded_flag_[static_cast<size_t>(best.piece) * num_vertices_ +
                   best.v] = 1;
  }
  // Clear the selection marks (they are not caller-owned exclusions).
  for (const auto& [piece, v] : result.additions) {
    excluded_flag_[static_cast<size_t>(piece) * num_vertices_ + v] = 0;
  }

  FinishResult(state, tau_raw, &result);
  result.tau_evals = total_tau_evals_ - evals_before;
  EndCall(excluded);
  return result;
}

BoundResult BoundEvaluator::ComputeBoundLazy(
    CoverageState* state, int budget_remaining,
    const std::vector<Assignment>& excluded) {
  OIPA_CHECK_GE(budget_remaining, 0);
  BeginCall(excluded);
  const int64_t evals_before = total_tau_evals_;

  BoundResult result;
  double tau_raw = BaseTau(*state);

  // CELF heap: entries carry the round their gain was computed in; a
  // stale entry is re-evaluated and re-pushed. Submodularity of the
  // surrogate guarantees gains only shrink, so a fresh top is optimal.
  struct Entry {
    double gain;
    int piece;
    VertexId v;
    int round;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.piece != b.piece) return a.piece > b.piece;
    return a.v > b.v;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (int j = 0; j < num_pieces_; ++j) {
    for (VertexId v : pools_[j]) {
      if (IsExcluded(j, v)) continue;
      const double gain = CandidateGain(j, v, *state);
      if (gain > 0.0) heap.push({gain, j, v, 0});
    }
  }

  int round = 0;
  while (round < budget_remaining && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round != round) {
      const double gain = CandidateGain(top.piece, top.v, *state);
      if (gain > 0.0) heap.push({gain, top.piece, top.v, round});
      continue;
    }
    if (top.gain <= 0.0) break;
    tau_raw += ApplyCandidate(top.piece, top.v, *state);
    result.additions.emplace_back(top.piece, top.v);
    if (round == 0) result.first_pick = {top.piece, top.v, top.gain};
    ++round;
  }

  FinishResult(state, tau_raw, &result);
  result.tau_evals = total_tau_evals_ - evals_before;
  EndCall(excluded);
  return result;
}

BoundResult BoundEvaluator::ComputeBoundPro(
    CoverageState* state, int budget_remaining,
    const std::vector<Assignment>& excluded, double epsilon,
    bool fill_budget) {
  OIPA_CHECK_GE(budget_remaining, 0);
  OIPA_CHECK_GT(epsilon, 0.0);
  BeginCall(excluded);
  const int64_t evals_before = total_tau_evals_;

  BoundResult result;
  double tau_raw = BaseTau(*state);

  // Line 2 of Algorithm 3: order candidates by their singleton surrogate
  // gain delta_emptyset(v).
  struct Candidate {
    double gain0;
    int piece;
    VertexId v;
  };
  std::vector<Candidate> candidates;
  for (int j = 0; j < num_pieces_; ++j) {
    for (VertexId v : pools_[j]) {
      if (IsExcluded(j, v)) continue;
      const double g0 = CandidateGain(j, v, *state);
      if (g0 > 0.0) candidates.push_back({g0, j, v});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.gain0 != b.gain0) return a.gain0 > b.gain0;
              if (a.piece != b.piece) return a.piece < b.piece;
              return a.v < b.v;
            });

  if (!candidates.empty() && budget_remaining > 0) {
    std::vector<uint8_t> selected(candidates.size(), 0);
    // CELF-style lazy cache: the last gain computed for each candidate.
    // The surrogate is submodular within one call (line values only
    // rise), so a cached gain is an upper bound on the fresh gain — a
    // candidate whose cache is already below the threshold cannot pass
    // it and is skipped without re-evaluation. Selections are identical
    // to the eager scan; only tau_evals shrinks.
    std::vector<double> cached_gain(candidates.size());
    for (size_t idx = 0; idx < candidates.size(); ++idx) {
      cached_gain[idx] = candidates[idx].gain0;
    }
    const double maxinf = candidates[0].gain0;
    double h = maxinf;
    double tau_gains = 0.0;  // surrogate mass added by selections
    const double kE1 = std::exp(-1.0);
    // Once h falls this far below the top singleton gain, no remaining
    // candidate can have positive marginal gain worth taking.
    const double h_floor = maxinf * 1e-12;
    int taken = 0;
    bool done = false;
    bool past_cutoff = false;
    while (!done && taken < budget_remaining && h > h_floor) {
      ++result.threshold_scans;
      // One scan at threshold h, in singleton-gain order.
      for (size_t idx = 0; idx < candidates.size(); ++idx) {
        const Candidate& cand = candidates[idx];
        if (cand.gain0 < h) break;  // Lines 11-12: sorted early exit
        if (selected[idx]) continue;
        if (cached_gain[idx] < h) continue;  // lazy skip: cannot pass h
        const double gain = CandidateGain(cand.piece, cand.v, *state);
        cached_gain[idx] = gain;
        if (gain >= h) {
          const double applied = ApplyCandidate(cand.piece, cand.v, *state);
          tau_raw += applied;
          tau_gains += applied;
          selected[idx] = 1;
          result.additions.emplace_back(cand.piece, cand.v);
          if (!result.first_pick.valid()) {
            result.first_pick = {cand.piece, cand.v, gain};
          }
          if (++taken >= budget_remaining) {
            done = true;
            break;
          }
        }
      }
      if (done) break;
      h /= (1.0 + epsilon);  // Line 13
      // Line 14: early termination once the threshold is provably too
      // small to matter for the (1 - 1/e - eps) guarantee. We measure
      // tau by the selection gains (excluding the anchor base), which is
      // a smaller — hence later-firing, quality-preserving — cutoff than
      // the full surrogate value; the proof of Theorem 3 only needs the
      // inequality h <= tau * e^-1 / ((1 - e^-1) * k'), which this
      // implies. With fill_budget, scanning resumes after the cutoff
      // (top-up phase) purely to complete the candidate plan.
      if (!past_cutoff) {
        const double cutoff = tau_gains /
                              static_cast<double>(budget_remaining) * kE1 /
                              (1.0 - kE1);
        if (taken > 0 && h <= cutoff) {
          if (!fill_budget) break;
          past_cutoff = true;
        }
      }
    }
  }

  FinishResult(state, tau_raw, &result);
  result.tau_evals = total_tau_evals_ - evals_before;
  EndCall(excluded);
  return result;
}

}  // namespace oipa
