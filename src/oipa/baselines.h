#ifndef OIPA_OIPA_BASELINES_H_
#define OIPA_OIPA_BASELINES_H_

#include <cstdint>
#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"

namespace oipa {

/// Result of a baseline run (same reporting shape as BabResult where it
/// makes sense).
struct BaselineResult {
  AssignmentPlan plan{1};
  double utility = 0.0;
  /// Piece the baseline ended up assigning its seeds to.
  int chosen_piece = -1;
  double seconds = 0.0;
};

/// Evaluates assigning `per_piece_seeds[j]` to piece j alone (for every
/// j) and returns the best single-piece plan under the MRR-estimated
/// adoption utility. Shared tail of the IM/TIM baselines and the
/// heuristic solvers. `per_piece_seeds` must have one entry per piece.
BaselineResult BestSinglePieceAssignment(
    const MrrCollection& mrr, const LogisticAdoptionModel& model,
    const std::vector<std::vector<VertexId>>& per_piece_seeds);

/// The paper's IM baseline (Section VI-A): run the state-of-the-art IM
/// algorithm once on the topic-blind graph G (mean edge probability over
/// topics) to get k seeds S, then evaluate assigning S to each piece t_j
/// alone and keep the best. Ignores per-piece influence heterogeneity.
BaselineResult ImBaseline(const Graph& graph, const EdgeTopicProbs& probs,
                          const Campaign& campaign,
                          const MrrCollection& mrr,
                          const LogisticAdoptionModel& model,
                          const std::vector<VertexId>& pool, int k,
                          int64_t theta, uint64_t seed);

/// The paper's TIM baseline: build the influence graph G_{t_i} for every
/// piece, run IM on each to get k seeds S_i, then pick the single
/// (S_i -> t_i) assignment with the best adoption utility. Topic-aware
/// but single-piece.
BaselineResult TimBaseline(const Graph& graph, const EdgeTopicProbs& probs,
                           const Campaign& campaign,
                           const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int k,
                           int64_t theta, uint64_t seed);

}  // namespace oipa

#endif  // OIPA_OIPA_BASELINES_H_
