#ifndef OIPA_OIPA_CORRELATED_H_
#define OIPA_OIPA_CORRELATED_H_

#include <cstdint>
#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/logistic_model.h"
#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {

/// The paper's Section-VII future-work direction: dropping the piece-
/// independence assumption. This module provides an interdependent
/// propagation simulator so the estimator's behavior under correlation
/// can be studied (the MRR machinery assumes independence; tests and the
/// correlation example quantify the resulting bias).
///
/// Correlation model: every edge draws one latent uniform U_e per
/// cascade run; with probability `rho`, piece j reuses U_e (comonotone
/// coupling: the edge is live for piece j iff U_e < p_j(e)), and with
/// probability 1 - rho it draws an independent uniform. rho = 0
/// recovers the paper's independent model; rho = 1 makes edge liveness
/// perfectly positively correlated across pieces (a user who shares one
/// piece shares them all).
///
/// Positive correlation concentrates pieces on the same audience, which
/// HELPS logistic adoption in the convex (low-coverage) regime — the
/// direction of the bias is itself a finding tests assert.

/// Runs one multi-piece cascade with edge-level correlation `rho`;
/// returns per-vertex counts of distinct pieces received.
std::vector<int> SimulateCorrelatedCascade(
    const std::vector<InfluenceGraph>& pieces, const AssignmentPlan& plan,
    double rho, Rng* rng);

/// Monte-Carlo adoption utility under the correlated model.
double SimulateCorrelatedAdoptionUtility(
    const std::vector<InfluenceGraph>& pieces,
    const LogisticAdoptionModel& model, const AssignmentPlan& plan,
    double rho, int trials, uint64_t seed);

}  // namespace oipa

#endif  // OIPA_OIPA_CORRELATED_H_
