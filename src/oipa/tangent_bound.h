#ifndef OIPA_OIPA_TANGENT_BOUND_H_
#define OIPA_OIPA_TANGENT_BOUND_H_

#include <vector>

#include "oipa/logistic_model.h"

namespace oipa {

/// How the per-sample submodular surrogate is anchored for samples with
/// zero anchor coverage (samples with coverage >= 1 are identical in both
/// variants, since there the logistic value is the true f value).
enum class BoundVariant {
  /// The paper's construction (Figure 2 / Algorithm 4): the line passes
  /// through the logistic curve point (x0, sigmoid(x0)) with x0 =
  /// beta*a - alpha, and is tangent to the curve at some t >= max(x0, 0).
  /// Note: anchoring uncovered samples at sigmoid(-alpha) > 0 adds a
  /// constant n*sigmoid(-alpha) to every bound that no plan's utility can
  /// reach, so gap-based termination effectively never fires on large
  /// graphs; kept for ablation (bench_ablation_bound).
  kPaperTangent,
  /// Default: for anchor coverage a = 0, anchor the line at value 0 (the
  /// true f(0)) with the minimal slope w satisfying w*c >= f(c) for every
  /// integer count c. Still a monotone submodular upper bound on the true
  /// adoption value (coverage counts are integral), tight at c = 0, and
  /// identical to kPaperTangent for samples with anchor coverage >= 1.
  kZeroAnchored,
};

/// A per-sample linear upper bound on the logistic adoption curve: for a
/// sample already covered on `a` pieces, the bound of covering d more is
/// min(1, value_at_anchor + slope_per_piece * d) — monotone and concave
/// in d, hence monotone submodular as a set function of the plan.
struct TangentLine {
  double value_at_anchor = 0.0;
  double slope_per_piece = 0.0;  // already multiplied by beta

  double ValueAt(int extra_pieces) const {
    const double y =
        value_at_anchor + slope_per_piece * extra_pieces;
    return y < 1.0 ? y : 1.0;
  }
  /// Marginal bound gain of covering one more piece given `extra_pieces`
  /// already added beyond the anchor.
  double GainAt(int extra_pieces) const {
    return ValueAt(extra_pieces + 1) - ValueAt(extra_pieces);
  }
};

/// Finds the slope w of the unique line through (x0, sigmoid(x0)) that is
/// tangent to the sigmoid at some point t >= max(x0, 0), so the line upper
/// bounds the sigmoid on [x0, inf). For x0 >= 0 this is the tangent at x0
/// itself (closed form); for x0 < 0 it runs the paper's binary search on
/// the gradient (Algorithm 4, "Refine"). `tolerance` bounds the slope
/// error of the search.
double RefineTangentSlope(double x0, double tolerance = 1e-12);

/// For the zero-anchored variant: the minimal w such that w * c >=
/// sigmoid(beta*c - alpha) for every integer coverage count c in
/// {1..max_count} (a line through the origin in coverage-count space).
/// Coverage counts are integral, which is what makes a finite slope
/// sufficient: the continuous curve has sigmoid(-alpha) > 0 at c = 0.
double ZeroAnchoredSlope(const LogisticAdoptionModel& model, int max_count);

/// Precomputed tangent lines for every possible anchor coverage count
/// a in {0..max_count}. The branch-and-bound "refinement" of Figure 2 —
/// shifting the tangent as a partial plan covers more pieces of a sample
/// — becomes a table lookup.
class TangentTable {
 public:
  TangentTable(const LogisticAdoptionModel& model, int max_count,
               BoundVariant variant = BoundVariant::kPaperTangent);

  const TangentLine& line(int anchor_count) const {
    return lines_[anchor_count];
  }
  int max_count() const { return static_cast<int>(lines_.size()) - 1; }
  BoundVariant variant() const { return variant_; }

 private:
  std::vector<TangentLine> lines_;
  BoundVariant variant_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_TANGENT_BOUND_H_
