#ifndef OIPA_OIPA_BRUTE_FORCE_H_
#define OIPA_OIPA_BRUTE_FORCE_H_

#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"

namespace oipa {

struct BruteForceResult {
  AssignmentPlan plan{1};
  double utility = 0.0;
  int64_t plans_evaluated = 0;
};

/// True when enumerating `num_candidates` choose <= `budget` plans stays
/// under the solver's hard cap (~5e7 plans). BruteForceSolve CHECK-fails
/// on infeasible instances; callers that must fail softly (the registry
/// solver) test this first.
bool BruteForceFeasible(int64_t num_candidates, int budget);

/// Exhaustive OIPA over the MRR-estimated objective: enumerates every
/// assignment plan with |S̄| <= budget drawn from `pools` and returns the
/// maximum. Exponential — test-sized instances only (it checks that the
/// candidate count is sane). Monotonicity of sigma means only plans of
/// exactly `budget` assignments need their utility compared, but all
/// sizes are enumerated when the candidate pool is smaller than the
/// budget.
BruteForceResult BruteForceSolve(
    const MrrCollection& mrr, const LogisticAdoptionModel& model,
    const std::vector<std::vector<VertexId>>& pools, int budget);

/// Shared-pool convenience overload.
BruteForceResult BruteForceSolve(const MrrCollection& mrr,
                                 const LogisticAdoptionModel& model,
                                 const std::vector<VertexId>& pool,
                                 int budget);

}  // namespace oipa

#endif  // OIPA_OIPA_BRUTE_FORCE_H_
