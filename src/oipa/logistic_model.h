#ifndef OIPA_OIPA_LOGISTIC_MODEL_H_
#define OIPA_OIPA_LOGISTIC_MODEL_H_

#include <vector>

#include "util/math.h"

namespace oipa {

/// The paper's logistic adoption model (Equation 1): a user that has
/// received c >= 1 distinct campaign pieces adopts the campaign with
/// probability 1 / (1 + exp(alpha - beta * c)); a user that received no
/// piece never adopts. `alpha` raises the adoption barrier, `beta` weighs
/// each additional piece.
class LogisticAdoptionModel {
 public:
  LogisticAdoptionModel(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Adoption probability after receiving `count` distinct pieces.
  double AdoptionProb(int count) const {
    if (count <= 0) return 0.0;
    return Sigmoid(beta_ * count - alpha_);
  }

  /// The logistic curve value at coverage `count` ignoring the
  /// "no piece => no adoption" floor — i.e. Sigmoid(beta*count - alpha).
  /// This is the curve the tangent upper bound is anchored on.
  double CurveValue(double count) const {
    return Sigmoid(beta_ * count - alpha_);
  }

  /// f(0..max_count) table for CoverageState.
  std::vector<double> AdoptionTable(int max_count) const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_LOGISTIC_MODEL_H_
