#ifndef OIPA_OIPA_ADOPTION_H_
#define OIPA_OIPA_ADOPTION_H_

#include <cstdint>
#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/influence_graph.h"

namespace oipa {

/// MRR-based adoption-utility estimate of a plan (Equation 6 / Lemma 2):
/// (n/theta) * sum_i f(#pieces of sample i covered by the plan).
double EstimateAdoptionUtility(const MrrCollection& mrr,
                               const LogisticAdoptionModel& model,
                               const AssignmentPlan& plan);

/// Ground-truth Monte-Carlo estimate: simulates all pieces' cascades
/// `trials` times (independently, per the model) and averages the sum of
/// per-user logistic adoption probabilities.
double SimulateAdoptionUtility(const std::vector<InfluenceGraph>& pieces,
                               const LogisticAdoptionModel& model,
                               const AssignmentPlan& plan, int trials,
                               uint64_t seed);

/// Exact adoption utility sigma(plan) on tiny graphs: per-piece exact
/// reach probabilities by live-edge-world enumeration (2^m per piece),
/// then a per-user Poisson-binomial DP over the independent pieces.
/// Feasible only for m <= ~20.
double ExactAdoptionUtility(const std::vector<InfluenceGraph>& pieces,
                            const LogisticAdoptionModel& model,
                            const AssignmentPlan& plan);

/// The Poisson-binomial expectation E[f(X)] with X = sum of independent
/// Bernoulli(q_j) and f given as a table of size q.size()+1. Exposed for
/// testing and for the exact evaluator above.
double ExpectationOverCountDistribution(const std::vector<double>& probs,
                                        const std::vector<double>& f_table);

}  // namespace oipa

#endif  // OIPA_OIPA_ADOPTION_H_
