#include "oipa/correlated.h"

#include <algorithm>

#include "util/logging.h"

namespace oipa {

std::vector<int> SimulateCorrelatedCascade(
    const std::vector<InfluenceGraph>& pieces, const AssignmentPlan& plan,
    double rho, Rng* rng) {
  OIPA_CHECK(!pieces.empty());
  OIPA_CHECK_EQ(plan.num_pieces(), static_cast<int>(pieces.size()));
  OIPA_CHECK_GE(rho, 0.0);
  OIPA_CHECK_LE(rho, 1.0);
  const Graph& g = pieces[0].graph();
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();

  // Latent shared uniforms, drawn lazily per edge (stamped).
  std::vector<float> shared_u(m, -1.0f);

  std::vector<int> receive_count(n, 0);
  std::vector<uint8_t> active(n);
  std::vector<VertexId> frontier, next;
  for (int j = 0; j < plan.num_pieces(); ++j) {
    const InfluenceGraph& ig = pieces[j];
    std::fill(active.begin(), active.end(), 0);
    frontier.clear();
    for (VertexId s : plan.SeedSet(j)) {
      if (!active[s]) {
        active[s] = 1;
        frontier.push_back(s);
      }
    }
    while (!frontier.empty()) {
      next.clear();
      for (VertexId u : frontier) {
        const auto nbrs = g.OutNeighbors(u);
        const auto eids = g.OutEdgeIds(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const VertexId v = nbrs[i];
          if (active[v]) continue;
          const EdgeId e = eids[i];
          float u_draw = 0.0f;
          if (rng->NextDouble() < rho) {
            if (shared_u[e] < 0.0f) shared_u[e] = rng->NextFloat();
            u_draw = shared_u[e];
          } else {
            u_draw = rng->NextFloat();
          }
          if (u_draw < ig.EdgeProb(e)) {
            active[v] = 1;
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
    for (VertexId v = 0; v < n; ++v) receive_count[v] += active[v];
  }
  return receive_count;
}

double SimulateCorrelatedAdoptionUtility(
    const std::vector<InfluenceGraph>& pieces,
    const LogisticAdoptionModel& model, const AssignmentPlan& plan,
    double rho, int trials, uint64_t seed) {
  OIPA_CHECK_GT(trials, 0);
  Rng rng(seed);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::vector<int> counts =
        SimulateCorrelatedCascade(pieces, plan, rho, &rng);
    for (int c : counts) total += model.AdoptionProb(c);
  }
  return total / trials;
}

}  // namespace oipa
