#include "oipa/adoption.h"

#include "diffusion/cascade.h"
#include "rrset/coverage_state.h"
#include "util/logging.h"
#include "util/random.h"

namespace oipa {

double EstimateAdoptionUtility(const MrrCollection& mrr,
                               const LogisticAdoptionModel& model,
                               const AssignmentPlan& plan) {
  OIPA_CHECK_EQ(plan.num_pieces(), mrr.num_pieces());
  CoverageState state(&mrr, model.AdoptionTable(mrr.num_pieces()));
  for (const auto& [piece, v] : plan.Assignments()) {
    state.AddSeed(v, piece);
  }
  return state.Utility();
}

double SimulateAdoptionUtility(const std::vector<InfluenceGraph>& pieces,
                               const LogisticAdoptionModel& model,
                               const AssignmentPlan& plan, int trials,
                               uint64_t seed) {
  OIPA_CHECK_EQ(plan.num_pieces(), static_cast<int>(pieces.size()));
  OIPA_CHECK_GT(trials, 0);
  const VertexId n = pieces.empty() ? 0 : pieces[0].graph().num_vertices();
  Rng rng(seed);
  std::vector<int> receive_count(n);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::fill(receive_count.begin(), receive_count.end(), 0);
    for (int j = 0; j < plan.num_pieces(); ++j) {
      if (plan.SeedSet(j).empty()) continue;
      const std::vector<uint8_t> active =
          SimulateCascade(pieces[j], plan.SeedSet(j), &rng);
      for (VertexId v = 0; v < n; ++v) receive_count[v] += active[v];
    }
    for (VertexId v = 0; v < n; ++v) {
      total += model.AdoptionProb(receive_count[v]);
    }
  }
  return total / trials;
}

double ExpectationOverCountDistribution(const std::vector<double>& probs,
                                        const std::vector<double>& f_table) {
  const int l = static_cast<int>(probs.size());
  OIPA_CHECK_EQ(static_cast<int>(f_table.size()), l + 1);
  // DP over the count distribution of independent Bernoullis.
  std::vector<double> dist(l + 1, 0.0);
  dist[0] = 1.0;
  for (int j = 0; j < l; ++j) {
    const double q = probs[j];
    OIPA_CHECK_GE(q, -1e-12);
    OIPA_CHECK_LE(q, 1.0 + 1e-12);
    for (int c = j + 1; c >= 1; --c) {
      dist[c] = dist[c] * (1.0 - q) + dist[c - 1] * q;
    }
    dist[0] *= (1.0 - q);
  }
  double expectation = 0.0;
  for (int c = 0; c <= l; ++c) expectation += dist[c] * f_table[c];
  return expectation;
}

double ExactAdoptionUtility(const std::vector<InfluenceGraph>& pieces,
                            const LogisticAdoptionModel& model,
                            const AssignmentPlan& plan) {
  OIPA_CHECK_EQ(plan.num_pieces(), static_cast<int>(pieces.size()));
  const int l = plan.num_pieces();
  const VertexId n = pieces.empty() ? 0 : pieces[0].graph().num_vertices();

  // Per-piece exact reach probabilities (pieces propagate independently).
  std::vector<std::vector<double>> reach(l);
  for (int j = 0; j < l; ++j) {
    reach[j] = ExactReachProbabilities(pieces[j], plan.SeedSet(j));
  }

  const std::vector<double> f_table = model.AdoptionTable(l);
  double utility = 0.0;
  std::vector<double> probs(l);
  for (VertexId v = 0; v < n; ++v) {
    for (int j = 0; j < l; ++j) probs[j] = reach[j][v];
    utility += ExpectationOverCountDistribution(probs, f_table);
  }
  return utility;
}

}  // namespace oipa
