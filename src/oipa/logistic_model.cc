#include "oipa/logistic_model.h"

#include "util/logging.h"

namespace oipa {

LogisticAdoptionModel::LogisticAdoptionModel(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  OIPA_CHECK_GT(alpha, 0.0);
  OIPA_CHECK_GT(beta, 0.0);
}

std::vector<double> LogisticAdoptionModel::AdoptionTable(
    int max_count) const {
  OIPA_CHECK_GE(max_count, 0);
  std::vector<double> table(max_count + 1);
  for (int c = 0; c <= max_count; ++c) table[c] = AdoptionProb(c);
  return table;
}

}  // namespace oipa
