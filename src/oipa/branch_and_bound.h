#ifndef OIPA_OIPA_BRANCH_AND_BOUND_H_
#define OIPA_OIPA_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/bound_evaluator.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"

namespace oipa {

/// Safety ceiling on BabOptions::num_threads: the solver clamps larger
/// values (each worker is a real std::thread plus a thread-local
/// coverage state, so unbounded counts would exhaust OS resources); the
/// request layer rejects them as InvalidArgument.
inline constexpr int kMaxBabWorkers = 256;

/// Search-progress snapshot passed to BabOptions::on_progress.
struct BabProgress {
  int64_t nodes_expanded = 0;
  /// Best utility found so far (the incumbent L).
  double incumbent = 0.0;
  /// Current global upper bound U over all open subspaces.
  double upper_bound = 0.0;
};

/// Configuration for the OIPA branch-and-bound solvers (BAB / BAB-P).
struct BabOptions {
  /// Total assignment budget k = sum_j |S_j|.
  int budget = 10;
  /// Relative termination gap: stop once the global upper bound U and the
  /// incumbent L satisfy U <= L * (1 + gap). The paper's experiments use
  /// 1% (Section VI-A).
  double gap = 0.01;
  /// false = BAB (Algorithm 2 bound), true = BAB-P (Algorithm 3 bound).
  bool progressive = false;
  /// BAB only: use the CELF-lazy variant of Algorithm 2 (identical
  /// selections, fewer gain evaluations — our ablation, not the paper's).
  bool lazy_greedy = false;
  /// BAB-P threshold decay; the paper fixes 0.5 after Figure 3.
  double epsilon = 0.5;
  /// BAB-P: keep the threshold schedule running past the Line-14 cutoff
  /// so candidate plans always use the full budget (see
  /// BoundEvaluator::ComputeBoundPro). False reproduces Algorithm 3
  /// verbatim.
  bool progressive_fill = true;
  /// Tangent-surrogate anchoring (see tangent_bound.h).
  BoundVariant variant = BoundVariant::kZeroAnchored;
  /// If true, scale the pruning bound by e/(e-1) so pruning is lossless
  /// w.r.t. the MRR objective (exact search); the paper prunes against
  /// tau(greedy) directly, which yields the (1-1/e) guarantee instead.
  bool exact_pruning = false;
  /// Safety cap on expanded nodes; the search reports converged=false if
  /// it trips.
  int64_t max_nodes = 100'000;
  /// Worker threads for the search. 1 (default) runs the classic
  /// sequential engine bit-identically; 0 resolves to GetNumThreads();
  /// N > 1 runs N workers, each draining its own bound-ordered
  /// frontier and rebalancing by randomized work stealing (clamped to
  /// kMaxBabWorkers). Parallel searches keep every quality guarantee
  /// of the sequential engine — under exact_pruning both land within
  /// `gap` of the optimum, so within ~gap of each other; default
  /// Theorem-2 pruning keeps the (1-1/e) floor — but may return a
  /// different equally-good plan and expand a different node count run
  /// to run.
  int num_threads = 1;
  /// Optional hook invoked before every node expansion (serialized
  /// across workers when num_threads > 1). Return false to cancel: the
  /// search stops and returns its incumbent with cancelled=true
  /// (converged=false).
  std::function<bool(const BabProgress&)> on_progress;
};

/// Outcome of a branch-and-bound run.
struct BabResult {
  AssignmentPlan plan{1};
  /// MRR-estimated adoption utility of `plan`.
  double utility = 0.0;
  /// Global upper bound at termination (equals utility when the search
  /// space was exhausted).
  double upper_bound = 0.0;
  int64_t nodes_expanded = 0;
  int64_t bound_calls = 0;
  int64_t tau_evals = 0;
  double seconds = 0.0;
  bool converged = false;
  /// True when BabOptions::on_progress asked to stop the search.
  bool cancelled = false;
};

/// The paper's branch-and-bound framework (Algorithm 1): a max-heap of
/// partial plans ordered by tangent-surrogate upper bound; each expansion
/// branches on the bound's first greedy pick (include vs. exclude);
/// pruning drops subspaces whose bound cannot beat the incumbent.
///
/// With BabOptions::num_threads > 1 the frontier is sharded: every
/// worker owns a bound-sorted deque plus a thread-local CoverageState +
/// BoundEvaluator replayed by plan diffing, pops its own most promising
/// node, and — when its deque runs dry — steals half of a randomly
/// chosen victim's cheap end. Pruning runs against a lock-free packed
/// atomic incumbent (the exact record is kept under a small mutex that
/// only winners touch), so the shared-frontier design's global-bound
/// tightness is preserved without a global queue lock. The search
/// terminates when the open-subspace counter drains to zero.
class BabSolver {
 public:
  /// All arguments must outlive the solver. `pools[j]` is the promoter
  /// pool for piece j.
  BabSolver(const MrrCollection* mrr, const LogisticAdoptionModel& model,
            std::vector<std::vector<VertexId>> pools, BabOptions options);

  /// Shared-pool convenience constructor.
  BabSolver(const MrrCollection* mrr, const LogisticAdoptionModel& model,
            const std::vector<VertexId>& shared_pool, BabOptions options);

  BabResult Solve();

 private:
  BabResult SolveSequential();
  BabResult SolveParallel(int num_workers);

  const MrrCollection* mrr_;
  LogisticAdoptionModel model_;
  BabOptions options_;
  BoundEvaluator evaluator_;  // also owns the candidate pools
};

/// Baseline heuristic for ablations: greedy directly on the
/// (non-submodular) MRR-estimated adoption utility, no guarantee.
/// CELF-lazy selection (exact even under non-submodular f, via
/// suffix-max gain bounds); ties and zero-gain rounds still fill the
/// budget — converged is false only when the candidate space itself
/// runs out before `budget` assignments.
BabResult GreedySigmaSolve(const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int budget);

}  // namespace oipa

#endif  // OIPA_OIPA_BRANCH_AND_BOUND_H_
