#include "oipa/reduction.h"

#include <cmath>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace oipa {

namespace {

Graph BuildReductionGraph(int n,
                          const std::vector<std::vector<char>>& adj) {
  GraphBuilder builder(3 * n);
  for (int i = 0; i < n; ++i) {
    // x_i -> r_j for j == i or (v_i, v_j) an edge.
    for (int j = 0; j < n; ++j) {
      if (j == i || adj[i][j]) {
        builder.AddEdge(i, 2 * n + j);
      }
    }
    // y_i -> r_j for all j != i.
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        builder.AddEdge(n + i, 2 * n + j);
      }
    }
  }
  builder.ReserveVertices(3 * n);
  return builder.Build();
}

}  // namespace

MaxCliqueReduction::MaxCliqueReduction(
    int n, const std::vector<std::pair<int, int>>& edges)
    : n_(n),
      adj_(n, std::vector<char>(n, 0)),
      graph_(Graph::Empty(0)),
      probs_(0, 1) {
  OIPA_CHECK_GE(n, 2);
  for (const auto& [u, v] : edges) {
    OIPA_CHECK_GE(u, 0);
    OIPA_CHECK_LT(u, n);
    OIPA_CHECK_GE(v, 0);
    OIPA_CHECK_LT(v, n);
    OIPA_CHECK_NE(u, v);
    adj_[u][v] = adj_[v][u] = 1;
  }
  graph_ = BuildReductionGraph(n, adj_);

  // Every edge carries exactly its promoter's topic with probability 1:
  // edges out of x_i or y_i are pure topic i.
  probs_ = EdgeTopicProbs(graph_.num_edges(), n);
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const VertexId src = graph_.edge(e).src;
    const int topic = src < n_ ? src : src - n_;
    OIPA_CHECK_GE(topic, 0);
    OIPA_CHECK_LT(topic, n_);
    probs_.SetEdge(e, {{topic, 1.0f}});
  }

  std::vector<ViralPiece> pieces;
  for (int i = 0; i < n; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    pieces.push_back({std::move(name), TopicVector::PureTopic(n, i)});
  }
  campaign_ = Campaign(std::move(pieces));
}

LogisticAdoptionModel MaxCliqueReduction::model() const {
  const double log2n = std::log(2.0 * n_);
  return LogisticAdoptionModel(2.0 * n_ * log2n, 2.0 * log2n);
}

std::vector<std::vector<VertexId>> MaxCliqueReduction::PromoterPools()
    const {
  std::vector<std::vector<VertexId>> pools(n_);
  for (int i = 0; i < n_; ++i) {
    pools[i] = {XVertex(i), YVertex(i)};
  }
  return pools;
}

std::vector<InfluenceGraph> MaxCliqueReduction::PieceGraphs() const {
  return BuildPieceGraphs(graph_, probs_, campaign_);
}

double MaxCliqueReduction::UtilityOfCliquePlan(
    const std::vector<int>& clique_vertices) const {
  std::vector<char> in_clique(n_, 0);
  for (int v : clique_vertices) in_clique[v] = 1;
  const LogisticAdoptionModel m = model();

  // The instance is deterministic (all probabilities 1), so piece i
  // reaches r_j iff its promoter has the edge. Each chosen promoter is a
  // seed and therefore receives exactly its own piece (x/y vertices have
  // no incoming edges), contributing n * f(1) in total — a quantity the
  // Lemma 1 slack absorbs, since f(1) <= 1/(1+(2n)^2).
  double utility = n_ * m.AdoptionProb(1);
  for (int j = 0; j < n_; ++j) {
    int received = 0;
    for (int i = 0; i < n_; ++i) {
      const bool via_x = (j == i) || adj_[i][j];
      const bool via_y = (j != i);
      received += in_clique[i] ? via_x : via_y;
    }
    utility += m.AdoptionProb(received);
  }
  return utility;
}

int MaxCliqueReduction::ExactMaxClique() const {
  OIPA_CHECK_LE(n_, 20) << "exact max clique is exponential";
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << n_); ++mask) {
    int size = 0;
    bool is_clique = true;
    for (int u = 0; u < n_ && is_clique; ++u) {
      if (!((mask >> u) & 1u)) continue;
      ++size;
      for (int v = u + 1; v < n_; ++v) {
        if (((mask >> v) & 1u) && !adj_[u][v]) {
          is_clique = false;
          break;
        }
      }
    }
    if (is_clique) best = std::max(best, size);
  }
  return best;
}

double MaxCliqueReduction::ExactOipaOpt() const {
  OIPA_CHECK_LE(n_, 20) << "exact OIPA opt is exponential";
  // Any budget-feasible plan that propagates all n pieces picks exactly
  // one of {x_i, y_i} per piece; plans that drop a piece are dominated
  // (shown in Lemma 1), but we enumerate the full choice space anyway.
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n_); ++mask) {
    std::vector<int> clique_vertices;
    for (int i = 0; i < n_; ++i) {
      if ((mask >> i) & 1u) clique_vertices.push_back(i);
    }
    best = std::max(best, UtilityOfCliquePlan(clique_vertices));
  }
  return best;
}

}  // namespace oipa
