#include "oipa/baselines.h"

#include "im/imm.h"
#include "oipa/adoption.h"
#include "rrset/rr_collection.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oipa {

BaselineResult BestSinglePieceAssignment(
    const MrrCollection& mrr, const LogisticAdoptionModel& model,
    const std::vector<std::vector<VertexId>>& per_piece_seeds) {
  OIPA_CHECK_EQ(static_cast<int>(per_piece_seeds.size()),
                mrr.num_pieces());
  BaselineResult best;
  best.plan = AssignmentPlan(mrr.num_pieces());
  best.utility = -1.0;
  for (int j = 0; j < mrr.num_pieces(); ++j) {
    AssignmentPlan plan(mrr.num_pieces());
    for (VertexId v : per_piece_seeds[j]) plan.Add(j, v);
    const double utility = EstimateAdoptionUtility(mrr, model, plan);
    if (utility > best.utility) {
      best.utility = utility;
      best.plan = plan;
      best.chosen_piece = j;
    }
  }
  return best;
}

BaselineResult ImBaseline(const Graph& graph, const EdgeTopicProbs& probs,
                          const Campaign& campaign,
                          const MrrCollection& mrr,
                          const LogisticAdoptionModel& model,
                          const std::vector<VertexId>& pool, int k,
                          int64_t theta, uint64_t seed) {
  WallTimer timer;
  OIPA_CHECK_EQ(campaign.num_pieces(), mrr.num_pieces());
  // One IM run on the topic-blind graph.
  const InfluenceGraph blind = InfluenceGraph::TopicBlind(graph, probs);
  RrCollection rr = RrCollection::Generate(blind, theta, seed);
  const MaxCoverResult cover = CelfMaxCover(rr, k, pool);

  // Try the same seed set on every piece; keep the best.
  std::vector<std::vector<VertexId>> per_piece(
      campaign.num_pieces(), cover.seeds);
  BaselineResult result = BestSinglePieceAssignment(mrr, model, per_piece);
  result.seconds = timer.Seconds();
  return result;
}

BaselineResult TimBaseline(const Graph& graph, const EdgeTopicProbs& probs,
                           const Campaign& campaign,
                           const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int k,
                           int64_t theta, uint64_t seed) {
  WallTimer timer;
  OIPA_CHECK_EQ(campaign.num_pieces(), mrr.num_pieces());
  // One IM run per piece on that piece's influence graph.
  std::vector<std::vector<VertexId>> per_piece(campaign.num_pieces());
  for (int j = 0; j < campaign.num_pieces(); ++j) {
    const InfluenceGraph ig =
        InfluenceGraph::ForPiece(graph, probs, campaign.piece(j).topics);
    RrCollection rr = RrCollection::Generate(ig, theta, seed + j + 1);
    per_piece[j] = CelfMaxCover(rr, k, pool).seeds;
  }
  BaselineResult result = BestSinglePieceAssignment(mrr, model, per_piece);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace oipa
