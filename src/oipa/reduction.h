#ifndef OIPA_OIPA_REDUCTION_H_
#define OIPA_OIPA_REDUCTION_H_

#include <vector>

#include "graph/graph.h"
#include "oipa/logistic_model.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"

namespace oipa {

/// The Section-IV gap-preserving reduction from Maximum Clique to OIPA,
/// as executable code. Given an undirected clique instance on n vertices
/// (edge list over vertices 0..n-1), builds the OIPA instance Pi_b:
///
///  * 3n vertices: x_i (piece promoters matching v_i's neighborhood),
///    y_i (promoters reaching every r-vertex except r_i), r_i (targets);
///  * n topics and n pure-topic pieces; edge (x_i, r_j) exists iff j == i
///    or (v_i, v_j) is an edge, carrying topic i with probability 1;
///    edge (y_i, r_j) exists iff j != i, also pure topic i;
///  * alpha = 2n ln(2n), beta = 2 ln(2n), budget k = n, promoter pool for
///    piece i restricted to {x_i, y_i}.
///
/// Lemma 1 then sandwiches the optimal clique size:
///   2*OPT(Pi_b) - 1/n  <=  OPT(Pi_a)  <=  2*OPT(Pi_b).
class MaxCliqueReduction {
 public:
  /// `n` is the clique instance's vertex count; `clique_edges` are its
  /// undirected edges (u < v pairs over [0, n)).
  MaxCliqueReduction(int n, const std::vector<std::pair<int, int>>& edges);

  int n() const { return n_; }
  const Graph& graph() const { return graph_; }
  const EdgeTopicProbs& probs() const { return probs_; }
  const Campaign& campaign() const { return campaign_; }
  LogisticAdoptionModel model() const;

  VertexId XVertex(int i) const { return static_cast<VertexId>(i); }
  VertexId YVertex(int i) const { return static_cast<VertexId>(n_ + i); }
  VertexId RVertex(int i) const {
    return static_cast<VertexId>(2 * n_ + i);
  }

  /// Per-piece promoter pools: piece i may be assigned to x_i or y_i.
  std::vector<std::vector<VertexId>> PromoterPools() const;

  /// Per-piece influence graphs (deterministic: all probabilities 1).
  std::vector<InfluenceGraph> PieceGraphs() const;

  /// Exact adoption utility of the plan that picks x_i for members of
  /// `clique_vertices` and y_i otherwise (deterministic instance, so the
  /// utility is exact, no sampling).
  double UtilityOfCliquePlan(const std::vector<int>& clique_vertices) const;

  /// Brute-force maximum clique size of the original instance.
  int ExactMaxClique() const;

  /// Brute-force OPT(Pi_b): maximum exact adoption utility over all 2^n
  /// x/y choice vectors (the only budget-feasible plan shape).
  double ExactOipaOpt() const;

 private:
  int n_;
  std::vector<std::vector<char>> adj_;  // clique-instance adjacency
  Graph graph_;
  EdgeTopicProbs probs_;
  Campaign campaign_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_REDUCTION_H_
