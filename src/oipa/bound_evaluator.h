#ifndef OIPA_OIPA_BOUND_EVALUATOR_H_
#define OIPA_OIPA_BOUND_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "oipa/assignment_plan.h"
#include "oipa/logistic_model.h"
#include "oipa/tangent_bound.h"
#include "rrset/coverage_state.h"
#include "rrset/mrr_collection.h"

namespace oipa {

/// The promoter-piece pair a ComputeBound call would add first — the
/// branch variable the branch-and-bound engine splits on.
struct BoundPick {
  int piece = -1;
  VertexId v = -1;
  double gain = 0.0;

  bool valid() const { return piece >= 0; }
};

/// Output of one upper-bound estimation (Algorithm 2 or Algorithm 3).
struct BoundResult {
  /// Greedy-selected completion of the anchor plan, in selection order.
  std::vector<Assignment> additions;
  /// tau(S̄ | S̄a), utility-scaled: the submodular surrogate's value at
  /// the greedy completion. Per Theorem 2, pruning against this value
  /// yields a global (1-1/e) approximation.
  double tau = 0.0;
  /// sigma(S̄ ∪ S̄a), utility-scaled: the true (MRR-estimated) adoption
  /// utility of the completed candidate plan — the lower bound.
  double sigma = 0.0;
  BoundPick first_pick;
  /// Number of tau marginal-gain evaluations performed (Theorem 4's cost
  /// metric).
  int64_t tau_evals = 0;
  /// ComputeBoundPro only: number of threshold levels scanned. Equation 9
  /// bounds this by log_{1+eps}(2k) + O(1).
  int threshold_scans = 0;
};

/// Implements ComputeBound (Algorithm 2, plain greedy over the tangent
/// surrogate) and ComputeBoundPro (Algorithm 3, progressive threshold
/// with early termination). One evaluator is reused across all
/// branch-and-bound nodes; per-sample scratch state is epoch-stamped so a
/// call costs O(touched index lists), not O(theta * l).
class BoundEvaluator {
 public:
  /// `pools[j]` is the promoter pool eligible for piece j (the paper uses
  /// one shared pool V_p; the hardness gadget uses per-piece pools).
  BoundEvaluator(const MrrCollection* mrr,
                 const LogisticAdoptionModel& model,
                 std::vector<std::vector<VertexId>> pools,
                 BoundVariant variant = BoundVariant::kZeroAnchored);

  /// Convenience: the same pool for every piece.
  BoundEvaluator(const MrrCollection* mrr,
                 const LogisticAdoptionModel& model,
                 const std::vector<VertexId>& shared_pool,
                 BoundVariant variant = BoundVariant::kZeroAnchored);

  /// Algorithm 2: greedily completes the anchor plan held in `state` with
  /// up to `budget_remaining` assignments maximizing the tangent
  /// surrogate. `excluded` pairs are unavailable. `state` is mutated to
  /// evaluate the candidate's sigma and restored before returning.
  BoundResult ComputeBound(CoverageState* state, int budget_remaining,
                           const std::vector<Assignment>& excluded);

  /// Algorithm 3: progressive threshold variant; `epsilon` is the
  /// threshold decay (h <- h/(1+epsilon)). With `fill_budget` false this
  /// is the verbatim algorithm: the Line-14 cutoff may return fewer than
  /// `budget_remaining` additions. With `fill_budget` true (default) the
  /// threshold schedule keeps running past the cutoff until the budget is
  /// filled or no candidate has positive gain — the bound value and its
  /// guarantee are unchanged, but the returned candidate plan (the
  /// incumbent source) never wastes budget.
  BoundResult ComputeBoundPro(CoverageState* state, int budget_remaining,
                              const std::vector<Assignment>& excluded,
                              double epsilon, bool fill_budget = true);

  /// CELF-accelerated Algorithm 2 (our ablation, not in the paper):
  /// identical selections to ComputeBound — the surrogate is submodular,
  /// so lazy re-evaluation is exact — with far fewer gain evaluations.
  BoundResult ComputeBoundLazy(CoverageState* state, int budget_remaining,
                               const std::vector<Assignment>& excluded);

  /// Rebinds the evaluator after MrrCollection::Extend grew the
  /// collection: the per-sample scratch arrays are appended in place
  /// (O(new samples)), never rebuilt. Call between bound computations —
  /// a subsequent ComputeBound* behaves exactly like one from a freshly
  /// constructed evaluator over the grown collection.
  void SyncWithCollection();

  /// Cumulative tau evaluations across all calls.
  int64_t total_tau_evals() const { return total_tau_evals_; }

  const TangentTable& tangent_table() const { return table_; }

  /// The per-piece candidate pools this evaluator owns (used to stamp
  /// out thread-local evaluator clones without a second stored copy).
  const std::vector<std::vector<VertexId>>& pools() const {
    return pools_;
  }

 private:
  /// Lazily initializes and returns the current surrogate line value of
  /// sample i (anchor value plus greedy-phase gains this call).
  double LineValue(int64_t i, const CoverageState& state);

  /// Marginal surrogate gain of covering one more piece of sample i.
  double SampleGain(int64_t i, const CoverageState& state);

  /// Gain of candidate (piece, v) under the current greedy-phase state.
  double CandidateGain(int piece, VertexId v, const CoverageState& state);

  /// Applies candidate (piece, v): marks its samples covered and advances
  /// their line values. Returns the realized gain.
  double ApplyCandidate(int piece, VertexId v, const CoverageState& state);

  /// Sum of anchor line values over all samples (unscaled).
  double BaseTau(const CoverageState& state) const;

  void BeginCall(const std::vector<Assignment>& excluded);
  void EndCall(const std::vector<Assignment>& excluded);
  bool IsExcluded(int piece, VertexId v) const;

  /// Completes the BoundResult: evaluates sigma by temporarily adding the
  /// additions to `state`.
  void FinishResult(CoverageState* state, double tau_raw,
                    BoundResult* result);

  const MrrCollection* mrr_;
  LogisticAdoptionModel model_;
  TangentTable table_;
  std::vector<std::vector<VertexId>> pools_;
  VertexId num_vertices_;
  int num_pieces_;

  // Epoch-stamped scratch (no O(theta) clearing between calls).
  uint32_t epoch_ = 0;
  std::vector<uint32_t> line_epoch_;  // theta
  std::vector<double> line_value_;    // theta
  /// Piece-major greedy-coverage stamps (one contiguous theta-sized row
  /// per piece): the batched CandidateGain kernel gathers a whole row
  /// alongside CoverageState::MultiplicityRow.
  std::vector<std::vector<uint32_t>> greedy_cover_epoch_;  // l x theta
  std::vector<uint8_t> excluded_flag_;  // l * n (set/cleared per call)
  /// table_.line(c) flattened to per-count arrays for the kernels.
  /// Sized l+1: cover counts legitimately reach l.
  std::vector<double> anchor_by_count_;
  std::vector<double> slope_by_count_;

  int64_t total_tau_evals_ = 0;
};

}  // namespace oipa

#endif  // OIPA_OIPA_BOUND_EVALUATOR_H_
