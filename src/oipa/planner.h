#ifndef OIPA_OIPA_PLANNER_H_
#define OIPA_OIPA_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "oipa/baselines.h"
#include "oipa/branch_and_bound.h"
#include "oipa/logistic_model.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"

namespace oipa {

/// One-stop facade over the full OIPA pipeline for application code:
/// owns the piece influence graphs and MRR samples for one
/// (graph, probabilities, campaign, adoption model) configuration and
/// exposes the solvers and evaluators against them.
///
///   OipaPlanner planner(graph, probs, campaign,
///                       LogisticAdoptionModel(2.0, 1.0),
///                       {.theta = 100'000});
///   PlanReport best = planner.SolveBabP(pool, /*k=*/20);
///   PlanReport tim  = planner.SolveTimBaseline(pool, 20);
///
/// The referenced graph/probs/campaign must outlive the planner.
struct PlannerOptions {
  int64_t theta = 100'000;
  uint64_t seed = 1;
  DiffusionModel diffusion = DiffusionModel::kIndependentCascade;
  /// Solver settings forwarded to BabSolver.
  double gap = 0.01;
  double epsilon = 0.5;
  int64_t max_nodes = 100'000;
};

/// A solved plan with its quality measurements.
struct PlanReport {
  AssignmentPlan plan{1};
  /// In-sample MRR estimate (what the optimizer maximized).
  double utility = 0.0;
  /// Estimate on an independent holdout MRR collection (unbiased).
  double holdout_utility = 0.0;
  double seconds = 0.0;
  std::string method;
};

class OipaPlanner {
 public:
  OipaPlanner(const Graph& graph, const EdgeTopicProbs& probs,
              const Campaign& campaign, const LogisticAdoptionModel& model,
              PlannerOptions options = {});

  /// Plain branch-and-bound (paper's BAB).
  PlanReport SolveBab(const std::vector<VertexId>& pool, int k) const;

  /// Progressive branch-and-bound (paper's BAB-P).
  PlanReport SolveBabP(const std::vector<VertexId>& pool, int k) const;

  /// Paper baselines.
  PlanReport SolveImBaseline(const std::vector<VertexId>& pool,
                             int k) const;
  PlanReport SolveTimBaseline(const std::vector<VertexId>& pool,
                              int k) const;

  /// Evaluates an externally supplied plan (in-sample + holdout).
  PlanReport EvaluatePlan(const AssignmentPlan& plan,
                          const std::string& label = "external") const;

  /// Ground-truth check by forward Monte-Carlo simulation.
  double SimulateUtility(const AssignmentPlan& plan, int trials,
                         uint64_t seed) const;

  const MrrCollection& mrr() const { return *mrr_; }
  const std::vector<InfluenceGraph>& pieces() const { return pieces_; }
  const LogisticAdoptionModel& model() const { return model_; }

 private:
  PlanReport Finish(PlanReport report) const;

  const Graph& graph_;
  const EdgeTopicProbs& probs_;
  const Campaign& campaign_;
  LogisticAdoptionModel model_;
  PlannerOptions options_;
  std::vector<InfluenceGraph> pieces_;
  std::unique_ptr<MrrCollection> mrr_;
  std::unique_ptr<MrrCollection> holdout_;
};

}  // namespace oipa

#endif  // OIPA_OIPA_PLANNER_H_
