#include "oipa/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>
#include <thread>

#include "util/logging.h"
#include "util/thread_annotations.h"
#include "util/threading.h"
#include "util/timer.h"

namespace oipa {

namespace {

/// One open subspace of the search: assignments forced in, assignments
/// forced out, the surrogate upper bound of the subspace, and the pair to
/// branch on next.
struct SearchNode {
  std::vector<Assignment> included;
  std::vector<Assignment> excluded;
  double upper = 0.0;
  BoundPick branch;
};

struct NodeCompare {
  bool operator()(const SearchNode& a, const SearchNode& b) const {
    return a.upper < b.upper;  // max-heap on the upper bound
  }
};

AssignmentPlan PlanFromPairs(int num_pieces,
                             const std::vector<Assignment>& included,
                             const std::vector<Assignment>& additions) {
  AssignmentPlan plan(num_pieces);
  for (const auto& [piece, v] : included) plan.Add(piece, v);
  for (const auto& [piece, v] : additions) plan.Add(piece, v);
  return plan;
}

/// A CoverageState kept in sync with an assignment list by diff-replay;
/// both engines (and each parallel worker) step between partial plans
/// through MoveTo so there is exactly one copy of the diffing logic.
class PlanReplay {
 public:
  PlanReplay(const MrrCollection* mrr, std::vector<double> f_by_count)
      : state_(mrr, std::move(f_by_count)) {}

  CoverageState* state() { return &state_; }

  void MoveTo(const std::vector<Assignment>& target) {
    for (const auto& pair : current_) {
      if (std::find(target.begin(), target.end(), pair) == target.end()) {
        state_.RemoveSeed(pair.second, pair.first);
      }
    }
    for (const auto& pair : target) {
      if (std::find(current_.begin(), current_.end(), pair) ==
          current_.end()) {
        state_.AddSeed(pair.second, pair.first);
      }
    }
    current_ = target;
  }

 private:
  CoverageState state_;
  std::vector<Assignment> current_;
};

/// Shared state of one SolveParallel run. Lives at namespace scope (not
/// as worker-lambda captures) so every field can name its guard in the
/// type system: the frontier, best plan, and scalar flags are guarded
/// by `mu`; `lower` and `stop` are additionally atomic so workers can
/// read them between bound calls without the lock.
struct ParallelSearchState {
  explicit ParallelSearchState(int num_pieces) : best_plan(num_pieces) {}

  Mutex mu;
  /// Idle/termination protocol: signaled on frontier pushes, on the
  /// last active worker going idle, and on stop requests.
  CondVar cv;
  std::atomic<double> lower{0.0};
  std::atomic<int64_t> nodes_expanded{0};
  std::atomic<bool> stop{false};
  std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
      heap OIPA_GUARDED_BY(mu);
  AssignmentPlan best_plan OIPA_GUARDED_BY(mu);
  int active OIPA_GUARDED_BY(mu) = 0;
  bool cancelled OIPA_GUARDED_BY(mu) = false;
  bool converged OIPA_GUARDED_BY(mu) = true;
  double pruned_upper OIPA_GUARDED_BY(mu) = 0.0;
  int64_t total_bound_calls OIPA_GUARDED_BY(mu) = 0;
  int64_t total_tau_evals OIPA_GUARDED_BY(mu) = 0;
};

/// Dispatches one upper-bound evaluation to the variant `options` selects.
BoundResult ComputeNodeBound(BoundEvaluator* evaluator,
                             const BabOptions& options, CoverageState* state,
                             int budget_remaining,
                             const std::vector<Assignment>& excluded) {
  if (options.progressive) {
    return evaluator->ComputeBoundPro(state, budget_remaining, excluded,
                                      options.epsilon,
                                      options.progressive_fill);
  }
  if (options.lazy_greedy) {
    return evaluator->ComputeBoundLazy(state, budget_remaining, excluded);
  }
  return evaluator->ComputeBound(state, budget_remaining, excluded);
}

}  // namespace

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     std::vector<std::vector<VertexId>> pools,
                     BabOptions options)
    : mrr_(mrr),
      model_(model),
      options_(options),
      evaluator_(mrr, model, std::move(pools), options.variant) {
  OIPA_CHECK_GE(options_.budget, 1);
  OIPA_CHECK_GE(options_.gap, 0.0);
  OIPA_CHECK_GE(options_.num_threads, 0);
}

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     const std::vector<VertexId>& shared_pool,
                     BabOptions options)
    : BabSolver(mrr, model,
                std::vector<std::vector<VertexId>>(mrr->num_pieces(),
                                                   shared_pool),
                options) {}

BabResult BabSolver::Solve() {
  const int threads =
      options_.num_threads == 0 ? GetNumThreads() : options_.num_threads;
  if (threads <= 1) return SolveSequential();
  return SolveParallel(std::min(threads, kMaxBabWorkers));
}

BabResult BabSolver::SolveSequential() {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr_->num_pieces());

  PlanReplay replay(mrr_, model_.AdoptionTable(mrr_->num_pieces()));
  // Theorem-2 pruning uses tau(greedy) directly; exact pruning inflates
  // the bound by e/(e-1) so no subspace that could beat the incumbent
  // under the MRR objective is ever dropped.
  const double bound_scale =
      options_.exact_pruning ? 1.0 / (1.0 - std::exp(-1.0)) : 1.0;

  auto compute = [&](int budget_remaining,
                     const std::vector<Assignment>& excluded) {
    ++result.bound_calls;
    return ComputeNodeBound(&evaluator_, options_, replay.state(),
                            budget_remaining, excluded);
  };

  double lower = 0.0;
  bool have_incumbent = false;

  std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
      heap;

  // Root bound (empty plan, nothing excluded).
  {
    const BoundResult root = compute(options_.budget, {});
    result.plan = PlanFromPairs(mrr_->num_pieces(), {}, root.additions);
    lower = root.sigma;
    have_incumbent = true;
    const double upper = root.tau * bound_scale;
    if (root.first_pick.valid() && upper > lower) {
      heap.push(SearchNode{{}, {}, upper, root.first_pick});
    }
    result.upper_bound = std::max(upper, lower);
  }

  result.converged = true;
  while (!heap.empty()) {
    const SearchNode top = heap.top();
    // The heap is ordered by upper bound, so the top is the global bound
    // over all open subspaces.
    result.upper_bound = std::max(top.upper, lower);
    if (top.upper <= lower * (1.0 + options_.gap)) break;  // gap met
    if (result.nodes_expanded >= options_.max_nodes) {
      result.converged = false;
      break;
    }
    if (options_.on_progress &&
        !options_.on_progress(
            {result.nodes_expanded, lower, result.upper_bound})) {
      result.converged = false;
      result.cancelled = true;
      break;
    }
    heap.pop();
    ++result.nodes_expanded;

    // Branch on the node's stored pick: one child forces it into the
    // plan, the other forbids it.
    for (const bool include : {true, false}) {
      SearchNode child;
      child.included = top.included;
      child.excluded = top.excluded;
      if (include) {
        child.included.emplace_back(top.branch.piece, top.branch.v);
      } else {
        child.excluded.emplace_back(top.branch.piece, top.branch.v);
      }
      const int remaining =
          options_.budget - static_cast<int>(child.included.size());
      OIPA_CHECK_GE(remaining, 0);
      replay.MoveTo(child.included);
      const BoundResult r = compute(remaining, child.excluded);
      if (!have_incumbent || r.sigma > lower) {
        lower = r.sigma;
        have_incumbent = true;
        result.plan =
            PlanFromPairs(mrr_->num_pieces(), child.included, r.additions);
      }
      const double upper = r.tau * bound_scale;
      if (upper > lower * (1.0 + options_.gap) && r.first_pick.valid() &&
          remaining > 0) {
        child.upper = upper;
        child.branch = r.first_pick;
        heap.push(std::move(child));
      }
    }
  }
  if (heap.empty()) result.upper_bound = lower;

  replay.MoveTo({});
  result.utility = lower;
  result.tau_evals = evaluator_.total_tau_evals();
  result.seconds = timer.Seconds();
  return result;
}

BabResult BabSolver::SolveParallel(int num_workers) {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr_->num_pieces());

  const double bound_scale =
      options_.exact_pruning ? 1.0 / (1.0 - std::exp(-1.0)) : 1.0;
  const double gap_factor = 1.0 + options_.gap;

  ParallelSearchState shared(mrr_->num_pieces());

  // Root bound on the calling thread: a deterministic first incumbent
  // before any worker races begin.
  {
    CoverageState root_state(mrr_,
                             model_.AdoptionTable(mrr_->num_pieces()));
    ++result.bound_calls;
    const BoundResult root = ComputeNodeBound(
        &evaluator_, options_, &root_state, options_.budget, {});
    result.plan = PlanFromPairs(mrr_->num_pieces(), {}, root.additions);
    result.utility = root.sigma;
    const double upper = root.tau * bound_scale;
    MutexLock lock(&shared.mu);
    if (root.first_pick.valid() && upper > root.sigma) {
      shared.heap.push(SearchNode{{}, {}, upper, root.first_pick});
    }
    result.upper_bound = std::max(upper, root.sigma);
    shared.lower.store(result.utility, std::memory_order_relaxed);
    shared.best_plan = result.plan;
    shared.pruned_upper = result.utility;
  }

  auto worker = [&shared, this, bound_scale, gap_factor] {
    // Thread-local solver state, replayed between plans by diffing.
    PlanReplay replay(mrr_, model_.AdoptionTable(mrr_->num_pieces()));
    BoundEvaluator evaluator(mrr_, model_, evaluator_.pools(),
                             options_.variant);
    int64_t bound_calls = 0;

    ReleasableMutexLock lock(&shared.mu);
    while (true) {
      // Idle/termination detection: sleep while the frontier is empty
      // but some worker is still expanding (it may refill the frontier);
      // wake to exit once every worker is idle or a stop was requested.
      // The predicate is an explicit loop (not a lambda) so the static
      // analysis sees the guarded reads under the held lock.
      while (!(shared.stop.load(std::memory_order_relaxed) ||
               !shared.heap.empty() || shared.active == 0)) {
        shared.cv.Wait(&shared.mu);
      }
      if (shared.stop.load(std::memory_order_relaxed) ||
          shared.heap.empty()) {
        break;
      }
      SearchNode node = shared.heap.top();
      shared.heap.pop();
      // The incumbent may have risen since this node was pushed.
      // pruned_upper accumulates the max bound among gap-pruned nodes —
      // the frontier's top at the moment the gap was first met — which
      // is exactly what the sequential engine reports as upper_bound
      // when it breaks on the gap; a run where nothing gets pruned here
      // drains to upper_bound == utility, matching the sequential
      // exhausted case.
      if (node.upper <=
          shared.lower.load(std::memory_order_relaxed) * gap_factor) {
        shared.pruned_upper = std::max(shared.pruned_upper, node.upper);
        if (shared.heap.empty() && shared.active == 0) {
          shared.cv.NotifyAll();
        }
        continue;
      }
      if (shared.nodes_expanded.load(std::memory_order_relaxed) >=
          options_.max_nodes) {
        // Keep the frontier's bound honest.
        shared.heap.push(std::move(node));
        shared.converged = false;
        shared.stop.store(true, std::memory_order_relaxed);
        shared.cv.NotifyAll();
        break;
      }
      if (options_.on_progress) {
        const double incumbent =
            shared.lower.load(std::memory_order_relaxed);
        const BabProgress progress{
            shared.nodes_expanded.load(std::memory_order_relaxed),
            incumbent, std::max(node.upper, incumbent)};
        if (!options_.on_progress(progress)) {
          shared.heap.push(std::move(node));
          shared.converged = false;
          shared.cancelled = true;
          shared.stop.store(true, std::memory_order_relaxed);
          shared.cv.NotifyAll();
          break;
        }
      }
      shared.nodes_expanded.fetch_add(1, std::memory_order_relaxed);
      ++shared.active;
      lock.Unlock();

      bool aborted = false;
      for (const bool include : {true, false}) {
        if (shared.stop.load(std::memory_order_relaxed)) {
          aborted = true;
          break;
        }
        SearchNode child;
        child.included = node.included;
        child.excluded = node.excluded;
        if (include) {
          child.included.emplace_back(node.branch.piece, node.branch.v);
        } else {
          child.excluded.emplace_back(node.branch.piece, node.branch.v);
        }
        const int remaining =
            options_.budget - static_cast<int>(child.included.size());
        OIPA_CHECK_GE(remaining, 0);
        replay.MoveTo(child.included);
        ++bound_calls;
        const BoundResult r =
            ComputeNodeBound(&evaluator, options_, replay.state(),
                             remaining, child.excluded);
        const double upper = r.tau * bound_scale;

        lock.Lock();
        if (r.sigma > shared.lower.load(std::memory_order_relaxed)) {
          shared.lower.store(r.sigma, std::memory_order_relaxed);
          shared.best_plan = PlanFromPairs(mrr_->num_pieces(),
                                           child.included, r.additions);
        }
        if (upper > shared.lower.load(std::memory_order_relaxed) *
                        gap_factor &&
            r.first_pick.valid() && remaining > 0) {
          child.upper = upper;
          child.branch = r.first_pick;
          shared.heap.push(std::move(child));
          shared.cv.NotifyOne();
        }
        lock.Unlock();
      }

      lock.Lock();
      if (aborted) {
        // The unexpanded remainder of this node's subspace was dropped;
        // fold its bound in so upper_bound stays valid.
        shared.pruned_upper = std::max(shared.pruned_upper, node.upper);
      }
      --shared.active;
      if (shared.active == 0) shared.cv.NotifyAll();
    }
    // Every exit path above holds the lock; fold the counters in.
    shared.total_bound_calls += bound_calls;
    shared.total_tau_evals += evaluator.total_tau_evals();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int t = 0; t < num_workers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  // Workers are joined; the lock is reacquired anyway so the analysis
  // (and any future late-reader refactor) sees the guarded reads.
  MutexLock lock(&shared.mu);
  result.nodes_expanded = shared.nodes_expanded.load();
  result.bound_calls += shared.total_bound_calls;
  result.tau_evals = evaluator_.total_tau_evals() + shared.total_tau_evals;
  result.utility = shared.lower.load();
  result.plan = std::move(shared.best_plan);
  result.converged = shared.converged;
  result.cancelled = shared.cancelled;
  double upper = std::max(result.utility, shared.pruned_upper);
  if (!shared.heap.empty()) {
    upper = std::max(upper, shared.heap.top().upper);
  }
  result.upper_bound = upper;
  result.seconds = timer.Seconds();
  return result;
}

BabResult GreedySigmaSolve(const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int budget) {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr.num_pieces());
  CoverageState state(&mrr, model.AdoptionTable(mrr.num_pieces()));

  // CELF-lazy selection keyed by a forward-valid gain upper bound (see
  // CoverageState::GainAndBoundOfAdding): sigma is not submodular, so a
  // stale gain is not itself a bound, but the suffix-max bound is — an
  // entry whose bound trails the best fresh gain cannot win the round.
  // Selections are identical to a full rescan, including ties (smallest
  // piece, then vertex).
  struct Entry {
    double bound = 0.0;
    double gain = 0.0;
    int round = 0;  // round this entry's gain/bound were computed in
    int piece = 0;
    VertexId v = 0;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    if (a.piece != b.piece) return a.piece > b.piece;
    return a.v > b.v;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(
      worse);
  std::vector<VertexId> candidates(pool);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int j = 0; j < mrr.num_pieces(); ++j) {
    for (VertexId v : candidates) {
      const auto [gain, bound] = state.GainAndBoundOfAdding(v, j);
      heap.push({bound, gain, 0, j, v});
    }
  }

  std::vector<Entry> beaten;
  for (int round = 0; round < budget && !heap.empty(); ++round) {
    Entry best;
    bool have_best = false;
    beaten.clear();
    while (!heap.empty()) {
      if (have_best && heap.top().bound < best.gain) break;
      Entry e = heap.top();
      heap.pop();
      if (e.round != round) {
        const auto [gain, bound] = state.GainAndBoundOfAdding(e.v, e.piece);
        e.gain = gain;
        e.bound = bound;
        e.round = round;
      }
      const bool better =
          !have_best || e.gain > best.gain ||
          (e.gain == best.gain &&
           (e.piece < best.piece ||
            (e.piece == best.piece && e.v < best.v)));
      if (better) {
        if (have_best) beaten.push_back(best);
        best = e;
        have_best = true;
      } else {
        beaten.push_back(e);
      }
    }
    // A zero-gain round still takes a candidate: under the logistic f a
    // pick gaining nothing now can unlock steeper marginals later, and
    // the plan must never silently under-fill the budget.
    state.AddSeed(best.v, best.piece);
    result.plan.Add(best.piece, best.v);
    for (const Entry& e : beaten) heap.push(e);
  }
  result.utility = state.Utility();
  result.upper_bound = result.utility;
  result.converged = result.plan.size() >= budget;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace oipa
