#include "oipa/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <memory>
#include <queue>
#include <thread>

#include "util/logging.h"
#include "util/thread_annotations.h"
#include "util/threading.h"
#include "util/timer.h"

namespace oipa {

namespace {

/// One open subspace of the search: assignments forced in, assignments
/// forced out, the surrogate upper bound of the subspace, and the pair to
/// branch on next.
struct SearchNode {
  std::vector<Assignment> included;
  std::vector<Assignment> excluded;
  double upper = 0.0;
  BoundPick branch;
};

struct NodeCompare {
  bool operator()(const SearchNode& a, const SearchNode& b) const {
    return a.upper < b.upper;  // max-heap on the upper bound
  }
};

AssignmentPlan PlanFromPairs(int num_pieces,
                             const std::vector<Assignment>& included,
                             const std::vector<Assignment>& additions) {
  AssignmentPlan plan(num_pieces);
  for (const auto& [piece, v] : included) plan.Add(piece, v);
  for (const auto& [piece, v] : additions) plan.Add(piece, v);
  return plan;
}

/// A CoverageState kept in sync with an assignment list by diff-replay;
/// both engines (and each parallel worker) step between partial plans
/// through MoveTo so there is exactly one copy of the diffing logic.
class PlanReplay {
 public:
  PlanReplay(const MrrCollection* mrr, std::vector<double> f_by_count)
      : state_(mrr, std::move(f_by_count)) {}

  CoverageState* state() { return &state_; }

  void MoveTo(const std::vector<Assignment>& target) {
    for (const auto& pair : current_) {
      if (std::find(target.begin(), target.end(), pair) == target.end()) {
        state_.RemoveSeed(pair.second, pair.first);
      }
    }
    for (const auto& pair : target) {
      if (std::find(current_.begin(), current_.end(), pair) ==
          current_.end()) {
        state_.AddSeed(pair.second, pair.first);
      }
    }
    current_ = target;
  }

 private:
  CoverageState state_;
  std::vector<Assignment> current_;
};

/// Per-worker bound-ordered frontier for the work-stealing engine.
/// `nodes` is kept sorted ascending by upper bound: the owner pops the
/// back — the most promising subspace, preserving the sequential
/// engine's best-first order locally — and thieves take from the front,
/// the cheap end, so stolen work is the work the victim would have
/// reached last. Each deque carries its own mutex; by construction a
/// worker holds AT MOST ONE frontier mutex at any time (a steal copies
/// out of the victim, releases, and only then locks the thief's own
/// deque), so frontier mutexes need no order among themselves.
/// Cache-line aligned so neighboring workers' hints don't false-share.
struct alignas(64) WorkerDeque {
  Mutex mu;
  std::vector<SearchNode> nodes OIPA_GUARDED_BY(mu);  // ascending by upper
  /// Relaxed mirrors refreshed under `mu` on every mutation: size for
  /// lock-free victim probing, the top bound for global-upper-bound
  /// snapshots. `top_hint` is 0.0 when empty (bounds are nonnegative,
  /// so an empty deque never wins a max).
  std::atomic<int64_t> size_hint{0};
  std::atomic<double> top_hint{0.0};
};

void RefreshHints(WorkerDeque& d) OIPA_REQUIRES(d.mu) {
  d.size_hint.store(static_cast<int64_t>(d.nodes.size()),
                    std::memory_order_relaxed);
  d.top_hint.store(d.nodes.empty() ? 0.0 : d.nodes.back().upper,
                   std::memory_order_relaxed);
}

void DequePush(WorkerDeque& d, SearchNode node) {
  MutexLock lock(&d.mu);
  const auto pos = std::upper_bound(d.nodes.begin(), d.nodes.end(), node,
                                    NodeCompare());
  d.nodes.insert(pos, std::move(node));
  RefreshHints(d);
}

/// Pops the owner's most promising node (the expensive back end).
bool DequePopBest(WorkerDeque& d, SearchNode* out) {
  MutexLock lock(&d.mu);
  if (d.nodes.empty()) return false;
  *out = std::move(d.nodes.back());
  d.nodes.pop_back();
  RefreshHints(d);
  return true;
}

/// Takes half of the victim's frontier (at least one node) from the
/// cheap front end into `loot`, ascending order preserved.
bool StealHalf(WorkerDeque& victim, std::vector<SearchNode>* loot) {
  MutexLock lock(&victim.mu);
  if (victim.nodes.empty()) return false;
  const auto take = std::max<ptrdiff_t>(
      1, static_cast<ptrdiff_t>(victim.nodes.size()) / 2);
  loot->assign(std::make_move_iterator(victim.nodes.begin()),
               std::make_move_iterator(victim.nodes.begin() + take));
  victim.nodes.erase(victim.nodes.begin(), victim.nodes.begin() + take);
  RefreshHints(victim);
  return true;
}

/// Adopts stolen nodes (ascending) into the thief's own deque.
void DequeAdopt(WorkerDeque& d, std::vector<SearchNode> loot) {
  MutexLock lock(&d.mu);
  if (d.nodes.empty()) {
    d.nodes = std::move(loot);
  } else {
    // Unreachable in the engine (a worker only steals when its own
    // frontier is dry, and nobody else ever pushes into it), but kept
    // general so the helper has no hidden precondition.
    d.nodes.insert(d.nodes.end(), std::make_move_iterator(loot.begin()),
                   std::make_move_iterator(loot.end()));
    std::sort(d.nodes.begin(), d.nodes.end(), NodeCompare());
  }
  RefreshHints(d);
}

/// Deterministic per-worker xorshift64 for victim selection: no global
/// RNG contention and no syscalls on the steal path.
uint64_t NextXorshift(uint64_t* s) {
  uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

/// Lock-free incumbent shared by every worker. The hot path — "can this
/// subspace still beat the best known plan?" — is one atomic load; the
/// small mutex is taken only when a worker actually raises the record.
///
/// Memory-ordering contract (mirrored in README.md): the atomic word
/// packs the incumbent's lower bound with a raise epoch. The high 53
/// bits are the IEEE-754 pattern of the (nonnegative) bound with its
/// low 11 mantissa bits cleared — which rounds the bound DOWN, so
/// readers prune against a value some plan genuinely achieves — and the
/// low 11 bits count raises. Nonnegative doubles order like their bit
/// patterns, so a plain integer compare is the bound compare and the
/// word is monotonically nondecreasing.
class AtomicIncumbent {
 public:
  explicit AtomicIncumbent(int num_pieces) : best_plan_(num_pieces) {}

  /// Single-threaded seeding before workers start.
  void Seed(double sigma, const AssignmentPlan& plan) {
    MutexLock lock(&mu_);
    sigma_ = sigma;
    best_plan_ = plan;
    word_.store(FloorBits(sigma), std::memory_order_release);
  }

  /// The shared lower bound, rounded down by at most 2^-11 relative.
  double Lower() const {
    return std::bit_cast<double>(word_.load(std::memory_order_acquire) &
                                 kBoundMask);
  }

  /// Offers sigma as a new incumbent; `make_plan` runs (under the
  /// mutex) only when sigma actually wins. Worse offers return after a
  /// single load with no CAS and no lock. A raiser publishes the word
  /// FIRST (CAS) and records the exact sigma and plan before returning,
  /// so the transient window where the word exceeds the recorded plan's
  /// value is private to the raiser — any bound the word advertises is
  /// backed by a plan recorded before that Offer returned.
  template <typename MakePlan>
  void Offer(double sigma, MakePlan&& make_plan) {
    const uint64_t floor_bits = FloorBits(sigma);
    uint64_t cur = word_.load(std::memory_order_relaxed);
    while (true) {
      if (floor_bits < (cur & kBoundMask)) return;  // strictly worse
      if (floor_bits == (cur & kBoundMask)) break;  // tie within a granule
      const uint64_t next = floor_bits | ((cur + 1) & kEpochMask);
      if (word_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    MutexLock lock(&mu_);
    if (sigma > sigma_) {
      sigma_ = sigma;
      best_plan_ = make_plan();
    }
  }

  /// Post-join snapshot of the exact (un-floored) record.
  void Snapshot(double* sigma, AssignmentPlan* plan) {
    MutexLock lock(&mu_);
    *sigma = sigma_;
    *plan = std::move(best_plan_);
  }

 private:
  static constexpr uint64_t kEpochMask = 0x7FF;
  static constexpr uint64_t kBoundMask = ~kEpochMask;

  static uint64_t FloorBits(double sigma) {
    return std::bit_cast<uint64_t>(sigma < 0.0 ? 0.0 : sigma) & kBoundMask;
  }

  std::atomic<uint64_t> word_{0};
  Mutex mu_;
  double sigma_ OIPA_GUARDED_BY(mu_) = 0.0;
  AssignmentPlan best_plan_ OIPA_GUARDED_BY(mu_);
};

/// Shared state of one work-stealing SolveParallel run. Lives at
/// namespace scope (not as worker-lambda captures) so every field can
/// name its guard in the type system. Locking hierarchy (see
/// README.md): progress_mu may be held over control_mu; frontier
/// mutexes and the incumbent mutex are leaves, never held together
/// with each other or with anything above them.
struct StealSearchState {
  StealSearchState(int num_pieces, int num_workers)
      : incumbent(num_pieces), deques(num_workers) {
    for (auto& d : deques) d = std::make_unique<WorkerDeque>();
  }

  AtomicIncumbent incumbent;
  std::vector<std::unique_ptr<WorkerDeque>> deques;
  /// Subspaces alive anywhere: queued in some frontier or being
  /// expanded by some worker. A worker pushes each surviving child
  /// (+1 each) BEFORE retiring its parent (-1), so the counter can
  /// only reach zero when no node is queued or in flight — the
  /// termination signal, paired with `stop` for early exits.
  std::atomic<int64_t> open_nodes{0};
  std::atomic<int64_t> nodes_expanded{0};
  std::atomic<bool> stop{false};
  /// Serializes on_progress snapshots (the documented hook contract):
  /// a hook that returns false sets `stop` before releasing this
  /// mutex, so no hook invocation ever follows a cancellation.
  Mutex progress_mu;
  /// Cold control-plane state: stop reasons and the per-worker folds.
  Mutex control_mu;
  bool cancelled OIPA_GUARDED_BY(control_mu) = false;
  bool converged OIPA_GUARDED_BY(control_mu) = true;
  double pruned_upper OIPA_GUARDED_BY(control_mu) = 0.0;
  int64_t total_bound_calls OIPA_GUARDED_BY(control_mu) = 0;
  int64_t total_tau_evals OIPA_GUARDED_BY(control_mu) = 0;
};

/// Dispatches one upper-bound evaluation to the variant `options` selects.
BoundResult ComputeNodeBound(BoundEvaluator* evaluator,
                             const BabOptions& options, CoverageState* state,
                             int budget_remaining,
                             const std::vector<Assignment>& excluded) {
  if (options.progressive) {
    return evaluator->ComputeBoundPro(state, budget_remaining, excluded,
                                      options.epsilon,
                                      options.progressive_fill);
  }
  if (options.lazy_greedy) {
    return evaluator->ComputeBoundLazy(state, budget_remaining, excluded);
  }
  return evaluator->ComputeBound(state, budget_remaining, excluded);
}

}  // namespace

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     std::vector<std::vector<VertexId>> pools,
                     BabOptions options)
    : mrr_(mrr),
      model_(model),
      options_(options),
      evaluator_(mrr, model, std::move(pools), options.variant) {
  OIPA_CHECK_GE(options_.budget, 1);
  OIPA_CHECK_GE(options_.gap, 0.0);
  OIPA_CHECK_GE(options_.num_threads, 0);
}

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     const std::vector<VertexId>& shared_pool,
                     BabOptions options)
    : BabSolver(mrr, model,
                std::vector<std::vector<VertexId>>(mrr->num_pieces(),
                                                   shared_pool),
                options) {}

BabResult BabSolver::Solve() {
  const int threads =
      options_.num_threads == 0 ? GetNumThreads() : options_.num_threads;
  if (threads <= 1) return SolveSequential();
  return SolveParallel(std::min(threads, kMaxBabWorkers));
}

BabResult BabSolver::SolveSequential() {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr_->num_pieces());

  PlanReplay replay(mrr_, model_.AdoptionTable(mrr_->num_pieces()));
  // Theorem-2 pruning uses tau(greedy) directly; exact pruning inflates
  // the bound by e/(e-1) so no subspace that could beat the incumbent
  // under the MRR objective is ever dropped.
  const double bound_scale =
      options_.exact_pruning ? 1.0 / (1.0 - std::exp(-1.0)) : 1.0;

  auto compute = [&](int budget_remaining,
                     const std::vector<Assignment>& excluded) {
    ++result.bound_calls;
    return ComputeNodeBound(&evaluator_, options_, replay.state(),
                            budget_remaining, excluded);
  };

  double lower = 0.0;
  bool have_incumbent = false;

  std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
      heap;

  // Root bound (empty plan, nothing excluded).
  {
    const BoundResult root = compute(options_.budget, {});
    result.plan = PlanFromPairs(mrr_->num_pieces(), {}, root.additions);
    lower = root.sigma;
    have_incumbent = true;
    const double upper = root.tau * bound_scale;
    if (root.first_pick.valid() && upper > lower) {
      heap.push(SearchNode{{}, {}, upper, root.first_pick});
    }
    result.upper_bound = std::max(upper, lower);
  }

  result.converged = true;
  while (!heap.empty()) {
    const SearchNode top = heap.top();
    // The heap is ordered by upper bound, so the top is the global bound
    // over all open subspaces.
    result.upper_bound = std::max(top.upper, lower);
    if (top.upper <= lower * (1.0 + options_.gap)) break;  // gap met
    if (result.nodes_expanded >= options_.max_nodes) {
      result.converged = false;
      break;
    }
    if (options_.on_progress &&
        !options_.on_progress(
            {result.nodes_expanded, lower, result.upper_bound})) {
      result.converged = false;
      result.cancelled = true;
      break;
    }
    heap.pop();
    ++result.nodes_expanded;

    // Branch on the node's stored pick: one child forces it into the
    // plan, the other forbids it.
    for (const bool include : {true, false}) {
      SearchNode child;
      child.included = top.included;
      child.excluded = top.excluded;
      if (include) {
        child.included.emplace_back(top.branch.piece, top.branch.v);
      } else {
        child.excluded.emplace_back(top.branch.piece, top.branch.v);
      }
      const int remaining =
          options_.budget - static_cast<int>(child.included.size());
      OIPA_CHECK_GE(remaining, 0);
      replay.MoveTo(child.included);
      const BoundResult r = compute(remaining, child.excluded);
      if (!have_incumbent || r.sigma > lower) {
        lower = r.sigma;
        have_incumbent = true;
        result.plan =
            PlanFromPairs(mrr_->num_pieces(), child.included, r.additions);
      }
      const double upper = r.tau * bound_scale;
      if (upper > lower * (1.0 + options_.gap) && r.first_pick.valid() &&
          remaining > 0) {
        child.upper = upper;
        child.branch = r.first_pick;
        heap.push(std::move(child));
      }
    }
  }
  if (heap.empty()) result.upper_bound = lower;

  replay.MoveTo({});
  result.utility = lower;
  result.tau_evals = evaluator_.total_tau_evals();
  result.seconds = timer.Seconds();
  return result;
}

BabResult BabSolver::SolveParallel(int num_workers) {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr_->num_pieces());

  const double bound_scale =
      options_.exact_pruning ? 1.0 / (1.0 - std::exp(-1.0)) : 1.0;
  const double gap_factor = 1.0 + options_.gap;

  StealSearchState shared(mrr_->num_pieces(), num_workers);

  // Root bound on the calling thread: a deterministic first incumbent
  // before any worker races begin. The root node seeds worker 0's
  // frontier; everyone else bootstraps by stealing from it.
  {
    CoverageState root_state(mrr_,
                             model_.AdoptionTable(mrr_->num_pieces()));
    ++result.bound_calls;
    const BoundResult root = ComputeNodeBound(
        &evaluator_, options_, &root_state, options_.budget, {});
    result.plan = PlanFromPairs(mrr_->num_pieces(), {}, root.additions);
    result.utility = root.sigma;
    shared.incumbent.Seed(root.sigma, result.plan);
    const double upper = root.tau * bound_scale;
    if (root.first_pick.valid() && upper > root.sigma) {
      shared.open_nodes.store(1, std::memory_order_relaxed);
      DequePush(*shared.deques[0],
                SearchNode{{}, {}, upper, root.first_pick});
    }
    result.upper_bound = std::max(upper, root.sigma);
  }

  auto worker = [&shared, this, bound_scale, gap_factor](const int self) {
    // Thread-local solver state, replayed between plans by diffing.
    PlanReplay replay(mrr_, model_.AdoptionTable(mrr_->num_pieces()));
    BoundEvaluator evaluator(mrr_, model_, evaluator_.pools(),
                             options_.variant);
    WorkerDeque& own = *shared.deques[self];
    const int workers = static_cast<int>(shared.deques.size());
    int64_t bound_calls = 0;
    // Local max bound among gap-pruned / abandoned nodes — the
    // sequential engine's "frontier top when the gap was first met" —
    // folded into shared.pruned_upper at exit. A run where nothing is
    // pruned drains to upper_bound == utility, matching the sequential
    // exhausted case.
    double pruned_upper = 0.0;
    uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(self + 1);

    SearchNode node;
    std::vector<SearchNode> loot;
    while (!shared.stop.load(std::memory_order_relaxed)) {
      if (!DequePopBest(own, &node)) {
        // Own frontier dry: probe victims lock-free starting at a
        // random ring position, then steal half their cheap end. The
        // best of the loot is expanded immediately; the rest is
        // adopted (own deque is empty — only its owner pushes to it).
        bool stolen = false;
        const uint64_t start = NextXorshift(&rng);
        for (int k = 0; k < workers && !stolen; ++k) {
          const int victim = static_cast<int>(
              (start + static_cast<uint64_t>(k)) %
              static_cast<uint64_t>(workers));
          if (victim == self) continue;
          if (shared.deques[victim]->size_hint.load(
                  std::memory_order_relaxed) == 0) {
            continue;
          }
          if (!StealHalf(*shared.deques[victim], &loot)) continue;
          node = std::move(loot.back());
          loot.pop_back();
          if (!loot.empty()) DequeAdopt(own, std::move(loot));
          loot.clear();
          stolen = true;
        }
        if (!stolen) {
          // Nothing anywhere. Exit if no subspace is open (queued or
          // in flight — an in-flight node may still spawn children);
          // otherwise spin-yield until work reappears.
          if (shared.open_nodes.load(std::memory_order_acquire) == 0) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
      }

      // `node` is held; its +1 in open_nodes is ours to retire.
      // The incumbent may have risen since the node was pushed.
      if (node.upper <= shared.incumbent.Lower() * gap_factor) {
        pruned_upper = std::max(pruned_upper, node.upper);
        shared.open_nodes.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (shared.nodes_expanded.load(std::memory_order_relaxed) >=
          options_.max_nodes) {
        // Keep the frontier's bound honest: the node stays open (its
        // +1 is never retired) and the stop flag drains the pool.
        DequePush(own, std::move(node));
        MutexLock lock(&shared.control_mu);
        shared.converged = false;
        shared.stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (options_.on_progress) {
        bool requeue = false;
        {
          MutexLock plock(&shared.progress_mu);
          if (shared.stop.load(std::memory_order_relaxed)) {
            requeue = true;  // lost the race to a cancelling worker
          } else {
            const double incumbent = shared.incumbent.Lower();
            double upper = std::max(node.upper, incumbent);
            for (const auto& d : shared.deques) {
              upper = std::max(
                  upper, d->top_hint.load(std::memory_order_relaxed));
            }
            const BabProgress progress{
                shared.nodes_expanded.load(std::memory_order_relaxed),
                incumbent, upper};
            if (!options_.on_progress(progress)) {
              MutexLock lock(&shared.control_mu);
              shared.converged = false;
              shared.cancelled = true;
              shared.stop.store(true, std::memory_order_relaxed);
              requeue = true;
            }
          }
        }
        if (requeue) {
          DequePush(own, std::move(node));
          break;
        }
      }
      shared.nodes_expanded.fetch_add(1, std::memory_order_relaxed);

      bool aborted = false;
      for (const bool include : {true, false}) {
        if (shared.stop.load(std::memory_order_relaxed)) {
          aborted = true;
          break;
        }
        SearchNode child;
        child.included = node.included;
        child.excluded = node.excluded;
        if (include) {
          child.included.emplace_back(node.branch.piece, node.branch.v);
        } else {
          child.excluded.emplace_back(node.branch.piece, node.branch.v);
        }
        const int remaining =
            options_.budget - static_cast<int>(child.included.size());
        OIPA_CHECK_GE(remaining, 0);
        replay.MoveTo(child.included);
        ++bound_calls;
        const BoundResult r =
            ComputeNodeBound(&evaluator, options_, replay.state(),
                             remaining, child.excluded);
        const double upper = r.tau * bound_scale;
        shared.incumbent.Offer(r.sigma, [&] {
          return PlanFromPairs(mrr_->num_pieces(), child.included,
                               r.additions);
        });
        if (upper > shared.incumbent.Lower() * gap_factor &&
            r.first_pick.valid() && remaining > 0) {
          child.upper = upper;
          child.branch = r.first_pick;
          // The child's +1 lands BEFORE the parent's -1 below, so the
          // counter never dips to zero while this subtree has open
          // work — no idle worker can exit spuriously.
          shared.open_nodes.fetch_add(1, std::memory_order_relaxed);
          DequePush(own, std::move(child));
        }
      }
      if (aborted) {
        // The unexpanded remainder of this node's subspace was
        // dropped; fold its bound in so upper_bound stays valid.
        pruned_upper = std::max(pruned_upper, node.upper);
      }
      shared.open_nodes.fetch_sub(1, std::memory_order_acq_rel);
    }

    MutexLock lock(&shared.control_mu);
    shared.total_bound_calls += bound_calls;
    shared.total_tau_evals += evaluator.total_tau_evals();
    shared.pruned_upper = std::max(shared.pruned_upper, pruned_upper);
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int t = 0; t < num_workers; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  result.nodes_expanded =
      shared.nodes_expanded.load(std::memory_order_relaxed);
  double upper;
  {
    MutexLock lock(&shared.control_mu);
    result.bound_calls += shared.total_bound_calls;
    result.tau_evals =
        evaluator_.total_tau_evals() + shared.total_tau_evals;
    result.converged = shared.converged;
    result.cancelled = shared.cancelled;
    upper = shared.pruned_upper;
  }
  shared.incumbent.Snapshot(&result.utility, &result.plan);
  upper = std::max(upper, result.utility);
  // Anything still queued (early stop) keeps its bound in the report.
  for (const auto& d : shared.deques) {
    MutexLock lock(&d->mu);
    if (!d->nodes.empty()) upper = std::max(upper, d->nodes.back().upper);
  }
  result.upper_bound = upper;
  result.seconds = timer.Seconds();
  return result;
}

BabResult GreedySigmaSolve(const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int budget) {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr.num_pieces());
  CoverageState state(&mrr, model.AdoptionTable(mrr.num_pieces()));

  // CELF-lazy selection keyed by a forward-valid gain upper bound (see
  // CoverageState::GainAndBoundOfAdding): sigma is not submodular, so a
  // stale gain is not itself a bound, but the suffix-max bound is — an
  // entry whose bound trails the best fresh gain cannot win the round.
  // Selections are identical to a full rescan, including ties (smallest
  // piece, then vertex).
  struct Entry {
    double bound = 0.0;
    double gain = 0.0;
    int round = 0;  // round this entry's gain/bound were computed in
    int piece = 0;
    VertexId v = 0;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    if (a.piece != b.piece) return a.piece > b.piece;
    return a.v > b.v;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(
      worse);
  std::vector<VertexId> candidates(pool);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int j = 0; j < mrr.num_pieces(); ++j) {
    for (VertexId v : candidates) {
      const auto [gain, bound] = state.GainAndBoundOfAdding(v, j);
      heap.push({bound, gain, 0, j, v});
    }
  }

  std::vector<Entry> beaten;
  for (int round = 0; round < budget && !heap.empty(); ++round) {
    Entry best;
    bool have_best = false;
    beaten.clear();
    while (!heap.empty()) {
      if (have_best && heap.top().bound < best.gain) break;
      Entry e = heap.top();
      heap.pop();
      if (e.round != round) {
        const auto [gain, bound] = state.GainAndBoundOfAdding(e.v, e.piece);
        e.gain = gain;
        e.bound = bound;
        e.round = round;
      }
      const bool better =
          !have_best || e.gain > best.gain ||
          (e.gain == best.gain &&
           (e.piece < best.piece ||
            (e.piece == best.piece && e.v < best.v)));
      if (better) {
        if (have_best) beaten.push_back(best);
        best = e;
        have_best = true;
      } else {
        beaten.push_back(e);
      }
    }
    // A zero-gain round still takes a candidate: under the logistic f a
    // pick gaining nothing now can unlock steeper marginals later, and
    // the plan must never silently under-fill the budget.
    state.AddSeed(best.v, best.piece);
    result.plan.Add(best.piece, best.v);
    for (const Entry& e : beaten) heap.push(e);
  }
  result.utility = state.Utility();
  result.upper_bound = result.utility;
  result.converged = result.plan.size() >= budget;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace oipa
