#include "oipa/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace oipa {

namespace {

/// One open subspace of the search: assignments forced in, assignments
/// forced out, the surrogate upper bound of the subspace, and the pair to
/// branch on next.
struct SearchNode {
  std::vector<Assignment> included;
  std::vector<Assignment> excluded;
  double upper = 0.0;
  BoundPick branch;
};

struct NodeCompare {
  bool operator()(const SearchNode& a, const SearchNode& b) const {
    return a.upper < b.upper;  // max-heap on the upper bound
  }
};

AssignmentPlan PlanFromPairs(int num_pieces,
                             const std::vector<Assignment>& included,
                             const std::vector<Assignment>& additions) {
  AssignmentPlan plan(num_pieces);
  for (const auto& [piece, v] : included) plan.Add(piece, v);
  for (const auto& [piece, v] : additions) plan.Add(piece, v);
  return plan;
}

}  // namespace

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     std::vector<std::vector<VertexId>> pools,
                     BabOptions options)
    : mrr_(mrr),
      model_(model),
      options_(options),
      evaluator_(mrr, model, std::move(pools), options.variant) {
  OIPA_CHECK_GE(options_.budget, 1);
  OIPA_CHECK_GE(options_.gap, 0.0);
}

BabSolver::BabSolver(const MrrCollection* mrr,
                     const LogisticAdoptionModel& model,
                     const std::vector<VertexId>& shared_pool,
                     BabOptions options)
    : BabSolver(mrr, model,
                std::vector<std::vector<VertexId>>(mrr->num_pieces(),
                                                   shared_pool),
                options) {}

BabResult BabSolver::Solve() {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr_->num_pieces());

  CoverageState state(mrr_, model_.AdoptionTable(mrr_->num_pieces()));
  // Theorem-2 pruning uses tau(greedy) directly; exact pruning inflates
  // the bound by e/(e-1) so no subspace that could beat the incumbent
  // under the MRR objective is ever dropped.
  const double bound_scale =
      options_.exact_pruning ? 1.0 / (1.0 - std::exp(-1.0)) : 1.0;

  auto compute = [&](CoverageState* st, int budget_remaining,
                     const std::vector<Assignment>& excluded) {
    ++result.bound_calls;
    if (options_.progressive) {
      return evaluator_.ComputeBoundPro(st, budget_remaining, excluded,
                                        options_.epsilon,
                                        options_.progressive_fill);
    }
    if (options_.lazy_greedy) {
      return evaluator_.ComputeBoundLazy(st, budget_remaining, excluded);
    }
    return evaluator_.ComputeBound(st, budget_remaining, excluded);
  };

  // `state` mirrors `current_pairs` at all times; MoveTo diffs plans.
  std::vector<Assignment> current_pairs;
  auto move_to = [&](const std::vector<Assignment>& target) {
    for (const auto& pair : current_pairs) {
      if (std::find(target.begin(), target.end(), pair) == target.end()) {
        state.RemoveSeed(pair.second, pair.first);
      }
    }
    for (const auto& pair : target) {
      if (std::find(current_pairs.begin(), current_pairs.end(), pair) ==
          current_pairs.end()) {
        state.AddSeed(pair.second, pair.first);
      }
    }
    current_pairs = target;
  };

  double lower = 0.0;
  bool have_incumbent = false;

  std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
      heap;

  // Root bound (empty plan, nothing excluded).
  {
    const BoundResult root = compute(&state, options_.budget, {});
    result.plan = PlanFromPairs(mrr_->num_pieces(), {}, root.additions);
    lower = root.sigma;
    have_incumbent = true;
    const double upper = root.tau * bound_scale;
    if (root.first_pick.valid() && upper > lower) {
      heap.push(SearchNode{{}, {}, upper, root.first_pick});
    }
    result.upper_bound = std::max(upper, lower);
  }

  result.converged = true;
  while (!heap.empty()) {
    const SearchNode top = heap.top();
    // The heap is ordered by upper bound, so the top is the global bound
    // over all open subspaces.
    result.upper_bound = std::max(top.upper, lower);
    if (top.upper <= lower * (1.0 + options_.gap)) break;  // gap met
    if (result.nodes_expanded >= options_.max_nodes) {
      result.converged = false;
      break;
    }
    if (options_.on_progress &&
        !options_.on_progress(
            {result.nodes_expanded, lower, result.upper_bound})) {
      result.converged = false;
      result.cancelled = true;
      break;
    }
    heap.pop();
    ++result.nodes_expanded;

    // Branch on the node's stored pick: one child forces it into the
    // plan, the other forbids it.
    for (const bool include : {true, false}) {
      SearchNode child;
      child.included = top.included;
      child.excluded = top.excluded;
      if (include) {
        child.included.emplace_back(top.branch.piece, top.branch.v);
      } else {
        child.excluded.emplace_back(top.branch.piece, top.branch.v);
      }
      const int remaining =
          options_.budget - static_cast<int>(child.included.size());
      OIPA_CHECK_GE(remaining, 0);
      move_to(child.included);
      const BoundResult r = compute(&state, remaining, child.excluded);
      if (!have_incumbent || r.sigma > lower) {
        lower = r.sigma;
        have_incumbent = true;
        result.plan =
            PlanFromPairs(mrr_->num_pieces(), child.included, r.additions);
      }
      const double upper = r.tau * bound_scale;
      if (upper > lower * (1.0 + options_.gap) && r.first_pick.valid() &&
          remaining > 0) {
        child.upper = upper;
        child.branch = r.first_pick;
        heap.push(std::move(child));
      }
    }
  }
  if (heap.empty()) result.upper_bound = lower;

  move_to({});
  result.utility = lower;
  result.tau_evals = evaluator_.total_tau_evals();
  result.seconds = timer.Seconds();
  return result;
}

BabResult GreedySigmaSolve(const MrrCollection& mrr,
                           const LogisticAdoptionModel& model,
                           const std::vector<VertexId>& pool, int budget) {
  WallTimer timer;
  BabResult result;
  result.plan = AssignmentPlan(mrr.num_pieces());
  CoverageState state(&mrr, model.AdoptionTable(mrr.num_pieces()));
  for (int round = 0; round < budget; ++round) {
    double best_gain = 0.0;
    int best_piece = -1;
    VertexId best_v = -1;
    for (int j = 0; j < mrr.num_pieces(); ++j) {
      for (VertexId v : pool) {
        if (result.plan.Contains(j, v)) continue;
        const double gain = state.GainOfAdding(v, j);
        if (gain > best_gain) {
          best_gain = gain;
          best_piece = j;
          best_v = v;
        }
      }
    }
    if (best_piece < 0) break;
    state.AddSeed(best_v, best_piece);
    result.plan.Add(best_piece, best_v);
  }
  result.utility = state.Utility();
  result.upper_bound = result.utility;
  result.converged = true;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace oipa
