#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace oipa {

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::NextExponential() {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u);
}

double Rng::NextGamma(double shape) {
  OIPA_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::NextDirichlet(int dim, double alpha) {
  OIPA_CHECK_GT(dim, 0);
  std::vector<double> out(dim);
  double sum = 0.0;
  for (int i = 0; i < dim; ++i) {
    out[i] = NextGamma(alpha);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (can happen for very small alpha); fall back to a
    // random vertex of the simplex.
    const int j = static_cast<int>(NextBounded(dim));
    for (int i = 0; i < dim; ++i) out[i] = (i == j) ? 1.0 : 0.0;
    return out;
  }
  for (int i = 0; i < dim; ++i) out[i] /= sum;
  return out;
}

int SampleDiscrete(const std::vector<double>& weights, Rng* rng) {
  double total = 0.0;
  for (double w : weights) {
    OIPA_CHECK_GE(w, 0.0);
    total += w;
  }
  OIPA_CHECK_GT(total, 0.0);
  double r = rng->NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace oipa
