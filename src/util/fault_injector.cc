#include "util/fault_injector.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "util/random.h"
#include "util/threading.h"

namespace oipa {
namespace {

/// One armed site: either a probability rule or a fire-on-Nth-call rule.
struct SiteRule {
  double probability = 0.0;  ///< Used when nth_call == 0.
  int64_t nth_call = 0;      ///< 1-based ordinal; 0 means probabilistic.
  int64_t calls = 0;
  int64_t injected = 0;
};

struct InjectorState {
  Mutex mu;
  std::map<std::string, SiteRule> rules OIPA_GUARDED_BY(mu);
  uint64_t seed OIPA_GUARDED_BY(mu) = 0;
  int64_t total_injected OIPA_GUARDED_BY(mu) = 0;
};

InjectorState& State() {
  static InjectorState* state = new InjectorState;  // leaked: process-global
  return *state;
}

/// FNV-1a over the site name; mixed with the seed and call index below.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Pure decision function: (seed, site, call index) -> uniform [0,1).
double DecisionDraw(uint64_t seed, const std::string& site, int64_t call) {
  uint64_t state = seed ^ HashSite(site) ^
                   (static_cast<uint64_t>(call) * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(SplitMix64Next(&state) >> 11) * 0x1.0p-53;
}

Status ParseEntry(const std::string& entry,
                  std::map<std::string, SiteRule>* rules) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
    return Status::InvalidArgument(
        "fault spec entry '" + entry + "' is not site=probability or site=@N");
  }
  const std::string site = entry.substr(0, eq);
  const std::string value = entry.substr(eq + 1);
  SiteRule rule;
  if (value[0] == '@') {
    char* end = nullptr;
    const long long nth = std::strtoll(value.c_str() + 1, &end, 10);
    if (end == nullptr || *end != '\0' || nth < 1) {
      return Status::InvalidArgument(
          "fault spec entry '" + entry + "': @N needs an integer N >= 1");
    }
    rule.nth_call = nth;
  } else {
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(p >= 0.0) || !(p <= 1.0)) {
      return Status::InvalidArgument(
          "fault spec entry '" + entry + "': probability must be in [0,1]");
    }
    rule.probability = p;
  }
  (*rules)[site] = rule;
  return Status::Ok();
}

}  // namespace

std::atomic<bool> FaultInjector::enabled_{false};

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::map<std::string, SiteRule> rules;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    if (!entry.empty()) {
      OIPA_RETURN_IF_ERROR(ParseEntry(entry, &rules));
    }
    pos = comma + 1;
  }
  InjectorState& state = State();
  MutexLock lock(&state.mu);
  state.rules = std::move(rules);
  state.seed = seed;
  state.total_injected = 0;
  enabled_.store(!state.rules.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

Status FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("OIPA_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::Ok();
  uint64_t seed = 1;
  if (const char* seed_env = std::getenv("OIPA_FAULTS_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(seed_env, &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(
          std::string("OIPA_FAULTS_SEED is not an integer: ") + seed_env);
    }
    seed = parsed;
  }
  return Configure(spec, seed);
}

void FaultInjector::Disable() {
  InjectorState& state = State();
  MutexLock lock(&state.mu);
  state.rules.clear();
  state.total_injected = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFailSlow(const char* site) {
  InjectorState& state = State();
  MutexLock lock(&state.mu);
  auto it = state.rules.find(site);
  if (it == state.rules.end()) return false;
  SiteRule& rule = it->second;
  ++rule.calls;
  bool fire;
  if (rule.nth_call > 0) {
    fire = rule.calls == rule.nth_call;
  } else {
    fire = DecisionDraw(state.seed, it->first, rule.calls) < rule.probability;
  }
  if (fire) {
    ++rule.injected;
    ++state.total_injected;
  }
  return fire;
}

int64_t FaultInjector::InjectedCount() {
  InjectorState& state = State();
  MutexLock lock(&state.mu);
  return state.total_injected;
}

std::vector<FaultInjector::SiteStats> FaultInjector::GetSiteStats() {
  InjectorState& state = State();
  MutexLock lock(&state.mu);
  std::vector<SiteStats> out;
  out.reserve(state.rules.size());
  for (const auto& [site, rule] : state.rules) {
    out.push_back({site, rule.calls, rule.injected});
  }
  return out;
}

Status InjectedFault(const char* site) {
  return Status::Internal(std::string("injected fault at ") + site);
}

}  // namespace oipa
