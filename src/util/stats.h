#ifndef OIPA_UTIL_STATS_H_
#define OIPA_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace oipa {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 if fewer than 2 samples.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts internally; empty input returns 0.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation of two equal-length series; returns 0 for degenerate
/// (constant) inputs.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation of two equal-length series.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Continuous power-law exponent MLE (Clauset et al. Eq. 3.1):
/// alpha = 1 + n / sum(ln(x_i / x_min)) over samples >= x_min.
/// Returns 0 if fewer than 2 qualifying samples.
double PowerLawExponentMle(const std::vector<double>& samples, double x_min);

}  // namespace oipa

#endif  // OIPA_UTIL_STATS_H_
