#ifndef OIPA_UTIL_THREAD_ANNOTATIONS_H_
#define OIPA_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These let the locking discipline live in the type system instead of
/// in comments: fields say which mutex guards them (OIPA_GUARDED_BY),
/// methods say which locks they need (OIPA_REQUIRES), acquire
/// (OIPA_ACQUIRE) or must not hold (OIPA_EXCLUDES), and a clang build
/// with -Wthread-safety (-Werror=thread-safety in CI) rejects any
/// access that violates the declared contract — at compile time, on
/// every path, unlike a sampled TSan run.
///
/// All macros expand to nothing on compilers without the capability
/// attributes (GCC), so annotated code stays portable. Annotate with
/// the oipa::Mutex / oipa::MutexLock / oipa::CondVar wrappers from
/// util/threading.h — raw std::mutex cannot carry these attributes,
/// and scripts/lint_invariants.py rejects it outside src/util/.
///
/// Annotation cheat-sheet for new code:
///
///   Mutex mu_;
///   int counter_ OIPA_GUARDED_BY(mu_);         // field needs mu_ held
///   void Bump() OIPA_EXCLUDES(mu_);            // takes mu_ itself
///   void BumpLocked() OIPA_REQUIRES(mu_);      // caller holds mu_
///
/// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
/// full semantics.

#if defined(__clang__) && (!defined(SWIG))
#define OIPA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OIPA_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Declares a class to be a capability ("mutex") the analysis tracks.
#define OIPA_CAPABILITY(x) OIPA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor (MutexLock).
#define OIPA_SCOPED_CAPABILITY OIPA_THREAD_ANNOTATION(scoped_lockable)

/// The field or variable is protected by the given capability: reads
/// need the capability held (shared or exclusive), writes need it
/// exclusive.
#define OIPA_GUARDED_BY(x) OIPA_THREAD_ANNOTATION(guarded_by(x))

/// Like OIPA_GUARDED_BY for the data a pointer/smart-pointer points to;
/// the pointer itself is unguarded.
#define OIPA_PT_GUARDED_BY(x) OIPA_THREAD_ANNOTATION(pt_guarded_by(x))

/// The calling thread must hold the given capabilities exclusively —
/// the function reads/writes guarded data without locking itself.
#define OIPA_REQUIRES(...) \
  OIPA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The calling thread must hold the given capabilities at least shared.
#define OIPA_REQUIRES_SHARED(...) \
  OIPA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return
/// (Mutex::Lock, and re-lock members of scoped lockers).
#define OIPA_ACQUIRE(...) \
  OIPA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define OIPA_ACQUIRE_SHARED(...) \
  OIPA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (Mutex::Unlock, destructors of
/// scoped lockers).
#define OIPA_RELEASE(...) \
  OIPA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define OIPA_RELEASE_SHARED(...) \
  OIPA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire the capability and reports success
/// with the given boolean value (Mutex::TryLock).
#define OIPA_TRY_ACQUIRE(...) \
  OIPA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The calling thread must NOT hold the capability — the function
/// acquires it itself and would self-deadlock otherwise.
#define OIPA_EXCLUDES(...) OIPA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (Mutex::AssertHeld):
/// tells the analysis to treat it as held from here on.
#define OIPA_ASSERT_CAPABILITY(x) \
  OIPA_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability (accessors
/// handing out a member mutex).
#define OIPA_RETURN_CAPABILITY(x) OIPA_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declaration: this capability must be acquired after /
/// before the listed ones (deadlock detection).
#define OIPA_ACQUIRED_AFTER(...) \
  OIPA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define OIPA_ACQUIRED_BEFORE(...) \
  OIPA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Escape hatch: disables the analysis inside one function. Every use
/// needs a comment explaining why the contract cannot be expressed.
#define OIPA_NO_THREAD_SAFETY_ANALYSIS \
  OIPA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // OIPA_UTIL_THREAD_ANNOTATIONS_H_
