#ifndef OIPA_UTIL_FAULT_INJECTOR_H_
#define OIPA_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace oipa {

/// Deterministic fault injection for robustness testing.
///
/// Code under test names its failure points with string-literal *sites*
/// ("serve.read", "store.grow", "io.save", ...) and asks ShouldFail(site)
/// before the fallible operation. A test or operator arms sites with
/// either a per-call probability or an exact call ordinal:
///
///     FaultInjector::Configure("serve.read=0.01,store.grow=@3", /*seed=*/7)
///
/// arms "serve.read" to fail each call with probability 1% and
/// "store.grow" to fail exactly on its 3rd call. Probability decisions
/// are a pure hash of (seed, site, per-site call index), so a run with a
/// fixed seed fires the same faults at the same per-site call ordinals
/// regardless of thread interleaving across sites.
///
/// The injector is process-global and off by default; when disabled,
/// ShouldFail is a single relaxed atomic load (zero-cost in production).
/// `oipa_serve` and `oipa_cli serve` arm it from the environment
/// (OIPA_FAULTS holds the spec, OIPA_FAULTS_SEED the seed) so the chaos
/// smoke harness can inject faults into an unmodified binary.
class FaultInjector {
 public:
  /// True when `site` should fail this call. Sites not named in the
  /// active spec never fail. Thread-safe.
  static bool ShouldFail(const char* site) {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    return ShouldFailSlow(site);
  }

  /// Arms the injector from a comma-separated spec of `site=p` (failure
  /// probability in [0,1]) and `site=@N` (fail exactly on the N-th call,
  /// 1-based) entries. Replaces any previous configuration and resets
  /// all call counters. An empty spec disables injection. Returns
  /// InvalidArgument (leaving the previous configuration armed) when the
  /// spec does not parse.
  static Status Configure(const std::string& spec, uint64_t seed);

  /// Arms from $OIPA_FAULTS / $OIPA_FAULTS_SEED (seed defaults to 1).
  /// A no-op returning OK when OIPA_FAULTS is unset or empty.
  static Status ConfigureFromEnv();

  /// Disarms every site and resets counters. ShouldFail returns to the
  /// single-atomic-load fast path.
  static void Disable();

  /// Total faults fired since the last Configure/Disable.
  static int64_t InjectedCount();

  /// Per-site telemetry since the last Configure/Disable.
  struct SiteStats {
    std::string site;
    int64_t calls = 0;    ///< ShouldFail invocations for the site.
    int64_t injected = 0; ///< How many of them returned true.
  };
  static std::vector<SiteStats> GetSiteStats();

 private:
  static bool ShouldFailSlow(const char* site);

  static std::atomic<bool> enabled_;
};

/// The canonical Status for a fault fired at `site`: every injection
/// point reports Internal("injected fault at <site>") so tests and the
/// chaos harness can recognize injected failures by message.
Status InjectedFault(const char* site);

}  // namespace oipa

#endif  // OIPA_UTIL_FAULT_INJECTOR_H_
