#ifndef OIPA_UTIL_FLAGS_H_
#define OIPA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace oipa {

/// Minimal --key=value command-line parser for examples and benches.
///
///   FlagParser flags(argc, argv);
///   int k = flags.GetInt("k", 50);
///   double eps = flags.GetDouble("epsilon", 0.5);
///   if (flags.Has("help")) { ... }
///
/// Accepts "--key=value", "--key value" and bare "--key" (boolean true).
/// Unrecognized positional arguments are collected in positional().
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Parses a comma-separated list of integers, e.g. "--k=10,20,50".
  std::vector<int64_t> GetIntList(
      const std::string& key, const std::vector<int64_t>& default_value) const;

  /// Parses a comma-separated list of doubles.
  std::vector<double> GetDoubleList(
      const std::string& key, const std::vector<double>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace oipa

#endif  // OIPA_UTIL_FLAGS_H_
