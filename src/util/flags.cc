#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace oipa {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& key,
                           int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& key,
                             double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int64_t> FlagParser::GetIntList(
    const std::string& key, const std::vector<int64_t>& default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> FlagParser::GetDoubleList(
    const std::string& key, const std::vector<double>& default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

}  // namespace oipa
