#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace oipa {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  OIPA_CHECK_GE(q, 0.0);
  OIPA_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  OIPA_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[idx[t]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

double PowerLawExponentMle(const std::vector<double>& samples, double x_min) {
  OIPA_CHECK_GT(x_min, 0.0);
  double log_sum = 0.0;
  int64_t n = 0;
  for (double x : samples) {
    if (x >= x_min) {
      log_sum += std::log(x / x_min);
      ++n;
    }
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace oipa
