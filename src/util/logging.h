#ifndef OIPA_UTIL_LOGGING_H_
#define OIPA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace oipa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is actually emitted; default kInfo. Settable by tests
/// and benches (e.g. to silence progress output).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Swallows a fully-streamed ostream so CHECK can be used in a ternary
/// expression of type void. `&` binds looser than `<<`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace oipa

/// Structured logging: OIPA_LOG(INFO) << "generated " << n << " sets";
#define OIPA_LOG(severity) OIPA_LOG_##severity
#define OIPA_LOG_DEBUG                                                      \
  ::oipa::internal::LogMessage(::oipa::LogLevel::kDebug, __FILE__, __LINE__) \
      .stream()
#define OIPA_LOG_INFO                                                      \
  ::oipa::internal::LogMessage(::oipa::LogLevel::kInfo, __FILE__, __LINE__) \
      .stream()
#define OIPA_LOG_WARNING                                      \
  ::oipa::internal::LogMessage(::oipa::LogLevel::kWarning, __FILE__, \
                               __LINE__)                      \
      .stream()
#define OIPA_LOG_ERROR                                                      \
  ::oipa::internal::LogMessage(::oipa::LogLevel::kError, __FILE__, __LINE__) \
      .stream()

/// Invariant check, active in all build types. On failure prints the
/// condition plus any streamed context, then aborts.
#define OIPA_CHECK(condition)                                  \
  (condition) ? (void)0                                        \
              : ::oipa::internal::Voidify() &                  \
                    ::oipa::internal::FatalMessage(            \
                        __FILE__, __LINE__, #condition)        \
                        .stream()

// NOLINTNEXTLINE(bugprone-macro-parentheses): `op` is an operator
// token, not an expression — it cannot be parenthesized.
#define OIPA_CHECK_OP(op, a, b) OIPA_CHECK((a)op(b))
#define OIPA_CHECK_EQ(a, b) OIPA_CHECK_OP(==, a, b)
#define OIPA_CHECK_NE(a, b) OIPA_CHECK_OP(!=, a, b)
#define OIPA_CHECK_LT(a, b) OIPA_CHECK_OP(<, a, b)
#define OIPA_CHECK_LE(a, b) OIPA_CHECK_OP(<=, a, b)
#define OIPA_CHECK_GT(a, b) OIPA_CHECK_OP(>, a, b)
#define OIPA_CHECK_GE(a, b) OIPA_CHECK_OP(>=, a, b)

/// Checks that a Status-returning expression is OK.
#define OIPA_CHECK_OK(expr)                                          \
  do {                                                               \
    ::oipa::Status oipa_check_status_ = (expr);                      \
    OIPA_CHECK(oipa_check_status_.ok()) << oipa_check_status_.ToString(); \
  } while (0)

#endif  // OIPA_UTIL_LOGGING_H_
