#ifndef OIPA_UTIL_TABLE_H_
#define OIPA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace oipa {

/// Aligned-column text table used by the paper-figure bench harnesses.
///
///   TextTable t({"k", "IM", "TIM", "BAB", "BAB-P"});
///   t.AddRow({"10", "3.1", "5.2", "8.8", "8.7"});
///   t.Print(std::cout);
///
/// Also emits CSV so bench output can be re-plotted directly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with padded columns and a header separator to stdout.
  void Print() const;

  /// Renders as comma-separated values (no padding).
  std::string ToCsv() const;

  /// Formats a double with `precision` significant decimals.
  static std::string Num(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oipa

#endif  // OIPA_UTIL_TABLE_H_
