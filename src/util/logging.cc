#include "util/logging.h"

#include <atomic>

#include "util/status.h"

namespace oipa {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_log_level.load(std::memory_order_relaxed)) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace oipa
