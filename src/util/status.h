#ifndef OIPA_UTIL_STATUS_H_
#define OIPA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace oipa {

/// Error categories used throughout the library. Kept intentionally small;
/// new codes should only be added when callers need to branch on them.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
/// I/O and parsing paths return Status instead of throwing; algorithmic
/// invariants use OIPA_CHECK (logging.h) instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
/// Accessing the value of a non-OK StatusOr aborts (via CHECK semantics).
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors absl
  StatusOr(Status status)
      : status_(std::move(status)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  StatusOr(T value)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieStatus(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieStatus(status_);
}

}  // namespace oipa

/// Propagates a non-OK status to the caller: `OIPA_RETURN_IF_ERROR(DoIo());`
#define OIPA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::oipa::Status oipa_status_tmp_ = (expr);     \
    if (!oipa_status_tmp_.ok()) return oipa_status_tmp_; \
  } while (0)

#endif  // OIPA_UTIL_STATUS_H_
