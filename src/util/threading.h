#ifndef OIPA_UTIL_THREADING_H_
#define OIPA_UTIL_THREADING_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace oipa {

/// Number of worker threads used by ParallelFor and the parallel
/// branch-and-bound engine. Resolution order:
///   1. SetNumThreads(n > 0)      — programmatic override,
///   2. OIPA_THREADS=n (n > 0)    — environment override,
///   3. hardware concurrency clamped to [1, 16].
/// Explicit overrides (1 and 2) are honored verbatim — large machines
/// can use every core and tests may oversubscribe — bounded only by a
/// 1024-thread OS-resource ceiling, not the auto path's 16.
int GetNumThreads();
void SetNumThreads(int n);

/// Runs fn(shard, begin, end) on `shards` contiguous slices of [0, total),
/// one slice per worker thread. Blocks until all shards finish. `fn` must be
/// safe to call concurrently on disjoint ranges.
///
/// With GetNumThreads() == 1 (or total small) the call is executed inline,
/// which keeps single-threaded runs fully deterministic and debuggable.
void ParallelFor(int64_t total,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn);

}  // namespace oipa

#endif  // OIPA_UTIL_THREADING_H_
