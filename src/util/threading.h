#ifndef OIPA_UTIL_THREADING_H_
#define OIPA_UTIL_THREADING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace oipa {

class CondVar;

/// Annotated std::mutex wrapper. This is the project's only blessed
/// mutual-exclusion primitive outside src/util/ (enforced by
/// scripts/lint_invariants.py): unlike a raw std::mutex it carries the
/// Clang Thread Safety Analysis capability attribute, so fields can be
/// declared OIPA_GUARDED_BY(mu_) and the locking discipline is checked
/// at compile time on clang builds.
///
/// The wrapper also tracks the owning thread (two relaxed atomic stores
/// per lock/unlock — negligible next to the futex transition) so that
/// AssertHeld() works in every build type, not just debug: lock-contract
/// violations abort in the Release binaries CI actually runs.
class OIPA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OIPA_ACQUIRE();
  void Unlock() OIPA_RELEASE();
  /// Returns true (holding the lock) iff the mutex was free.
  bool TryLock() OIPA_TRY_ACQUIRE(true);

  /// Aborts unless the calling thread holds this mutex. Also tells the
  /// static analysis the capability is held from here on, so it can
  /// gate entry points whose contract cannot be expressed statically.
  void AssertHeld() const OIPA_ASSERT_CAPABILITY(this);

 private:
  friend class CondVar;

  std::mutex mu_;
  /// Owner for AssertHeld: written only by the holder right after
  /// acquiring / right before releasing, so relaxed order suffices —
  /// a racing reader can only be a *different* thread, and any value it
  /// observes (stale or not) correctly compares unequal to its own id.
  std::atomic<std::thread::id> owner_{};
};

/// RAII lock for the common whole-scope critical section.
class OIPA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) OIPA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() OIPA_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII lock that can be dropped and re-taken mid-scope — for loops
/// that hold a lock around shared state but release it across an
/// expensive computation (the parallel-BAB bound evaluation). The
/// destructor unlocks only if currently held; the analysis tracks the
/// held/released state through Unlock()/Lock() pairs.
class OIPA_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) OIPA_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;
  ~ReleasableMutexLock() OIPA_RELEASE() {
    if (held_) mu_->Unlock();
  }

  void Unlock() OIPA_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() OIPA_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// Condition variable paired with oipa::Mutex. Wait() declares via
/// OIPA_REQUIRES that the caller holds the mutex, which is exactly the
/// std::condition_variable precondition TSan can only check at runtime.
/// There is deliberately no predicate overload: writing the
///   while (!condition) cv.Wait(&mu);
/// loop at the call site keeps the guarded reads in the predicate
/// visible to the static analysis (a lambda body would be analyzed
/// without the lock context and produce false positives).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks; re-acquires *mu before
  /// returning. Subject to spurious wakeups — always wait in a loop.
  void Wait(Mutex* mu) OIPA_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

/// Number of worker threads used by ParallelFor and the parallel
/// branch-and-bound engine. Resolution order:
///   1. SetNumThreads(n > 0)      — programmatic override,
///   2. OIPA_THREADS=n (n > 0)    — environment override,
///   3. hardware concurrency clamped to [1, 16].
/// Explicit overrides (1 and 2) are honored verbatim — large machines
/// can use every core and tests may oversubscribe — bounded only by a
/// 1024-thread OS-resource ceiling, not the auto path's 16.
int GetNumThreads();
void SetNumThreads(int n);

/// Resolves an explicit per-call thread request: n > 0 is honored
/// verbatim (clamped only by the 1024-thread OS-resource ceiling);
/// n <= 0 defers to GetNumThreads(). The shared convention for every
/// API that takes a `num_threads`/`sampling_threads` knob with
/// "0 = auto" semantics.
int ResolveThreadCount(int num_threads);

/// Runs fn(shard, begin, end) on `shards` contiguous slices of [0, total),
/// one slice per worker thread. Blocks until all shards finish. `fn` must be
/// safe to call concurrently on disjoint ranges.
///
/// With GetNumThreads() == 1 (or total small) the call is executed inline,
/// which keeps single-threaded runs fully deterministic and debuggable.
void ParallelFor(int64_t total,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn);

/// ParallelFor with an explicit worker count: `num_threads` follows the
/// ResolveThreadCount convention (<= 0 defers to GetNumThreads()), so
/// callers can plumb a per-call override — e.g. a sampling_threads
/// knob — without touching the process-wide setting.
void ParallelFor(int64_t total, int num_threads,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn);

}  // namespace oipa

#endif  // OIPA_UTIL_THREADING_H_
