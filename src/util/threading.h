#ifndef OIPA_UTIL_THREADING_H_
#define OIPA_UTIL_THREADING_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace oipa {

/// Number of worker threads used by ParallelFor: hardware concurrency,
/// clamped to [1, 16]. Overridable for tests/benches via SetNumThreads.
int GetNumThreads();
void SetNumThreads(int n);

/// Runs fn(shard, begin, end) on `shards` contiguous slices of [0, total),
/// one slice per worker thread. Blocks until all shards finish. `fn` must be
/// safe to call concurrently on disjoint ranges.
///
/// With GetNumThreads() == 1 (or total small) the call is executed inline,
/// which keeps single-threaded runs fully deterministic and debuggable.
void ParallelFor(int64_t total,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn);

}  // namespace oipa

#endif  // OIPA_UTIL_THREADING_H_
