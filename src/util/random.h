#ifndef OIPA_UTIL_RANDOM_H_
#define OIPA_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oipa {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state and to derive decorrelated per-thread seeds.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG: fast, high quality, and deterministic across
/// platforms. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single value.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64Next(&sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply-shift; the tiny modulo bias (< 2^-64 * bound) is
    // irrelevant for simulation workloads.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (no state caching; simple over fast).
  double NextGaussian();

  /// Exponential with rate 1.
  double NextExponential();

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double NextGamma(double shape);

  /// Samples a Dirichlet(alpha,...,alpha) vector of dimension `dim`.
  std::vector<double> NextDirichlet(int dim, double alpha);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives a decorrelated child seed (for per-thread / per-task RNGs).
  uint64_t Fork() { return Next() ^ 0x2545f4914f6cdd1dULL; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Weighted index sampling: returns i with probability weights[i] / sum.
/// Requires non-negative weights with positive sum.
int SampleDiscrete(const std::vector<double>& weights, Rng* rng);

}  // namespace oipa

#endif  // OIPA_UTIL_RANDOM_H_
