#include "util/threading.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace oipa {

namespace {

std::atomic<int> g_num_threads{0};  // 0 = auto

/// Hard ceiling on explicit thread overrides — an OS-resource guard,
/// far above any sensible worker count.
constexpr long kMaxExplicitThreads = 1024;

/// OIPA_THREADS, parsed once; 0 when unset, empty, or malformed.
/// Oversized values saturate at the ceiling (never silently fall back
/// to auto-detection, which would hand out FEWER threads).
int EnvNumThreads() {
  static const int value = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read exactly once, under
    // the C++11 magic-static guard, before any worker thread exists.
    const char* s = std::getenv("OIPA_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || parsed < 0) return 0;
    return static_cast<int>(std::min(parsed, kMaxExplicitThreads));
  }();
  return value;
}

}  // namespace

void Mutex::Lock() {
  mu_.lock();
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void Mutex::Unlock() {
  owner_.store(std::thread::id(), std::memory_order_relaxed);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return true;
}

void Mutex::AssertHeld() const {
  OIPA_CHECK(owner_.load(std::memory_order_relaxed) ==
             std::this_thread::get_id())
      << "Mutex::AssertHeld failed: calling thread does not hold the mutex";
}

void CondVar::Wait(Mutex* mu) {
  // The wrapped condition_variable atomically releases the underlying
  // std::mutex, so clear the owner tag first (we are about to stop
  // holding it) and restore it after the wakeup re-acquires. Adopting
  // and then releasing the unique_lock keeps ownership with *mu.
  mu->owner_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mu->owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

int GetNumThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n <= 0) n = EnvNumThreads();
  if (n > 0) {
    // Explicit override: honored verbatim (oversubscription is legal and
    // lets tests force multi-shard paths on small machines), with only a
    // generous OS-resource safety ceiling instead of the auto path's 16.
    return static_cast<int>(
        std::min(static_cast<long>(n), kMaxExplicitThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw == 0 ? 1 : hw), 1, 16);
}

void SetNumThreads(int n) {
  OIPA_CHECK_GE(n, 0);
  g_num_threads.store(n, std::memory_order_relaxed);
}

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) {
    return static_cast<int>(
        std::min(static_cast<long>(num_threads), kMaxExplicitThreads));
  }
  return GetNumThreads();
}

void ParallelFor(int64_t total,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn) {
  ParallelFor(total, 0, fn);
}

void ParallelFor(int64_t total, int num_threads,
                 const std::function<void(int shard, int64_t begin,
                                          int64_t end)>& fn) {
  if (total <= 0) return;
  const int threads = static_cast<int>(
      std::min<int64_t>(ResolveThreadCount(num_threads), total));
  if (threads <= 1) {
    fn(0, 0, total);
    return;
  }
  const int64_t chunk = (total + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    const int64_t begin = static_cast<int64_t>(t) * chunk;
    const int64_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace oipa
