#ifndef OIPA_UTIL_MATH_H_
#define OIPA_UTIL_MATH_H_

#include <cmath>
#include <cstdint>

namespace oipa {

/// Numerically stable logistic sigmoid 1 / (1 + exp(-x)).
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Derivative of the sigmoid at x: s(x) * (1 - s(x)).
inline double SigmoidDerivative(double x) {
  const double s = Sigmoid(x);
  return s * (1.0 - s);
}

/// Inverse sigmoid (logit); p must be in (0, 1).
inline double Logit(double p) { return std::log(p / (1.0 - p)); }

/// log(n!) via lgamma.
inline double LogFactorial(int64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

/// log of the binomial coefficient C(n, k); 0 <= k <= n.
inline double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -1e300;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

/// True if |a - b| <= tol * max(1, |a|, |b|).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  const double scale =
      std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace oipa

#endif  // OIPA_UTIL_MATH_H_
