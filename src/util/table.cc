#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "util/logging.h"

namespace oipa {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  OIPA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::cout << "  " << row[c]
                << std::string(widths[c] - row[c].size(), ' ');
    }
    std::cout << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string TextTable::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace oipa
