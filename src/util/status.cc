#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace oipa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieStatus(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed StatusOr with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace oipa
