#ifndef OIPA_UTIL_TIMER_H_
#define OIPA_UTIL_TIMER_H_

#include <chrono>

namespace oipa {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oipa

#endif  // OIPA_UTIL_TIMER_H_
