#!/usr/bin/env python3
"""Fail CI when single-thread solver throughput regresses.

Compares the `single_thread.tau_evals_per_sec` figures of a fresh
BENCH_parallel.json against the committed baseline and exits non-zero
when any method's throughput falls more than --tolerance (default 20%)
below its baseline. Throughput is tau evaluations per second — the
bound evaluator's unit of work — which is far more stable across runs
than wall seconds of the whole sweep.

Usage:
  scripts/check_perf_regression.py BENCH_parallel.json \
      bench/BASELINE_parallel.json [--tolerance 0.2]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="fresh BENCH_parallel.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop vs. baseline (default 0.2 = 20%%)",
    )
    args = parser.parse_args()

    with open(args.bench) as f:
        bench = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    for method, expected in baseline.get("methods", {}).items():
        want = expected.get("tau_evals_per_sec")
        if not want:
            continue
        entry = bench.get("methods", {}).get(method)
        if entry is None:
            failures.append(f"{method}: missing from bench output")
            continue
        got = entry.get("single_thread", {}).get("tau_evals_per_sec", 0.0)
        if not got:
            failures.append(
                f"{method}: no single-thread measurement in bench output "
                "(run bench_parallel with 1 in its --threads list)"
            )
            continue
        floor = want * (1.0 - args.tolerance)
        verdict = "OK" if got >= floor else "REGRESSION"
        print(
            f"{method}: {got:,.0f} tau_evals/s "
            f"(baseline {want:,.0f}, floor {floor:,.0f}) {verdict}"
        )
        if got < floor:
            failures.append(
                f"{method}: {got:,.0f} < floor {floor:,.0f} tau_evals/s"
            )

    if failures:
        print("single-thread throughput regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("single-thread throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
