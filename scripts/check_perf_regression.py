#!/usr/bin/env python3
"""Fail CI when benchmark throughput regresses below a committed floor.

Two baseline formats are supported:

1. `methods` (bench_parallel): compares each method's
   `single_thread.tau_evals_per_sec` in the fresh bench JSON against the
   baseline's `tau_evals_per_sec`. Throughput is tau evaluations per
   second — the bound evaluator's unit of work — which is far more
   stable across runs than wall seconds of the whole sweep. A method
   baseline may also carry a `scaling_efficiency` map from thread count
   (as a string key) to the minimum speedup/threads ratio; each entry is
   compared against `methods.<m>.efficiency.<count>` in the bench JSON,
   gating the work-stealing engine's parallel scaling, not just its
   scalar speed. Keep those floors conservative — CI runners have few
   cores and efficiency above the core count is mostly noise.

2. `metrics` (bench_sampling and future benches): a flat map from a
   dotted path into the bench JSON (e.g. "generate.samples_per_sec") to
   its floor value. Any numeric leaf works, so one script gates every
   bench trajectory.

Exit is non-zero when any figure falls more than --tolerance (default
20%) below its baseline.

Usage:
  scripts/check_perf_regression.py BENCH_parallel.json \
      bench/BASELINE_parallel.json [--tolerance 0.2]
  scripts/check_perf_regression.py BENCH_sampling.json \
      bench/BASELINE_sampling.json
"""

import argparse
import json
import sys


def lookup(tree, dotted_path):
    """Resolves "a.b.c" inside nested dicts; None when absent/non-numeric."""
    node = tree
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def fmt(value):
    """Readable at both scales: 9,540,275 tau_evals/s and 0.052 efficiency."""
    return f"{value:,.0f}" if value >= 1000 else f"{value:.3f}"


def check(name, got, want, tolerance, failures):
    if got is None:
        failures.append(f"{name}: missing from bench output")
        return
    if not got:
        failures.append(f"{name}: measured 0 (broken counter or timer?)")
        return
    floor = want * (1.0 - tolerance)
    verdict = "OK" if got >= floor else "REGRESSION"
    print(
        f"{name}: {fmt(got)} "
        f"(baseline {fmt(want)}, floor {fmt(floor)}) {verdict}"
    )
    if got < floor:
        failures.append(f"{name}: {fmt(got)} < floor {fmt(floor)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="fresh bench JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop vs. baseline (default 0.2 = 20%%)",
    )
    args = parser.parse_args()

    with open(args.bench) as f:
        bench = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    for method, expected in baseline.get("methods", {}).items():
        want = expected.get("tau_evals_per_sec")
        if not isinstance(want, (int, float)) or not want:
            failures.append(
                f"{method}: non-numeric baseline tau_evals_per_sec {want!r}"
            )
            continue
        entry = bench.get("methods", {}).get(method)
        if entry is None:
            failures.append(f"{method}: missing from bench output")
            continue
        got = entry.get("single_thread", {}).get("tau_evals_per_sec", 0.0)
        if not got:
            failures.append(
                f"{method}: no single-thread measurement in bench output "
                "(run bench_parallel with 1 in its --threads list)"
            )
            continue
        check(f"{method} tau_evals/s", got, want, args.tolerance, failures)

        for count, floor in expected.get("scaling_efficiency", {}).items():
            if not isinstance(floor, (int, float)) or floor <= 0:
                failures.append(
                    f"{method} efficiency@{count}: non-numeric baseline "
                    f"{floor!r}"
                )
                continue
            measured = entry.get("efficiency", {}).get(count)
            check(
                f"{method} efficiency@{count} threads",
                measured,
                floor,
                args.tolerance,
                failures,
            )

    for path, want in baseline.get("metrics", {}).items():
        if not isinstance(want, (int, float)) or not want:
            failures.append(f"{path}: non-numeric baseline value {want!r}")
            continue
        check(path, lookup(bench, path), want, args.tolerance, failures)

    if not baseline.get("methods") and not baseline.get("metrics"):
        print("baseline declares no methods or metrics", file=sys.stderr)
        return 1

    if failures:
        print("benchmark regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("benchmark throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
