#!/usr/bin/env python3
"""End-to-end smoke test for the oipa_serve daemon.

Starts the daemon, runs the scripted request mix from the acceptance
checklist, and asserts on the response JSON:

  (a) a repeated cached-context request is a context-cache hit that
      generates zero new MRR samples and returns the identical answer,
  (b) two compatible queued requests (same context, different budgets)
      are answered from one batched SolveBatch sweep, bit-identical to
      solving each alone,
  (c) an expired deadline_ms yields cancelled=true with partial
      telemetry instead of an error or a hang,
  (d) with the store byte budget below two stores' memory_bytes, a
      later context's acquire evicts the LRU unpinned store (watched
      through the store_registry telemetry block),
  plus: malformed input gets a structured error response and the
      connection stays usable.

Usage: python3 scripts/serve_smoke.py [--binary build/oipa_serve]
Exit status: 0 all scenarios pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    tag = "ok" if condition else "FAIL"
    print(f"  [{tag}] {message}")
    if not condition:
        FAILURES.append(message)


def request_lines(port: int, lines: list[str],
                  delay_between: float = 0.0) -> list[dict]:
    """Sends newline-framed requests on one connection, reads as many
    responses back (responses arrive in request order per connection
    for solved requests; parse errors may interleave)."""
    with socket.create_connection(("127.0.0.1", port), timeout=120) as conn:
        for line in lines:
            conn.sendall(line.encode() + b"\n")
            if delay_between:
                time.sleep(delay_between)
        buffer = b""
        responses: list[dict] = []
        while len(responses) < len(lines):
            chunk = conn.recv(1 << 16)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                responses.append(json.loads(raw))
    if len(responses) != len(lines):
        raise RuntimeError(
            f"expected {len(lines)} responses, got {len(responses)}")
    return responses


def request(port: int, payload: dict) -> dict:
    return request_lines(port, [json.dumps(payload)])[0]


def plan_request(request_id: str, dataset_seed: int, budgets: list[int],
                 theta: int = 20_000, n: int = 250, **plan_extra) -> dict:
    return {
        "id": request_id,
        "dataset": {"n": n, "seed": dataset_seed},
        "sampling": {"theta": theta},
        "plan": {"method": "bab", "budgets": budgets, **plan_extra},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "build", "oipa_serve"))
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.binary, "--port=0", "--workers=1", "--max_contexts=2",
         "--store_budget_mb=2"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        banner = daemon.stdout.readline()
        match = re.search(r"listening on [^:]+:(\d+)", banner)
        if not match:
            print(f"FAIL: no listening banner (got {banner!r})")
            return 1
        port = int(match.group(1))
        print(f"daemon up on port {port}")

        print("scenario (a): repeated request hits the context cache")
        first = request(port, plan_request("a1", 1, [3]))
        check(first.get("ok") is True, "first request solves")
        check(first["serve"]["cache_hit"] is False,
              "first request misses the cache")
        check(first["serve"]["samples_generated"] > 0,
              "first request samples")
        again = request(port, plan_request("a2", 1, [3]))
        check(again["serve"]["cache_hit"] is True,
              "repeat request hits the cache")
        check(again["serve"]["samples_generated"] == 0,
              "repeat request generates zero new samples")
        check(again["results"] == first["results"]
              or [r["utility"] for r in again["results"]] ==
              [r["utility"] for r in first["results"]],
              "repeat answer is identical")

        print("scenario (b): compatible queued requests share one sweep")
        # Occupy the single worker with a heavy unrelated context so the
        # two compatible requests queue up behind it and merge. Timing
        # dependent, so retry with fresh blocker contexts if the worker
        # freed up before both lines were enqueued.
        merged: list[dict] = []
        for attempt, blocker_seed in enumerate((99, 98, 97), start=1):
            blocker_responses: list[dict] = []
            blocker = threading.Thread(
                target=lambda seed=blocker_seed:
                blocker_responses.extend(request_lines(
                    port,
                    [json.dumps(plan_request(
                        "blocker", seed, [8], theta=500_000, n=20_000))])))
            blocker.start()
            time.sleep(0.15)  # the single worker is busy with the blocker
            merged = request_lines(port, [
                json.dumps(plan_request("b1", 1, [4])),
                json.dumps(plan_request("b2", 1, [6])),
            ])
            blocker.join()
            check(blocker_responses[0].get("ok") is True,
                  f"blocker {attempt} solves")
            if all(r["serve"]["batch_size"] == 2 for r in merged):
                break
        check(all(r["serve"]["batch_size"] == 2 for r in merged),
              "both queued requests answered from one batched sweep")
        serial_4 = request(port, plan_request("s1", 1, [4]))
        serial_6 = request(port, plan_request("s2", 1, [6]))
        for label, batched, serial in (("k=4", merged[0], serial_4),
                                       ("k=6", merged[1], serial_6)):
            b, s = batched["results"][0], serial["results"][0]
            check(b["seed_sets"] == s["seed_sets"]
                  and b["utility"] == s["utility"],
                  f"batched {label} bit-identical to the serial solve")

        print("scenario (c): an expired deadline cancels with telemetry")
        hurried = request(port, plan_request(
            "c1", 1, [8], theta=60_000, deadline_ms=1, gap=0.0))
        check(hurried.get("ok") is True,
              "deadline miss is a response, not an error")
        check(hurried.get("cancelled") is True, "request is cancelled")
        row = hurried["results"][0]
        check(row["deadline_exceeded"] is True and row["converged"] is False,
              "partial telemetry marks the deadline")

        print("scenario (d): store budget evicts the LRU unpinned store")
        registry_before = hurried["serve"]["store_registry"]
        store_bytes = hurried["serve"]["store"]["memory_bytes"]
        check(2 * store_bytes > registry_before["budget_bytes"],
              "precondition: budget is below two stores' bytes "
              f"({store_bytes} x2 vs {registry_before['budget_bytes']})")
        third = request(port, plan_request("d1", 3, [3]))
        registry_after = third["serve"]["store_registry"]
        check(registry_after["evictions"] > registry_before["evictions"],
              "third context's acquire evicts a store "
              f"({registry_before['evictions']} -> "
              f"{registry_after['evictions']})")
        check(registry_after["live_stores"] <= 2,
              "evicted store left the registry")

        print("scenario (extra): malformed input gets structured errors")
        mixed = request_lines(port, [
            "this is not json",
            json.dumps(plan_request("alive", 1, [2])),
        ])
        errors = [r for r in mixed if r.get("ok") is False]
        solved = [r for r in mixed if r.get("ok") is True]
        check(len(errors) == 1
              and errors[0]["error"]["code"] == "InvalidArgument",
              "malformed line answered with InvalidArgument")
        check(len(solved) == 1 and solved[0]["id"] == "alive",
              "connection survives and still solves")

        print("scenario (extra): SIGTERM drains and exits cleanly")
        daemon.send_signal(signal.SIGTERM)
        check(daemon.wait(timeout=60) == 0, "daemon exits 0 on SIGTERM")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if FAILURES:
        print(f"serve_smoke: {len(FAILURES)} failure(s)")
        return 1
    print("serve_smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
