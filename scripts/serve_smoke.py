#!/usr/bin/env python3
"""End-to-end smoke test for the oipa_serve daemon.

Starts the daemon, runs the scripted request mix from the acceptance
checklist, and asserts on the response JSON:

  (a) a repeated cached-context request is a context-cache hit that
      generates zero new MRR samples and returns the identical answer,
  (b) two compatible queued requests (same context, different budgets)
      are answered from one batched SolveBatch sweep, bit-identical to
      solving each alone,
  (c) an expired deadline_ms yields cancelled=true with partial
      telemetry instead of an error or a hang,
  (d) with the store byte budget below two stores' memory_bytes, a
      later context's acquire evicts the LRU unpinned store (watched
      through the store_registry telemetry block),
  plus: malformed input gets a structured error response and the
      connection stays usable.

With --chaos the script instead runs the robustness acceptance drill:
a 200-request mix is answered twice — once fault-free, once with
deterministic faults armed on socket I/O, store growth, and snapshot
saves ($OIPA_FAULTS) — and every request of the faulted run must
eventually return the bit-identical answer through client-side
retries, with zero daemon aborts; an overload burst against a depth-1
queue must yield structured resource_exhausted rejections carrying
retry_after_ms; and a kill -9 followed by a restart on the same
--checkpoint_dir must re-serve a cached-context request with
samples_generated == 0.

Usage: python3 scripts/serve_smoke.py [--binary build/oipa_serve]
                                      [--chaos]
Exit status: 0 all scenarios pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    tag = "ok" if condition else "FAIL"
    print(f"  [{tag}] {message}")
    if not condition:
        FAILURES.append(message)


def request_lines(port: int, lines: list[str],
                  delay_between: float = 0.0) -> list[dict]:
    """Sends newline-framed requests on one connection, reads as many
    responses back (responses arrive in request order per connection
    for solved requests; parse errors may interleave)."""
    with socket.create_connection(("127.0.0.1", port), timeout=120) as conn:
        for line in lines:
            conn.sendall(line.encode() + b"\n")
            if delay_between:
                time.sleep(delay_between)
        buffer = b""
        responses: list[dict] = []
        while len(responses) < len(lines):
            chunk = conn.recv(1 << 16)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                responses.append(json.loads(raw))
    if len(responses) != len(lines):
        raise RuntimeError(
            f"expected {len(lines)} responses, got {len(responses)}")
    return responses


def request(port: int, payload: dict) -> dict:
    return request_lines(port, [json.dumps(payload)])[0]


def plan_request(request_id: str, dataset_seed: int, budgets: list[int],
                 theta: int = 20_000, n: int = 250, **plan_extra) -> dict:
    return {
        "id": request_id,
        "dataset": {"n": n, "seed": dataset_seed},
        "sampling": {"theta": theta},
        "plan": {"method": "bab", "budgets": budgets, **plan_extra},
    }


def start_daemon(binary: str, flags: list[str],
                 faults: str | None = None,
                 faults_seed: int = 7) -> tuple[subprocess.Popen, int]:
    """Launches the daemon and scrapes the bound port off its banner.
    `faults` arms $OIPA_FAULTS for this daemon only."""
    env = dict(os.environ)
    env.pop("OIPA_FAULTS", None)
    env.pop("OIPA_FAULTS_SEED", None)
    if faults is not None:
        env["OIPA_FAULTS"] = faults
        env["OIPA_FAULTS_SEED"] = str(faults_seed)
    daemon = subprocess.Popen(
        [binary, "--port=0"] + flags,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env)
    banner = daemon.stdout.readline()
    match = re.search(r"listening on [^:]+:(\d+)", banner)
    if not match:
        daemon.kill()
        daemon.wait()
        raise RuntimeError(f"no listening banner (got {banner!r})")
    return daemon, int(match.group(1))


# Every per-result field that must be deterministic. solve_seconds is
# wall-clock and the serve block is telemetry; everything else must be
# bit-identical between a fault-free and a faulted (but retried) run.
ANSWER_FIELDS = ("k", "seed_sets", "utility", "holdout_utility",
                 "upper_bound", "converged", "nodes_expanded",
                 "bound_calls", "theta_used")


def answer_key(response: dict) -> list[list]:
    """The bit-comparable part of a response."""
    return [[r.get(f) for f in ANSWER_FIELDS]
            for r in response["results"]]


def request_with_retry(port: int, payload: dict,
                       retries: int = 15) -> dict:
    """The resilient-client loop: transport failures and injected
    faults back off and retry; overload rejections honor the daemon's
    retry_after_ms hint; any other structured error IS the answer."""
    delay = 0.02
    for _ in range(retries + 1):
        try:
            response = request(port, payload)
        except (OSError, RuntimeError, json.JSONDecodeError):
            # Severed connection / dropped response / refused accept.
            time.sleep(delay)
            delay = min(delay * 2, 0.5)
            continue
        if response.get("ok") is True:
            return response
        error = response.get("error", {})
        if error.get("code") == "resource_exhausted":
            time.sleep(error.get("retry_after_ms", 50) / 1000.0)
            continue
        if "injected fault" in error.get("message", ""):
            time.sleep(delay)
            delay = min(delay * 2, 0.5)
            continue
        return response
    raise RuntimeError(
        f"request {payload.get('id')} still failing after {retries} retries")


def chaos_request_mix() -> list[dict]:
    """200 requests over 4 contexts with growing theta and cycling
    budgets — every (seed, theta, budget) combination repeats, so the
    faulted run's answers can be checked against the fault-free run."""
    mix = []
    for i in range(200):
        seed = 1 + i % 4
        theta = 1_500 + 500 * ((i // 4) % 3)
        budgets = [[2], [3], [4]][(i // 12) % 3]
        mix.append(plan_request(
            f"x{i}", seed, budgets, theta=theta))
    return mix


def run_chaos(args: argparse.Namespace) -> int:
    import tempfile

    serve_flags = ["--workers=2", "--max_contexts=4",
                   "--store_budget_mb=8"]
    mix = chaos_request_mix()

    print("chaos (1/4): fault-free baseline run (200 requests)")
    daemon, port = start_daemon(args.binary, serve_flags)
    baseline: dict[str, list[list]] = {}
    try:
        for payload in mix:
            response = request_with_retry(port, payload)
            check_quiet(response.get("ok") is True,
                        f"baseline {payload['id']} solves")
            baseline[payload["id"]] = answer_key(response)
        daemon.send_signal(signal.SIGTERM)
        check(daemon.wait(timeout=60) == 0, "baseline daemon exits 0")
    finally:
        kill_if_alive(daemon)
    check(len(baseline) == len(mix), "baseline answered all 200")

    print("chaos (2/4): same 200 requests with faults armed")
    faults = ("serve.accept=0.01,serve.read=0.01,serve.write=0.02,"
              "store.grow=0.01,io.save=0.05")
    with tempfile.TemporaryDirectory(prefix="oipa_chaos_ckpt_") as ckpt:
        daemon, port = start_daemon(
            args.binary,
            serve_flags + [f"--checkpoint_dir={ckpt}",
                           "--checkpoint_interval_ms=100"],
            faults=faults)
        mismatches = 0
        answered = 0
        try:
            for payload in mix:
                response = request_with_retry(port, payload)
                if response.get("ok") is not True:
                    continue  # a genuine error would fail the count below
                answered += 1
                if answer_key(response) != baseline[payload["id"]]:
                    mismatches += 1
            health = request_with_retry(port, {"id": "h", "type": "health"})
            injected = health["health"]["faults_injected"]
            print(f"  faults injected during the run: {injected}")
            check(injected > 0, "faults actually fired")
            check(daemon.poll() is None, "daemon survived every fault")
            daemon.send_signal(signal.SIGTERM)
            check(daemon.wait(timeout=60) == 0,
                  "faulted daemon drains and exits 0")
        finally:
            kill_if_alive(daemon)
        check(answered == len(mix),
              f"all 200 requests eventually answered ({answered}/200)")
        check(mismatches == 0,
              f"every answer bit-identical to the fault-free run "
              f"({mismatches} mismatches)")

    print("chaos (3/4): overload burst against a depth-1 queue")
    daemon, port = start_daemon(
        args.binary, ["--workers=1", "--max_queue_depth=1",
                      "--max_contexts=4"])
    try:
        blocker_responses: list[dict] = []
        blocker = threading.Thread(
            target=lambda: blocker_responses.extend(request_lines(
                port, [json.dumps(plan_request(
                    "blocker", 99, [8], theta=500_000, n=20_000))])))
        blocker.start()
        time.sleep(0.15)
        burst = request_lines(port, [
            json.dumps(plan_request(f"o{i}", 1 + i, [2], theta=1_500))
            for i in range(5)
        ])
        blocker.join()
        check(blocker_responses[0].get("ok") is True, "blocker solves")
        rejections = [r for r in burst if r.get("ok") is False]
        check(len(rejections) >= 1, "burst produced overload rejections")
        check(all(r["error"]["code"] == "resource_exhausted"
                  and r["error"]["retry_after_ms"] >= 1
                  for r in rejections),
              "rejections carry resource_exhausted + retry_after_ms")
        daemon.send_signal(signal.SIGTERM)
        check(daemon.wait(timeout=60) == 0, "overloaded daemon exits 0")
    finally:
        kill_if_alive(daemon)

    print("chaos (4/4): kill -9, restart, recover from checkpoints")
    with tempfile.TemporaryDirectory(prefix="oipa_ckpt_") as ckpt:
        flags = ["--workers=1", "--max_contexts=2",
                 f"--checkpoint_dir={ckpt}",
                 "--checkpoint_interval_ms=100"]
        daemon, port = start_daemon(args.binary, flags)
        try:
            first = request_with_retry(port, plan_request("k1", 1, [3],
                                                          theta=1_500))
            check(first.get("ok") is True, "pre-kill request solves")
            manifest = os.path.join(ckpt, "manifest.json")
            deadline = time.time() + 10
            while not os.path.exists(manifest) and time.time() < deadline:
                time.sleep(0.05)
            check(os.path.exists(manifest),
                  "periodic checkpoint wrote a manifest")
            daemon.kill()  # SIGKILL: no drain, no final checkpoint
            daemon.wait()
        finally:
            kill_if_alive(daemon)

        daemon, port = start_daemon(args.binary, flags)
        try:
            second = request_with_retry(port, plan_request("k2", 1, [3],
                                                           theta=1_500))
            check(second.get("ok") is True, "post-restart request solves")
            check(second["serve"]["samples_generated"] == 0,
                  "restart re-serves the context with ZERO regenerated "
                  "samples")
            check(answer_key(second) == answer_key(first),
                  "recovered answer is bit-identical")
            daemon.send_signal(signal.SIGTERM)
            check(daemon.wait(timeout=60) == 0, "restarted daemon exits 0")
        finally:
            kill_if_alive(daemon)

    if FAILURES:
        print(f"serve_smoke --chaos: {len(FAILURES)} failure(s)")
        return 1
    print("serve_smoke --chaos: all scenarios passed")
    return 0


def check_quiet(condition: bool, message: str) -> None:
    """check() without the per-line output (for 200-request loops)."""
    if not condition:
        print(f"  [FAIL] {message}")
        FAILURES.append(message)


def kill_if_alive(daemon: subprocess.Popen) -> None:
    if daemon.poll() is None:
        daemon.kill()
        daemon.wait()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "build", "oipa_serve"))
    parser.add_argument("--chaos", action="store_true",
                        help="run the robustness drill instead of the "
                             "functional scenarios")
    args = parser.parse_args()
    if args.chaos:
        return run_chaos(args)

    daemon = subprocess.Popen(
        [args.binary, "--port=0", "--workers=1", "--max_contexts=2",
         "--store_budget_mb=2"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        banner = daemon.stdout.readline()
        match = re.search(r"listening on [^:]+:(\d+)", banner)
        if not match:
            print(f"FAIL: no listening banner (got {banner!r})")
            return 1
        port = int(match.group(1))
        print(f"daemon up on port {port}")

        print("scenario (a): repeated request hits the context cache")
        first = request(port, plan_request("a1", 1, [3]))
        check(first.get("ok") is True, "first request solves")
        check(first["serve"]["cache_hit"] is False,
              "first request misses the cache")
        check(first["serve"]["samples_generated"] > 0,
              "first request samples")
        again = request(port, plan_request("a2", 1, [3]))
        check(again["serve"]["cache_hit"] is True,
              "repeat request hits the cache")
        check(again["serve"]["samples_generated"] == 0,
              "repeat request generates zero new samples")
        check(again["results"] == first["results"]
              or [r["utility"] for r in again["results"]] ==
              [r["utility"] for r in first["results"]],
              "repeat answer is identical")

        print("scenario (b): compatible queued requests share one sweep")
        # Occupy the single worker with a heavy unrelated context so the
        # two compatible requests queue up behind it and merge. Timing
        # dependent, so retry with fresh blocker contexts if the worker
        # freed up before both lines were enqueued.
        merged: list[dict] = []
        for attempt, blocker_seed in enumerate((99, 98, 97), start=1):
            blocker_responses: list[dict] = []
            blocker = threading.Thread(
                target=lambda seed=blocker_seed:
                blocker_responses.extend(request_lines(
                    port,
                    [json.dumps(plan_request(
                        "blocker", seed, [8], theta=500_000, n=20_000))])))
            blocker.start()
            time.sleep(0.15)  # the single worker is busy with the blocker
            merged = request_lines(port, [
                json.dumps(plan_request("b1", 1, [4])),
                json.dumps(plan_request("b2", 1, [6])),
            ])
            blocker.join()
            check(blocker_responses[0].get("ok") is True,
                  f"blocker {attempt} solves")
            if all(r["serve"]["batch_size"] == 2 for r in merged):
                break
        check(all(r["serve"]["batch_size"] == 2 for r in merged),
              "both queued requests answered from one batched sweep")
        serial_4 = request(port, plan_request("s1", 1, [4]))
        serial_6 = request(port, plan_request("s2", 1, [6]))
        for label, batched, serial in (("k=4", merged[0], serial_4),
                                       ("k=6", merged[1], serial_6)):
            b, s = batched["results"][0], serial["results"][0]
            check(b["seed_sets"] == s["seed_sets"]
                  and b["utility"] == s["utility"],
                  f"batched {label} bit-identical to the serial solve")

        print("scenario (c): an expired deadline cancels with telemetry")
        hurried = request(port, plan_request(
            "c1", 1, [8], theta=60_000, deadline_ms=1, gap=0.0))
        check(hurried.get("ok") is True,
              "deadline miss is a response, not an error")
        check(hurried.get("cancelled") is True, "request is cancelled")
        row = hurried["results"][0]
        check(row["deadline_exceeded"] is True and row["converged"] is False,
              "partial telemetry marks the deadline")

        print("scenario (d): store budget evicts the LRU unpinned store")
        registry_before = hurried["serve"]["store_registry"]
        store_bytes = hurried["serve"]["store"]["memory_bytes"]
        check(2 * store_bytes > registry_before["budget_bytes"],
              "precondition: budget is below two stores' bytes "
              f"({store_bytes} x2 vs {registry_before['budget_bytes']})")
        third = request(port, plan_request("d1", 3, [3]))
        registry_after = third["serve"]["store_registry"]
        check(registry_after["evictions"] > registry_before["evictions"],
              "third context's acquire evicts a store "
              f"({registry_before['evictions']} -> "
              f"{registry_after['evictions']})")
        check(registry_after["live_stores"] <= 2,
              "evicted store left the registry")

        print("scenario (extra): malformed input gets structured errors")
        mixed = request_lines(port, [
            "this is not json",
            json.dumps(plan_request("alive", 1, [2])),
        ])
        errors = [r for r in mixed if r.get("ok") is False]
        solved = [r for r in mixed if r.get("ok") is True]
        check(len(errors) == 1
              and errors[0]["error"]["code"] == "InvalidArgument",
              "malformed line answered with InvalidArgument")
        check(len(solved) == 1 and solved[0]["id"] == "alive",
              "connection survives and still solves")

        print("scenario (extra): SIGTERM drains and exits cleanly")
        daemon.send_signal(signal.SIGTERM)
        check(daemon.wait(timeout=60) == 0, "daemon exits 0 on SIGTERM")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if FAILURES:
        print(f"serve_smoke: {len(FAILURES)} failure(s)")
        return 1
    print("serve_smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
