#!/usr/bin/env python3
"""Project-invariant linter: repo rules clang-tidy cannot see.

Enforced rules (each failure names its rule id):

  raw-sync          No raw std::mutex / std::condition_variable (or the
                    std lock RAII types) outside src/util/ — concurrent
                    code must use the annotated oipa::Mutex wrappers so
                    Clang Thread Safety Analysis covers it.
  api-check         No OIPA_CHECK aborts inside src/oipa/api/,
                    src/serve/, or src/util/fault_injector.h — the API
                    layer reports failures as Status/StatusOr values,
                    the serve daemon must answer malformed wire input
                    with a structured error response (never abort), and
                    injected faults must surface as Status values.
  unseeded-rng      No std::random_device, rand() or srand() in src/ —
                    every sample stream must be derived from an explicit
                    uint64 seed (determinism contract).
  test-registration Every tests/*_test.cc is registered in
                    CMakeLists.txt (a forgotten test silently never
                    runs).
  bench-baseline    Every BENCH_*.json the CI workflow produces is
                    gated against a bench/BASELINE_*.json via
                    check_perf_regression.py (an ungated bench is a
                    regression trap).
  lock-hierarchy    Every oipa::Mutex declared in src/ (outside
                    src/util/) is documented in README.md's "Locking
                    hierarchy" table — a mutex nobody wrote an ordering
                    rule for is where the next deadlock hides. Matching
                    is by declared name, so renaming a lock without
                    updating the table also fails.

Suppressions: a finding may be waived with a comment on the same line
or the line directly above it:

    // lint:allow(<rule-id>): <reason>

The reason is mandatory. Waivers and clang-tidy NOLINT markers are
counted and printed so the totals stay visible in CI.

Usage: python3 scripts/lint_invariants.py [--repo-root PATH]
Exit status: 0 clean, 1 findings.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".h")

RAW_SYNC_RE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_lock|recursive_mutex|timed_mutex)\b"
)
API_CHECK_RE = re.compile(r"\bOIPA_CHECK(_OK|_EQ|_NE|_LT|_LE|_GT|_GE|_OP)?\s*\(")
UNSEEDED_RNG_RE = re.compile(r"std::random_device\b|(?<![\w:])s?rand\s*\(")
ALLOW_RE = re.compile(r"lint:allow\((?P<rule>[a-z-]+)\)\s*:\s*(?P<reason>\S.*)")
ALLOW_NO_REASON_RE = re.compile(r"lint:allow\((?P<rule>[a-z-]+)\)\s*(?!:\s*\S)")
NOLINT_RE = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b(\((?P<checks>[^)]*)\))?")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments, string and char literals from one line.

    Block comments are handled per-line by the caller (state machine);
    this keeps doc-comment mentions of std::mutex from tripping rules.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            break
        if c in ('"', "'"):
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append('""' if quote == '"' else "''")
        else:
            out.append(c)
        i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.errors: list[str] = []
        self.waivers: list[str] = []
        self.nolints: list[str] = []
        self.bad_suppressions: list[str] = []

    def error(self, rule: str, where: str, message: str) -> None:
        self.errors.append(f"{where}: [{rule}] {message}")


def waived(rule: str, lines: list[str], idx: int, where: str,
           findings: Findings) -> bool:
    """True when line idx or the line above carries lint:allow(rule)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and m.group("rule") == rule:
            findings.waivers.append(
                f"{where}: [{rule}] {m.group('reason').strip()}")
            return True
    return False


def iter_cxx_files(root: str, subdir: str):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                yield os.path.join(dirpath, name)


def scan_cxx_file(path: str, rel: str, findings: Findings,
                  rules: list[tuple[str, re.Pattern, str]]) -> None:
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()
    in_block_comment = False
    for idx, raw in enumerate(raw_lines):
        line = raw
        # Per-line block-comment state machine (good enough for this
        # codebase's comment style; strings containing /* are stripped
        # first inside strip_comments_and_strings when not in a block).
        code_parts = []
        while line:
            if in_block_comment:
                end = line.find("*/")
                if end < 0:
                    line = ""
                else:
                    line = line[end + 2:]
                    in_block_comment = False
            else:
                start = line.find("/*")
                if start < 0:
                    code_parts.append(line)
                    line = ""
                else:
                    code_parts.append(line[:start])
                    line = line[start + 2:]
                    in_block_comment = True
        code = strip_comments_and_strings("".join(code_parts))
        for rule, pattern, message in rules:
            m = pattern.search(code)
            if not m:
                continue
            where = f"{rel}:{idx + 1}"
            if waived(rule, raw_lines, idx, where, findings):
                continue
            findings.error(rule, where, f"{message} (matched '{m.group(0)}')")


def count_suppressions(root: str, findings: Findings) -> None:
    for subdir in ("src", "tests", "bench", "examples"):
        if not os.path.isdir(os.path.join(root, subdir)):
            continue
        for path in iter_cxx_files(root, subdir):
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            for idx, line in enumerate(lines):
                for m in NOLINT_RE.finditer(line):
                    where = f"{rel}:{idx + 1}"
                    checks = m.group("checks")
                    if not checks:
                        findings.bad_suppressions.append(
                            f"{where}: bare NOLINT — name the check: "
                            "NOLINT(<check>)")
                        continue
                    findings.nolints.append(f"{where}: NOLINT({checks})")
                bad = ALLOW_NO_REASON_RE.search(line)
                if bad:
                    findings.bad_suppressions.append(
                        f"{rel}:{idx + 1}: lint:allow({bad.group('rule')}) "
                        "without a reason — append ': <why>'")


def check_test_registration(root: str, findings: Findings) -> None:
    cmake_path = os.path.join(root, "CMakeLists.txt")
    with open(cmake_path, encoding="utf-8") as f:
        cmake = f.read()
    tests_dir = os.path.join(root, "tests")
    for name in sorted(os.listdir(tests_dir)):
        if not name.endswith("_test.cc"):
            continue
        stem = name[: -len(".cc")]
        if not re.search(rf"\b{re.escape(stem)}\b", cmake):
            findings.error(
                "test-registration", f"tests/{name}",
                f"not registered in CMakeLists.txt (expected '{stem}' in "
                "the test-suite list)")


MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:oipa::)?Mutex\s+(?P<name>[A-Za-z_]\w*)\s*[;{=]")


def check_lock_hierarchy(root: str, findings: Findings) -> None:
    """Every Mutex declared outside src/util must appear (by name) in the
    README's Locking hierarchy section."""
    readme_path = os.path.join(root, "README.md")
    if not os.path.isfile(readme_path):
        return
    with open(readme_path, encoding="utf-8") as f:
        readme_lines = f.read().splitlines()
    section: list[str] = []
    in_section = False
    for line in readme_lines:
        if "Locking hierarchy" in line:
            in_section = True
        elif in_section and (line.startswith("## ") or
                             (line.startswith("**") and section)):
            break
        if in_section:
            section.append(line)
    section_text = "\n".join(section)
    if not section_text:
        findings.error(
            "lock-hierarchy", "README.md",
            'no "Locking hierarchy" section found — document lock '
            "ordering before adding mutexes")
        return
    for path in iter_cxx_files(root, "src"):
        rel = os.path.relpath(path, root)
        if rel.startswith(os.path.join("src", "util") + os.sep):
            continue
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for idx, line in enumerate(lines):
            m = MUTEX_DECL_RE.match(line)
            if not m:
                continue
            name = m.group("name")
            if re.search(rf"\b{re.escape(name)}\b", section_text):
                continue
            where = f"{rel}:{idx + 1}"
            if waived("lock-hierarchy", lines, idx, where, findings):
                continue
            findings.error(
                "lock-hierarchy", where,
                f"Mutex '{name}' is not documented in README.md's "
                "Locking hierarchy table — add a row (lock, what it "
                "guards, ordering constraints)")


def check_bench_baselines(root: str, findings: Findings) -> None:
    ci_path = os.path.join(root, ".github", "workflows", "ci.yml")
    if not os.path.isfile(ci_path):
        return
    with open(ci_path, encoding="utf-8") as f:
        ci_lines = f.read().splitlines()
    # Join shell line continuations so a gate invocation split across
    # lines ("check_perf_regression.py FOO \\\n  bench/BASELINE_FOO")
    # still matches as one statement.
    joined = re.sub(r"\\\n\s*", " ", "\n".join(ci_lines))
    produced: dict[str, int] = {}
    for idx, line in enumerate(ci_lines):
        for m in re.finditer(r"(BENCH_[A-Za-z0-9_]+)\.json", line):
            produced.setdefault(m.group(1), idx)
    for bench_name, idx in sorted(produced.items()):
        suffix = bench_name[len("BENCH_"):]
        where = f".github/workflows/ci.yml:{idx + 1}"
        baseline = f"BASELINE_{suffix}.json"
        has_baseline = os.path.isfile(os.path.join(root, "bench", baseline))
        gated = re.search(
            rf"check_perf_regression\.py[^\n]*{re.escape(baseline)}"
            rf"|{re.escape(baseline)}[^\n]*check_perf_regression\.py",
            joined)
        if has_baseline and gated:
            continue
        if waived("bench-baseline", ci_lines, idx, where, findings):
            continue
        missing = []
        if not has_baseline:
            missing.append(f"bench/{baseline} does not exist")
        if not gated:
            missing.append("no check_perf_regression.py gate in ci.yml")
        findings.error(
            "bench-baseline", where,
            f"{bench_name}.json is produced but ungated: "
            + "; ".join(missing))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    args = parser.parse_args()
    root = args.repo_root

    findings = Findings()

    for path in iter_cxx_files(root, "src"):
        rel = os.path.relpath(path, root)
        rules = [
            ("unseeded-rng", UNSEEDED_RNG_RE,
             "unseeded randomness — derive from an explicit uint64 seed"),
        ]
        if not rel.startswith(os.path.join("src", "util") + os.sep):
            rules.append(
                ("raw-sync", RAW_SYNC_RE,
                 "raw std synchronization primitive — use oipa::Mutex / "
                 "oipa::MutexLock / oipa::CondVar (util/threading.h)"))
        if rel.startswith(
                os.path.join("src", "oipa", "api") + os.sep) or \
                rel.startswith(os.path.join("src", "serve") + os.sep) or \
                rel == os.path.join("src", "util", "fault_injector.h"):
            rules.append(
                ("api-check", API_CHECK_RE,
                 "CHECK abort in the StatusOr API layer — return a "
                 "Status instead (the serve daemon must answer bad "
                 "wire input with an error response, never abort)"))
        scan_cxx_file(path, rel, findings, rules)

    for subdir in ("bench", "examples", "tests"):
        if not os.path.isdir(os.path.join(root, subdir)):
            continue
        for path in iter_cxx_files(root, subdir):
            rel = os.path.relpath(path, root)
            scan_cxx_file(
                path, rel, findings,
                [("raw-sync", RAW_SYNC_RE,
                  "raw std synchronization primitive — use oipa::Mutex / "
                  "oipa::MutexLock / oipa::CondVar (util/threading.h)")])

    check_test_registration(root, findings)
    check_bench_baselines(root, findings)
    check_lock_hierarchy(root, findings)
    count_suppressions(root, findings)

    for line in findings.bad_suppressions:
        print(f"ERROR {line}")
    for line in findings.errors:
        print(f"ERROR {line}")
    if findings.nolints:
        print(f"clang-tidy NOLINT suppressions: {len(findings.nolints)}")
        for line in findings.nolints:
            print(f"  {line}")
    if findings.waivers:
        print(f"lint:allow waivers: {len(findings.waivers)}")
        for line in findings.waivers:
            print(f"  {line}")
    total = len(findings.errors) + len(findings.bad_suppressions)
    if total:
        print(f"lint_invariants: {total} finding(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
