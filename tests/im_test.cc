#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "diffusion/cascade.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "im/imm.h"
#include "im/max_cover.h"
#include "rrset/rr_collection.h"
#include "topic/influence_graph.h"

namespace oipa {
namespace {

TEST(MaxCoverTest, PicksObviousHub) {
  // Star: vertex 0 reaches all leaves with certainty; any RR set of a
  // leaf contains {leaf, 0}, so greedy must pick 0 first.
  const Graph g = MakeStar(10);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  const RrCollection rr = RrCollection::Generate(ig, 2000, 3);
  const MaxCoverResult res = GreedyMaxCover(rr, 1);
  ASSERT_EQ(res.seeds.size(), 1u);
  EXPECT_EQ(res.seeds[0], 0);
  EXPECT_EQ(res.covered, rr.theta());  // 0 is in every RR set
}

TEST(MaxCoverTest, KZeroReturnsEmpty) {
  const Graph g = MakeStar(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  const RrCollection rr = RrCollection::Generate(ig, 100, 3);
  EXPECT_TRUE(GreedyMaxCover(rr, 0).seeds.empty());
  EXPECT_TRUE(CelfMaxCover(rr, 0).seeds.empty());
}

TEST(MaxCoverTest, StopsWhenNoPositiveGain) {
  // Two-vertex graph with no edges: two seeds cover everything.
  const Graph g = Graph::Empty(2);
  const InfluenceGraph ig(&g, {});
  const RrCollection rr = RrCollection::Generate(ig, 500, 5);
  const MaxCoverResult res = GreedyMaxCover(rr, 10);
  EXPECT_EQ(res.seeds.size(), 2u);
  EXPECT_EQ(res.covered, rr.theta());
}

TEST(MaxCoverTest, CandidateRestrictionHonored) {
  const Graph g = MakeStar(10);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  const RrCollection rr = RrCollection::Generate(ig, 1000, 7);
  // Exclude the hub; only leaves allowed.
  std::vector<VertexId> pool;
  for (VertexId v = 1; v <= 10; ++v) pool.push_back(v);
  const MaxCoverResult res = GreedyMaxCover(rr, 3, pool);
  for (VertexId s : res.seeds) EXPECT_NE(s, 0);
}

class GreedyCelfEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(GreedyCelfEquivalence, IdenticalSeedsAndCoverage) {
  const auto [n, p, k] = GetParam();
  const Graph g = GenerateErdosRenyi(n, p, 11 + n);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  const RrCollection rr = RrCollection::Generate(ig, 3000, 13);
  const MaxCoverResult greedy = GreedyMaxCover(rr, k);
  const MaxCoverResult celf = CelfMaxCover(rr, k);
  EXPECT_EQ(greedy.seeds, celf.seeds);
  EXPECT_EQ(greedy.covered, celf.covered);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyCelfEquivalence,
    ::testing::Values(std::make_tuple(30, 0.1, 3),
                      std::make_tuple(60, 0.05, 5),
                      std::make_tuple(100, 0.03, 8),
                      std::make_tuple(150, 0.02, 10),
                      std::make_tuple(80, 0.08, 6)));

TEST(MaxCoverTest, GreedyApproximationOnBruteForceableInstance) {
  // Small instance: compare greedy coverage against exhaustive best pair.
  const Graph g = GenerateErdosRenyi(12, 0.2, 17);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.4f);
  const RrCollection rr = RrCollection::Generate(ig, 4000, 19);

  int64_t best = 0;
  std::vector<uint8_t> covered(rr.theta());
  for (VertexId a = 0; a < 12; ++a) {
    for (VertexId b = a + 1; b < 12; ++b) {
      std::fill(covered.begin(), covered.end(), 0);
      for (int64_t i : rr.SamplesContaining(a)) covered[i] = 1;
      for (int64_t i : rr.SamplesContaining(b)) covered[i] = 1;
      int64_t c = 0;
      for (uint8_t x : covered) c += x;
      best = std::max(best, c);
    }
  }
  const MaxCoverResult greedy = GreedyMaxCover(rr, 2);
  EXPECT_GE(static_cast<double>(greedy.covered),
            (1.0 - 1.0 / M_E) * static_cast<double>(best));
}

// ------------------------------------------------------------------ IMM

TEST(ImmTest, ReturnsRequestedSeedCount) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 23);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  ImmOptions opts;
  opts.epsilon = 0.3;
  opts.seed = 29;
  const ImmResult res = Imm(ig, 5, opts);
  EXPECT_EQ(res.seeds.size(), 5u);
  EXPECT_GT(res.theta_used, 0);
  EXPECT_GE(res.opt_lower_bound, 1.0);
  // No duplicate seeds.
  std::vector<VertexId> sorted = res.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(ImmTest, SpreadEstimateCloseToSimulation) {
  const Graph g = GenerateBarabasiAlbert(200, 3, 31);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  ImmOptions opts;
  opts.epsilon = 0.2;
  opts.seed = 37;
  const ImmResult res = Imm(ig, 4, opts);
  const double sim = EstimateSpread(ig, res.seeds, 20'000, 41);
  EXPECT_NEAR(res.spread_estimate, sim, 0.1 * sim);
}

TEST(ImmTest, LowerBoundBelowGreedySpread) {
  const Graph g = GenerateBarabasiAlbert(400, 3, 43);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  ImmOptions opts;
  opts.epsilon = 0.4;
  opts.seed = 47;
  const ImmResult res = Imm(ig, 6, opts);
  // LB is a lower bound on OPT >= achieved spread estimate up to noise.
  EXPECT_LE(res.opt_lower_bound, res.spread_estimate * 1.25);
}

TEST(FixedThetaRisTest, MatchesImmQualityRoughly) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 53);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  const ImmResult fixed = FixedThetaRis(ig, 5, 20'000, 59);
  ImmOptions opts;
  opts.epsilon = 0.3;
  opts.seed = 59;
  const ImmResult imm = Imm(ig, 5, opts);
  const double fixed_sim = EstimateSpread(ig, fixed.seeds, 10'000, 61);
  const double imm_sim = EstimateSpread(ig, imm.seeds, 10'000, 61);
  EXPECT_NEAR(fixed_sim, imm_sim, 0.15 * std::max(fixed_sim, imm_sim));
}

TEST(FixedThetaRisTest, HubWinsOnStar) {
  const Graph g = MakeStar(20);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  const ImmResult res = FixedThetaRis(ig, 1, 5000, 67);
  ASSERT_EQ(res.seeds.size(), 1u);
  EXPECT_EQ(res.seeds[0], 0);
  EXPECT_NEAR(res.spread_estimate, 21.0, 0.5);
}

}  // namespace
}  // namespace oipa
