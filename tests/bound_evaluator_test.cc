#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/bound_evaluator.h"
#include "oipa/brute_force.h"
#include "rrset/mrr_collection.h"
#include "tests/paper_example.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

using testing_support::PaperExample;

/// Small random OIPA instance shared by the bound tests.
struct SmallInstance {
  SmallInstance(int n, double edge_p, int ell, int num_topics,
                uint64_t seed, double alpha = 2.5, double beta = 1.0)
      : graph(GenerateErdosRenyi(n, edge_p, seed)),
        probs(AssignWeightedCascadeTopics(graph, num_topics, 2.0,
                                          seed + 1)),
        model(alpha, beta) {
    Rng rng(seed + 2);
    campaign = Campaign::SampleUniformPieces(ell, num_topics, &rng);
    pieces = BuildPieceGraphs(graph, probs, campaign);
    mrr = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces, 4000, seed + 3));
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      pool.push_back(v);
    }
  }

  Graph graph;
  EdgeTopicProbs probs;
  LogisticAdoptionModel model;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  std::unique_ptr<MrrCollection> mrr;
  std::vector<VertexId> pool;
};

TEST(BoundEvaluatorTest, BudgetZeroReturnsAnchorOnly) {
  SmallInstance inst(15, 0.15, 2, 4, 51);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  state.AddSeed(0, 0);
  const BoundResult r = eval.ComputeBound(&state, 0, {});
  EXPECT_TRUE(r.additions.empty());
  EXPECT_FALSE(r.first_pick.valid());
  EXPECT_NEAR(r.sigma, state.Utility(), 1e-12);
  // The surrogate dominates; with the zero-anchored variant and no
  // additions it is tight (equal up to floating-point accumulation).
  EXPECT_GE(r.tau + 1e-9, r.sigma);
}

TEST(BoundEvaluatorTest, AdditionsRespectBudgetAndPool) {
  SmallInstance inst(20, 0.12, 3, 5, 53);
  // Restrict the pool to even vertices.
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < 20; v += 2) pool.push_back(v);
  BoundEvaluator eval(inst.mrr.get(), inst.model, pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  const BoundResult r = eval.ComputeBound(&state, 4, {});
  EXPECT_LE(r.additions.size(), 4u);
  for (const auto& [piece, v] : r.additions) {
    EXPECT_EQ(v % 2, 0);
    EXPECT_GE(piece, 0);
    EXPECT_LT(piece, 3);
  }
}

TEST(BoundEvaluatorTest, ExclusionsAreHonored) {
  SmallInstance inst(15, 0.2, 2, 4, 57);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  // First find what greedy picks unconstrained...
  const BoundResult free = eval.ComputeBound(&state, 1, {});
  ASSERT_TRUE(free.first_pick.valid());
  // ...then exclude exactly that pair and require a different pick.
  const std::vector<Assignment> excl = {
      {free.first_pick.piece, free.first_pick.v}};
  const BoundResult constrained = eval.ComputeBound(&state, 1, excl);
  if (constrained.first_pick.valid()) {
    EXPECT_TRUE(constrained.first_pick.piece != free.first_pick.piece ||
                constrained.first_pick.v != free.first_pick.v);
  }
}

TEST(BoundEvaluatorTest, StateRestoredAfterCall) {
  SmallInstance inst(15, 0.15, 2, 4, 59);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  state.AddSeed(2, 1);
  const double before = state.Utility();
  (void)eval.ComputeBound(&state, 3, {});
  // Add/remove leaves tiny floating-point residue in the running sum.
  EXPECT_NEAR(state.Utility(), before, 1e-9);
  (void)eval.ComputeBoundPro(&state, 3, {}, 0.5);
  EXPECT_NEAR(state.Utility(), before, 1e-9);
}

TEST(BoundEvaluatorTest, SyncWithCollectionMatchesFreshEvaluator) {
  // Use an evaluator, grow the collection under it, rebind, and compare
  // every bound flavor against a freshly constructed evaluator — the
  // appended scratch must be indistinguishable from a rebuild.
  SmallInstance inst(20, 0.12, 3, 4, 67);
  BoundEvaluator reused(inst.mrr.get(), inst.model, inst.pool);
  CoverageState pre_state(
      inst.mrr.get(), inst.model.AdoptionTable(inst.mrr->num_pieces()));
  (void)reused.ComputeBound(&pre_state, 3, {});  // dirty the scratch

  inst.mrr->Extend(inst.pieces, 9000);
  reused.SyncWithCollection();
  BoundEvaluator fresh(inst.mrr.get(), inst.model, inst.pool);

  CoverageState state_a(
      inst.mrr.get(), inst.model.AdoptionTable(inst.mrr->num_pieces()));
  CoverageState state_b(
      inst.mrr.get(), inst.model.AdoptionTable(inst.mrr->num_pieces()));
  state_a.AddSeed(2, 1);
  state_b.AddSeed(2, 1);

  const BoundResult ra = reused.ComputeBound(&state_a, 4, {});
  const BoundResult rb = fresh.ComputeBound(&state_b, 4, {});
  EXPECT_EQ(ra.additions, rb.additions);
  EXPECT_DOUBLE_EQ(ra.tau, rb.tau);
  EXPECT_DOUBLE_EQ(ra.sigma, rb.sigma);
  EXPECT_EQ(ra.tau_evals, rb.tau_evals);

  const BoundResult pa = reused.ComputeBoundPro(&state_a, 4, {}, 0.5);
  const BoundResult pb = fresh.ComputeBoundPro(&state_b, 4, {}, 0.5);
  EXPECT_EQ(pa.additions, pb.additions);
  EXPECT_DOUBLE_EQ(pa.tau, pb.tau);
  EXPECT_EQ(pa.threshold_scans, pb.threshold_scans);
}

class BoundDominance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundDominance, TauUpperBoundsOptimalCompletion) {
  // The surrogate value at the greedy completion, divided by (1-1/e),
  // must upper bound the best true completion (this is what Theorem 2's
  // pruning soundness rests on). We verify against brute force.
  const uint64_t seed = GetParam();
  SmallInstance inst(10, 0.2, 2, 3, seed);
  const int budget = 3;
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));

  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, budget);
  const BoundResult r = eval.ComputeBound(&state, budget, {});
  const double inflate = 1.0 / (1.0 - std::exp(-1.0));
  EXPECT_GE(r.tau * inflate + 1e-9, opt.utility);
  // And the candidate is feasible: sigma <= OPT.
  EXPECT_LE(r.sigma, opt.utility + 1e-9);
}

TEST_P(BoundDominance, TauDominatesSigmaOfAnyPlan) {
  // tau(S̄|S̄a) >= sigma(S̄ ∪ S̄a) for the plan tau was evaluated at:
  // per-sample lines dominate the logistic pointwise.
  const uint64_t seed = GetParam();
  SmallInstance inst(12, 0.18, 3, 4, seed + 100);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  Rng rng(seed);
  // Random anchors.
  std::vector<Assignment> anchor;
  for (int t = 0; t < 2; ++t) {
    const int piece = static_cast<int>(rng.NextBounded(3));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(12));
    state.AddSeed(v, piece);
    anchor.emplace_back(piece, v);
  }
  const BoundResult r = eval.ComputeBound(&state, 2, {});
  EXPECT_GE(r.tau + 1e-9, r.sigma);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundDominance,
                         ::testing::Values(61, 67, 71, 73, 79, 83));

TEST(BoundEvaluatorTest, PaperExampleGreedyFindsOptimalPlan) {
  // On the running example with k = 2 the optimal plan is
  // {S1={a}, S2={e}}; the tangent greedy should find it outright.
  const PaperExample ex;
  const MrrCollection mrr = MrrCollection::Generate(ex.pieces, 50'000, 7);
  const LogisticAdoptionModel model = ex.model();
  std::vector<VertexId> pool{0, 1, 2, 3, 4};
  BoundEvaluator eval(&mrr, model, pool);
  CoverageState state(&mrr, model.AdoptionTable(2));
  const BoundResult r = eval.ComputeBound(&state, 2, {});
  ASSERT_EQ(r.additions.size(), 2u);
  AssignmentPlan plan(2);
  for (const auto& [piece, v] : r.additions) plan.Add(piece, v);
  EXPECT_TRUE(plan.Contains(0, PaperExample::kA));
  EXPECT_TRUE(plan.Contains(1, PaperExample::kE));
  EXPECT_NEAR(r.sigma, 1.05, 0.03);
}

class ProgressiveQuality : public ::testing::TestWithParam<double> {};

TEST_P(ProgressiveQuality, WithinTheoreticalFactorOfGreedy) {
  // Lemma 3 / Theorem 3: the progressive selection's surrogate value is
  // within (1 - 1/e - eps) of the optimum; greedy achieves (1 - 1/e).
  // We verify progressive sigma is within the combined slack of greedy.
  const double epsilon = GetParam();
  SmallInstance inst(25, 0.12, 3, 5, 89);
  const int budget = 5;
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  const BoundResult greedy = eval.ComputeBound(&state, budget, {});
  const BoundResult pro =
      eval.ComputeBoundPro(&state, budget, {}, epsilon);
  // tau values are comparable surrogate maximizations.
  const double factor = (1.0 - std::exp(-1.0) - epsilon) /
                        (1.0 - std::exp(-1.0));
  EXPECT_GE(pro.tau + 1e-9, greedy.tau * std::max(0.0, factor));
  EXPECT_LE(pro.additions.size(), static_cast<size_t>(budget));
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ProgressiveQuality,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9));

class LazyEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LazyEquivalence, LazyMatchesPlainGreedySelections) {
  // The surrogate is submodular, so CELF-lazy evaluation must reproduce
  // plain greedy exactly: same additions, same tau, same sigma.
  const uint64_t seed = GetParam();
  SmallInstance inst(30, 0.1, 3, 5, seed);
  BoundEvaluator eval_plain(inst.mrr.get(), inst.model, inst.pool);
  BoundEvaluator eval_lazy(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  // Also exercise a non-empty anchor.
  state.AddSeed(1, 0);
  const BoundResult plain = eval_plain.ComputeBound(&state, 6, {});
  const BoundResult lazy = eval_lazy.ComputeBoundLazy(&state, 6, {});
  EXPECT_EQ(plain.additions, lazy.additions);
  EXPECT_NEAR(plain.tau, lazy.tau, 1e-9);
  EXPECT_NEAR(plain.sigma, lazy.sigma, 1e-9);
  // Lazy should never evaluate more often than plain greedy.
  EXPECT_LE(lazy.tau_evals, plain.tau_evals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalence,
                         ::testing::Values(211, 223, 227, 229, 233));

TEST(LazyEquivalence, RespectsExclusions) {
  SmallInstance inst(20, 0.12, 2, 4, 239);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  const BoundResult free = eval.ComputeBoundLazy(&state, 1, {});
  ASSERT_TRUE(free.first_pick.valid());
  const std::vector<Assignment> excl = {
      {free.first_pick.piece, free.first_pick.v}};
  const BoundResult constrained = eval.ComputeBoundLazy(&state, 1, excl);
  if (constrained.first_pick.valid()) {
    EXPECT_TRUE(constrained.first_pick.piece != free.first_pick.piece ||
                constrained.first_pick.v != free.first_pick.v);
  }
}

TEST(ProgressiveTest, FewerEvaluationsThanGreedyOnLargerPool) {
  SmallInstance inst(60, 0.06, 3, 5, 97);
  const int budget = 8;
  BoundEvaluator eval_g(inst.mrr.get(), inst.model, inst.pool);
  BoundEvaluator eval_p(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  const BoundResult greedy = eval_g.ComputeBound(&state, budget, {});
  const BoundResult pro = eval_p.ComputeBoundPro(&state, budget, {}, 0.5);
  // Greedy scans all pairs every round: ~budget * pool * pieces evals.
  // Progressive sorts once and scans shrinking prefixes.
  EXPECT_LT(pro.tau_evals, greedy.tau_evals);
}

TEST(ProgressiveTest, ScanCountObeysEquationNine) {
  // Equation 9: the number of threshold scans is at most
  // log_{1+eps}(2k) + O(1).
  SmallInstance inst(40, 0.08, 3, 5, 101);
  BoundEvaluator eval(inst.mrr.get(), inst.model, inst.pool);
  CoverageState state(inst.mrr.get(),
                      inst.model.AdoptionTable(inst.mrr->num_pieces()));
  const int k = 6;
  for (double epsilon : {0.1, 0.3, 0.5, 0.9}) {
    // fill_budget off: verbatim Algorithm 3 with the Line-14 cutoff.
    const BoundResult r =
        eval.ComputeBoundPro(&state, k, {}, epsilon, /*fill_budget=*/false);
    const double limit =
        std::log(2.0 * k) / std::log(1.0 + epsilon) + 2.0;
    EXPECT_LE(r.threshold_scans, limit) << "epsilon=" << epsilon;
    EXPECT_GE(r.threshold_scans, 1);
  }
}

}  // namespace
}  // namespace oipa
