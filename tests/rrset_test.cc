#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "rrset/coverage_kernels.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "rrset/coverage_state.h"
#include "rrset/mrr_collection.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "topic/prob_models.h"
#include "util/random.h"
#include "util/threading.h"

namespace oipa {
namespace {

// ------------------------------------------------------------- Sampler

TEST(RrSamplerTest, DeterministicGraphYieldsAncestors) {
  const Graph g = MakePath(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  RrSampler sampler(g.num_vertices());
  Rng rng(1);
  std::vector<VertexId> set;
  sampler.Sample(ig, 3, &rng, &set);
  std::sort(set.begin(), set.end());
  EXPECT_EQ(set, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(RrSamplerTest, ZeroProbabilityYieldsRootOnly) {
  const Graph g = MakeCompleteDigraph(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.0f);
  RrSampler sampler(g.num_vertices());
  Rng rng(1);
  std::vector<VertexId> set;
  sampler.Sample(ig, 2, &rng, &set);
  EXPECT_EQ(set, (std::vector<VertexId>{2}));
}

TEST(RrSamplerTest, ReusableAcrossCalls) {
  const Graph g = MakeCycle(6);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  RrSampler sampler(g.num_vertices());
  Rng rng(1);
  std::vector<VertexId> set;
  for (int i = 0; i < 10; ++i) {
    sampler.Sample(ig, i % 6, &rng, &set);
    EXPECT_EQ(set.size(), 6u);  // cycle: everything reaches everything
  }
}

TEST(PerSampleSeedTest, DistinctAcrossSamplesAndPieces) {
  std::set<uint64_t> seen;
  for (int64_t s = 0; s < 100; ++s) {
    for (int j = -1; j < 4; ++j) {
      seen.insert(PerSampleSeed(42, s, j));
    }
  }
  EXPECT_EQ(seen.size(), 500u);
}

// ---------------------------------------------------------- Collection

TEST(RrCollectionTest, SpreadEstimateMatchesExactOnSmallGraphs) {
  const Graph g = GenerateErdosRenyi(10, 0.2, 7);
  ASSERT_LE(g.num_edges(), 24);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.35f);
  const RrCollection rr = RrCollection::Generate(ig, 150'000, 3);
  for (const std::vector<VertexId>& seeds :
       {std::vector<VertexId>{0}, {1, 2}, {0, 5, 9}}) {
    const double exact = ExactSpread(ig, seeds);
    EXPECT_NEAR(rr.EstimateSpread(seeds), exact,
                0.03 * std::max(1.0, exact));
  }
}

TEST(RrCollectionTest, ExtendMatchesSingleShot) {
  const Graph g = GenerateErdosRenyi(50, 0.05, 9);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.3f);
  RrCollection incremental = RrCollection::Generate(ig, 100, 77);
  incremental.Extend(ig, 150);
  const RrCollection oneshot = RrCollection::Generate(ig, 250, 77);
  ASSERT_EQ(incremental.theta(), oneshot.theta());
  for (int64_t i = 0; i < incremental.theta(); ++i) {
    EXPECT_EQ(incremental.root(i), oneshot.root(i)) << i;
    const auto a = incremental.Set(i);
    const auto b = oneshot.Set(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(RrCollectionTest, ThreadCountDoesNotChangeResults) {
  const Graph g = GenerateErdosRenyi(60, 0.05, 11);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.4f);
  SetNumThreads(1);
  const RrCollection serial = RrCollection::Generate(ig, 500, 5);
  SetNumThreads(4);
  const RrCollection parallel = RrCollection::Generate(ig, 500, 5);
  SetNumThreads(0);
  ASSERT_EQ(serial.theta(), parallel.theta());
  for (int64_t i = 0; i < serial.theta(); ++i) {
    const auto a = serial.Set(i);
    const auto b = parallel.Set(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << i;
  }
}

TEST(RrCollectionTest, InvertedIndexConsistent) {
  const Graph g = GenerateErdosRenyi(40, 0.08, 13);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.5f);
  const RrCollection rr = RrCollection::Generate(ig, 300, 7);
  int64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int64_t i : rr.SamplesContaining(v)) {
      const auto set = rr.Set(i);
      EXPECT_TRUE(std::find(set.begin(), set.end(), v) != set.end());
      ++total;
    }
  }
  EXPECT_EQ(total, rr.TotalSize());
}

// ----------------------------------------------------------------- MRR

class MrrFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(GenerateErdosRenyi(30, 0.1, 17));
    probs_ = std::make_unique<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 6, 2.0, 19));
    Rng rng(21);
    campaign_ = Campaign::SampleUniformPieces(3, 6, &rng);
    pieces_ = BuildPieceGraphs(*graph_, *probs_, campaign_);
    mrr_ = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces_, 2000, 23));
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<EdgeTopicProbs> probs_;
  Campaign campaign_;
  std::vector<InfluenceGraph> pieces_;
  std::unique_ptr<MrrCollection> mrr_;
};

TEST_F(MrrFixture, StructureBasics) {
  EXPECT_EQ(mrr_->theta(), 2000);
  EXPECT_EQ(mrr_->num_pieces(), 3);
  EXPECT_EQ(mrr_->num_vertices(), 30);
  EXPECT_NEAR(mrr_->UtilityScale(), 30.0 / 2000.0, 1e-15);
}

TEST_F(MrrFixture, EverySetContainsItsRoot) {
  for (int64_t i = 0; i < mrr_->theta(); ++i) {
    for (int j = 0; j < mrr_->num_pieces(); ++j) {
      const auto set = mrr_->Set(i, j);
      EXPECT_TRUE(std::find(set.begin(), set.end(), mrr_->root(i)) !=
                  set.end());
    }
  }
}

TEST_F(MrrFixture, InvertedIndexConsistent) {
  int64_t total = 0;
  for (int j = 0; j < mrr_->num_pieces(); ++j) {
    for (VertexId v = 0; v < mrr_->num_vertices(); ++v) {
      for (int64_t i : mrr_->SamplesContaining(j, v)) {
        const auto set = mrr_->Set(i, j);
        EXPECT_TRUE(std::find(set.begin(), set.end(), v) != set.end());
        ++total;
      }
    }
  }
  EXPECT_EQ(total, mrr_->TotalSize());
}

TEST_F(MrrFixture, RootsUniformlyDistributed) {
  std::vector<int> counts(mrr_->num_vertices(), 0);
  for (int64_t i = 0; i < mrr_->theta(); ++i) ++counts[mrr_->root(i)];
  const double expected =
      static_cast<double>(mrr_->theta()) / mrr_->num_vertices();
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 6.0 * std::sqrt(expected));
  }
}

/// Asserts a == b on every observable surface: roots, per-set contents
/// (offsets + nodes), and inverted-index queries — regardless of how
/// many index segments either side holds.
void ExpectMrrBitIdentical(const MrrCollection& a, const MrrCollection& b) {
  ASSERT_EQ(a.theta(), b.theta());
  ASSERT_EQ(a.num_pieces(), b.num_pieces());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.TotalSize(), b.TotalSize());
  for (int64_t i = 0; i < a.theta(); ++i) {
    EXPECT_EQ(a.root(i), b.root(i)) << i;
    for (int j = 0; j < a.num_pieces(); ++j) {
      const auto sa = a.Set(i, j);
      const auto sb = b.Set(i, j);
      ASSERT_EQ(sa.size(), sb.size()) << i << "," << j;
      EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()))
          << i << "," << j;
    }
  }
  for (int j = 0; j < a.num_pieces(); ++j) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_EQ(a.SamplesContaining(j, v), b.SamplesContaining(j, v))
          << j << "," << v;
    }
  }
}

class MrrExtendTest
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, int>> {};

TEST_P(MrrExtendTest, ExtendIsBitIdenticalToSingleShot) {
  const auto [model, threads] = GetParam();
  const Graph g = GenerateErdosRenyi(30, 0.1, 17);
  const EdgeTopicProbs probs = AssignWeightedCascadeTopics(g, 6, 2.0, 19);
  Rng rng(21);
  const Campaign campaign = Campaign::SampleUniformPieces(3, 6, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, campaign);

  SetNumThreads(threads);
  MrrCollection grown = MrrCollection::Generate(pieces, 400, 23, model);
  grown.Extend(pieces, 1000);
  grown.Extend(pieces, 1500);
  SetNumThreads(1);
  const MrrCollection oneshot =
      MrrCollection::Generate(pieces, 1500, 23, model);
  SetNumThreads(0);

  EXPECT_EQ(grown.num_index_segments(), 3);
  EXPECT_EQ(oneshot.num_index_segments(), 1);
  ExpectMrrBitIdentical(grown, oneshot);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, MrrExtendTest,
    ::testing::Combine(
        ::testing::Values(DiffusionModel::kIndependentCascade,
                          DiffusionModel::kLinearThreshold),
        ::testing::Values(1, 4)));

TEST(MrrCollectionTest, ExtendBelowThetaIsNoOp) {
  const Graph g = GenerateErdosRenyi(20, 0.1, 3);
  const EdgeTopicProbs probs = AssignWeightedCascadeTopics(g, 4, 2.0, 5);
  Rng rng(7);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 4, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, campaign);
  MrrCollection mc = MrrCollection::Generate(pieces, 200, 9);
  const int64_t generated = MrrCollection::GeneratedSampleCount();
  mc.Extend(pieces, 100);
  mc.Extend(pieces, 200);
  EXPECT_EQ(mc.theta(), 200);
  EXPECT_EQ(mc.num_index_segments(), 1);
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), generated);
}

TEST(MrrCollectionTest, ProvenanceAccessors) {
  const Graph g = GenerateErdosRenyi(20, 0.1, 3);
  const EdgeTopicProbs probs = AssignWeightedCascadeTopics(g, 4, 2.0, 5);
  Rng rng(7);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 4, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, campaign);
  const MrrCollection mc = MrrCollection::Generate(
      pieces, 50, 99, DiffusionModel::kLinearThreshold);
  EXPECT_TRUE(mc.extendable());
  EXPECT_EQ(mc.base_seed(), 99u);
  EXPECT_EQ(mc.model(), DiffusionModel::kLinearThreshold);

  // Legacy FromParts has no provenance and must refuse to extend.
  const MrrCollection parts = MrrCollection::FromParts(
      1, 1, 3, /*roots=*/{0}, /*offsets=*/{0, 1}, /*nodes=*/{0});
  EXPECT_FALSE(parts.extendable());
}

TEST(MrrCollectionTest, ThreadCountInvariance) {
  const Graph g = GenerateErdosRenyi(25, 0.1, 29);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(g, 4, 1.5, 31);
  Rng rng(33);
  const Campaign c = Campaign::SampleUniformPieces(2, 4, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, c);
  SetNumThreads(1);
  const MrrCollection serial = MrrCollection::Generate(pieces, 400, 35);
  SetNumThreads(5);
  const MrrCollection parallel = MrrCollection::Generate(pieces, 400, 35);
  SetNumThreads(0);
  for (int64_t i = 0; i < 400; ++i) {
    EXPECT_EQ(serial.root(i), parallel.root(i));
    for (int j = 0; j < 2; ++j) {
      const auto a = serial.Set(i, j);
      const auto b = parallel.Set(i, j);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

// -------------------------------------------------------- CoverageState

class CoverageFixture : public MrrFixture {
 protected:
  void SetUp() override {
    MrrFixture::SetUp();
    // Step-function f: counts pieces (makes sums easy to verify).
    f_ = {0.0, 1.0, 1.5, 1.75};
    state_ = std::make_unique<CoverageState>(mrr_.get(), f_);
  }

  std::vector<double> f_;
  std::unique_ptr<CoverageState> state_;
};

TEST_F(CoverageFixture, EmptyStateIsZero) {
  EXPECT_EQ(state_->Utility(), 0.0);
  EXPECT_EQ(state_->RawSum(), 0.0);
  EXPECT_EQ(state_->CountHistogram()[0], mrr_->theta());
}

TEST_F(CoverageFixture, AddRemoveIsInvolution) {
  state_->AddSeed(3, 0);
  state_->AddSeed(7, 1);
  const double after_two = state_->RawSum();
  state_->AddSeed(3, 2);
  state_->RemoveSeed(3, 2);
  EXPECT_DOUBLE_EQ(state_->RawSum(), after_two);
  state_->RemoveSeed(7, 1);
  state_->RemoveSeed(3, 0);
  EXPECT_DOUBLE_EQ(state_->RawSum(), 0.0);
  EXPECT_EQ(state_->CountHistogram()[0], mrr_->theta());
}

TEST_F(CoverageFixture, MultiplicityHandlesOverlappingSeeds) {
  // Two different seeds may cover the same (sample, piece); removing one
  // must keep the sample covered.
  state_->AddSeed(1, 0);
  state_->AddSeed(2, 0);
  const double both = state_->RawSum();
  state_->RemoveSeed(1, 0);
  state_->AddSeed(1, 0);
  EXPECT_DOUBLE_EQ(state_->RawSum(), both);
}

TEST_F(CoverageFixture, RawSumMatchesDirectComputation) {
  state_->AddSeed(5, 0);
  state_->AddSeed(5, 1);
  state_->AddSeed(12, 2);
  double direct = 0.0;
  for (int64_t i = 0; i < mrr_->theta(); ++i) {
    int count = 0;
    for (int j = 0; j < 3; ++j) {
      const VertexId seed = (j == 2) ? 12 : 5;
      const auto set = mrr_->Set(i, j);
      count += std::find(set.begin(), set.end(), seed) != set.end();
    }
    direct += f_[count];
  }
  EXPECT_NEAR(state_->RawSum(), direct, 1e-9);
}

TEST_F(CoverageFixture, HistogramTracksCounts) {
  state_->AddSeed(5, 0);
  const auto& hist = state_->CountHistogram();
  int64_t total = 0;
  for (int64_t h : hist) total += h;
  EXPECT_EQ(total, mrr_->theta());
  EXPECT_EQ(hist[1],
            static_cast<int64_t>(mrr_->SamplesContaining(0, 5).size()));
}

TEST_F(CoverageFixture, GainOfAddingMatchesActualAdd) {
  state_->AddSeed(9, 1);
  const double predicted = state_->GainOfAdding(4, 1);
  const double before = state_->Utility();
  state_->AddSeed(4, 1);
  EXPECT_NEAR(state_->Utility() - before, predicted, 1e-9);
}

TEST_F(CoverageFixture, ClearResetsEverything) {
  state_->AddSeed(5, 0);
  state_->AddSeed(6, 1);
  state_->Clear();
  EXPECT_EQ(state_->RawSum(), 0.0);
  EXPECT_EQ(state_->CountHistogram()[0], mrr_->theta());
  // State is reusable after Clear.
  state_->AddSeed(5, 0);
  EXPECT_GT(state_->RawSum(), 0.0);
}

TEST_F(CoverageFixture, SnapshotRestoreRoundTrips) {
  state_->AddSeed(3, 0);
  state_->AddSeed(7, 1);
  const double sum_before = state_->RawSum();
  const std::vector<int64_t> hist_before = state_->CountHistogram();
  std::vector<int> counts_before(mrr_->theta());
  for (int64_t i = 0; i < mrr_->theta(); ++i) {
    counts_before[i] = state_->CoverCount(i);
  }

  state_->Snapshot();
  EXPECT_EQ(state_->snapshot_depth(), 1);
  state_->AddSeed(5, 0);
  state_->AddSeed(5, 2);
  state_->RemoveSeed(7, 1);  // mixed adds and removes inside the scope
  state_->AddSeed(12, 1);
  state_->RemoveSeed(12, 1);  // add-then-remove of the same seed
  EXPECT_NE(state_->RawSum(), sum_before);
  state_->Restore();
  EXPECT_EQ(state_->snapshot_depth(), 0);

  EXPECT_DOUBLE_EQ(state_->RawSum(), sum_before);
  EXPECT_EQ(state_->CountHistogram(), hist_before);
  for (int64_t i = 0; i < mrr_->theta(); ++i) {
    EXPECT_EQ(state_->CoverCount(i), counts_before[i]) << "sample " << i;
  }
  // The state stays fully usable: the pre-snapshot seeds remove cleanly.
  state_->RemoveSeed(7, 1);
  state_->RemoveSeed(3, 0);
  EXPECT_DOUBLE_EQ(state_->RawSum(), 0.0);
}

TEST_F(CoverageFixture, SnapshotsNestLifo) {
  state_->AddSeed(3, 0);
  const double level0 = state_->RawSum();
  state_->Snapshot();
  state_->AddSeed(5, 1);
  const double level1 = state_->RawSum();
  state_->Snapshot();
  state_->AddSeed(9, 2);
  EXPECT_EQ(state_->snapshot_depth(), 2);
  state_->Restore();
  EXPECT_DOUBLE_EQ(state_->RawSum(), level1);
  state_->Restore();
  EXPECT_DOUBLE_EQ(state_->RawSum(), level0);
}

TEST_F(CoverageFixture, GainAndBoundDominatesGainAndShrinks) {
  // f = {0, 1, 1.5, 1.75} has decreasing marginals, so initially the
  // bound equals the gain; after adds the bound stays >= the fresh gain.
  const auto [gain0, bound0] = state_->GainAndBoundOfAdding(4, 1);
  EXPECT_DOUBLE_EQ(gain0, state_->GainOfAdding(4, 1));
  EXPECT_GE(bound0 + 1e-12, gain0);
  state_->AddSeed(9, 1);
  state_->AddSeed(3, 0);
  const auto [gain1, bound1] = state_->GainAndBoundOfAdding(4, 1);
  EXPECT_DOUBLE_EQ(gain1, state_->GainOfAdding(4, 1));
  EXPECT_GE(bound1 + 1e-12, gain1);
  // Forward validity: the old bound still dominates the fresh gain.
  EXPECT_GE(bound0 + 1e-12, gain1);
}

TEST_F(CoverageFixture, ExtendToCollectionMatchesFreshState) {
  // Apply a plan, grow the collection, rebind incrementally; everything
  // observable must match a freshly constructed state over the grown
  // collection with the same seeds re-added.
  const std::vector<std::pair<int, VertexId>> plan = {
      {0, 3}, {1, 7}, {2, 3}, {0, 12}};
  for (const auto& [piece, v] : plan) state_->AddSeed(v, piece);

  mrr_->Extend(pieces_, 5000);
  state_->ExtendToCollection(plan);

  CoverageState fresh(mrr_.get(), f_);
  for (const auto& [piece, v] : plan) fresh.AddSeed(v, piece);

  EXPECT_DOUBLE_EQ(state_->RawSum(), fresh.RawSum());
  EXPECT_EQ(state_->CountHistogram(), fresh.CountHistogram());
  for (int64_t i = 0; i < mrr_->theta(); ++i) {
    ASSERT_EQ(state_->CoverCount(i), fresh.CoverCount(i)) << i;
    for (int j = 0; j < mrr_->num_pieces(); ++j) {
      ASSERT_EQ(state_->IsCovered(i, j), fresh.IsCovered(i, j))
          << i << "," << j;
    }
  }
  // The rebound state keeps full functionality: gains agree and seeds
  // remove cleanly down to zero.
  EXPECT_DOUBLE_EQ(state_->GainOfAdding(5, 1), fresh.GainOfAdding(5, 1));
  for (const auto& [piece, v] : plan) state_->RemoveSeed(v, piece);
  EXPECT_DOUBLE_EQ(state_->RawSum(), 0.0);
  EXPECT_EQ(state_->CountHistogram()[0], mrr_->theta());
}

TEST_F(CoverageFixture, ExtendToCollectionWithEmptyPlan) {
  state_->AddSeed(3, 0);
  state_->RemoveSeed(3, 0);
  state_->Clear();
  mrr_->Extend(pieces_, 4000);
  state_->ExtendToCollection();
  EXPECT_EQ(state_->CountHistogram()[0], mrr_->theta());
  EXPECT_DOUBLE_EQ(state_->RawSum(), 0.0);
  // Utility scale now reflects the grown theta.
  state_->AddSeed(3, 0);
  CoverageState fresh(mrr_.get(), f_);
  fresh.AddSeed(3, 0);
  EXPECT_DOUBLE_EQ(state_->Utility(), fresh.Utility());
}

TEST_F(CoverageFixture, GainBoundIsForwardValidUnderIncreasingMarginals) {
  // Convex-then-flat f: the second piece is worth more than the first,
  // so plain stale gains would UNDER-estimate later gains. The suffix-max
  // bound must still dominate every future gain of an add-only run.
  CoverageState state(mrr_.get(), {0.0, 0.1, 1.0, 1.2});
  const auto [gain0, bound0] = state.GainAndBoundOfAdding(4, 1);
  state.AddSeed(9, 0);
  state.AddSeed(3, 2);
  state.AddSeed(11, 0);
  const double fresh = state.GainOfAdding(4, 1);
  EXPECT_GE(bound0 + 1e-12, fresh);
  (void)gain0;
}

// ----------------------------------------------------- CoverageKernels

// Randomized posting arrays for the kernel equivalence suite: sizes
// deliberately straddle the SIMD block width (full blocks, a ragged
// tail, and tiny spans the vector path never touches).
struct KernelArrays {
  std::vector<int64_t> ids;
  std::vector<uint16_t> mult;
  std::vector<uint8_t> cover_count;
  std::vector<uint32_t> greedy_epoch;
  std::vector<uint32_t> line_epoch;
  std::vector<double> line_value;
  std::vector<double> delta_f;
  std::vector<double> delta_f_sufmax;
  std::vector<double> anchor_by_count;
  std::vector<double> slope_by_count;

  KernelArrays(int64_t theta, int ell, uint64_t seed) {
    Rng rng(seed);
    mult.resize(theta);
    cover_count.resize(theta);
    greedy_epoch.resize(theta);
    line_epoch.resize(theta);
    line_value.resize(theta);
    for (int64_t i = 0; i < theta; ++i) {
      mult[i] = static_cast<uint16_t>(rng.Next() % 3);  // ~1/3 uncovered
      cover_count[i] = static_cast<uint8_t>(rng.Next() % (ell + 1));
      greedy_epoch[i] = static_cast<uint32_t>(rng.Next() % 3);
      line_epoch[i] = static_cast<uint32_t>(rng.Next() % 3);
      line_value[i] =
          static_cast<double>(rng.Next() % 2048) / 1024.0;  // may exceed 1
    }
    // Non-uniform postings with duplicates and arbitrary order — the
    // kernels must not assume sorted or unique sample ids.
    for (int64_t i = 0; i < theta / 2; ++i) {
      ids.push_back(static_cast<int64_t>(rng.Next() % theta));
    }
    delta_f.resize(ell + 1);
    delta_f_sufmax.resize(ell + 1);
    anchor_by_count.resize(ell + 1);
    slope_by_count.resize(ell + 1);
    for (int c = 0; c <= ell; ++c) {
      delta_f[c] = static_cast<double>(rng.Next() % 1000) / 997.0;
      anchor_by_count[c] = static_cast<double>(rng.Next() % 1500) / 1024.0;
      slope_by_count[c] = static_cast<double>(rng.Next() % 1000) / 1024.0;
    }
    delta_f.back() = 0.0;  // the padded "fully covered" entry
    double run = 0.0;
    for (int c = ell; c >= 0; --c) {
      run = std::max(run, delta_f[c]);
      delta_f_sufmax[c] = run;
    }
  }
};

// Bitwise equality: EXPECT_EQ on doubles would already be exact, but
// comparing the bit patterns also distinguishes -0.0 from +0.0 — the
// accumulators must never produce a negative zero.
uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

TEST(CoverageKernelsTest, DispatchedKernelsMatchScalarBitForBit) {
  // Spans: empty, singleton, sub-block, exactly one block, block+tail,
  // several blocks. On AVX2 hardware the dispatched side runs the
  // vector clones (SimdKernelsActive() unless OIPA_NO_SIMD is set); on
  // anything else both sides are the same scalar code and the test
  // degenerates to a tautology — CI's release leg covers the real case.
  for (const int64_t span : {0, 1, 37, 128, 131, 1000}) {
    for (const uint64_t seed : {7u, 21u, 63u}) {
      KernelArrays a(std::max<int64_t>(span, 1), 3, seed ^ span);
      const std::span<const int64_t> ids(a.ids.data(),
                                         std::min<size_t>(span, a.ids.size()));
      const double acc = 0.625;  // nonzero carried-in accumulator

      const double gain_simd = CoverageGainSum(
          ids, a.mult.data(), a.cover_count.data(), a.delta_f.data(), acc);
      const double gain_ref = CoverageGainSumScalar(
          ids, a.mult.data(), a.cover_count.data(), a.delta_f.data(), acc);
      EXPECT_EQ(Bits(gain_simd), Bits(gain_ref)) << span << "/" << seed;

      double g1 = acc, b1 = acc, g2 = acc, b2 = acc;
      CoverageGainBoundSum(ids, a.mult.data(), a.cover_count.data(),
                           a.delta_f.data(), a.delta_f_sufmax.data(), &g1,
                           &b1);
      CoverageGainBoundSumScalar(ids, a.mult.data(), a.cover_count.data(),
                                 a.delta_f.data(), a.delta_f_sufmax.data(),
                                 &g2, &b2);
      EXPECT_EQ(Bits(g1), Bits(g2)) << span << "/" << seed;
      EXPECT_EQ(Bits(b1), Bits(b2)) << span << "/" << seed;
      EXPECT_EQ(Bits(g1), Bits(gain_simd)) << "gain paths diverged";

      for (const uint32_t epoch : {0u, 1u, 2u}) {
        const double t1 = TangentGainSum(
            ids, a.mult.data(), a.greedy_epoch.data(), epoch,
            a.line_epoch.data(), a.line_value.data(), a.cover_count.data(),
            a.anchor_by_count.data(), a.slope_by_count.data(), acc);
        const double t2 = TangentGainSumScalar(
            ids, a.mult.data(), a.greedy_epoch.data(), epoch,
            a.line_epoch.data(), a.line_value.data(), a.cover_count.data(),
            a.anchor_by_count.data(), a.slope_by_count.data(), acc);
        EXPECT_EQ(Bits(t1), Bits(t2)) << span << "/" << seed << "@" << epoch;
      }
    }
  }
}

TEST(CoverageKernelsTest, AccumulatorCarriesAcrossSplitSpans) {
  // Splitting one posting span at an arbitrary point and chaining the
  // accumulator must reproduce the unsplit sum exactly — the property
  // that makes grown (segmented) collections bit-identical to fresh
  // ones.
  KernelArrays a(500, 3, 11);
  const std::span<const int64_t> all(a.ids);
  const double whole = CoverageGainSum(all, a.mult.data(),
                                       a.cover_count.data(),
                                       a.delta_f.data(), 0.0);
  for (const size_t cut : {size_t{1}, size_t{100}, size_t{128}, size_t{200}}) {
    const double head = CoverageGainSum(all.subspan(0, cut), a.mult.data(),
                                        a.cover_count.data(),
                                        a.delta_f.data(), 0.0);
    const double chained = CoverageGainSum(all.subspan(cut), a.mult.data(),
                                           a.cover_count.data(),
                                           a.delta_f.data(), head);
    EXPECT_EQ(Bits(chained), Bits(whole)) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace oipa
