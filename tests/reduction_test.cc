#include <gtest/gtest.h>

#include <cmath>

#include "oipa/adoption.h"
#include "oipa/branch_and_bound.h"
#include "oipa/reduction.h"
#include "rrset/mrr_collection.h"

namespace oipa {
namespace {

/// Small clique instances: (n, edges, known max clique size).
struct CliqueCase {
  int n;
  std::vector<std::pair<int, int>> edges;
  int max_clique;
};

std::vector<CliqueCase> MakeCases() {
  return {
      // Triangle.
      {3, {{0, 1}, {1, 2}, {0, 2}}, 3},
      // Path of 4: max clique is an edge.
      {4, {{0, 1}, {1, 2}, {2, 3}}, 2},
      // K4.
      {4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4},
      // Triangle plus pendant.
      {4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, 3},
      // Two disjoint edges.
      {4, {{0, 1}, {2, 3}}, 2},
      // 5-cycle: max clique 2.
      {5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 2},
      // K5 minus one edge: max clique 4.
      {5,
       {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3},
        {2, 4}},
       4},
  };
}

TEST(ReductionTest, StructureMatchesSectionFour) {
  const CliqueCase c = MakeCases()[0];  // triangle
  const MaxCliqueReduction red(c.n, c.edges);
  const Graph& g = red.graph();
  EXPECT_EQ(g.num_vertices(), 3 * c.n);
  EXPECT_EQ(red.campaign().num_pieces(), c.n);

  // x_i has out-edges to r_i and r_j for each neighbor j; y_i to all
  // r_j except r_i; r vertices have no out-edges.
  for (int i = 0; i < c.n; ++i) {
    EXPECT_EQ(g.OutDegree(red.XVertex(i)), 3);  // triangle: self + 2 nbrs
    EXPECT_EQ(g.OutDegree(red.YVertex(i)), c.n - 1);
    EXPECT_EQ(g.OutDegree(red.RVertex(i)), 0);
  }
}

TEST(ReductionTest, ModelParametersMatchStepFive) {
  // alpha = 2n ln(2n), beta = 2 ln(2n): a vertex receiving all n pieces
  // adopts with probability exactly 1/2; with at most n-1 pieces the
  // probability is at most 1/(1+(2n)^2).
  for (int n : {3, 4, 5, 8}) {
    MaxCliqueReduction red(n, {{0, 1}});
    const LogisticAdoptionModel m = red.model();
    EXPECT_NEAR(m.AdoptionProb(n), 0.5, 1e-12) << n;
    const double cap = 1.0 / (1.0 + std::pow(2.0 * n, 2.0));
    EXPECT_LE(m.AdoptionProb(n - 1), cap + 1e-12) << n;
  }
}

TEST(ReductionTest, ExactMaxCliqueOnKnownCases) {
  for (const CliqueCase& c : MakeCases()) {
    const MaxCliqueReduction red(c.n, c.edges);
    EXPECT_EQ(red.ExactMaxClique(), c.max_clique);
  }
}

TEST(ReductionTest, Lemma1Sandwich) {
  // 2*OPT(Pi_b) - 1/n <= OPT(Pi_a) <= 2*OPT(Pi_b).
  for (const CliqueCase& c : MakeCases()) {
    const MaxCliqueReduction red(c.n, c.edges);
    const double opt_b = red.ExactOipaOpt();
    const double opt_a = static_cast<double>(red.ExactMaxClique());
    EXPECT_LE(opt_a, 2.0 * opt_b + 1e-9) << "n=" << c.n;
    EXPECT_GE(opt_a, 2.0 * opt_b - 1.0 / c.n - 1e-9) << "n=" << c.n;
  }
}

TEST(ReductionTest, CliquePlanUtilityCountsCliqueMembers) {
  // For the triangle, choosing all x promoters lets every r vertex
  // receive all 3 pieces: utility = 3 * 1/2, plus the 3 seeds that each
  // receive their own piece.
  const CliqueCase c = MakeCases()[0];
  const MaxCliqueReduction red(c.n, c.edges);
  const LogisticAdoptionModel m = red.model();
  const double seed_term = 3.0 * m.AdoptionProb(1);
  EXPECT_NEAR(red.UtilityOfCliquePlan({0, 1, 2}), 1.5 + seed_term, 1e-9);
  // Empty clique: all y promoters; every r vertex receives n-1 pieces.
  EXPECT_NEAR(red.UtilityOfCliquePlan({}),
              3.0 * m.AdoptionProb(2) + seed_term, 1e-12);
}

TEST(ReductionTest, ExactUtilityAgreesWithGenericEvaluator) {
  // Cross-check the closed-form clique-plan utility against the generic
  // exact adoption evaluator on the gadget's piece graphs.
  const CliqueCase c = MakeCases()[1];  // path of 4, m = 3*4-ish edges
  const MaxCliqueReduction red(c.n, c.edges);
  const auto pieces = red.PieceGraphs();
  // Plan: x for {1, 2} (the middle edge), y elsewhere.
  AssignmentPlan plan(c.n);
  for (int i = 0; i < c.n; ++i) {
    const bool in_clique = (i == 1 || i == 2);
    plan.Add(i, in_clique ? red.XVertex(i) : red.YVertex(i));
  }
  if (red.graph().num_edges() <= 24) {
    const double generic =
        ExactAdoptionUtility(pieces, red.model(), plan);
    EXPECT_NEAR(generic, red.UtilityOfCliquePlan({1, 2}), 1e-9);
  }
}

TEST(ReductionTest, BabRecoversTriangleCliquePlan) {
  // End-to-end: run the actual BAB solver on the gadget (deterministic
  // probabilities make theta small and safe) and check it finds the
  // all-x plan for the triangle, i.e. the maximum clique.
  const CliqueCase c = MakeCases()[0];
  const MaxCliqueReduction red(c.n, c.edges);
  const auto pieces = red.PieceGraphs();
  const MrrCollection mrr = MrrCollection::Generate(pieces, 30'000, 5);
  BabOptions opts;
  opts.budget = c.n;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  BabSolver solver(&mrr, red.model(), red.PromoterPools(), opts);
  const BabResult res = solver.Solve();
  EXPECT_TRUE(res.converged);
  // Optimal utility: all three r vertices adopt with probability 1/2.
  EXPECT_NEAR(res.utility, 1.5, 0.05);
  for (int i = 0; i < c.n; ++i) {
    EXPECT_TRUE(res.plan.Contains(i, red.XVertex(i)))
        << res.plan.DebugString();
  }
}

}  // namespace
}  // namespace oipa
