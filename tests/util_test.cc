#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/math.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/threading.h"

namespace oipa {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

Status FailingHelper() { return Status::IoError("disk"); }
Status PropagatingHelper() {
  OIPA_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- Random

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t x = rng.NextBounded(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(23);
  for (double shape : {0.5, 1.0, 3.0}) {
    RunningStats stats;
    for (int i = 0; i < 100'000; ++i) stats.Add(rng.NextGamma(shape));
    EXPECT_NEAR(stats.mean(), shape, 0.05 * std::max(1.0, shape))
        << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(29);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const std::vector<double> v = rng.NextDirichlet(8, alpha);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SampleDiscreteTest, RespectsWeights) {
  Rng rng(37);
  const std::vector<double> w{0.0, 2.0, 1.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 90'000; ++i) ++counts[SampleDiscrete(w, &rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.1);
}

// ------------------------------------------------------------------ Math

TEST(MathTest, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-1.0) + Sigmoid(1.0), 1.0, 1e-15);  // symmetry
  EXPECT_GE(Sigmoid(50.0), 1.0 - 1e-20);
  EXPECT_LT(Sigmoid(-50.0), 1e-20);
}

TEST(MathTest, SigmoidNumericallyStableAtExtremes) {
  EXPECT_FALSE(std::isnan(Sigmoid(-1000.0)));
  EXPECT_FALSE(std::isnan(Sigmoid(1000.0)));
  EXPECT_EQ(Sigmoid(-1000.0), 0.0);
  EXPECT_EQ(Sigmoid(1000.0), 1.0);
}

TEST(MathTest, LogitInvertsSigmoid) {
  for (double x : {-4.0, -0.5, 0.0, 2.0, 6.0}) {
    EXPECT_NEAR(Logit(Sigmoid(x)), x, 1e-9);
  }
}

TEST(MathTest, SigmoidDerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (double x : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    const double fd = (Sigmoid(x + h) - Sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(SigmoidDerivative(x), fd, 1e-8);
  }
}

TEST(MathTest, LogBinomialSmallValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-9);
  EXPECT_LT(LogBinomial(10, 11), -1e100);  // invalid -> -inf marker
}

TEST(MathTest, NearlyEqualRelativeTolerance) {
  EXPECT_TRUE(NearlyEqual(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1, 1e-8));
  EXPECT_TRUE(NearlyEqual(0.0, 1e-12, 1e-9));
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatsTest, MeanVarianceKnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(CorrelationTest, PerfectAndInverse) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  const std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesIsZero) {
  const std::vector<double> x{1, 1, 1, 1};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(CorrelationTest, SpearmanInvariantToMonotoneTransform) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // nonlinear monotone
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(PowerLawMleTest, RecoversKnownExponent) {
  // Inverse-CDF sampling from a continuous power law with alpha = 2.5.
  Rng rng(41);
  std::vector<double> samples;
  const double alpha = 2.5;
  for (int i = 0; i < 200'000; ++i) {
    double u = rng.NextDouble();
    while (u <= 0.0) u = rng.NextDouble();
    samples.push_back(std::pow(u, -1.0 / (alpha - 1.0)));
  }
  EXPECT_NEAR(PowerLawExponentMle(samples, 1.0), alpha, 0.05);
}

TEST(PowerLawMleTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(PowerLawExponentMle({}, 1.0), 0.0);
  EXPECT_EQ(PowerLawExponentMle({1.0, 1.0}, 1.0), 0.0);
}

// ----------------------------------------------------------------- Flags

TEST(FlagParserTest, ParsesAllForms) {
  // A bare "--flag" followed by a non-flag token consumes it as its
  // value ("--key value" form), so "positional" precedes the flags.
  const char* argv[] = {"prog",   "positional", "--k=25",
                        "--name", "dblp",       "--eps=0.5",
                        "--verbose"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 25);
  EXPECT_EQ(flags.GetString("name", ""), "dblp");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 42), 42);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_FALSE(flags.Has("k"));
}

TEST(FlagParserTest, ParsesLists) {
  const char* argv[] = {"prog", "--k=10,20,30", "--eps=0.1,0.9"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetIntList("k", {}),
            (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(flags.GetDoubleList("eps", {}),
            (std::vector<double>{0.1, 0.9}));
  EXPECT_EQ(flags.GetIntList("missing", {7}), (std::vector<int64_t>{7}));
}

// ----------------------------------------------------------------- Table

TEST(TextTableTest, CsvRoundtrip) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

// ------------------------------------------------------------- Threading

TEST(ThreadingTest, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](int, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadingTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, [&](int, int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadingTest, SingleThreadOverrideRunsInline) {
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  int shards = 0;
  ParallelFor(100, [&](int shard, int64_t, int64_t) {
    EXPECT_EQ(shard, 0);
    ++shards;
  });
  EXPECT_EQ(shards, 1);
  SetNumThreads(0);  // restore auto
}

// ----------------------------------------------------- Mutex / CondVar

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (plain int64_t: races would tear)
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&mu] {
    EXPECT_FALSE(mu.TryLock());  // held by the main thread
  });
  other.join();
  mu.AssertHeld();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());  // free again
  mu.Unlock();
}

TEST(MutexTest, AssertHeldPassesForTheHolder) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not abort
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNeverLocked) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(MutexDeathTest, AssertHeldAbortsAfterUnlock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(MutexDeathTest, AssertHeldAbortsForANonHolderThread) {
  // The owner tag must identify the holding *thread*, not merely a
  // locked state: a different thread asserting on a held mutex dies.
  EXPECT_DEATH(
      {
        Mutex mu;
        mu.Lock();
        std::thread holder_checker([&mu] { mu.AssertHeld(); });
        holder_checker.join();
      },
      "AssertHeld");
}

TEST(MutexTest, ReleasableLockSurvivesUnlockRelockCycles) {
  Mutex mu;
  int value = 0;
  {
    ReleasableMutexLock lock(&mu);
    value = 1;
    lock.Unlock();
    // While released, another thread can take the mutex.
    std::thread other([&mu] { MutexLock inner(&mu); });
    other.join();
    lock.Lock();
    mu.AssertHeld();
    value = 2;
  }  // destructor unlocks the re-taken mutex
  ASSERT_TRUE(mu.TryLock());  // fully released on scope exit
  mu.Unlock();
  EXPECT_EQ(value, 2);
}

TEST(MutexTest, ReleasableLockDestructorSkipsReleasedMutex) {
  Mutex mu;
  {
    ReleasableMutexLock lock(&mu);
    lock.Unlock();
  }  // destructor must not unlock an already-released mutex
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // Wait() re-acquired the mutex: the owner tag must say so.
    mu.AssertHeld();
  });
  {
    // The waiter releases mu while blocked, so this lock is obtainable
    // even before the notify.
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(woken, kWaiters);
}

}  // namespace
}  // namespace oipa
