#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"
#include "graph/generators.h"
#include "learn/action_log.h"
#include "learn/tic_learner.h"
#include "oipa/adoption.h"
#include "oipa/baselines.h"
#include "oipa/branch_and_bound.h"
#include "rrset/mrr_collection.h"
#include "topic/lda.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

/// A compact lastfm-flavored end-to-end environment used by the
/// integration suite (smaller than the real dataset so the whole file
/// runs in seconds).
class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeDatasetByName("lastfm", 1.0, 5);
    // Shrink further for test speed: use the first 400 vertices' induced
    // behavior implicitly via a small theta.
    Rng rng(7);
    campaign_ = Campaign::SampleUniformPieces(3, dataset_.num_topics, &rng);
    pieces_ = BuildPieceGraphs(*dataset_.graph, *dataset_.probs, campaign_);
    mrr_ = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces_, 20'000, 11));
    model_ = std::make_unique<LogisticAdoptionModel>(2.0, 1.0);
  }

  Dataset dataset_;
  Campaign campaign_;
  std::vector<InfluenceGraph> pieces_;
  std::unique_ptr<MrrCollection> mrr_;
  std::unique_ptr<LogisticAdoptionModel> model_;
};

TEST_F(PipelineFixture, AllFourMethodsRunAndRank) {
  const int k = 10;
  const BaselineResult im =
      ImBaseline(*dataset_.graph, *dataset_.probs, campaign_, *mrr_,
                 *model_, dataset_.promoter_pool, k, 5000, 13);
  const BaselineResult tim =
      TimBaseline(*dataset_.graph, *dataset_.probs, campaign_, *mrr_,
                  *model_, dataset_.promoter_pool, k, 5000, 17);
  BabOptions opts;
  opts.budget = k;
  const BabResult bab =
      BabSolver(mrr_.get(), *model_, dataset_.promoter_pool, opts).Solve();
  BabOptions pro_opts = opts;
  pro_opts.progressive = true;
  const BabResult bab_p =
      BabSolver(mrr_.get(), *model_, dataset_.promoter_pool, pro_opts)
          .Solve();

  // The paper's headline ordering: BAB(-P) above both baselines; TIM
  // above IM (topic-aware helps).
  EXPECT_GT(bab.utility, 0.0);
  EXPECT_GE(bab.utility * 1.001, im.utility);
  EXPECT_GE(bab.utility * 1.001, tim.utility);
  EXPECT_GE(bab_p.utility * 1.05, bab.utility * 0.9);
  EXPECT_GE(tim.utility * 1.2, im.utility);  // TIM ~>= IM with slack
}

TEST_F(PipelineFixture, MrrEstimateAgreesWithForwardSimulation) {
  BabOptions opts;
  opts.budget = 8;
  const BabResult bab =
      BabSolver(mrr_.get(), *model_, dataset_.promoter_pool, opts).Solve();
  // Evaluate the chosen plan on HELD-OUT samples: the optimizer's own
  // estimate is biased upward (it selected the plan that maximizes it),
  // but a fresh collection is unbiased and must agree with simulation.
  const MrrCollection holdout =
      MrrCollection::Generate(pieces_, 20'000, 999);
  const double est = EstimateAdoptionUtility(holdout, *model_, bab.plan);
  const double sim = SimulateAdoptionUtility(pieces_, *model_, bab.plan,
                                             3000, 19);
  EXPECT_NEAR(sim, est, 0.12 * std::max(1.0, est));
}

TEST_F(PipelineFixture, UtilityGrowsWithBudget) {
  double prev = 0.0;
  for (int k : {2, 5, 10, 20}) {
    BabOptions opts;
    opts.budget = k;
    opts.progressive = true;
    const BabResult res =
        BabSolver(mrr_.get(), *model_, dataset_.promoter_pool, opts)
            .Solve();
    EXPECT_GE(res.utility + 1e-6, prev)
        << "utility must be monotone in k (k=" << k << ")";
    prev = res.utility;
  }
}

TEST(IntegrationTest, UtilityGrowsWithPieces) {
  // Fig. 5 qualitative check: more pieces => more utility for BAB.
  const Dataset ds = MakeDatasetByName("lastfm", 1.0, 23);
  const LogisticAdoptionModel model(2.0, 1.0);
  double prev = 0.0;
  for (int ell : {1, 3, 5}) {
    Rng rng(29);
    const Campaign campaign =
        Campaign::SampleUniformPieces(ell, ds.num_topics, &rng);
    const auto pieces = BuildPieceGraphs(*ds.graph, *ds.probs, campaign);
    const MrrCollection mrr = MrrCollection::Generate(pieces, 10'000, 31);
    BabOptions opts;
    opts.budget = 10;
    opts.progressive = true;
    const BabResult res =
        BabSolver(&mrr, model, ds.promoter_pool, opts).Solve();
    EXPECT_GE(res.utility, prev * 0.98) << "ell=" << ell;
    prev = res.utility;
  }
}

TEST(IntegrationTest, UtilityGrowsWithBetaOverAlpha) {
  // Fig. 6 qualitative check: larger beta/alpha (easier adoption) =>
  // higher utility.
  const Dataset ds = MakeDatasetByName("lastfm", 1.0, 37);
  Rng rng(41);
  const Campaign campaign =
      Campaign::SampleUniformPieces(3, ds.num_topics, &rng);
  const auto pieces = BuildPieceGraphs(*ds.graph, *ds.probs, campaign);
  const MrrCollection mrr = MrrCollection::Generate(pieces, 10'000, 43);
  double prev = 0.0;
  for (double ratio : {0.3, 0.5, 0.7}) {
    const LogisticAdoptionModel model(1.0 / ratio, 1.0);
    BabOptions opts;
    opts.budget = 10;
    opts.progressive = true;
    const BabResult res =
        BabSolver(&mrr, model, ds.promoter_pool, opts).Solve();
    EXPECT_GT(res.utility, prev) << "beta/alpha=" << ratio;
    prev = res.utility;
  }
}

TEST(IntegrationTest, LearningPipelineProducesUsableProbabilities) {
  // generate truth -> simulate action log -> learn -> optimize on the
  // learned model; the resulting plan must be decent under the truth.
  const Graph g = GenerateHolmeKim(250, 4, 0.4, 47);
  const EdgeTopicProbs truth =
      AssignWeightedCascadeTopics(g, 5, 2.0, 53);
  const ActionLog log = GenerateActionLog(g, truth, 400, 3, 59);
  TicLearnerOptions lopts;
  lopts.iterations = 4;
  const EdgeTopicProbs learned = LearnTicProbabilities(g, log, 5, lopts);

  Rng rng(61);
  const Campaign campaign = Campaign::SampleUniformPieces(3, 5, &rng);
  const LogisticAdoptionModel model(2.0, 1.0);
  const auto learned_pieces = BuildPieceGraphs(g, learned, campaign);
  const auto truth_pieces = BuildPieceGraphs(g, truth, campaign);

  const MrrCollection learned_mrr =
      MrrCollection::Generate(learned_pieces, 8000, 67);
  std::vector<VertexId> pool = SamplePromoterPool(250, 0.2, 71);
  BabOptions opts;
  opts.budget = 6;
  opts.progressive = true;
  const BabResult planned =
      BabSolver(&learned_mrr, model, pool, opts).Solve();

  // Evaluate the learned-model plan under the TRUE model and compare to
  // a random plan of the same size.
  const double planned_truth = SimulateAdoptionUtility(
      truth_pieces, model, planned.plan, 2000, 73);
  AssignmentPlan random_plan(3);
  Rng prng(79);
  while (random_plan.size() < 6) {
    random_plan.Add(static_cast<int>(prng.NextBounded(3)),
                    pool[prng.NextBounded(pool.size())]);
  }
  const double random_truth = SimulateAdoptionUtility(
      truth_pieces, model, random_plan, 2000, 83);
  EXPECT_GT(planned_truth, random_truth);
}

TEST(IntegrationTest, LdaDrivenTweetPipeline) {
  // Hashtag documents -> LDA profiles -> affinity probabilities -> OIPA.
  const int kUsers = 300, kTopics = 5;
  std::vector<TopicVector> unused;
  const Corpus corpus =
      GenerateSyntheticCorpus(kUsers, kTopics, 250, 30, 89, &unused);
  LdaOptions lda_opts;
  lda_opts.num_topics = kTopics;
  lda_opts.iterations = 30;
  lda_opts.seed = 97;
  LdaModel lda(lda_opts);
  lda.Train(corpus);
  std::vector<TopicVector> profiles;
  profiles.reserve(kUsers);
  for (int d = 0; d < kUsers; ++d) profiles.push_back(lda.DocumentTopics(d));

  const Graph g = GenerateRetweetForest(kUsers, 1.5, 101);
  const EdgeTopicProbs probs = AssignAffinityTopics(g, profiles, 2, 1.0);
  Rng rng(103);
  const Campaign campaign = Campaign::SampleUniformPieces(3, kTopics, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, campaign);
  const MrrCollection mrr = MrrCollection::Generate(pieces, 5000, 107);
  const LogisticAdoptionModel model(2.0, 1.0);
  std::vector<VertexId> pool = SamplePromoterPool(kUsers, 0.2, 109);
  BabOptions opts;
  opts.budget = 5;
  opts.progressive = true;
  const BabResult res = BabSolver(&mrr, model, pool, opts).Solve();
  EXPECT_GT(res.utility, 0.0);
  EXPECT_LE(res.plan.size(), 5);
}

}  // namespace
}  // namespace oipa
