#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/cascade.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {
namespace {

TEST(CascadeTest, DeterministicEdgesActivateEverythingReachable) {
  const Graph g = MakePath(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  Rng rng(1);
  const auto active = SimulateCascade(ig, {0}, &rng);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(active[v], 1) << v;
}

TEST(CascadeTest, ZeroProbabilityActivatesOnlySeeds) {
  const Graph g = MakeCompleteDigraph(6);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.0f);
  Rng rng(1);
  const auto active = SimulateCascade(ig, {2, 4}, &rng);
  int count = 0;
  for (uint8_t a : active) count += a;
  EXPECT_EQ(count, 2);
  EXPECT_EQ(active[2], 1);
  EXPECT_EQ(active[4], 1);
}

TEST(CascadeTest, UnreachableVerticesStayInactive) {
  // Two disconnected components.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const Graph g = b.Build();
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  Rng rng(1);
  const auto active = SimulateCascade(ig, {0}, &rng);
  EXPECT_EQ(active[0], 1);
  EXPECT_EQ(active[1], 1);
  EXPECT_EQ(active[2], 0);
  EXPECT_EQ(active[3], 0);
}

TEST(CascadeTest, DuplicateSeedsTolerated) {
  const Graph g = MakePath(3);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.0f);
  Rng rng(1);
  const auto active = SimulateCascade(ig, {1, 1, 1}, &rng);
  EXPECT_EQ(active[1], 1);
  EXPECT_EQ(active[0], 0);
}

TEST(EstimateSpreadTest, SingleEdgeMatchesClosedForm) {
  // 0 -> 1 with p = 0.3: expected spread of {0} is 1.3.
  const Graph g = MakePath(2);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.3f);
  const double est = EstimateSpread(ig, {0}, 200'000, 5);
  EXPECT_NEAR(est, 1.3, 0.01);
}

TEST(EstimateSpreadTest, TwoHopPathClosedForm) {
  // 0 -> 1 -> 2, p = 0.5: E = 1 + 0.5 + 0.25 = 1.75.
  const Graph g = MakePath(3);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.5f);
  const double est = EstimateSpread(ig, {0}, 200'000, 7);
  EXPECT_NEAR(est, 1.75, 0.01);
}

// -------------------------------------------------------------- Exact

TEST(ExactReachTest, PathProbabilities) {
  const Graph g = MakePath(3);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.5f);
  const auto reach = ExactReachProbabilities(ig, {0});
  EXPECT_DOUBLE_EQ(reach[0], 1.0);
  EXPECT_NEAR(reach[1], 0.5, 1e-12);
  EXPECT_NEAR(reach[2], 0.25, 1e-12);
  EXPECT_NEAR(ExactSpread(ig, {0}), 1.75, 1e-12);
}

TEST(ExactReachTest, DiamondIndependentPaths) {
  // 0 -> {1,2} -> 3, all p = 0.5:
  // P(3) = P(at least one of two independent 0.25 paths) = 1-(1-.25)^2.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  const Graph g = b.Build();
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.5f);
  const auto reach = ExactReachProbabilities(ig, {0});
  EXPECT_NEAR(reach[3], 1.0 - 0.75 * 0.75, 1e-12);
}

TEST(ExactReachTest, EmptySeedsAllZero) {
  const Graph g = MakePath(3);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.5f);
  const auto reach = ExactReachProbabilities(ig, {});
  for (double r : reach) EXPECT_EQ(r, 0.0);
}

TEST(ExactReachTest, MonteCarloAgreesWithExact) {
  const Graph g = GenerateErdosRenyi(8, 0.25, 3);
  ASSERT_LE(g.num_edges(), 24);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.4f);
  const double exact = ExactSpread(ig, {0, 3});
  const double mc = EstimateSpread(ig, {0, 3}, 300'000, 11);
  EXPECT_NEAR(mc, exact, 0.02 * std::max(1.0, exact));
}

}  // namespace
}  // namespace oipa
