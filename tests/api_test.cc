#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

/// One small shared context for every API test: 300 vertices, 2 pieces,
/// holdout enabled. Built once per fixture instance.
class ApiFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<Graph>(GenerateHolmeKim(300, 4, 0.4, 7));
    probs_ = std::make_shared<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 5, 2.0, 11));
    Rng rng(13);
    campaign_ = std::make_shared<Campaign>(
        Campaign::SampleUniformPieces(2, 5, &rng));
    for (VertexId v = 0; v < graph_->num_vertices(); v += 5) {
      pool_.push_back(v);
    }
    ContextOptions options;
    options.theta = 4'000;
    options.seed = 17;
    auto ctx = PlanningContext::Create(
        graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
        options);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    context_ = *ctx;
  }

  PlanRequest Request(const std::string& solver, int budget) const {
    PlanRequest request;
    request.solver = solver;
    request.pool = pool_;
    request.budgets = {budget};
    request.options.max_nodes = 2'000;
    return request;
  }

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  std::vector<VertexId> pool_;
  std::shared_ptr<const PlanningContext> context_;
};

// ------------------------------------------------------------ registry

TEST(SolverRegistryTest, GlobalListsAllPaperMethods) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  for (const char* required :
       {"bab", "bab-p", "im", "tim", "brute-force", "greedy-sigma",
        "high-degree", "degree-discount", "random"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(required)) << required;
    EXPECT_NE(std::find(names.begin(), names.end(), required),
              names.end())
        << required;
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFoundAndListsRegistered) {
  const StatusOr<const Solver*> found =
      SolverRegistry::Global().Find("simulated-annealing");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kNotFound);
  // The error message names the available solvers.
  EXPECT_NE(found.status().message().find("bab-p"), std::string::npos);
}

TEST(SolverRegistryTest, RejectsNullAndDuplicateRegistration) {
  SolverRegistry registry;
  EXPECT_EQ(registry.Register(nullptr).code(),
            StatusCode::kInvalidArgument);

  class Dummy : public Solver {
   public:
    std::string_view name() const override { return "dummy"; }
    std::string_view description() const override { return "noop"; }
    StatusOr<PlanResponse> Solve(const PlanningContext&,
                                 const PlanRequest&, int) const override {
      return PlanResponse{};
    }
  };
  EXPECT_TRUE(registry.Register(std::make_unique<Dummy>()).ok());
  EXPECT_EQ(registry.Register(std::make_unique<Dummy>()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(registry.Contains("dummy"));
  EXPECT_EQ(registry.Names(), std::vector<std::string>({"dummy"}));
}

TEST(SolverRegistryTest, DescribeAllMentionsEveryName) {
  const std::string text = SolverRegistry::Global().DescribeAll();
  for (const std::string& name : SolverRegistry::Global().Names()) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// ------------------------------------------------- context validation

TEST_F(ApiFixture, CreateRejectsBadInputs) {
  // Empty campaign.
  auto empty_campaign = std::make_shared<Campaign>();
  auto r1 = PlanningContext::Create(graph_, probs_, empty_campaign,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // Null graph.
  auto r2 = PlanningContext::Create(nullptr, probs_, campaign_,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Non-positive theta.
  ContextOptions bad;
  bad.theta = 0;
  auto r3 = PlanningContext::Create(graph_, probs_, campaign_,
                                    LogisticAdoptionModel(2.0, 1.0), bad);
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  // Campaign topic dimensionality mismatching the probabilities.
  Rng rng(29);
  auto wrong_dims = std::make_shared<Campaign>(
      Campaign::SampleUniformPieces(2, 9, &rng));
  auto r4 = PlanningContext::Create(graph_, probs_, wrong_dims,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r4.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, BorrowWithSamplesValidatesShape) {
  Rng rng(31);
  const Campaign other = Campaign::SampleUniformPieces(3, 5, &rng);
  // context_'s MRR has 2 pieces; a 3-piece campaign cannot adopt it.
  auto r = PlanningContext::BorrowWithSamples(
      *graph_, *probs_, other, LogisticAdoptionModel(2.0, 1.0),
      &context_->mrr());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  auto ok = PlanningContext::BorrowWithSamples(
      *graph_, *probs_, *campaign_, LogisticAdoptionModel(2.0, 1.0),
      &context_->mrr(), context_->holdout());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const auto solved = Solve(**ok, Request("bab-p", 3));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_GT(solved->utility, 0.0);
}

// ---------------------------------------------------- request errors

TEST_F(ApiFixture, SolveRejectsMalformedRequests) {
  // Unknown solver.
  auto unknown = Solve(*context_, Request("frobnicate", 3));
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // Empty pool.
  PlanRequest no_pool = Request("bab", 3);
  no_pool.pool.clear();
  EXPECT_EQ(Solve(*context_, no_pool).status().code(),
            StatusCode::kInvalidArgument);

  // Pool vertex outside the graph.
  PlanRequest bad_vertex = Request("bab", 3);
  bad_vertex.pool.push_back(graph_->num_vertices());
  EXPECT_EQ(Solve(*context_, bad_vertex).status().code(),
            StatusCode::kInvalidArgument);

  // Non-positive budget.
  PlanRequest zero_budget = Request("bab", 3);
  zero_budget.budgets = {0};
  EXPECT_EQ(Solve(*context_, zero_budget).status().code(),
            StatusCode::kInvalidArgument);

  // No budget at all.
  PlanRequest empty_budgets = Request("bab", 3);
  empty_budgets.budgets.clear();
  EXPECT_EQ(Solve(*context_, empty_budgets).status().code(),
            StatusCode::kInvalidArgument);

  // Multi-budget requests belong to SolveBatch.
  PlanRequest sweep = Request("bab", 3);
  sweep.budgets = {2, 4};
  EXPECT_EQ(Solve(*context_, sweep).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, BruteForceRejectsOversizedInstances) {
  const auto r = Solve(*context_, Request("brute-force", 40));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("too large"), std::string::npos);
}

TEST_F(ApiFixture, EvaluateRejectsMismatchedPlan) {
  const AssignmentPlan wrong(5);  // campaign has 2 pieces
  EXPECT_EQ(context_->Evaluate(wrong).status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- solving paths

TEST_F(ApiFixture, AllRegisteredSolversProduceFeasiblePlans) {
  for (const std::string& name : SolverRegistry::Global().Names()) {
    const int budget = 3;
    const auto r = Solve(*context_, Request(name, budget));
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_EQ(r->solver, name);
    EXPECT_EQ(r->budget, budget);
    EXPECT_LE(r->plan.size(), budget) << name;
    EXPECT_GT(r->utility, 0.0) << name;
    EXPECT_GT(r->holdout_utility, 0.0) << name;
    EXPECT_GE(r->seconds, 0.0) << name;
    for (int j = 0; j < r->plan.num_pieces(); ++j) {
      for (const VertexId v : r->plan.SeedSet(j)) {
        EXPECT_EQ(v % 5, 0) << name;  // pool membership
      }
    }
  }
}

TEST_F(ApiFixture, EvaluateMatchesSolverUtilities) {
  const auto solved = Solve(*context_, Request("bab", 4));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  const auto evaluated = context_->Evaluate(solved->plan, "re-eval");
  ASSERT_TRUE(evaluated.ok()) << evaluated.status().ToString();
  EXPECT_NEAR(evaluated->utility, solved->utility, 1e-9);
  EXPECT_NEAR(evaluated->holdout_utility, solved->holdout_utility, 1e-9);
  EXPECT_EQ(evaluated->solver, "re-eval");
}

TEST_F(ApiFixture, NonConvergenceIsSurfacedNotDropped) {
  PlanRequest request = Request("bab", 6);
  request.options.max_nodes = 1;
  request.options.gap = 0.0;
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->converged);
  EXPECT_GE(r->nodes_expanded, 1);
  EXPECT_GT(r->bound_calls, 0);
  EXPECT_GT(r->utility, 0.0);  // the incumbent is still a valid plan
}

TEST_F(ApiFixture, ProgressHookCancelsTheSearch) {
  PlanRequest request = Request("bab-p", 6);
  request.options.gap = 0.0;
  std::atomic<int> calls{0};
  request.progress = [&](const PlanProgress& progress) {
    EXPECT_EQ(progress.solver, "bab-p");
    EXPECT_EQ(progress.budget, 6);
    return ++calls < 2;  // cancel on the second callback
  };
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(calls.load(), 2);
  EXPECT_TRUE(r->cancelled);
  EXPECT_FALSE(r->converged);
  EXPECT_GT(r->utility, 0.0);
}

TEST_F(ApiFixture, InitialSnapshotCanCancelAnySolver) {
  // Non-search solvers never poll mid-solve, but the dispatch layer's
  // initial snapshot still lets callers cancel before work starts.
  PlanRequest request = Request("tim", 3);
  request.progress = [](const PlanProgress& progress) {
    EXPECT_EQ(progress.solver, "tim");
    EXPECT_EQ(progress.nodes_expanded, 0);
    return false;
  };
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancelled);
  EXPECT_FALSE(r->converged);
  EXPECT_TRUE(r->plan.empty());
  EXPECT_EQ(r->solver, "tim");
}

// ------------------------------------------------------------- batch

TEST_F(ApiFixture, SolveBatchSweepsBudgetsOverSharedSamples) {
  PlanRequest request = Request("bab-p", 2);
  request.budgets = {2, 4, 6};
  const auto batch = SolveBatch(*context_, request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  for (size_t i = 0; i < batch->size(); ++i) {
    const PlanResponse& r = (*batch)[i];
    EXPECT_EQ(r.budget, request.budgets[i]);
    EXPECT_EQ(r.solver, "bab-p");
    EXPECT_LE(r.plan.size(), r.budget);
    EXPECT_GT(r.utility, 0.0);
  }
  // More budget can only help (same samples, same objective).
  EXPECT_GE((*batch)[1].utility + 1e-9, (*batch)[0].utility);
  EXPECT_GE((*batch)[2].utility + 1e-9, (*batch)[1].utility);

  // Batch responses match one-off solves bit for bit.
  const auto solo = Solve(*context_, Request("bab-p", 4));
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo->plan.Assignments(), (*batch)[1].plan.Assignments());
  EXPECT_EQ(solo->utility, (*batch)[1].utility);
}

// ------------------------------------------------------- concurrency

TEST_F(ApiFixture, ConcurrentSolvesOnOneContextMatchSequentialRuns) {
  // Reference: sequential solves.
  const auto seq_bab = Solve(*context_, Request("bab-p", 5));
  const auto seq_tim = Solve(*context_, Request("tim", 5));
  ASSERT_TRUE(seq_bab.ok() && seq_tim.ok());

  // Two threads share the context; each runs its solver several times.
  constexpr int kRounds = 3;
  std::vector<StatusOr<PlanResponse>> bab_runs, tim_runs;
  std::thread bab_thread([&] {
    for (int i = 0; i < kRounds; ++i) {
      bab_runs.push_back(Solve(*context_, Request("bab-p", 5)));
    }
  });
  std::thread tim_thread([&] {
    for (int i = 0; i < kRounds; ++i) {
      tim_runs.push_back(Solve(*context_, Request("tim", 5)));
    }
  });
  bab_thread.join();
  tim_thread.join();

  for (const auto& run : bab_runs) {
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->plan.Assignments(), seq_bab->plan.Assignments());
    EXPECT_EQ(run->utility, seq_bab->utility);
    EXPECT_EQ(run->holdout_utility, seq_bab->holdout_utility);
    EXPECT_EQ(run->nodes_expanded, seq_bab->nodes_expanded);
  }
  for (const auto& run : tim_runs) {
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->plan.Assignments(), seq_tim->plan.Assignments());
    EXPECT_EQ(run->utility, seq_tim->utility);
  }
}

}  // namespace
}  // namespace oipa
