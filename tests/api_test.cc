#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

/// One small shared context for every API test: 300 vertices, 2 pieces,
/// holdout enabled. Built once per fixture instance.
class ApiFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<Graph>(GenerateHolmeKim(300, 4, 0.4, 7));
    probs_ = std::make_shared<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 5, 2.0, 11));
    Rng rng(13);
    campaign_ = std::make_shared<Campaign>(
        Campaign::SampleUniformPieces(2, 5, &rng));
    for (VertexId v = 0; v < graph_->num_vertices(); v += 5) {
      pool_.push_back(v);
    }
    ContextOptions options;
    options.theta = 4'000;
    options.seed = 17;
    auto ctx = PlanningContext::Create(
        graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
        options);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    context_ = *ctx;
  }

  PlanRequest Request(const std::string& solver, int budget) const {
    PlanRequest request;
    request.solver = solver;
    request.pool = pool_;
    request.budgets = {budget};
    request.options.max_nodes = 2'000;
    return request;
  }

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  std::vector<VertexId> pool_;
  std::shared_ptr<const PlanningContext> context_;
};

// ------------------------------------------------------------ registry

TEST(SolverRegistryTest, GlobalListsAllPaperMethods) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  for (const char* required :
       {"bab", "bab-p", "im", "tim", "brute-force", "greedy-sigma",
        "high-degree", "degree-discount", "random"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(required)) << required;
    EXPECT_NE(std::find(names.begin(), names.end(), required),
              names.end())
        << required;
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFoundAndListsRegistered) {
  const StatusOr<const Solver*> found =
      SolverRegistry::Global().Find("simulated-annealing");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kNotFound);
  // The error message names the available solvers.
  EXPECT_NE(found.status().message().find("bab-p"), std::string::npos);
}

TEST(SolverRegistryTest, RejectsNullAndDuplicateRegistration) {
  SolverRegistry registry;
  EXPECT_EQ(registry.Register(nullptr).code(),
            StatusCode::kInvalidArgument);

  class Dummy : public Solver {
   public:
    std::string_view name() const override { return "dummy"; }
    std::string_view description() const override { return "noop"; }
    StatusOr<PlanResponse> Solve(const PlanningContext&,
                                 const SampleSnapshot&, const PlanRequest&,
                                 int) const override {
      return PlanResponse{};
    }
  };
  EXPECT_TRUE(registry.Register(std::make_unique<Dummy>()).ok());
  EXPECT_EQ(registry.Register(std::make_unique<Dummy>()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(registry.Contains("dummy"));
  EXPECT_EQ(registry.Names(), std::vector<std::string>({"dummy"}));
}

TEST(SolverRegistryTest, DescribeAllMentionsEveryName) {
  const std::string text = SolverRegistry::Global().DescribeAll();
  for (const std::string& name : SolverRegistry::Global().Names()) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// ------------------------------------------------- context validation

TEST_F(ApiFixture, CreateRejectsBadInputs) {
  // Empty campaign.
  auto empty_campaign = std::make_shared<Campaign>();
  auto r1 = PlanningContext::Create(graph_, probs_, empty_campaign,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // Null graph.
  auto r2 = PlanningContext::Create(nullptr, probs_, campaign_,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Non-positive theta.
  ContextOptions bad;
  bad.theta = 0;
  auto r3 = PlanningContext::Create(graph_, probs_, campaign_,
                                    LogisticAdoptionModel(2.0, 1.0), bad);
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  // Campaign topic dimensionality mismatching the probabilities.
  Rng rng(29);
  auto wrong_dims = std::make_shared<Campaign>(
      Campaign::SampleUniformPieces(2, 9, &rng));
  auto r4 = PlanningContext::Create(graph_, probs_, wrong_dims,
                                    LogisticAdoptionModel(2.0, 1.0));
  EXPECT_EQ(r4.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, BorrowWithSamplesValidatesShape) {
  Rng rng(31);
  const Campaign other = Campaign::SampleUniformPieces(3, 5, &rng);
  // Pin the fixture's samples so the borrowed collections outlive the
  // borrowing context no matter what the fixture's store does.
  const SampleSnapshot snap = context_->samples();
  // context_'s MRR has 2 pieces; a 3-piece campaign cannot adopt it.
  auto r = PlanningContext::BorrowWithSamples(
      *graph_, *probs_, other, LogisticAdoptionModel(2.0, 1.0),
      snap.mrr.get());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  auto ok = PlanningContext::BorrowWithSamples(
      *graph_, *probs_, *campaign_, LogisticAdoptionModel(2.0, 1.0),
      snap.mrr.get(), snap.holdout.get());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const auto solved = Solve(**ok, Request("bab-p", 3));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_GT(solved->utility, 0.0);
}

// ---------------------------------------------------- request errors

TEST_F(ApiFixture, SolveRejectsMalformedRequests) {
  // Unknown solver.
  auto unknown = Solve(*context_, Request("frobnicate", 3));
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // Empty pool.
  PlanRequest no_pool = Request("bab", 3);
  no_pool.pool.clear();
  EXPECT_EQ(Solve(*context_, no_pool).status().code(),
            StatusCode::kInvalidArgument);

  // Pool vertex outside the graph.
  PlanRequest bad_vertex = Request("bab", 3);
  bad_vertex.pool.push_back(graph_->num_vertices());
  EXPECT_EQ(Solve(*context_, bad_vertex).status().code(),
            StatusCode::kInvalidArgument);

  // Non-positive budget.
  PlanRequest zero_budget = Request("bab", 3);
  zero_budget.budgets = {0};
  EXPECT_EQ(Solve(*context_, zero_budget).status().code(),
            StatusCode::kInvalidArgument);

  // No budget at all.
  PlanRequest empty_budgets = Request("bab", 3);
  empty_budgets.budgets.clear();
  EXPECT_EQ(Solve(*context_, empty_budgets).status().code(),
            StatusCode::kInvalidArgument);

  // Multi-budget requests belong to SolveBatch.
  PlanRequest sweep = Request("bab", 3);
  sweep.budgets = {2, 4};
  EXPECT_EQ(Solve(*context_, sweep).status().code(),
            StatusCode::kInvalidArgument);

  // A present deadline must be >= 1 ms.
  PlanRequest zero_deadline = Request("bab", 3);
  zero_deadline.deadline_ms = 0;
  EXPECT_EQ(Solve(*context_, zero_deadline).status().code(),
            StatusCode::kInvalidArgument);
  PlanRequest negative_deadline = Request("bab", 3);
  negative_deadline.deadline_ms = -5;
  EXPECT_EQ(Solve(*context_, negative_deadline).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, BruteForceRejectsOversizedInstances) {
  const auto r = Solve(*context_, Request("brute-force", 40));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("too large"), std::string::npos);
}

TEST_F(ApiFixture, EvaluateRejectsMismatchedPlan) {
  const AssignmentPlan wrong(5);  // campaign has 2 pieces
  EXPECT_EQ(context_->Evaluate(wrong).status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- solving paths

TEST_F(ApiFixture, AllRegisteredSolversProduceFeasiblePlans) {
  for (const std::string& name : SolverRegistry::Global().Names()) {
    const int budget = 3;
    const auto r = Solve(*context_, Request(name, budget));
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_EQ(r->solver, name);
    EXPECT_EQ(r->budget, budget);
    EXPECT_LE(r->plan.size(), budget) << name;
    EXPECT_GT(r->utility, 0.0) << name;
    EXPECT_GT(r->holdout_utility, 0.0) << name;
    EXPECT_GE(r->seconds, 0.0) << name;
    for (int j = 0; j < r->plan.num_pieces(); ++j) {
      for (const VertexId v : r->plan.SeedSet(j)) {
        EXPECT_EQ(v % 5, 0) << name;  // pool membership
      }
    }
  }
}

TEST_F(ApiFixture, EvaluateMatchesSolverUtilities) {
  const auto solved = Solve(*context_, Request("bab", 4));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  const auto evaluated = context_->Evaluate(solved->plan, "re-eval");
  ASSERT_TRUE(evaluated.ok()) << evaluated.status().ToString();
  EXPECT_NEAR(evaluated->utility, solved->utility, 1e-9);
  EXPECT_NEAR(evaluated->holdout_utility, solved->holdout_utility, 1e-9);
  EXPECT_EQ(evaluated->solver, "re-eval");
}

TEST_F(ApiFixture, NonConvergenceIsSurfacedNotDropped) {
  PlanRequest request = Request("bab", 6);
  request.options.max_nodes = 1;
  request.options.gap = 0.0;
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->converged);
  EXPECT_GE(r->nodes_expanded, 1);
  EXPECT_GT(r->bound_calls, 0);
  EXPECT_GT(r->utility, 0.0);  // the incumbent is still a valid plan
}

TEST_F(ApiFixture, ProgressHookCancelsTheSearch) {
  PlanRequest request = Request("bab-p", 6);
  request.options.gap = 0.0;
  std::atomic<int> calls{0};
  request.progress = [&](const PlanProgress& progress) {
    EXPECT_EQ(progress.solver, "bab-p");
    EXPECT_EQ(progress.budget, 6);
    return ++calls < 2;  // cancel on the second callback
  };
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(calls.load(), 2);
  EXPECT_TRUE(r->cancelled);
  EXPECT_FALSE(r->converged);
  EXPECT_GT(r->utility, 0.0);
}

TEST_F(ApiFixture, DeadlineCancelsMidSolveWithPartialTelemetry) {
  PlanRequest request = Request("bab", 6);
  request.options.gap = 0.0;
  request.options.max_nodes = 1'000'000;
  request.deadline_ms = 1;
  // Each poll sleeps past the deadline, so the BAB search is cut off on
  // an early node expansion regardless of machine speed.
  std::atomic<int> calls{0};
  request.progress = [&](const PlanProgress&) {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return true;  // the caller hook never cancels — the deadline does
  };
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancelled);
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_FALSE(r->converged);
  EXPECT_GE(calls.load(), 1);

  // A comfortable deadline changes nothing: same plan as no deadline,
  // deadline_exceeded stays false.
  PlanRequest relaxed = Request("bab", 3);
  relaxed.deadline_ms = 60'000;
  const auto timed = Solve(*context_, relaxed);
  const auto plain = Solve(*context_, Request("bab", 3));
  ASSERT_TRUE(timed.ok() && plain.ok());
  EXPECT_FALSE(timed->deadline_exceeded);
  EXPECT_FALSE(timed->cancelled);
  EXPECT_EQ(timed->plan.Assignments(), plain->plan.Assignments());
  EXPECT_EQ(timed->utility, plain->utility);
}

TEST_F(ApiFixture, InitialSnapshotCanCancelAnySolver) {
  // Non-search solvers never poll mid-solve, but the dispatch layer's
  // initial snapshot still lets callers cancel before work starts.
  PlanRequest request = Request("tim", 3);
  request.progress = [](const PlanProgress& progress) {
    EXPECT_EQ(progress.solver, "tim");
    EXPECT_EQ(progress.nodes_expanded, 0);
    return false;
  };
  const auto r = Solve(*context_, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancelled);
  EXPECT_FALSE(r->converged);
  EXPECT_TRUE(r->plan.empty());
  EXPECT_EQ(r->solver, "tim");
}

// ------------------------------------------------------------- batch

TEST_F(ApiFixture, SolveBatchSweepsBudgetsOverSharedSamples) {
  PlanRequest request = Request("bab-p", 2);
  request.budgets = {2, 4, 6};
  const auto batch = SolveBatch(*context_, request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  for (size_t i = 0; i < batch->size(); ++i) {
    const PlanResponse& r = (*batch)[i];
    EXPECT_EQ(r.budget, request.budgets[i]);
    EXPECT_EQ(r.solver, "bab-p");
    EXPECT_LE(r.plan.size(), r.budget);
    EXPECT_GT(r.utility, 0.0);
  }
  // More budget can only help (same samples, same objective).
  EXPECT_GE((*batch)[1].utility + 1e-9, (*batch)[0].utility);
  EXPECT_GE((*batch)[2].utility + 1e-9, (*batch)[1].utility);

  // Batch responses match one-off solves bit for bit.
  const auto solo = Solve(*context_, Request("bab-p", 4));
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo->plan.Assignments(), (*batch)[1].plan.Assignments());
  EXPECT_EQ(solo->utility, (*batch)[1].utility);
}

// ------------------------------------------- progressive (ε)-stopping

TEST_F(ApiFixture, GrowSamplesIsBitIdenticalToUpFrontGeneration) {
  // Pin the current generation, grow, and check both that the pinned
  // snapshot stays valid and that the grown store matches a context
  // generated at the larger theta from scratch.
  SampleSnapshot before = context_->samples();
  ASSERT_EQ(before.mrr->theta(), 4'000);
  ASSERT_TRUE(context_->CanGrowSamples());
  ASSERT_TRUE(context_->GrowSamples(16'000).ok());
  // The pinned snapshot still reads the retired generation...
  EXPECT_EQ(before.mrr->theta(), 4'000);
  EXPECT_EQ(context_->samples().mrr->theta(), 16'000);
  EXPECT_EQ(context_->samples().holdout->theta(), 16'000);
  EXPECT_EQ(context_->sample_store().live_generations(), 2);
  // ...and releasing it compacts the store down to one generation.
  before = SampleSnapshot{};
  EXPECT_EQ(context_->sample_store().live_generations(), 1);
  // Growing to a smaller/equal target is a no-op.
  ASSERT_TRUE(context_->GrowSamples(8'000).ok());
  EXPECT_EQ(context_->sample_store().theta(), 16'000);

  ContextOptions big;
  big.theta = 16'000;
  big.seed = 17;
  auto fresh = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), big);
  ASSERT_TRUE(fresh.ok());
  const auto grown_solve = Solve(*context_, Request("bab-p", 4));
  const auto fresh_solve = Solve(**fresh, Request("bab-p", 4));
  ASSERT_TRUE(grown_solve.ok() && fresh_solve.ok());
  EXPECT_EQ(grown_solve->plan.Assignments(),
            fresh_solve->plan.Assignments());
  EXPECT_EQ(grown_solve->utility, fresh_solve->utility);
  EXPECT_EQ(grown_solve->holdout_utility, fresh_solve->holdout_utility);
  EXPECT_EQ(grown_solve->theta_used, 16'000);
}

TEST_F(ApiFixture, ProgressiveSolveGrowsUntilGapMet) {
  ContextOptions small;
  small.theta = 250;  // deliberately noisy start
  // A sampling seed distinct from the fixture's: the registry now
  // theta-prefix-shares stores, so seed 17 would resolve to the
  // fixture's 4'000-sample store and skip the growth under test.
  small.seed = 18;
  auto ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), small);
  ASSERT_TRUE(ctx.ok());

  PlanRequest request = Request("bab-p", 5);
  request.epsilon = 0.02;
  request.max_theta = 64'000;
  const auto r = Solve(**ctx, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*ctx)->samples().mrr->theta(), r->theta_used);
  EXPECT_GE(r->theta_used, 250);
  EXPECT_GE(r->sampling_rounds, 1);
  if (r->theta_used < request.max_theta) {
    EXPECT_LE(r->sampling_gap, request.epsilon);
  }
  // The progressive result is bit-identical to a one-shot solve against
  // a context generated at the final theta up front.
  ContextOptions final_options;
  final_options.theta = r->theta_used;
  final_options.seed = 18;
  auto final_ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
      final_options);
  ASSERT_TRUE(final_ctx.ok());
  const auto oneshot = Solve(**final_ctx, Request("bab-p", 5));
  ASSERT_TRUE(oneshot.ok());
  EXPECT_EQ(r->plan.Assignments(), oneshot->plan.Assignments());
  EXPECT_EQ(r->utility, oneshot->utility);
  EXPECT_EQ(r->holdout_utility, oneshot->holdout_utility);
}

TEST_F(ApiFixture, ProgressiveSolveStopsAtMaxTheta) {
  ContextOptions small;
  small.theta = 200;
  small.seed = 18;  // avoid theta-prefix sharing with the fixture store
  auto ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), small);
  ASSERT_TRUE(ctx.ok());
  PlanRequest request = Request("bab-p", 5);
  request.epsilon = 1e-9;  // unreachable tolerance
  request.max_theta = 800;
  const auto r = Solve(**ctx, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->theta_used, 800);
  EXPECT_EQ(r->sampling_rounds, 3);  // 200 -> 400 -> 800
  EXPECT_GT(r->sampling_gap, request.epsilon);
}

TEST_F(ApiFixture, ProgressiveSolveRequiresHoldout) {
  ContextOptions no_holdout;
  no_holdout.theta = 500;
  no_holdout.holdout_theta = 0;
  no_holdout.seed = 17;
  auto ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
      no_holdout);
  ASSERT_TRUE(ctx.ok());
  PlanRequest request = Request("bab-p", 3);
  request.epsilon = 0.05;
  EXPECT_EQ(Solve(**ctx, request).status().code(),
            StatusCode::kInvalidArgument);

  // Negative epsilon is malformed regardless of context.
  PlanRequest negative = Request("bab-p", 3);
  negative.epsilon = -0.1;
  EXPECT_EQ(Solve(*context_, negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, ProgressiveSolveRequiresExtendableSamples) {
  // A FromParts collection (no sampling provenance) cannot grow.
  MrrCollection parts = MrrCollection::FromParts(
      2, campaign_->num_pieces(), graph_->num_vertices(),
      /*roots=*/{0, 1}, /*offsets=*/{0, 1, 2, 3, 4},
      /*nodes=*/{0, 5, 1, 5});
  auto ctx = PlanningContext::BorrowWithSamples(
      *graph_, *probs_, *campaign_, LogisticAdoptionModel(2.0, 1.0),
      &parts, &parts);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  EXPECT_FALSE((*ctx)->CanGrowSamples());
  PlanRequest request = Request("greedy-sigma", 1);
  request.epsilon = 0.05;
  EXPECT_EQ(Solve(**ctx, request).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------- shared sample store

TEST_F(ApiFixture, ContextsDifferingOnlyInAdoptionModelShareOneStore) {
  ContextOptions options;
  options.theta = 2'000;
  options.seed = 71;
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto a = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const int64_t after_first = MrrCollection::GeneratedSampleCount();
  EXPECT_EQ(after_first - before, 2 * 2'000);  // in-sample + holdout

  // Same sampling configuration, different logistic adoption model:
  // resolves to the same store with zero additional samples drawn.
  auto b = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(5.0, 0.5), options);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), after_first);
  EXPECT_EQ(&(*a)->sample_store(), &(*b)->sample_store());
  EXPECT_TRUE((*a)->sample_store().GetStats().shared);
  // The contexts also share one set of piece influence graphs.
  EXPECT_EQ(&(*a)->pieces(), &(*b)->pieces());

  // Growth issued through one sharer is visible to the other.
  ASSERT_TRUE((*a)->GrowSamples(4'000).ok());
  EXPECT_EQ((*b)->samples().mrr->theta(), 4'000);

  // Solves against either context agree on the samples but score with
  // their own adoption model.
  const auto ra = Solve(**a, Request("bab-p", 3));
  const auto rb = Solve(**b, Request("bab-p", 3));
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_GT(ra->utility, 0.0);
  EXPECT_GT(rb->utility, 0.0);
}

TEST_F(ApiFixture, SharedStoreSolvesAreBitIdenticalToPrivateStoreSolves) {
  ContextOptions options;
  options.theta = 3'000;
  options.seed = 73;
  auto shared_ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), options);
  ASSERT_TRUE(shared_ctx.ok());
  ContextOptions private_options = options;
  private_options.share_samples = false;
  auto private_ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
      private_options);
  ASSERT_TRUE(private_ctx.ok());
  EXPECT_NE(&(*shared_ctx)->sample_store(),
            &(*private_ctx)->sample_store());
  EXPECT_FALSE((*private_ctx)->sample_store().GetStats().shared);

  for (const char* solver : {"bab-p", "tim", "greedy-sigma"}) {
    const auto with_shared = Solve(**shared_ctx, Request(solver, 4));
    const auto with_private = Solve(**private_ctx, Request(solver, 4));
    ASSERT_TRUE(with_shared.ok() && with_private.ok()) << solver;
    EXPECT_EQ(with_shared->plan.Assignments(),
              with_private->plan.Assignments())
        << solver;
    EXPECT_EQ(with_shared->utility, with_private->utility) << solver;
    EXPECT_EQ(with_shared->holdout_utility, with_private->holdout_utility)
        << solver;
  }
}

// ------------------------------------------- OPIM-style bound stopping

TEST_F(ApiFixture, OpimBoundsStoppingCertifiesRatio) {
  ContextOptions small;
  small.theta = 250;  // deliberately noisy start
  small.seed = 18;  // avoid theta-prefix sharing with the fixture store
  auto ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), small);
  ASSERT_TRUE(ctx.ok());

  PlanRequest request = Request("bab-p", 5);
  request.epsilon = 0.05;
  request.max_theta = 256'000;
  request.stopping = StoppingRuleKind::kOpimBounds;
  const auto r = Solve(**ctx, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->certified_ratio, 0.0);
  EXPECT_LE(r->certified_ratio, 1.0);
  if (r->theta_used < request.max_theta) {
    // Stopped because the bound pair certified the target ratio.
    EXPECT_GE(r->certified_ratio,
              1.0 - 1.0 / 2.718281828459045 - request.epsilon);
  }
  // The default holdout-gap rule leaves the ratio unset.
  const auto plain = Solve(*context_, Request("bab-p", 5));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->certified_ratio, 0.0);
}

TEST_F(ApiFixture, OpimBoundsStopsNoLaterThanMaxTheta) {
  ContextOptions small;
  small.theta = 200;
  small.seed = 18;  // avoid theta-prefix sharing with the fixture store
  auto ctx = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), small);
  ASSERT_TRUE(ctx.ok());
  PlanRequest request = Request("bab-p", 5);
  request.epsilon = 1e-9;  // unreachable certification target
  request.max_theta = 800;
  request.stopping = StoppingRuleKind::kOpimBounds;
  const auto r = Solve(**ctx, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->theta_used, 800);
  EXPECT_EQ(r->sampling_rounds, 3);  // 200 -> 400 -> 800
  EXPECT_LT(r->certified_ratio, 1.0 - 1.0 / 2.718281828459045);
}

// ------------------------------------------------------ sharded sweep

TEST_F(ApiFixture, ShardedSolveBatchIsBitIdenticalToSerialSweep) {
  PlanRequest serial = Request("bab-p", 2);
  serial.budgets = {2, 4, 6, 8};
  const auto serial_batch = SolveBatch(*context_, serial);
  ASSERT_TRUE(serial_batch.ok());

  PlanRequest sharded = serial;
  sharded.num_threads = 3;  // shard_budgets defaults to true
  const auto sharded_batch = SolveBatch(*context_, sharded);
  ASSERT_TRUE(sharded_batch.ok());

  ASSERT_EQ(sharded_batch->size(), serial_batch->size());
  for (size_t i = 0; i < serial_batch->size(); ++i) {
    const PlanResponse& a = (*serial_batch)[i];
    const PlanResponse& b = (*sharded_batch)[i];
    EXPECT_EQ(a.budget, b.budget);
    EXPECT_EQ(a.plan.Assignments(), b.plan.Assignments());
    EXPECT_EQ(a.utility, b.utility);
    EXPECT_EQ(a.holdout_utility, b.holdout_utility);
    EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
    EXPECT_EQ(a.tau_evals, b.tau_evals);
  }
}

TEST_F(ApiFixture, ShardedSolveBatchHonorsCancellation) {
  PlanRequest request = Request("bab-p", 2);
  request.budgets = {2, 4, 6, 8};
  request.num_threads = 2;
  request.progress = [](const PlanProgress&) { return false; };
  const auto batch = SolveBatch(*context_, request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_GE(batch->size(), 1u);
  EXPECT_TRUE(batch->front().cancelled);
  // Budget order is preserved and nothing follows the cancelled entry.
  for (size_t i = 0; i < batch->size(); ++i) {
    EXPECT_EQ((*batch)[i].budget, request.budgets[i]);
    if (i + 1 < batch->size()) {
      EXPECT_FALSE((*batch)[i].cancelled);
    }
  }
}

// ------------------------------------------------------- concurrency

TEST_F(ApiFixture, ConcurrentSolvesOnOneContextMatchSequentialRuns) {
  // Reference: sequential solves.
  const auto seq_bab = Solve(*context_, Request("bab-p", 5));
  const auto seq_tim = Solve(*context_, Request("tim", 5));
  ASSERT_TRUE(seq_bab.ok() && seq_tim.ok());

  // Two threads share the context; each runs its solver several times.
  constexpr int kRounds = 3;
  std::vector<StatusOr<PlanResponse>> bab_runs, tim_runs;
  std::thread bab_thread([&] {
    for (int i = 0; i < kRounds; ++i) {
      bab_runs.push_back(Solve(*context_, Request("bab-p", 5)));
    }
  });
  std::thread tim_thread([&] {
    for (int i = 0; i < kRounds; ++i) {
      tim_runs.push_back(Solve(*context_, Request("tim", 5)));
    }
  });
  bab_thread.join();
  tim_thread.join();

  for (const auto& run : bab_runs) {
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->plan.Assignments(), seq_bab->plan.Assignments());
    EXPECT_EQ(run->utility, seq_bab->utility);
    EXPECT_EQ(run->holdout_utility, seq_bab->holdout_utility);
    EXPECT_EQ(run->nodes_expanded, seq_bab->nodes_expanded);
  }
  for (const auto& run : tim_runs) {
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->plan.Assignments(), seq_tim->plan.Assignments());
    EXPECT_EQ(run->utility, seq_tim->utility);
  }
}

}  // namespace
}  // namespace oipa
