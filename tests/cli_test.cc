#include <gtest/gtest.h>

#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "cli/json_writer.h"
#include "serve/server.h"
#include "util/flags.h"

namespace oipa {
namespace cli {
namespace {

/// Runs RunCli on a fake argv and returns (exit code, stdout, stderr).
struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun InvokeCli(std::vector<std::string> args) {
  args.insert(args.begin(), "oipa_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  std::ostringstream out, err;
  const int code =
      RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

FlagParser MakeFlags(std::vector<std::string> args) {
  args.insert(args.begin(), "oipa_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

// Flags shared by the pipeline tests: small enough that the whole
// generate -> learn -> plan -> simulate chain runs in well under a second.
const std::vector<std::string> kTinyFlags = {
    "--n=200",     "--theta=1000", "--k=3",
    "--ell=2",     "--trials=50",  "--cascades=50",
    "--indent=-1", "--threads=1",  "--max_nodes=2000"};

std::vector<std::string> TinyArgs(const std::string& command,
                                  std::vector<std::string> extra = {}) {
  std::vector<std::string> args = {command};
  args.insert(args.end(), kTinyFlags.begin(), kTinyFlags.end());
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

// ------------------------------------------------------------ JsonValue

TEST(JsonWriterTest, Scalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(JsonValue(2.5).Dump(), "2.5");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonValue::Escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(JsonValue::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, ObjectPreservesInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", 1).Set("a", 2).Set("b", 3);
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonWriterTest, NestedPrettyPrint) {
  JsonValue row = JsonValue::Object();
  row.Set("k", 10);
  JsonValue arr = JsonValue::Array();
  arr.Append(std::move(row)).Append(JsonValue());
  EXPECT_EQ(arr.Dump(2), "[\n  {\n    \"k\": 10\n  },\n  null\n]");
  EXPECT_EQ(arr.Dump(), "[{\"k\":10},null]");
}

// ------------------------------------------------------------- parsing

TEST(CliParseTest, BoundVariantNames) {
  BoundVariant v = BoundVariant::kPaperTangent;
  EXPECT_TRUE(ParseBoundVariant("zero", &v).ok());
  EXPECT_EQ(v, BoundVariant::kZeroAnchored);
  EXPECT_TRUE(ParseBoundVariant("paper", &v).ok());
  EXPECT_EQ(v, BoundVariant::kPaperTangent);
  EXPECT_EQ(ParseBoundVariant("bogus", &v).code(),
            StatusCode::kInvalidArgument);
}

TEST(CliParseTest, DefaultsMirrorQuickstart) {
  const FlagParser flags = MakeFlags({"plan"});
  CliConfig config;
  ASSERT_TRUE(ParseCliConfig(flags, &config).ok());
  EXPECT_EQ(config.command, "plan");
  EXPECT_EQ(config.dataset, "synthetic");
  EXPECT_EQ(config.n, 2000);
  EXPECT_EQ(config.k, 10);
  EXPECT_EQ(config.ell, 3);
  EXPECT_EQ(config.theta, 20'000);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.5);
  EXPECT_EQ(config.variant, BoundVariant::kZeroAnchored);
  EXPECT_TRUE(config.progressive);
  EXPECT_EQ(config.method, "bab-p");
  EXPECT_FALSE(config.learn);
  EXPECT_EQ(config.k_sweep, std::vector<int64_t>({10}));
}

TEST(CliParseTest, MethodResolvesFromProgressiveWhenAbsent) {
  CliConfig config;
  ASSERT_TRUE(
      ParseCliConfig(MakeFlags({"plan", "--progressive=false"}), &config)
          .ok());
  EXPECT_EQ(config.method, "bab");
  ASSERT_TRUE(
      ParseCliConfig(MakeFlags({"plan", "--method=tim"}), &config).ok());
  EXPECT_EQ(config.method, "tim");
}

TEST(CliParseTest, UnknownMethodIsNotFoundListingRegistry) {
  CliConfig config;
  const Status status =
      ParseCliConfig(MakeFlags({"plan", "--method=annealing"}), &config);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("unknown solver"), std::string::npos);
  EXPECT_NE(status.message().find("bab-p"), std::string::npos);
}

TEST(CliParseTest, FlagsOverrideEveryStage) {
  const FlagParser flags = MakeFlags(
      {"bench", "--dataset=dblp", "--scale=0.05", "--k=5,15",
       "--ell=4", "--theta=500", "--epsilon=0.25", "--bound=paper",
       "--progressive=false", "--learn", "--threads=2", "--seed=99"});
  CliConfig config;
  ASSERT_TRUE(ParseCliConfig(flags, &config).ok());
  EXPECT_EQ(config.command, "bench");
  EXPECT_EQ(config.dataset, "dblp");
  EXPECT_DOUBLE_EQ(config.scale, 0.05);
  EXPECT_EQ(config.k_sweep, std::vector<int64_t>({5, 15}));
  EXPECT_EQ(config.ell, 4);
  EXPECT_EQ(config.theta, 500);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.25);
  EXPECT_EQ(config.variant, BoundVariant::kPaperTangent);
  EXPECT_FALSE(config.progressive);
  EXPECT_TRUE(config.learn);
  EXPECT_EQ(config.threads, 2);
  EXPECT_EQ(config.seed, 99u);
}

TEST(CliParseTest, StoppingAndShareSamplesFlags) {
  CliConfig config;
  ASSERT_TRUE(ParseCliConfig(MakeFlags({"plan"}), &config).ok());
  EXPECT_EQ(config.stopping, "holdout");
  EXPECT_EQ(config.stopping_rule, StoppingRuleKind::kHoldoutGap);
  EXPECT_TRUE(config.share_samples);

  ASSERT_TRUE(ParseCliConfig(MakeFlags({"plan", "--stopping=opim",
                                        "--share_samples=false"}),
                             &config)
                  .ok());
  EXPECT_EQ(config.stopping_rule, StoppingRuleKind::kOpimBounds);
  EXPECT_FALSE(config.share_samples);

  EXPECT_EQ(ParseCliConfig(MakeFlags({"plan", "--stopping=psychic"}),
                           &config)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CliParseTest, RejectsMissingAndUnknownSubcommand) {
  CliConfig config;
  EXPECT_EQ(ParseCliConfig(MakeFlags({}), &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCliConfig(MakeFlags({"frobnicate"}), &config).code(),
            StatusCode::kInvalidArgument);
}

TEST(CliParseTest, RejectsInvalidValues) {
  CliConfig config;
  EXPECT_FALSE(ParseCliConfig(MakeFlags({"plan", "--k=0"}), &config).ok());
  EXPECT_FALSE(
      ParseCliConfig(MakeFlags({"plan", "--epsilon=1.5"}), &config).ok());
  EXPECT_FALSE(
      ParseCliConfig(MakeFlags({"plan", "--dataset=orkut"}), &config).ok());
  EXPECT_FALSE(
      ParseCliConfig(MakeFlags({"plan", "--bound=tight"}), &config).ok());
  EXPECT_FALSE(
      ParseCliConfig(MakeFlags({"bench", "--k=5,0"}), &config).ok());
  // A budget list is a sweep; only bench runs sweeps.
  EXPECT_FALSE(
      ParseCliConfig(MakeFlags({"plan", "--k=10,20"}), &config).ok());
  EXPECT_TRUE(
      ParseCliConfig(MakeFlags({"bench", "--k=10,20"}), &config).ok());
}

// ------------------------------------------------------------- dispatch

TEST(CliDispatchTest, NoArgsFailsWithUsage) {
  const CliRun run = InvokeCli({});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("usage: oipa_cli"), std::string::npos);
}

TEST(CliDispatchTest, UnknownCommandFails) {
  const CliRun run = InvokeCli({"explode"});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("unknown subcommand"), std::string::npos);
}

TEST(CliDispatchTest, HelpSucceeds) {
  const CliRun run = InvokeCli({"--help"});
  EXPECT_EQ(run.code, 0);
  EXPECT_NE(run.out.find("usage: oipa_cli"), std::string::npos);
}

TEST(CliDispatchTest, MethodListPrintsTheRegistry) {
  // Works even without a subcommand.
  const CliRun run = InvokeCli({"--method=list"});
  EXPECT_EQ(run.code, 0);
  for (const char* name : {"bab", "bab-p", "im", "tim", "brute-force"}) {
    EXPECT_NE(run.out.find(name), std::string::npos) << name;
  }
}

TEST(CliDispatchTest, UnknownMethodFailsWithExitCode2) {
  const CliRun run = InvokeCli(TinyArgs("plan", {"--method=annealing"}));
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("unknown solver 'annealing'"),
            std::string::npos);
  EXPECT_NE(run.err.find("bab-p"), std::string::npos);
}

TEST(CliDispatchTest, UnknownStoppingRuleFailsWithExitCode2) {
  // Mirror of the --method behavior: an unknown rule must not silently
  // fall back to the default — exit 2 and name the valid rules.
  const CliRun run = InvokeCli(TinyArgs("plan", {"--stopping=psychic"}));
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("unknown stopping rule 'psychic'"),
            std::string::npos);
  EXPECT_NE(run.err.find("holdout"), std::string::npos);
  EXPECT_NE(run.err.find("opim"), std::string::npos);
  EXPECT_EQ(run.out.find("\"plan\""), std::string::npos);
}

// ------------------------------------------------------- JSON pipelines

TEST(CliPipelineTest, GenerateEmitsDatasetShape) {
  const CliRun run = InvokeCli(TinyArgs("generate"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"command\":\"generate\""), std::string::npos);
  EXPECT_NE(run.out.find("\"vertices\":200"), std::string::npos);
  EXPECT_NE(run.out.find("\"pool_size\":20"), std::string::npos);
  // generate stops before planning.
  EXPECT_EQ(run.out.find("\"plan\""), std::string::npos);
}

TEST(CliPipelineTest, LearnReportsRecoveryQuality) {
  const CliRun run = InvokeCli(TinyArgs("learn"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"learn\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"spearman\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"events\":"), std::string::npos);
}

TEST(CliPipelineTest, PlanEmitsBudgetRespectingPlan) {
  const CliRun run = InvokeCli(TinyArgs("plan"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"plan\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"utility\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"seed_sets\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"budget_used\":3"), std::string::npos);
}

TEST(CliPipelineTest, SimulateValidatesThePlan) {
  const CliRun run = InvokeCli(TinyArgs("simulate"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"simulate\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"trials\":50"), std::string::npos);
}

TEST(CliPipelineTest, NamedMethodsDispatchThroughTheRegistry) {
  for (const char* method : {"bab", "im", "tim", "greedy-sigma"}) {
    const CliRun run =
        InvokeCli(TinyArgs("plan", {std::string("--method=") + method}));
    ASSERT_EQ(run.code, 0) << method << ": " << run.err;
    EXPECT_NE(run.out.find(std::string("\"method\":\"") + method + "\""),
              std::string::npos)
        << method;
    EXPECT_NE(run.out.find("\"converged\":"), std::string::npos) << method;
    EXPECT_NE(run.out.find("\"nodes_expanded\":"), std::string::npos)
        << method;
    EXPECT_NE(run.out.find("\"bound_calls\":"), std::string::npos)
        << method;
  }
}

TEST(CliPipelineTest, SamplingEpsilonRunsProgressiveSolving) {
  const CliRun run = InvokeCli(TinyArgs(
      "plan", {"--theta=300", "--sampling_epsilon=0.02",
               "--max_theta=64000"}));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"sampling_epsilon\":0.02"), std::string::npos);
  EXPECT_NE(run.out.find("\"theta_used\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"sampling_rounds\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"sampling_gap\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"holdout_utility\":"), std::string::npos);
}

TEST(CliPipelineTest, PlanReportsSampleStoreTelemetry) {
  const CliRun run = InvokeCli(TinyArgs("plan"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"sample_store\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"memory_bytes\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"live_generations\":1"), std::string::npos);
  EXPECT_NE(run.out.find("\"shared\":true"), std::string::npos);

  const CliRun opted_out =
      InvokeCli(TinyArgs("plan", {"--share_samples=false"}));
  ASSERT_EQ(opted_out.code, 0) << opted_out.err;
  EXPECT_NE(opted_out.out.find("\"shared\":false"), std::string::npos);

  const CliRun bench = InvokeCli(TinyArgs("bench", {"--k=2,3"}));
  ASSERT_EQ(bench.code, 0) << bench.err;
  EXPECT_NE(bench.out.find("\"sample_store\":"), std::string::npos);
}

TEST(CliPipelineTest, OpimStoppingReportsCertifiedRatio) {
  const CliRun run = InvokeCli(TinyArgs(
      "plan", {"--theta=300", "--sampling_epsilon=0.1",
               "--stopping=opim", "--max_theta=64000"}));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"stopping\":\"opim\""), std::string::npos);
  EXPECT_NE(run.out.find("\"certified_ratio\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"sampling_gap\":"), std::string::npos);
}

TEST(CliPipelineTest, SamplingEpsilonValidation) {
  EXPECT_EQ(InvokeCli(TinyArgs("plan", {"--sampling_epsilon=1.5"})).code,
            2);
  EXPECT_EQ(InvokeCli(TinyArgs("plan", {"--sampling_epsilon=-0.1"})).code,
            2);
  // --max_theta below the starting theta can never be satisfied.
  EXPECT_EQ(InvokeCli(TinyArgs("plan", {"--sampling_epsilon=0.1",
                                        "--max_theta=500"}))
                .code,
            2);
}

TEST(CliPipelineTest, OneShotPlanStillReportsThetaUsed) {
  const CliRun run = InvokeCli(TinyArgs("plan"));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"theta_used\":1000"), std::string::npos);
  EXPECT_NE(run.out.find("\"sampling_rounds\":1"), std::string::npos);
  // No holdout is sampled unless progressive solving asks for one.
  EXPECT_EQ(run.out.find("\"sampling_gap\":"), std::string::npos);
}

TEST(CliPipelineTest, BenchSweepsBudgets) {
  const CliRun run = InvokeCli(TinyArgs("bench", {"--k=2,3"}));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"sweep\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"k\":2"), std::string::npos);
  EXPECT_NE(run.out.find("\"k\":3"), std::string::npos);
}

TEST(CliPipelineTest, DeterministicAcrossRuns) {
  // Wall-clock fields differ between runs; everything else (plan, utility,
  // dataset shape) must be bitwise identical for a fixed seed.
  const auto strip_timings = [](const std::string& json) {
    static const std::regex seconds_re("\"[a-z_]*seconds\":[0-9.e+-]+");
    return std::regex_replace(json, seconds_re, "\"seconds\":X");
  };
  const CliRun a = InvokeCli(TinyArgs("plan"));
  const CliRun b = InvokeCli(TinyArgs("plan"));
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(strip_timings(a.out), strip_timings(b.out));
}

TEST(CliPipelineTest, UnwritableOutputFileFailsTheRun) {
  const CliRun run =
      InvokeCli(TinyArgs("generate", {"--output=/nonexistent/dir/r.json"}));
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("cannot write --output"), std::string::npos);
  // The JSON still reaches stdout for interactive use.
  EXPECT_NE(run.out.find("\"command\":\"generate\""), std::string::npos);
}

TEST(CliPipelineTest, LearnedPlanningPathRuns) {
  const CliRun run = InvokeCli(TinyArgs("plan", {"--learn"}));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"learn\":"), std::string::npos);
  EXPECT_NE(run.out.find("\"plan\":"), std::string::npos);
}

TEST(CliParseTest, DeadlineAndServerFlags) {
  CliConfig config;
  ASSERT_TRUE(ParseCliConfig(
                  MakeFlags({"plan", "--deadline_ms=250",
                             "--server=10.0.0.8:7477"}),
                  &config)
                  .ok());
  EXPECT_EQ(config.deadline_ms, 250);
  EXPECT_EQ(config.server, "10.0.0.8:7477");

  // Non-positive deadlines and --server outside `plan` fail at parse
  // time, mirroring the request-layer validation.
  for (const std::vector<std::string>& bad :
       {std::vector<std::string>{"plan", "--deadline_ms=0"},
        {"plan", "--deadline_ms=-5"},
        {"bench", "--server=127.0.0.1:7477"},
        {"serve", "--workers=0"},
        {"serve", "--max_contexts=0"},
        {"serve", "--port=70000"},
        {"serve", "--store_budget_mb=-1"}}) {
    CliConfig rejected;
    EXPECT_FALSE(ParseCliConfig(MakeFlags(bad), &rejected).ok())
        << bad.front() << " " << bad.back();
  }
}

TEST(CliParseTest, ServeCommandParsesDaemonFlags) {
  CliConfig config;
  ASSERT_TRUE(ParseCliConfig(
                  MakeFlags({"serve", "--port=7477", "--workers=3",
                             "--max_contexts=2", "--store_budget_mb=64"}),
                  &config)
                  .ok());
  EXPECT_EQ(config.command, "serve");
  EXPECT_EQ(config.port, 7477);
  EXPECT_EQ(config.workers, 3);
  EXPECT_EQ(config.max_contexts, 2);
  EXPECT_EQ(config.store_budget_mb, 64);
}

TEST(CliDispatchTest, RemotePlanRejectsMalformedServer) {
  const CliRun run =
      InvokeCli(TinyArgs("plan", {"--server=no-port-here"}));
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("host:port"), std::string::npos);
}

TEST(CliPipelineTest, RemotePlanMatchesLocalSolve) {
  serve::PlanServer server({});  // 127.0.0.1, free port
  ASSERT_TRUE(server.Start().ok());

  // The same tiny configuration solved locally and via the daemon must
  // produce the identical utility: the daemon rebuilds the pipeline
  // from the wire spec with the same seeds.
  const CliRun local = InvokeCli(TinyArgs("plan"));
  ASSERT_EQ(local.code, 0) << local.err;
  const CliRun remote = InvokeCli(TinyArgs(
      "plan",
      {"--server=127.0.0.1:" + std::to_string(server.port())}));
  ASSERT_EQ(remote.code, 0) << remote.err;
  EXPECT_NE(remote.out.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(remote.out.find("\"cache_hit\":"), std::string::npos);

  const std::regex utility_re("\"utility\":([0-9.eE+-]+)");
  std::smatch local_match, remote_match;
  ASSERT_TRUE(
      std::regex_search(local.out, local_match, utility_re));
  ASSERT_TRUE(
      std::regex_search(remote.out, remote_match, utility_re));
  EXPECT_EQ(local_match[1].str(), remote_match[1].str());
  server.Stop();
}

TEST(CliPipelineTest, DeadlineFlagReportsCancellation) {
  // A generous deadline leaves the tiny solve untouched but switches
  // the cancellation telemetry on in the plan JSON.
  const CliRun run =
      InvokeCli(TinyArgs("plan", {"--deadline_ms=60000"}));
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("\"cancelled\":false"), std::string::npos);
  EXPECT_NE(run.out.find("\"deadline_exceeded\":false"),
            std::string::npos);
}

TEST(CliPipelineTest, ThreadsFlagRunsTheParallelEngine) {
  // TinyArgs pins --threads=1; override with a multi-worker solve across
  // plan and bench. The parallel engine must still produce a complete,
  // converged result.
  for (const char* extra : {"--threads=2", "--threads=4"}) {
    const CliRun run = InvokeCli(TinyArgs("plan", {extra}));
    ASSERT_EQ(run.code, 0) << extra << ": " << run.err;
    EXPECT_NE(run.out.find("\"utility\":"), std::string::npos) << extra;
    EXPECT_NE(run.out.find("\"budget_used\":3"), std::string::npos)
        << extra;
  }
  const CliRun bench = InvokeCli(TinyArgs("bench", {"--k=2,3",
                                                    "--threads=2"}));
  ASSERT_EQ(bench.code, 0) << bench.err;
  EXPECT_NE(bench.out.find("\"sweep\":"), std::string::npos);
}

}  // namespace
}  // namespace cli
}  // namespace oipa
