#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/assignment_plan.h"
#include "rrset/mrr_collection.h"
#include "tests/paper_example.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

using testing_support::PaperExample;

// -------------------------------------------------------- AssignmentPlan

TEST(AssignmentPlanTest, AddRemoveContains) {
  AssignmentPlan plan(3);
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.Add(0, 5));
  EXPECT_FALSE(plan.Add(0, 5));  // duplicate
  EXPECT_TRUE(plan.Add(2, 5));   // same vertex, different piece
  EXPECT_EQ(plan.size(), 2);
  EXPECT_TRUE(plan.Contains(0, 5));
  EXPECT_FALSE(plan.Contains(1, 5));
  EXPECT_TRUE(plan.Remove(0, 5));
  EXPECT_FALSE(plan.Remove(0, 5));
  EXPECT_EQ(plan.size(), 1);
}

TEST(AssignmentPlanTest, ContainmentDefinition2) {
  AssignmentPlan small(2), big(2);
  small.Add(0, 1);
  big.Add(0, 1);
  big.Add(1, 2);
  EXPECT_TRUE(small.ContainedIn(big));
  EXPECT_FALSE(big.ContainedIn(small));
  EXPECT_TRUE(small.ContainedIn(small));
}

TEST(AssignmentPlanTest, AssignmentsEnumeration) {
  AssignmentPlan plan(2);
  plan.Add(1, 7);
  plan.Add(0, 3);
  const auto pairs = plan.Assignments();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(0, VertexId{3}));
  EXPECT_EQ(pairs[1], std::make_pair(1, VertexId{7}));
}

TEST(AssignmentPlanTest, FromSeedSets) {
  const AssignmentPlan plan =
      AssignmentPlan::FromSeedSets({{1, 2}, {}, {3}});
  EXPECT_EQ(plan.num_pieces(), 3);
  EXPECT_EQ(plan.size(), 3);
  EXPECT_TRUE(plan.Contains(2, 3));
}

// --------------------------------------------------- Poisson-binomial DP

TEST(CountDistributionTest, MatchesBruteForceEnumeration) {
  const std::vector<double> probs{0.3, 0.7, 0.5};
  const std::vector<double> f{0.0, 0.1, 0.4, 0.9};
  // Brute force over all 2^3 outcomes.
  double expected = 0.0;
  for (int mask = 0; mask < 8; ++mask) {
    double p = 1.0;
    int count = 0;
    for (int j = 0; j < 3; ++j) {
      if ((mask >> j) & 1) {
        p *= probs[j];
        ++count;
      } else {
        p *= 1.0 - probs[j];
      }
    }
    expected += p * f[count];
  }
  EXPECT_NEAR(ExpectationOverCountDistribution(probs, f), expected, 1e-12);
}

TEST(CountDistributionTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(
      ExpectationOverCountDistribution({1.0, 1.0}, {0.0, 0.5, 0.8}), 0.8);
  EXPECT_DOUBLE_EQ(
      ExpectationOverCountDistribution({0.0, 0.0}, {0.3, 0.5, 0.8}), 0.3);
}

// ------------------------------------------------------- Paper Example 1

TEST(PaperExampleTest, Example1UtilityIs105) {
  const PaperExample ex;
  AssignmentPlan plan(2);
  plan.Add(0, PaperExample::kA);
  plan.Add(1, PaperExample::kE);
  const double utility =
      ExactAdoptionUtility(ex.pieces, ex.model(), plan);
  // 2 users at one piece + 3 users at two pieces.
  const double expected = 2.0 / (1.0 + std::exp(2.0)) +
                          3.0 / (1.0 + std::exp(1.0));
  EXPECT_NEAR(utility, expected, 1e-12);
  EXPECT_NEAR(utility, 1.05, 0.01);  // the paper's rounded value
}

TEST(PaperExampleTest, Example2NonSubmodularity) {
  // delta_{S̄y}(S̄) > delta_{S̄x}(S̄) even though S̄x ⊆ S̄y: the adoption
  // utility is NOT submodular (Example 2).
  const PaperExample ex;
  const LogisticAdoptionModel m = ex.model();

  AssignmentPlan empty(2);
  AssignmentPlan y(2);
  y.Add(0, PaperExample::kA);
  AssignmentPlan s(2);
  s.Add(1, PaperExample::kE);
  AssignmentPlan y_plus_s = y;
  y_plus_s.Add(1, PaperExample::kE);

  const double sigma_empty = ExactAdoptionUtility(ex.pieces, m, empty);
  const double sigma_y = ExactAdoptionUtility(ex.pieces, m, y);
  const double sigma_s = ExactAdoptionUtility(ex.pieces, m, s);
  const double sigma_ys = ExactAdoptionUtility(ex.pieces, m, y_plus_s);

  EXPECT_NEAR(sigma_empty, 0.0, 1e-12);
  EXPECT_NEAR(sigma_y, 0.48, 0.01);
  const double delta_from_y = sigma_ys - sigma_y;      // ~0.57
  const double delta_from_empty = sigma_s - sigma_empty;  // ~0.48
  EXPECT_GT(delta_from_y, delta_from_empty);
  EXPECT_NEAR(delta_from_y, 0.57, 0.01);
  EXPECT_NEAR(delta_from_empty, 0.48, 0.01);
}

TEST(PaperExampleTest, MonotonicityHolds) {
  const PaperExample ex;
  const LogisticAdoptionModel m = ex.model();
  AssignmentPlan plan(2);
  double prev = ExactAdoptionUtility(ex.pieces, m, plan);
  const std::vector<Assignment> adds = {
      {0, PaperExample::kA}, {1, PaperExample::kE}, {0, PaperExample::kC}};
  for (const auto& [piece, v] : adds) {
    plan.Add(piece, v);
    const double cur = ExactAdoptionUtility(ex.pieces, m, plan);
    EXPECT_GE(cur + 1e-12, prev);
    prev = cur;
  }
}

// --------------------------------------------- Estimator cross-validation

TEST(EstimatorTest, MrrMatchesExactOnPaperExample) {
  const PaperExample ex;
  const MrrCollection mrr = MrrCollection::Generate(ex.pieces, 80'000, 7);
  AssignmentPlan plan(2);
  plan.Add(0, PaperExample::kA);
  plan.Add(1, PaperExample::kE);
  const double exact = ExactAdoptionUtility(ex.pieces, ex.model(), plan);
  const double est = EstimateAdoptionUtility(mrr, ex.model(), plan);
  // Deterministic graph: the only randomness is root choice.
  EXPECT_NEAR(est, exact, 0.03);
}

TEST(EstimatorTest, SimulationMatchesExactOnPaperExample) {
  const PaperExample ex;
  AssignmentPlan plan(2);
  plan.Add(0, PaperExample::kA);
  plan.Add(1, PaperExample::kE);
  const double exact = ExactAdoptionUtility(ex.pieces, ex.model(), plan);
  const double sim =
      SimulateAdoptionUtility(ex.pieces, ex.model(), plan, 100, 9);
  EXPECT_NEAR(sim, exact, 1e-9);  // deterministic cascades
}

class EstimatorUnbiasedness
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(EstimatorUnbiasedness, MrrAgreesWithExactOnRandomInstances) {
  const auto [n, edge_p, ell] = GetParam();
  const Graph g = GenerateErdosRenyi(n, edge_p, 31 + n + ell);
  if (g.num_edges() > 22) GTEST_SKIP() << "exact enumeration too large";
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(g, 4, 2.0, 37);
  Rng rng(41 + ell);
  const Campaign campaign = Campaign::SampleUniformPieces(ell, 4, &rng);
  const auto pieces = BuildPieceGraphs(g, probs, campaign);
  const LogisticAdoptionModel model(2.0, 1.0);

  AssignmentPlan plan(ell);
  plan.Add(0, 0);
  if (ell > 1) plan.Add(1, std::min<VertexId>(3, n - 1));

  const double exact = ExactAdoptionUtility(pieces, model, plan);
  const MrrCollection mrr = MrrCollection::Generate(pieces, 60'000, 43);
  const double est = EstimateAdoptionUtility(mrr, model, plan);
  EXPECT_NEAR(est, exact, 0.08 * std::max(0.5, exact));

  const double sim = SimulateAdoptionUtility(pieces, model, plan,
                                             15'000, 47);
  EXPECT_NEAR(sim, exact, 0.08 * std::max(0.5, exact));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorUnbiasedness,
    ::testing::Values(std::make_tuple(8, 0.25, 1),
                      std::make_tuple(8, 0.25, 2),
                      std::make_tuple(10, 0.15, 3),
                      std::make_tuple(12, 0.1, 2),
                      std::make_tuple(6, 0.4, 4)));

TEST(EstimatorTest, EmptyPlanIsZero) {
  const PaperExample ex;
  const MrrCollection mrr = MrrCollection::Generate(ex.pieces, 1000, 7);
  const AssignmentPlan plan(2);
  EXPECT_EQ(EstimateAdoptionUtility(mrr, ex.model(), plan), 0.0);
  EXPECT_EQ(ExactAdoptionUtility(ex.pieces, ex.model(), plan), 0.0);
}

}  // namespace
}  // namespace oipa
