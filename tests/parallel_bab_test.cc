#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "oipa/branch_and_bound.h"
#include "oipa/brute_force.h"
#include "rrset/mrr_collection.h"
#include "topic/prob_models.h"
#include "util/random.h"
#include "util/threading.h"

namespace oipa {
namespace {

/// Self-contained BAB instance (mirrors bab_test.cc's helper).
struct ParInstance {
  ParInstance(int n, double edge_p, int ell, int num_topics, uint64_t seed,
              double alpha = 2.5, double beta = 1.0, int64_t theta = 4000)
      : graph(GenerateErdosRenyi(n, edge_p, seed)),
        probs(AssignWeightedCascadeTopics(graph, num_topics, 2.0,
                                          seed + 1)),
        model(alpha, beta) {
    Rng rng(seed + 2);
    campaign = Campaign::SampleUniformPieces(ell, num_topics, &rng);
    pieces = BuildPieceGraphs(graph, probs, campaign);
    mrr = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces, theta, seed + 3));
    for (VertexId v = 0; v < graph.num_vertices(); ++v) pool.push_back(v);
  }

  Graph graph;
  EdgeTopicProbs probs;
  LogisticAdoptionModel model;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  std::unique_ptr<MrrCollection> mrr;
  std::vector<VertexId> pool;
};

// --------------------------------------------- sequential equivalence

TEST(ParallelBabTest, OneThreadIsBitIdenticalToSequentialEngine) {
  // Golden expectations recorded from the pre-refactor sequential
  // engine on this fixed instance: the num_threads=1 path must keep
  // reproducing the classic engine's search trace exactly, so any
  // drift in the refactored shared pieces (PlanReplay diffing,
  // Snapshot/Restore in FinishResult, the delta_f table) shows up
  // here instead of passing silently.
  ParInstance inst(20, 0.12, 2, 4, 163);
  BabOptions sequential;
  sequential.budget = 4;  // num_threads defaults to 1
  BabOptions one_thread = sequential;
  one_thread.num_threads = 1;

  const BabResult a =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, sequential).Solve();
  const BabResult b =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, one_thread).Solve();
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.bound_calls, b.bound_calls);
  EXPECT_EQ(a.plan.Assignments(), b.plan.Assignments());

  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.nodes_expanded, 3);
  EXPECT_EQ(a.bound_calls, 7);
  EXPECT_NEAR(a.utility, 2.1230661932217187, 1e-12);
  EXPECT_NEAR(a.upper_bound, 2.1230661932217187, 1e-12);
  const std::vector<Assignment> golden_plan{{0, 11}, {0, 9}, {1, 2},
                                            {1, 11}};
  EXPECT_EQ(a.plan.Assignments(), golden_plan);
}

TEST(ParallelBabTest, ExactParallelSearchMatchesBruteForce) {
  // gap = 0 + exact pruning: whatever the schedule, the parallel search
  // must terminate on the true optimum. 32 workers on this tiny
  // instance leaves most deques permanently empty — the all-thieves
  // regime that stresses the termination counter.
  ParInstance inst(9, 0.22, 2, 3, 107);
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, 3);
  for (const int threads : {2, 8, 32}) {
    BabOptions opts;
    opts.budget = 3;
    opts.gap = 0.0;
    opts.exact_pruning = true;
    opts.num_threads = threads;
    const BabResult res =
        BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
    EXPECT_TRUE(res.converged) << threads << " threads";
    EXPECT_NEAR(res.utility, opt.utility, 1e-9) << threads << " threads";
    EXPECT_GE(res.upper_bound + 1e-9, res.utility);
  }
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(ParallelEquivalence, IncumbentWithinGapOfSequential) {
  const auto [seed, progressive] = GetParam();
  ParInstance inst(30, 0.1, 3, 5, seed);
  BabOptions opts;
  opts.budget = 5;
  opts.progressive = progressive;

  const BabResult seq =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  BabOptions par = opts;
  par.num_threads = 4;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, par).Solve();

  // Both searches prune by the same rule against their own incumbent, so
  // the incumbents agree to within the termination gap (plus a little
  // slack: the paper's default pruning is only gap-rigorous for sigma
  // under exact_pruning).
  const double band = 1.0 + opts.gap + 0.02;
  EXPECT_GE(res.utility * band + 1e-9, seq.utility);
  EXPECT_GE(seq.utility * band + 1e-9, res.utility);
  EXPECT_GE(res.upper_bound + 1e-9, res.utility);
  // The reported utility is the true MRR estimate of the plan.
  EXPECT_NEAR(res.utility,
              EstimateAdoptionUtility(*inst.mrr, inst.model, res.plan),
              1e-9);
  EXPECT_LE(res.plan.size(), 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    ::testing::Values(std::make_tuple(uint64_t{157}, false),
                      std::make_tuple(uint64_t{157}, true),
                      std::make_tuple(uint64_t{193}, false),
                      std::make_tuple(uint64_t{211}, true)));

// ------------------------------------------------- stop-path behavior

TEST(ParallelBabTest, MaxNodesCapTripsGracefully) {
  ParInstance inst(30, 0.1, 3, 5, 181);
  BabOptions opts;
  opts.budget = 6;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  opts.max_nodes = 3;
  opts.num_threads = 4;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.utility, 0.0);
  EXPECT_LE(res.plan.size(), 6);
  EXPECT_GE(res.upper_bound + 1e-9, res.utility);
}

TEST(ParallelBabTest, FourThreadProgressHookCancels) {
  ParInstance inst(30, 0.1, 3, 5, 157);
  BabOptions opts;
  opts.budget = 6;
  opts.gap = 0.0;
  opts.num_threads = 4;
  std::atomic<int> calls{0};
  std::atomic<int64_t> last_nodes{-1};
  opts.on_progress = [&](const BabProgress& p) {
    last_nodes.store(p.nodes_expanded);
    EXPECT_GE(p.upper_bound + 1e-9, p.incumbent);
    return ++calls < 5;  // cancel on the fifth snapshot
  };
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  EXPECT_TRUE(res.cancelled);
  EXPECT_FALSE(res.converged);
  EXPECT_GE(calls.load(), 5);
  EXPECT_GE(last_nodes.load(), 0);
  EXPECT_GT(res.utility, 0.0);  // the incumbent survives cancellation
}

// ------------------------------------------------------- API plumbing

TEST(ParallelBabTest, RequestThreadsFlowThroughTheApi) {
  ParInstance inst(30, 0.1, 2, 4, 223);
  auto context = PlanningContext::Borrow(
      inst.graph, inst.probs, inst.campaign, inst.model,
      {.theta = 4000, .holdout_theta = 0, .seed = 41});
  ASSERT_TRUE(context.ok()) << context.status().ToString();

  PlanRequest request;
  request.solver = "bab-p";
  request.pool = inst.pool;
  request.budgets = {4};
  const auto seq = Solve(**context, request);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  request.num_threads = 4;
  const auto par = Solve(**context, request);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_GE(par->utility * (1.0 + request.options.gap) + 1e-9,
            seq->utility);
  EXPECT_GE(seq->utility * (1.0 + request.options.gap) + 1e-9,
            par->utility);

  request.num_threads = -2;
  EXPECT_EQ(Solve(**context, request).status().code(),
            StatusCode::kInvalidArgument);
  request.num_threads = kMaxBabWorkers + 1;  // would exhaust OS threads
  EXPECT_EQ(Solve(**context, request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelBabTest, FourThreadCancellationThroughTheApi) {
  ParInstance inst(30, 0.1, 3, 5, 227);
  auto context = PlanningContext::Borrow(
      inst.graph, inst.probs, inst.campaign, inst.model,
      {.theta = 4000, .holdout_theta = 0, .seed = 43});
  ASSERT_TRUE(context.ok()) << context.status().ToString();

  PlanRequest request;
  request.solver = "bab";
  request.pool = inst.pool;
  request.budgets = {6};
  request.options.gap = 0.0;
  request.num_threads = 4;
  std::atomic<int> calls{0};
  request.progress = [&](const PlanProgress& p) {
    EXPECT_EQ(p.solver, "bab");
    EXPECT_EQ(p.budget, 6);
    return ++calls < 4;
  };
  const auto r = Solve(**context, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancelled);
  EXPECT_FALSE(r->converged);
  EXPECT_GE(calls.load(), 4);
  EXPECT_GT(r->utility, 0.0);
}

// ------------------------------------------------------- greedy-sigma

/// Naive reference: full (piece, vertex) rescan per round, zero-gain
/// picks allowed so the budget always fills, smallest (piece, v) wins
/// ties — the contract GreedySigmaSolve's CELF path must reproduce.
AssignmentPlan NaiveGreedySigma(const MrrCollection& mrr,
                                const LogisticAdoptionModel& model,
                                const std::vector<VertexId>& pool,
                                int budget) {
  CoverageState state(&mrr, model.AdoptionTable(mrr.num_pieces()));
  AssignmentPlan plan(mrr.num_pieces());
  for (int round = 0; round < budget; ++round) {
    double best_gain = -1.0;
    int best_piece = -1;
    VertexId best_v = -1;
    for (int j = 0; j < mrr.num_pieces(); ++j) {
      for (VertexId v : pool) {
        if (plan.Contains(j, v)) continue;
        const double gain = state.GainOfAdding(v, j);
        if (gain > best_gain) {
          best_gain = gain;
          best_piece = j;
          best_v = v;
        }
      }
    }
    if (best_piece < 0) break;
    state.AddSeed(best_v, best_piece);
    plan.Add(best_piece, best_v);
  }
  return plan;
}

class GreedySigmaLazy
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(GreedySigmaLazy, MatchesNaiveRescanExactly) {
  // beta/alpha sweeps across the submodular AND the increasing-marginal
  // (non-submodular) regimes — the suffix-max bound must keep lazy
  // selection exact in both.
  const auto [seed, alpha] = GetParam();
  ParInstance inst(20, 0.15, 3, 4, seed, alpha, 1.0);
  const int budget = 5;
  const BabResult lazy =
      GreedySigmaSolve(*inst.mrr, inst.model, inst.pool, budget);
  const AssignmentPlan naive =
      NaiveGreedySigma(*inst.mrr, inst.model, inst.pool, budget);
  EXPECT_EQ(lazy.plan.Assignments(), naive.Assignments());
  EXPECT_TRUE(lazy.converged);
  EXPECT_EQ(lazy.plan.size(), budget);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, GreedySigmaLazy,
    ::testing::Values(std::make_tuple(uint64_t{193}, 2.5),
                      std::make_tuple(uint64_t{193}, 4.0),
                      std::make_tuple(uint64_t{307}, 1.0),
                      std::make_tuple(uint64_t{311}, 3.0)));

TEST(GreedySigmaTest, UnderfilledBudgetReportsNotConverged) {
  // Candidate space (pieces * pool) smaller than the budget: the plan
  // cannot fill, and the result must say so instead of silently
  // returning a short plan.
  ParInstance inst(12, 0.2, 2, 3, 173);
  const std::vector<VertexId> tiny_pool{1, 3};
  const BabResult res =
      GreedySigmaSolve(*inst.mrr, inst.model, tiny_pool, 6);
  EXPECT_EQ(res.plan.size(), 4);  // 2 pieces x 2 candidates
  EXPECT_FALSE(res.converged);

  const BabResult filled =
      GreedySigmaSolve(*inst.mrr, inst.model, tiny_pool, 4);
  EXPECT_EQ(filled.plan.size(), 4);
  EXPECT_TRUE(filled.converged);
}

}  // namespace
}  // namespace oipa
