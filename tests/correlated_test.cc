#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/correlated.h"
#include "rrset/adaptive_theta.h"
#include "tests/paper_example.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

using testing_support::PaperExample;

/// Shared instance: overlapping pieces so correlation has something to
/// couple (both pieces use the same topics with different mixtures).
struct CorrelatedInstance {
  CorrelatedInstance()
      : graph(GenerateErdosRenyi(60, 0.08, 7)),
        probs(AssignWeightedCascadeTopics(graph, 4, 3.0, 11)),
        model(2.0, 1.0) {
    TopicVector t1(4), t2(4);
    t1[0] = 0.5;
    t1[1] = 0.5;
    t2[0] = 0.5;
    t2[2] = 0.5;
    campaign.AddPiece({"t1", t1});
    campaign.AddPiece({"t2", t2});
    pieces = BuildPieceGraphs(graph, probs, campaign);
    plan = AssignmentPlan(2);
    plan.Add(0, 0);
    plan.Add(0, 5);
    plan.Add(1, 0);
    plan.Add(1, 9);
  }

  Graph graph;
  EdgeTopicProbs probs;
  LogisticAdoptionModel model;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  AssignmentPlan plan{2};
};

TEST(CorrelatedCascadeTest, RhoZeroMatchesIndependentSimulator) {
  const CorrelatedInstance inst;
  const double independent = SimulateAdoptionUtility(
      inst.pieces, inst.model, inst.plan, 30'000, 13);
  const double rho0 = SimulateCorrelatedAdoptionUtility(
      inst.pieces, inst.model, inst.plan, 0.0, 30'000, 17);
  EXPECT_NEAR(rho0, independent, 0.05 * independent);
}

TEST(CorrelatedCascadeTest, CountsBoundedByPieces) {
  const CorrelatedInstance inst;
  Rng rng(19);
  for (int t = 0; t < 50; ++t) {
    const auto counts =
        SimulateCorrelatedCascade(inst.pieces, inst.plan, 0.7, &rng);
    for (int c : counts) {
      EXPECT_GE(c, 0);
      EXPECT_LE(c, 2);
    }
  }
}

TEST(CorrelatedCascadeTest, SeedsAlwaysReceiveTheirPieces) {
  const CorrelatedInstance inst;
  Rng rng(23);
  const auto counts =
      SimulateCorrelatedCascade(inst.pieces, inst.plan, 1.0, &rng);
  // Vertex 0 seeds both pieces.
  EXPECT_EQ(counts[0], 2);
  EXPECT_GE(counts[5], 1);
  EXPECT_GE(counts[9], 1);
}

TEST(CorrelatedCascadeTest, PositiveCorrelationShiftsUtility) {
  // The estimator built on the independence assumption is biased once
  // rho > 0; this quantifies the Section-VII future-work concern. The
  // effect is sharpest for two IDENTICAL pieces from identical seeds:
  // under rho = 1 both cascades share one live-edge world, so every
  // reached user receives BOTH pieces (count 2); independently, reached
  // users often receive only one. With a convex adoption profile
  // (f(2) > 2 f(1)) the correlated utility must be strictly larger.
  const Graph graph = GenerateErdosRenyi(60, 0.08, 7);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 4, 3.0, 11);
  TopicVector shared(4);
  shared[0] = 0.5;
  shared[1] = 0.5;
  Campaign campaign;
  campaign.AddPiece({"t1", shared});
  campaign.AddPiece({"t2", shared});
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  AssignmentPlan plan(2);
  for (int j = 0; j < 2; ++j) {
    plan.Add(j, 0);
    plan.Add(j, 5);
  }
  const LogisticAdoptionModel convex(4.0, 1.0);  // f(2) ~ 6.4 * f(1)^2-ish
  const double rho0 = SimulateCorrelatedAdoptionUtility(
      pieces, convex, plan, 0.0, 60'000, 29);
  const double rho1 = SimulateCorrelatedAdoptionUtility(
      pieces, convex, plan, 1.0, 60'000, 31);
  EXPECT_GT(rho1, rho0 * 1.05);
}

TEST(CorrelatedCascadeTest, DeterministicInstanceUnaffectedByRho) {
  // On the paper example all probabilities are 1: correlation cannot
  // change anything.
  const PaperExample ex;
  AssignmentPlan plan(2);
  plan.Add(0, PaperExample::kA);
  plan.Add(1, PaperExample::kE);
  const double exact = ExactAdoptionUtility(ex.pieces, ex.model(), plan);
  for (double rho : {0.0, 0.5, 1.0}) {
    const double sim = SimulateCorrelatedAdoptionUtility(
        ex.pieces, ex.model(), plan, rho, 200, 37);
    EXPECT_NEAR(sim, exact, 1e-9) << "rho=" << rho;
  }
}

// ------------------------------------------------------- adaptive theta

TEST(AdaptiveThetaTest, ConvergesAndRespectsCap) {
  const CorrelatedInstance inst;
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < inst.graph.num_vertices(); v += 2) {
    pool.push_back(v);
  }
  AdaptiveThetaOptions options;
  options.initial_theta = 500;
  options.max_theta = 64'000;
  options.relative_tolerance = 0.10;
  options.probe_budget = 4;
  options.seed = 41;
  const AdaptiveThetaResult result =
      ChooseTheta(inst.pieces, pool, options);
  EXPECT_GE(result.theta, options.initial_theta);
  EXPECT_LE(result.theta, options.max_theta);
  // Either it met the tolerance or it hit the cap.
  if (result.theta * 2 <= options.max_theta) {
    EXPECT_LE(result.achieved_disagreement,
              options.relative_tolerance);
  }
}

TEST(AdaptiveThetaTest, EachSampleGeneratedAtMostOncePerCollection) {
  // The incremental engine grows one train + one test collection in
  // place, so the total draw is exactly 2 * final theta — the old
  // regenerate-per-round scheme paid 2 * (theta_0 + ... + theta_final).
  const CorrelatedInstance inst;
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < inst.graph.num_vertices(); v += 2) {
    pool.push_back(v);
  }
  AdaptiveThetaOptions options;
  options.initial_theta = 250;
  options.max_theta = 64'000;
  options.relative_tolerance = 0.05;
  options.probe_budget = 4;
  options.seed = 47;
  const AdaptiveThetaResult result =
      ChooseTheta(inst.pieces, pool, options);
  EXPECT_EQ(result.total_samples_generated, 2 * result.theta);
}

TEST(AdaptiveThetaTest, AdoptionModelShapesTheDecision) {
  // The options carry the real adoption curve; a steeper barrier (large
  // alpha) shrinks utilities and changes the probe, so the chosen theta
  // must be allowed to differ — and both runs must still converge or
  // cap out like any other search.
  const CorrelatedInstance inst;
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < inst.graph.num_vertices(); v += 2) {
    pool.push_back(v);
  }
  AdaptiveThetaOptions options;
  options.initial_theta = 250;
  options.max_theta = 16'000;
  options.relative_tolerance = 0.10;
  options.probe_budget = 4;
  options.seed = 53;
  options.model = LogisticAdoptionModel(4.0, 0.5);
  const AdaptiveThetaResult steep =
      ChooseTheta(inst.pieces, pool, options);
  EXPECT_GE(steep.theta, options.initial_theta);
  EXPECT_LE(steep.theta, options.max_theta);
  EXPECT_EQ(steep.total_samples_generated, 2 * steep.theta);
}

TEST(AdaptiveThetaTest, TighterToleranceNeedsMoreSamples) {
  const CorrelatedInstance inst;
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < inst.graph.num_vertices(); v += 3) {
    pool.push_back(v);
  }
  AdaptiveThetaOptions loose;
  loose.initial_theta = 250;
  loose.max_theta = 256'000;
  loose.relative_tolerance = 0.25;
  loose.probe_budget = 4;
  loose.seed = 43;
  AdaptiveThetaOptions tight = loose;
  tight.relative_tolerance = 0.02;
  const auto loose_result = ChooseTheta(inst.pieces, pool, loose);
  const auto tight_result = ChooseTheta(inst.pieces, pool, tight);
  EXPECT_GE(tight_result.theta, loose_result.theta);
}

}  // namespace
}  // namespace oipa
