#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/baselines.h"
#include "oipa/branch_and_bound.h"
#include "oipa/brute_force.h"
#include "rrset/mrr_collection.h"
#include "tests/paper_example.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

using testing_support::PaperExample;

struct BabInstance {
  BabInstance(int n, double edge_p, int ell, int num_topics, uint64_t seed,
              double alpha = 2.5, double beta = 1.0, int64_t theta = 4000)
      : graph(GenerateErdosRenyi(n, edge_p, seed)),
        probs(AssignWeightedCascadeTopics(graph, num_topics, 2.0,
                                          seed + 1)),
        model(alpha, beta) {
    Rng rng(seed + 2);
    campaign = Campaign::SampleUniformPieces(ell, num_topics, &rng);
    pieces = BuildPieceGraphs(graph, probs, campaign);
    mrr = std::make_unique<MrrCollection>(
        MrrCollection::Generate(pieces, theta, seed + 3));
    for (VertexId v = 0; v < graph.num_vertices(); ++v) pool.push_back(v);
  }

  Graph graph;
  EdgeTopicProbs probs;
  LogisticAdoptionModel model;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
  std::unique_ptr<MrrCollection> mrr;
  std::vector<VertexId> pool;
};

TEST(BabTest, PaperExampleFindsOptimalAssignment) {
  const PaperExample ex;
  const MrrCollection mrr = MrrCollection::Generate(ex.pieces, 50'000, 7);
  BabOptions opts;
  opts.budget = 2;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  BabSolver solver(&mrr, ex.model(), std::vector<VertexId>{0, 1, 2, 3, 4},
                   opts);
  const BabResult res = solver.Solve();
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.plan.Contains(0, PaperExample::kA));
  EXPECT_TRUE(res.plan.Contains(1, PaperExample::kE));
  EXPECT_NEAR(res.utility, 1.05, 0.03);
}

class BabExactness
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(BabExactness, ExactPruningMatchesBruteForce) {
  const auto [seed, ell, budget] = GetParam();
  BabInstance inst(9, 0.22, ell, 3, seed);
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, budget);

  BabOptions opts;
  opts.budget = budget;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  BabSolver solver(inst.mrr.get(), inst.model, inst.pool, opts);
  const BabResult res = solver.Solve();
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.utility, opt.utility, 1e-9)
      << "bab plan " << res.plan.DebugString() << " vs opt "
      << opt.plan.DebugString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BabExactness,
    ::testing::Values(std::make_tuple(uint64_t{103}, 2, 2),
                      std::make_tuple(uint64_t{107}, 2, 3),
                      std::make_tuple(uint64_t{109}, 3, 2),
                      std::make_tuple(uint64_t{113}, 1, 3),
                      std::make_tuple(uint64_t{127}, 3, 3)));

class BabGuarantee : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BabGuarantee, PaperBoundAchievesOneMinusOneOverE) {
  // With the paper's pruning (no inflation) the result must still be a
  // (1 - 1/e) approximation of the MRR optimum (Theorem 2).
  const uint64_t seed = GetParam();
  BabInstance inst(10, 0.2, 2, 3, seed);
  const int budget = 3;
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, budget);

  BabOptions opts;
  opts.budget = budget;
  opts.gap = 0.0;
  BabSolver solver(inst.mrr.get(), inst.model, inst.pool, opts);
  const BabResult res = solver.Solve();
  EXPECT_GE(res.utility + 1e-9,
            (1.0 - std::exp(-1.0)) * opt.utility);
  EXPECT_LE(res.utility, opt.utility + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BabGuarantee,
                         ::testing::Values(131, 137, 139, 149, 151));

TEST(BabTest, ProgressiveCloseToPlain) {
  BabInstance inst(30, 0.1, 3, 5, 157);
  BabOptions plain;
  plain.budget = 5;
  BabSolver plain_solver(inst.mrr.get(), inst.model, inst.pool, plain);
  const BabResult plain_res = plain_solver.Solve();

  BabOptions pro = plain;
  pro.progressive = true;
  pro.epsilon = 0.5;
  BabSolver pro_solver(inst.mrr.get(), inst.model, inst.pool, pro);
  const BabResult pro_res = pro_solver.Solve();

  EXPECT_GE(pro_res.utility, 0.85 * plain_res.utility);
}

TEST(BabTest, UpperBoundDominatesUtility) {
  BabInstance inst(20, 0.12, 2, 4, 163);
  BabOptions opts;
  opts.budget = 4;
  BabSolver solver(inst.mrr.get(), inst.model, inst.pool, opts);
  const BabResult res = solver.Solve();
  EXPECT_GE(res.upper_bound + 1e-9, res.utility);
  EXPECT_GT(res.bound_calls, 0);
}

TEST(BabTest, GapControlsTermination) {
  BabInstance inst(12, 0.15, 2, 3, 167);
  BabOptions tight;
  tight.budget = 3;
  tight.gap = 0.0;
  tight.exact_pruning = true;
  BabOptions loose = tight;
  loose.gap = 0.25;
  const BabResult tight_res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, tight).Solve();
  const BabResult loose_res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, loose).Solve();
  // A looser gap can only reduce the explored node count.
  EXPECT_LE(loose_res.nodes_expanded, tight_res.nodes_expanded);
  EXPECT_GE(loose_res.utility,
            tight_res.utility / (1.0 + loose.gap) - 1e-9);
}

TEST(BabTest, BudgetOneSelectsBestSingleAssignment) {
  BabInstance inst(12, 0.2, 2, 3, 173);
  BabOptions opts;
  opts.budget = 1;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, 1);
  EXPECT_NEAR(res.utility, opt.utility, 1e-9);
  EXPECT_LE(res.plan.size(), 1);
}

TEST(BabTest, RestrictedPoolHonored) {
  BabInstance inst(20, 0.15, 2, 4, 179);
  std::vector<VertexId> pool{1, 3, 5, 7};
  BabOptions opts;
  opts.budget = 3;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, pool, opts).Solve();
  for (int j = 0; j < res.plan.num_pieces(); ++j) {
    for (VertexId v : res.plan.SeedSet(j)) {
      EXPECT_TRUE(v == 1 || v == 3 || v == 5 || v == 7);
    }
  }
}

TEST(BabTest, MaxNodesCapTripsGracefully) {
  BabInstance inst(30, 0.1, 3, 5, 181);
  BabOptions opts;
  opts.budget = 6;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  opts.max_nodes = 3;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  // Must still return a feasible plan with its true utility.
  EXPECT_GT(res.utility, 0.0);
  EXPECT_LE(res.plan.size(), 6);
}

// ------------------------------------------------------------- Ablation

TEST(BabTest, PaperTangentVariantAlsoCorrect) {
  // The paper's Figure-2 anchoring (sigmoid(-alpha) base for uncovered
  // samples) is looser but still sound: with exact pruning it must reach
  // the brute-force optimum on a tiny instance.
  BabInstance inst(9, 0.22, 2, 3, 191);
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, 2);
  BabOptions opts;
  opts.budget = 2;
  opts.gap = 0.0;
  opts.exact_pruning = true;
  opts.variant = BoundVariant::kPaperTangent;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  EXPECT_NEAR(res.utility, opt.utility, 1e-9);
}

TEST(BabTest, PaperTangentBoundIsLooser) {
  // Quantifies why kZeroAnchored is the default: on the same instance
  // the paper anchoring's root upper bound exceeds the zero-anchored one
  // by about n * sigmoid(-alpha).
  BabInstance inst(15, 0.15, 2, 3, 307);
  BabOptions zero;
  zero.budget = 2;
  zero.max_nodes = 0;  // root bound only
  BabOptions paper = zero;
  paper.variant = BoundVariant::kPaperTangent;
  const BabResult zr =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, zero).Solve();
  const BabResult pr =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, paper).Solve();
  EXPECT_GT(pr.upper_bound, zr.upper_bound);
}

// ------------------------------------------------- Config property sweep

struct BabConfig {
  bool progressive;
  bool lazy;
  bool exact;
  BoundVariant variant;
};

class BabConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(BabConfigSweep, EveryConfigurationIsSoundAndFeasible) {
  // Whatever the configuration, the solver must return a feasible plan
  // whose reported utility matches an independent re-estimate, with a
  // dominating upper bound, and (since tau >= sigma pointwise) at least
  // (1 - 1/e) of the brute-force optimum.
  const int idx = GetParam();
  const BabConfig configs[] = {
      {false, false, false, BoundVariant::kZeroAnchored},
      {false, true, false, BoundVariant::kZeroAnchored},
      {true, false, false, BoundVariant::kZeroAnchored},
      {false, false, true, BoundVariant::kZeroAnchored},
      {false, false, false, BoundVariant::kPaperTangent},
      {true, false, false, BoundVariant::kPaperTangent},
      {false, true, true, BoundVariant::kZeroAnchored},
      {true, false, true, BoundVariant::kPaperTangent},
  };
  const BabConfig& cfg = configs[idx];

  BabInstance inst(10, 0.2, 2, 3, 401 + idx);
  const int budget = 3;
  const BruteForceResult opt =
      BruteForceSolve(*inst.mrr, inst.model, inst.pool, budget);

  BabOptions opts;
  opts.budget = budget;
  opts.gap = 0.0;
  opts.progressive = cfg.progressive;
  opts.lazy_greedy = cfg.lazy;
  opts.exact_pruning = cfg.exact;
  opts.variant = cfg.variant;
  const BabResult res =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();

  EXPECT_LE(res.plan.size(), budget);
  EXPECT_NEAR(res.utility,
              EstimateAdoptionUtility(*inst.mrr, inst.model, res.plan),
              1e-9);
  EXPECT_GE(res.upper_bound + 1e-9, res.utility);
  EXPECT_LE(res.utility, opt.utility + 1e-9);
  const double floor = cfg.progressive
                           ? (1.0 - std::exp(-1.0) - opts.epsilon)
                           : (1.0 - std::exp(-1.0));
  EXPECT_GE(res.utility + 1e-9, floor * opt.utility) << "config " << idx;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BabConfigSweep,
                         ::testing::Range(0, 8));

// ------------------------------------------------------- GreedySigma

TEST(GreedySigmaTest, FeasibleAndReasonable) {
  BabInstance inst(20, 0.15, 3, 4, 193);
  const BabResult res =
      GreedySigmaSolve(*inst.mrr, inst.model, inst.pool, 4);
  EXPECT_LE(res.plan.size(), 4);
  EXPECT_GT(res.utility, 0.0);
  EXPECT_NEAR(res.utility,
              EstimateAdoptionUtility(*inst.mrr, inst.model, res.plan),
              1e-9);
}

// ------------------------------------------------------------ Baselines

TEST(BaselinesTest, RunAndProduceSinglePiecePlans) {
  BabInstance inst(30, 0.12, 3, 5, 197);
  const BaselineResult im =
      ImBaseline(inst.graph, inst.probs, inst.campaign, *inst.mrr,
                 inst.model, inst.pool, 4, 2000, 199);
  const BaselineResult tim =
      TimBaseline(inst.graph, inst.probs, inst.campaign, *inst.mrr,
                  inst.model, inst.pool, 4, 2000, 211);
  // Both concentrate all k seeds on one piece.
  for (const BaselineResult* r : {&im, &tim}) {
    ASSERT_GE(r->chosen_piece, 0);
    for (int j = 0; j < r->plan.num_pieces(); ++j) {
      if (j != r->chosen_piece) {
        EXPECT_TRUE(r->plan.SeedSet(j).empty());
      }
    }
    EXPECT_GT(r->utility, 0.0);
  }
}

TEST(BaselinesTest, BabBeatsOrMatchesBaselines) {
  BabInstance inst(30, 0.12, 3, 5, 223);
  const int k = 4;
  const BaselineResult im =
      ImBaseline(inst.graph, inst.probs, inst.campaign, *inst.mrr,
                 inst.model, inst.pool, k, 2000, 227);
  const BaselineResult tim =
      TimBaseline(inst.graph, inst.probs, inst.campaign, *inst.mrr,
                  inst.model, inst.pool, k, 2000, 229);
  BabOptions opts;
  opts.budget = k;
  const BabResult bab =
      BabSolver(inst.mrr.get(), inst.model, inst.pool, opts).Solve();
  EXPECT_GE(bab.utility + 1e-6, im.utility * (1 - 1e-9));
  EXPECT_GE(bab.utility + 1e-6, tim.utility * (1 - 1e-9));
}

}  // namespace
}  // namespace oipa
