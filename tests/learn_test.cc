#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "learn/action_log.h"
#include "learn/tic_learner.h"
#include "topic/prob_models.h"
#include "util/stats.h"

namespace oipa {
namespace {

TEST(ActionLogTest, EventsSortedAndTimestamped) {
  const Graph g = GenerateErdosRenyi(60, 0.08, 7);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 4, 2.0, 11);
  const ActionLog log = GenerateActionLog(g, truth, 20, 3, 13);
  EXPECT_EQ(log.num_items(), 20);
  EXPECT_FALSE(log.events.empty());
  for (size_t i = 1; i < log.events.size(); ++i) {
    const ActionEvent& a = log.events[i - 1];
    const ActionEvent& b = log.events[i];
    EXPECT_TRUE(a.item < b.item ||
                (a.item == b.item && a.timestamp <= b.timestamp));
  }
  for (const ActionEvent& ev : log.events) {
    EXPECT_GE(ev.timestamp, 0);
    EXPECT_GE(ev.user, 0);
    EXPECT_LT(ev.user, g.num_vertices());
  }
}

TEST(ActionLogTest, SeedsHaveTimestampZero) {
  const Graph g = GenerateErdosRenyi(40, 0.1, 17);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 3, 1.5, 19);
  const ActionLog log = GenerateActionLog(g, truth, 10, 2, 23);
  for (int item = 0; item < log.num_items(); ++item) {
    int zero_count = 0;
    for (const ActionEvent& ev : log.events) {
      if (ev.item == item && ev.timestamp == 0) ++zero_count;
    }
    EXPECT_GE(zero_count, 1) << "item " << item;
    EXPECT_LE(zero_count, 2);
  }
}

TEST(ActionLogTest, ItemTopicsAreSparseMixtures) {
  const Graph g = GenerateErdosRenyi(30, 0.1, 29);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 8, 2.0, 31);
  const ActionLog log = GenerateActionLog(g, truth, 15, 2, 37);
  for (const TopicVector& t : log.item_topics) {
    EXPECT_LE(t.NumNonZero(), 2);
    EXPECT_NEAR(t.Sum(), 1.0, 1e-9);
  }
}

TEST(TicLearnerTest, OutputShapeAndRange) {
  const Graph g = GenerateErdosRenyi(50, 0.08, 41);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 4, 2.0, 43);
  const ActionLog log = GenerateActionLog(g, truth, 100, 3, 47);
  TicLearnerOptions opts;
  opts.iterations = 3;
  const EdgeTopicProbs learned =
      LearnTicProbabilities(g, log, 4, opts);
  EXPECT_EQ(learned.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < learned.num_edges(); ++e) {
    for (const TopicProb& tp : learned.EdgeEntries(e)) {
      EXPECT_GE(tp.prob, 0.0f);
      EXPECT_LE(tp.prob, 1.0f);
    }
  }
}

TEST(TicLearnerTest, RecoversSignalFromRichLog) {
  // Strong-vs-weak edge discrimination: learn from many cascades and
  // check that learned piece-collapsed probabilities correlate with the
  // ground truth across edges.
  const Graph g = GenerateErdosRenyi(40, 0.12, 53);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 3, 2.0, 59);
  const ActionLog log = GenerateActionLog(g, truth, 600, 3, 61);
  TicLearnerOptions opts;
  opts.iterations = 5;
  const EdgeTopicProbs learned = LearnTicProbabilities(g, log, 3, opts);

  std::vector<double> truth_vals, learned_vals;
  const TopicVector uniform = TopicVector::Uniform(3);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    truth_vals.push_back(truth.PieceProb(e, uniform));
    learned_vals.push_back(learned.PieceProb(e, uniform));
  }
  EXPECT_GT(SpearmanCorrelation(truth_vals, learned_vals), 0.35);
}

TEST(TicLearnerTest, MoreIterationsStaysBounded) {
  const Graph g = GenerateErdosRenyi(25, 0.15, 67);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 3, 1.5, 71);
  const ActionLog log = GenerateActionLog(g, truth, 50, 2, 73);
  for (int iters : {1, 2, 8}) {
    TicLearnerOptions opts;
    opts.iterations = iters;
    const EdgeTopicProbs learned =
        LearnTicProbabilities(g, log, 3, opts);
    EXPECT_EQ(learned.num_edges(), g.num_edges());
  }
}

TEST(TicLearnerTest, EmptyLogGivesNearZeroPrior) {
  const Graph g = GenerateErdosRenyi(20, 0.1, 79);
  ActionLog log;
  TicLearnerOptions opts;
  opts.iterations = 1;
  const EdgeTopicProbs learned = LearnTicProbabilities(g, log, 3, opts);
  // No evidence: every probability collapses to the weak prior
  // smoothing / (smoothing + prior_failures) ~ 1%, and entries below
  // min_prob are dropped entirely.
  const double prior = opts.smoothing / (opts.smoothing + opts.prior_failures);
  for (EdgeId e = 0; e < learned.num_edges(); ++e) {
    for (const TopicProb& tp : learned.EdgeEntries(e)) {
      EXPECT_NEAR(tp.prob, prior, 1e-5);
    }
  }
}

TEST(TicLearnerTest, UnobservedEdgesStaySparse) {
  // The learned influence graph must not be denser than the truth:
  // average collapsed probability should be within a small factor of
  // the ground truth's, never coin-flip dense.
  const Graph g = GenerateErdosRenyi(40, 0.1, 83);
  const EdgeTopicProbs truth = AssignWeightedCascadeTopics(g, 3, 2.0, 89);
  const ActionLog log = GenerateActionLog(g, truth, 200, 3, 97);
  TicLearnerOptions opts;
  opts.iterations = 3;
  const EdgeTopicProbs learned = LearnTicProbabilities(g, log, 3, opts);
  const TopicVector uniform = TopicVector::Uniform(3);
  double truth_mean = 0.0, learned_mean = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    truth_mean += truth.PieceProb(e, uniform);
    learned_mean += learned.PieceProb(e, uniform);
  }
  EXPECT_LT(learned_mean, 3.0 * truth_mean + 1.0);
}

}  // namespace
}  // namespace oipa
