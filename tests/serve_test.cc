// oipa_serve end-to-end tests: real TCP sockets against a PlanServer
// in-process. Covers the wire protocol (parse errors -> structured
// responses, never aborts), context caching, request batching,
// deadlines, graceful drain, and the SampleStore registry budget. Runs
// in the TSan CI leg — the concurrent-clients test is the data-race
// probe for the whole serve subsystem.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rrset/sample_store.h"
#include "serve/client.h"
#include "serve/json_parser.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/fault_injector.h"

namespace oipa {
namespace serve {
namespace {

// ------------------------------------------------------- JSON parser

TEST(JsonParserTest, ParsesScalarsEscapesAndNesting) {
  const StatusOr<JsonValue> v = ParseJson(
      R"({"s":"a\"b\nA","i":-42,"d":2.5,"b":true,"z":null,)"
      R"("arr":[1,[2]],"obj":{"k":"v"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->string_value(), "a\"b\nA");
  EXPECT_EQ(v->Find("i")->int_value(), -42);
  EXPECT_EQ(v->Find("d")->double_value(), 2.5);
  EXPECT_TRUE(v->Find("b")->bool_value());
  EXPECT_TRUE(v->Find("z")->is_null());
  EXPECT_EQ(v->Find("arr")->at(1).at(0).int_value(), 2);
  EXPECT_EQ(v->Find("obj")->Find("k")->string_value(), "v");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
        "{\"a\":1} trailing", "01", "- 1", "nan", "{\"a\" 1}"}) {
    const StatusOr<JsonValue> v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << bad;
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(JsonParserTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  const StatusOr<JsonValue> v = ParseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("nesting"), std::string::npos);
}

TEST(JsonParserTest, RoundTripsThroughJsonValueDump) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":false},"d":null})";
  const StatusOr<JsonValue> v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Dump(-1), text);
}

// ------------------------------------------------------ wire parsing

TEST(WireTest, DefaultsAndMergeKeys) {
  const StatusOr<WireRequest> minimal = ParseWireRequest(R"({"id":"r"})");
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_EQ(minimal->id, "r");
  EXPECT_EQ(minimal->plan.method, "bab-p");
  EXPECT_EQ(minimal->plan.budgets, std::vector<int>({10}));
  EXPECT_FALSE(minimal->wants_holdout());

  // Same context, different budgets: merge keys match.
  const auto a = ParseWireRequest(R"({"plan":{"budgets":[4]}})");
  const auto b = ParseWireRequest(R"({"plan":{"budgets":[8]}})");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(MergeKey(*a), MergeKey(*b));
  EXPECT_FALSE(MergeKey(*a).empty());
  EXPECT_EQ(ContextKey(*a), ContextKey(*b));

  // Theta is not part of the context key (prefix sharing)...
  const auto grown = ParseWireRequest(R"({"sampling":{"theta":40000}})");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(ContextKey(*a), ContextKey(*grown));
  // ...but the sampling seed and the solver profile are.
  const auto seeded = ParseWireRequest(R"({"sampling":{"seed":5}})");
  const auto other_method = ParseWireRequest(R"({"plan":{"method":"im"}})");
  ASSERT_TRUE(seeded.ok() && other_method.ok());
  EXPECT_NE(ContextKey(*a), ContextKey(*seeded));
  EXPECT_NE(MergeKey(*a), MergeKey(*other_method));

  // Deadlines and progressive solving disqualify batching.
  const auto deadline =
      ParseWireRequest(R"({"plan":{"deadline_ms":100}})");
  const auto progressive =
      ParseWireRequest(R"({"sampling":{"epsilon":0.05}})");
  ASSERT_TRUE(deadline.ok() && progressive.ok());
  EXPECT_TRUE(MergeKey(*deadline).empty());
  EXPECT_TRUE(MergeKey(*progressive).empty());
}

TEST(WireTest, RejectsOutOfDomainFields) {
  for (const char* bad : {
           R"({"dataset":{"name":"imdb"}})",
           R"({"dataset":{"n":0}})",
           R"({"dataset":{"pool_fraction":0.0}})",
           R"({"sampling":{"theta":0}})",
           R"({"sampling":{"epsilon":-0.1}})",
           R"({"sampling":{"stopping":"never"}})",
           R"({"plan":{"budgets":[]}})",
           R"({"plan":{"budgets":[0]}})",
           R"({"plan":{"budgets":"many"}})",
           R"({"plan":{"deadline_ms":0}})",
           R"({"plan":{"deadline_ms":-5}})",
           R"({"plan":{"threads":-1}})",
           R"({"plan":{"epsilon":0.0}})",
           R"({"plan":{"epsilon":1.5}})",
           R"({"plan":{"bound":"tight"}})",
           R"({"plan":{"max_nodes":0}})",
           R"({"id":7})",
           R"({"type":"stats"})",
           R"([1,2,3])",
       }) {
    const StatusOr<WireRequest> r = ParseWireRequest(bad);
    EXPECT_FALSE(r.ok()) << bad;
  }
}

// ---------------------------------------------------------- fixture

/// Sends `lines` on one connection, then reads until `expected`
/// response lines arrived (responses come back in request order).
std::vector<std::string> SendLinesAndCollect(
    int port, const std::vector<std::string>& lines, size_t expected,
    int delay_ms_between_lines = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  for (const std::string& line : lines) {
    const std::string framed = line + "\n";
    EXPECT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
    if (delay_ms_between_lines > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay_ms_between_lines));
    }
  }
  std::string buffer;
  std::vector<std::string> responses;
  char chunk[4096];
  while (responses.size() < expected) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos = 0;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      responses.push_back(buffer.substr(0, pos));
      buffer.erase(0, pos + 1);
    }
  }
  ::close(fd);
  EXPECT_EQ(responses.size(), expected);
  return responses;
}

JsonValue Parse(const std::string& line) {
  StatusOr<JsonValue> v = ParseJson(line);
  EXPECT_TRUE(v.ok()) << line;
  return v.ok() ? std::move(*v) : JsonValue();
}

/// A small request against a tiny synthetic dataset. `dataset_seed`
/// picks the context; `extra_plan` splices extra fields into "plan".
std::string TinyRequest(const std::string& id, int dataset_seed,
                        const std::string& budgets,
                        const std::string& extra_plan = "",
                        int64_t theta = 1'500) {
  return std::string("{\"id\":\"") + id +
         "\",\"dataset\":{\"n\":250,\"seed\":" +
         std::to_string(dataset_seed) +
         "},\"sampling\":{\"theta\":" + std::to_string(theta) +
         "},\"plan\":{\"method\":\"bab\",\"budgets\":" + budgets +
         extra_plan + "}}";
}

class ServeFixture : public ::testing::Test {
 protected:
  void TearDown() override {
    // Tests with a nonzero store budget must not leak retention into
    // later suites sharing the process-wide registry; chaos tests must
    // not leak armed faults or parked recovery snapshots either.
    FaultInjector::Disable();
    SampleStore::ClearRecoveredSnapshots();
    SampleStore::SetRegistryBudget(0);
  }

  void StartServer(ServerOptions options) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<PlanServer>(options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  JsonValue Roundtrip(const std::string& request) {
    const StatusOr<std::string> response =
        RequestOverTcp("127.0.0.1", server_->port(), request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return Parse(response.ok() ? *response : "null");
  }

  std::unique_ptr<PlanServer> server_;
};

// ----------------------------------------------------------- serving

TEST_F(ServeFixture, AnswersPlanRequestsAndCachesContexts) {
  StartServer({});
  const JsonValue first = Roundtrip(TinyRequest("r1", 1, "[3]"));
  ASSERT_TRUE(first.Find("ok")->bool_value()) << first.Dump(-1);
  EXPECT_EQ(first.Find("id")->string_value(), "r1");
  const JsonValue& results = *first.Find("results");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.at(0).Find("k")->int_value(), 3);
  EXPECT_GT(results.at(0).Find("utility")->double_value(), 0.0);
  EXPECT_TRUE(results.at(0).Find("converged")->bool_value());
  const JsonValue* serve = first.Find("serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_FALSE(serve->Find("cache_hit")->bool_value());
  EXPECT_GT(serve->Find("samples_generated")->int_value(), 0);

  // The repeat request hits the cached context: no dataset build, no
  // piece graphs, and zero new MRR samples (acceptance (a)).
  const JsonValue second = Roundtrip(TinyRequest("r2", 1, "[3]"));
  ASSERT_TRUE(second.Find("ok")->bool_value());
  const JsonValue* serve2 = second.Find("serve");
  EXPECT_TRUE(serve2->Find("cache_hit")->bool_value());
  EXPECT_EQ(serve2->Find("samples_generated")->int_value(), 0);
  // Same context + same samples => bit-identical answer.
  EXPECT_EQ(second.Find("results")->at(0).Find("utility")->double_value(),
            results.at(0).Find("utility")->double_value());
  EXPECT_EQ(second.Find("results")->at(0).Find("seed_sets")->Dump(-1),
            results.at(0).Find("seed_sets")->Dump(-1));

  // A larger theta reuses the context and samples only the delta.
  const JsonValue grown =
      Roundtrip(TinyRequest("r3", 1, "[3]", "", /*theta=*/3'000));
  ASSERT_TRUE(grown.Find("ok")->bool_value());
  EXPECT_TRUE(grown.Find("serve")->Find("cache_hit")->bool_value());
  EXPECT_EQ(grown.Find("serve")->Find("samples_generated")->int_value(),
            3'000 - 1'500);
  EXPECT_EQ(grown.Find("results")->at(0).Find("theta_used")->int_value(),
            3'000);
}

TEST_F(ServeFixture, MalformedInputGetsStructuredErrorsNotAborts) {
  StartServer({});
  const std::vector<std::string> lines = {
      "this is not json",
      R"({"dataset":{"name":"imdb"}})",
      R"({"id":"bad-solver","plan":{"method":"frobnicate"}})",
      R"({"id":"bad-deadline","plan":{"deadline_ms":-1}})",
      TinyRequest("still-alive", 1, "[2]"),
  };
  const std::vector<std::string> responses =
      SendLinesAndCollect(server_->port(), lines, lines.size());
  ASSERT_EQ(responses.size(), lines.size());

  // Parse errors are written by the reader and solve responses by the
  // workers, so classify by content instead of arrival order.
  int ok_count = 0, invalid_count = 0;
  bool saw_dataset_error = false, saw_deadline_error = false;
  bool saw_solver_not_found = false, saw_still_alive = false;
  for (const std::string& line : responses) {
    const JsonValue r = Parse(line);
    if (r.Find("ok")->bool_value()) {
      ++ok_count;
      saw_still_alive = r.Find("id")->string_value() == "still-alive";
      continue;
    }
    const JsonValue* error = r.Find("error");
    ASSERT_NE(error, nullptr) << line;
    const std::string code = error->Find("code")->string_value();
    const std::string message = error->Find("message")->string_value();
    if (code == "InvalidArgument") ++invalid_count;
    if (message.find("imdb") != std::string::npos) {
      saw_dataset_error = true;
    }
    if (message.find("deadline_ms") != std::string::npos) {
      saw_deadline_error = true;
    }
    if (code == "NotFound" &&
        r.Find("id")->string_value() == "bad-solver") {
      saw_solver_not_found = true;
    }
  }
  // The connection survived four bad requests; the fifth one solved.
  EXPECT_EQ(ok_count, 1);
  EXPECT_TRUE(saw_still_alive);
  EXPECT_EQ(invalid_count, 3);  // bad JSON, bad dataset, bad deadline
  EXPECT_TRUE(saw_dataset_error);
  EXPECT_TRUE(saw_deadline_error);
  EXPECT_TRUE(saw_solver_not_found);
}

TEST_F(ServeFixture, QueuedCompatibleRequestsShareOneSweep) {
  ServerOptions options;
  options.workers = 1;  // forces queueing behind the blocker
  StartServer(options);

  // Occupy the single worker with an expensive different-context
  // request (big dataset build + sampling pass) while r-a/r-b (same
  // context, different budgets) queue up behind it. Every blocker in
  // this file uses a distinct dataset seed: the sample-store registry
  // is process-global, and a warm registry hit would let the blocker
  // finish before the queued requests arrive.
  std::thread blocker([&] {
    const std::string request =
        "{\"id\":\"blocker\",\"dataset\":{\"n\":4000,\"seed\":991},"
        "\"sampling\":{\"theta\":150000},"
        "\"plan\":{\"method\":\"bab\",\"budgets\":[8]}}";
    const StatusOr<std::string> response =
        RequestOverTcp("127.0.0.1", server_->port(), request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(Parse(*response).Find("ok")->bool_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const std::vector<std::string> responses = SendLinesAndCollect(
      server_->port(),
      {TinyRequest("r-a", 1, "[4]"), TinyRequest("r-b", 1, "[6]")}, 2);
  blocker.join();
  ASSERT_EQ(responses.size(), 2u);

  const JsonValue a = Parse(responses[0]);
  const JsonValue b = Parse(responses[1]);
  ASSERT_TRUE(a.Find("ok")->bool_value() && b.Find("ok")->bool_value());
  // Both were answered from one merged SolveBatch sweep.
  EXPECT_EQ(a.Find("serve")->Find("batch_size")->int_value(), 2);
  EXPECT_EQ(b.Find("serve")->Find("batch_size")->int_value(), 2);
  ASSERT_EQ(a.Find("results")->size(), 1u);
  ASSERT_EQ(b.Find("results")->size(), 1u);
  EXPECT_EQ(a.Find("results")->at(0).Find("k")->int_value(), 4);
  EXPECT_EQ(b.Find("results")->at(0).Find("k")->int_value(), 6);

  // Acceptance (b): the batched answers are bit-identical to solving
  // each request alone against the same cached context.
  for (const auto& [id, batched] :
       {std::pair<std::string, const JsonValue*>{"s-a", &a},
        std::pair<std::string, const JsonValue*>{"s-b", &b}}) {
    const std::string budgets =
        "[" +
        std::to_string(
            batched->Find("results")->at(0).Find("k")->int_value()) +
        "]";
    const JsonValue serial = Roundtrip(TinyRequest(id, 1, budgets));
    ASSERT_TRUE(serial.Find("ok")->bool_value());
    const JsonValue& lhs = serial.Find("results")->at(0);
    const JsonValue& rhs = batched->Find("results")->at(0);
    // Everything but wall-clock time must match bit-for-bit.
    for (const char* field :
         {"seed_sets", "utility", "holdout_utility", "upper_bound",
          "converged", "nodes_expanded", "bound_calls", "theta_used"}) {
      EXPECT_EQ(lhs.Find(field)->Dump(-1), rhs.Find(field)->Dump(-1))
          << id << "." << field;
    }
  }
}

TEST_F(ServeFixture, DeadlineCancelsWithPartialTelemetry) {
  StartServer({});
  // Warm the context so the deadline bites mid-solve, not mid-build.
  ASSERT_TRUE(
      Roundtrip(TinyRequest("warm", 1, "[2]")).Find("ok")->bool_value());

  // The sample growth to theta=40000 alone outlasts the 1 ms deadline
  // (measured from enqueue), so the solve is dispatched with the
  // clamped 1 ms remainder and cancels at its first progress poll.
  const JsonValue r = Roundtrip(TinyRequest(
      "hurry", 1, "[8]", ",\"deadline_ms\":1,\"gap\":0.0", 40'000));
  ASSERT_TRUE(r.Find("ok")->bool_value()) << r.Dump(-1);
  EXPECT_TRUE(r.Find("cancelled")->bool_value());
  const JsonValue& row = r.Find("results")->at(0);
  EXPECT_TRUE(row.Find("cancelled")->bool_value());
  EXPECT_TRUE(row.Find("deadline_exceeded")->bool_value());
  EXPECT_FALSE(row.Find("converged")->bool_value());
  // Partial telemetry still describes the work done up to the cutoff.
  EXPECT_GE(row.Find("theta_used")->int_value(), 1'500);

  // A comfortable deadline leaves the solve untouched.
  const JsonValue relaxed = Roundtrip(
      TinyRequest("calm", 1, "[2]", ",\"deadline_ms\":60000"));
  ASSERT_TRUE(relaxed.Find("ok")->bool_value());
  EXPECT_FALSE(relaxed.Find("cancelled")->bool_value());
  EXPECT_FALSE(relaxed.Find("results")
                   ->at(0)
                   .Find("deadline_exceeded")
                   ->bool_value());
}

TEST_F(ServeFixture, StoreBudgetRetainsAndEvictsAcrossContexts) {
  ServerOptions options;
  options.max_contexts = 1;  // every new context evicts the previous
  options.store_budget_bytes = 2 * 1024 * 1024;
  StartServer(options);

  // Context A, then context B. max_contexts=1 evicts A's context, but
  // the 2 MiB budget retains A's (now unpinned) sample store.
  const JsonValue a1 = Roundtrip(TinyRequest("a1", 1, "[2]"));
  ASSERT_TRUE(a1.Find("ok")->bool_value());
  const JsonValue b1 = Roundtrip(TinyRequest("b1", 2, "[2]"));
  ASSERT_TRUE(b1.Find("ok")->bool_value());
  const JsonValue* registry = b1.Find("serve")->Find("store_registry");
  EXPECT_EQ(registry->Find("live_stores")->int_value(), 2);
  EXPECT_EQ(registry->Find("pinned_stores")->int_value(), 1);
  EXPECT_EQ(registry->Find("evictions")->int_value(), 0);

  // Re-requesting A rebuilds the context (cache_hit false) but finds
  // A's retained store in the registry: zero new samples.
  const JsonValue a2 = Roundtrip(TinyRequest("a2", 1, "[2]"));
  ASSERT_TRUE(a2.Find("ok")->bool_value());
  EXPECT_FALSE(a2.Find("serve")->Find("cache_hit")->bool_value());
  EXPECT_EQ(a2.Find("serve")->Find("samples_generated")->int_value(), 0);
  EXPECT_EQ(a2.Find("results")->at(0).Find("utility")->double_value(),
            a1.Find("results")->at(0).Find("utility")->double_value());

  // Acceptance (d): drop the budget below two stores — the LRU
  // unpinned store (B's) is evicted; re-requesting B resamples.
  const int64_t store_bytes = a2.Find("serve")
                                  ->Find("store")
                                  ->Find("memory_bytes")
                                  ->int_value();
  SampleStore::SetRegistryBudget(store_bytes + store_bytes / 2);
  const JsonValue b2 = Roundtrip(TinyRequest("b2", 2, "[2]"));
  ASSERT_TRUE(b2.Find("ok")->bool_value());
  const JsonValue* registry2 = b2.Find("serve")->Find("store_registry");
  EXPECT_GE(registry2->Find("evictions")->int_value(), 1);
  EXPECT_GT(b2.Find("serve")->Find("samples_generated")->int_value(), 0);
  EXPECT_LE(registry2->Find("live_stores")->int_value(), 2);
  // Evicted-and-resampled is still deterministic per the sampling seed.
  EXPECT_EQ(b2.Find("results")->at(0).Find("utility")->double_value(),
            b1.Find("results")->at(0).Find("utility")->double_value());
}

TEST_F(ServeFixture, ConcurrentClientsWithMixedContexts) {
  ServerOptions options;
  options.workers = 3;
  StartServer(options);
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        // Two contexts interleaved across clients, varying budgets.
        const std::string request = TinyRequest(
            "c" + std::to_string(i), 1 + (i % 2),
            "[" + std::to_string(2 + i / 2) + "]");
        const StatusOr<std::string> response =
            RequestOverTcp("127.0.0.1", server_->port(), request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        responses[i] = *response;
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    const JsonValue r = Parse(responses[i]);
    EXPECT_TRUE(r.Find("ok")->bool_value()) << responses[i];
    EXPECT_EQ(r.Find("id")->string_value(), "c" + std::to_string(i));
    EXPECT_GT(
        r.Find("results")->at(0).Find("utility")->double_value(), 0.0);
  }
  // Eight requests, two distinct contexts: exactly two misses total,
  // observed from a follow-up request sent after every client joined
  // (in-flight responses may snapshot the cache mid-build).
  const JsonValue after = Roundtrip(TinyRequest("after", 1, "[2]"));
  ASSERT_TRUE(after.Find("ok")->bool_value());
  const JsonValue* cache = after.Find("serve")->Find("context_cache");
  EXPECT_EQ(cache->Find("misses")->int_value(), 2);
  EXPECT_EQ(cache->Find("live_contexts")->int_value(), 2);
  // Hits count group acquires, not requests — concurrent compatible
  // requests merge into batches — so only the follow-up is guaranteed.
  EXPECT_GE(cache->Find("hits")->int_value(), 1);
}

TEST_F(ServeFixture, GracefulShutdownDrainsQueuedSolves) {
  ServerOptions options;
  options.workers = 1;
  StartServer(options);

  // Three requests on one connection; the single worker is busy with
  // the first while the other two sit in the queue.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string burst = TinyRequest("q1", 1, "[3]", "", 20'000) + "\n" +
                      TinyRequest("q2", 1, "[4]") + "\n" +
                      TinyRequest("q3", 2, "[3]") + "\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Stop() drains: every accepted request is still answered.
  server_->Stop();
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> responses;
  size_t pos = 0;
  while ((pos = buffer.find('\n')) != std::string::npos) {
    responses.push_back(buffer.substr(0, pos));
    buffer.erase(0, pos + 1);
  }
  ASSERT_EQ(responses.size(), 3u) << buffer;
  for (const std::string& line : responses) {
    const JsonValue r = Parse(line);
    EXPECT_TRUE(r.Find("ok")->bool_value()) << line;
  }

  // The listener is gone: new connections are refused.
  ClientOptions no_retry;
  no_retry.retries = 0;
  const StatusOr<std::string> refused =
      RequestOverTcp("127.0.0.1", server_->port(),
                     TinyRequest("late", 1, "[2]"), no_retry);
  EXPECT_FALSE(refused.ok());
}

// -------------------------------------------------------- robustness

/// Asserts two "results" arrays describe bit-identical answers —
/// everything but wall-clock time (solve_seconds) must match.
void ExpectSameResults(const JsonValue& lhs, const JsonValue& rhs) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    for (const char* field :
         {"seed_sets", "utility", "holdout_utility", "upper_bound",
          "converged", "nodes_expanded", "bound_calls", "theta_used"}) {
      EXPECT_EQ(lhs.at(i).Find(field)->Dump(-1),
                rhs.at(i).Find(field)->Dump(-1))
          << i << "." << field;
    }
  }
}

TEST(ServeOptionsTest, StartRejectsInvalidOptions) {
  const auto expect_invalid = [](ServerOptions options) {
    PlanServer server(options);
    const Status started = server.Start();
    EXPECT_FALSE(started.ok());
    EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
  };
  ServerOptions options;
  options.workers = 0;
  expect_invalid(options);
  options = {};
  options.max_contexts = 0;
  expect_invalid(options);
  options = {};
  options.store_budget_bytes = -1;
  expect_invalid(options);
  options = {};
  options.max_queue_depth = 0;
  expect_invalid(options);
  options = {};
  options.max_inflight_per_conn = 0;
  expect_invalid(options);
  options = {};
  options.write_timeout_ms = 0;
  expect_invalid(options);
  options = {};
  options.checkpoint_interval_ms = 0;
  expect_invalid(options);
}

TEST(ServeClientTest, SilentDaemonTimesOutInsteadOfHanging) {
  // A listener that never accepts: the kernel completes the handshake
  // from the backlog, so connect and send succeed — only the read can
  // detect the silence.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const int port = ntohs(addr.sin_port);

  ClientOptions options;
  options.read_timeout_ms = 100;
  options.retries = 0;
  const auto start = std::chrono::steady_clock::now();
  const StatusOr<std::string> response =
      RequestOverTcp("127.0.0.1", port, R"({"id":"void"})", options);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 10'000);  // bounded, not a hang
  ::close(listener);

  // With the listener gone the same call fails fast with a transport
  // error (connection refused), still without hanging.
  ClientOptions quick = options;
  quick.connect_timeout_ms = 1'000;
  const StatusOr<std::string> refused =
      RequestOverTcp("127.0.0.1", port, R"({"id":"void"})", quick);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeFixture, OverloadRejectionsCarryRetryAfterMs) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  StartServer(options);

  // Occupy the single worker so the queue backs up behind it.
  std::thread blocker([&] {
    const std::string request =
        "{\"id\":\"blocker\",\"dataset\":{\"n\":4000,\"seed\":992},"
        "\"sampling\":{\"theta\":150000},"
        "\"plan\":{\"method\":\"bab\",\"budgets\":[8]}}";
    const StatusOr<std::string> response =
        RequestOverTcp("127.0.0.1", server_->port(), request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(Parse(*response).Find("ok")->bool_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Three distinct-context requests: the first fills the depth-1
  // queue, the rest must be rejected with a structured back-off hint.
  const std::vector<std::string> responses = SendLinesAndCollect(
      server_->port(),
      {TinyRequest("f1", 1, "[2]"), TinyRequest("f2", 2, "[2]"),
       TinyRequest("f3", 3, "[2]")},
      3);
  blocker.join();
  ASSERT_EQ(responses.size(), 3u);

  int ok_count = 0, rejected_count = 0;
  for (const std::string& line : responses) {
    const JsonValue r = Parse(line);
    if (r.Find("ok")->bool_value()) {
      ++ok_count;
      continue;
    }
    const JsonValue* error = r.Find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->Find("code")->string_value(), "resource_exhausted")
        << line;
    const JsonValue* retry = error->Find("retry_after_ms");
    ASSERT_NE(retry, nullptr) << line;
    EXPECT_GE(retry->int_value(), 1);
    ++rejected_count;
  }
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(rejected_count, 2);

  // Once the backlog clears, the daemon serves normally again.
  const JsonValue after = Roundtrip(TinyRequest("after", 1, "[2]"));
  EXPECT_TRUE(after.Find("ok")->bool_value());
}

TEST_F(ServeFixture, PerConnectionInflightCapRejectsGreedyPipeliner) {
  ServerOptions options;
  options.workers = 1;
  options.max_inflight_per_conn = 1;
  StartServer(options);
  std::thread blocker([&] {
    const std::string request =
        "{\"id\":\"blocker\",\"dataset\":{\"n\":4000,\"seed\":993},"
        "\"sampling\":{\"theta\":150000},"
        "\"plan\":{\"method\":\"bab\",\"budgets\":[8]}}";
    const StatusOr<std::string> response =
        RequestOverTcp("127.0.0.1", server_->port(), request);
    ASSERT_TRUE(response.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // One connection pipelines three requests; with the cap at 1 only
  // the first may occupy the queue — the global queue stays available
  // to other connections.
  const std::vector<std::string> responses = SendLinesAndCollect(
      server_->port(),
      {TinyRequest("p1", 1, "[2]"), TinyRequest("p2", 2, "[2]"),
       TinyRequest("p3", 3, "[2]")},
      3);
  blocker.join();
  int ok_count = 0, rejected_count = 0;
  for (const std::string& line : responses) {
    const JsonValue r = Parse(line);
    if (r.Find("ok")->bool_value()) {
      ++ok_count;
    } else {
      EXPECT_EQ(r.Find("error")->Find("code")->string_value(),
                "resource_exhausted")
          << line;
      ++rejected_count;
    }
  }
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(rejected_count, 2);
}

TEST_F(ServeFixture, HealthBypassesTheQueueAndReportsCounters) {
  ServerOptions options;
  options.workers = 1;
  StartServer(options);
  std::thread blocker([&] {
    const std::string request =
        "{\"id\":\"blocker\",\"dataset\":{\"n\":4000,\"seed\":994},"
        "\"sampling\":{\"theta\":150000},"
        "\"plan\":{\"method\":\"bab\",\"budgets\":[8]}}";
    const StatusOr<std::string> response =
        RequestOverTcp("127.0.0.1", server_->port(), request);
    ASSERT_TRUE(response.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The health probe is answered by the reader thread while the only
  // worker is busy — it cannot be stuck behind the solve.
  const std::vector<std::string> responses = SendLinesAndCollect(
      server_->port(), {R"({"id":"h1","type":"health"})"}, 1);
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue r = Parse(responses[0]);
  ASSERT_TRUE(r.Find("ok")->bool_value()) << responses[0];
  EXPECT_EQ(r.Find("id")->string_value(), "h1");
  const JsonValue* health = r.Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->Find("workers")->int_value(), 1);
  EXPECT_GE(health->Find("queue_depth")->int_value(), 0);
  EXPECT_FALSE(health->Find("draining")->bool_value());
  EXPECT_GE(health->Find("accepted")->int_value(), 1);
  for (const char* counter :
       {"rejected_queue_full", "rejected_inflight", "write_timeouts",
        "write_failures", "checkpoint_saves", "checkpoint_failures",
        "recovered_snapshots", "faults_injected"}) {
    ASSERT_NE(health->Find(counter), nullptr) << counter;
    EXPECT_GE(health->Find(counter)->int_value(), 0) << counter;
  }
  ASSERT_NE(health->Find("context_cache"), nullptr);
  ASSERT_NE(health->Find("store_registry"), nullptr);
  blocker.join();
}

TEST_F(ServeFixture, HalfClosedAndAbortedConnectionsDoNotWedgeWorkers) {
  StartServer({});

  // Half-close: the client sends its request and shuts down the write
  // side. The reader sees EOF, but the queued request still resolves
  // and the response is delivered on the surviving read side.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string framed = TinyRequest("half", 1, "[2]") + "\n";
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
    std::string buffer;
    char chunk[4096];
    while (buffer.find('\n') == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    ASSERT_NE(buffer.find('\n'), std::string::npos);
    const JsonValue r = Parse(buffer.substr(0, buffer.find('\n')));
    EXPECT_TRUE(r.Find("ok")->bool_value());
    EXPECT_EQ(r.Find("id")->string_value(), "half");
  }

  // Abrupt hangup: the request is accepted but the client vanishes
  // before the answer. The worker's write fails without SIGPIPE or a
  // wedge; nothing leaks.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string framed = TinyRequest("gone", 2, "[2]") + "\n";
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
    ::close(fd);
  }

  // The daemon keeps serving, and the drain completes instead of
  // hanging on the dead connection (a wedged worker would time this
  // test out).
  const JsonValue alive = Roundtrip(TinyRequest("alive", 1, "[2]"));
  EXPECT_TRUE(alive.Find("ok")->bool_value());
  server_->Stop();
}

TEST_F(ServeFixture, InjectedFaultsAreSurvivedAndRetriedAnswersMatch) {
  StartServer({});
  const JsonValue baseline = Roundtrip(TinyRequest("base", 1, "[3]"));
  ASSERT_TRUE(baseline.Find("ok")->bool_value());

  // Drop the daemon's 2nd response write on the floor (connection
  // severed). The resilient client retries on the dropped line; the
  // retried answer must be bit-identical to the fault-free baseline.
  ASSERT_TRUE(FaultInjector::Configure("serve.write=@2", 9).ok());
  ClientOptions resilient;
  resilient.retries = 3;
  resilient.backoff_initial_ms = 5;
  for (int i = 0; i < 3; ++i) {
    const StatusOr<std::string> response = RequestOverTcp(
        "127.0.0.1", server_->port(),
        TinyRequest("c" + std::to_string(i), 1, "[3]"), resilient);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const JsonValue r = Parse(*response);
    ASSERT_TRUE(r.Find("ok")->bool_value()) << *response;
    ExpectSameResults(*r.Find("results"), *baseline.Find("results"));
  }
  EXPECT_GE(FaultInjector::InjectedCount(), 1);

  // A read fault kills the connection before the request is parsed;
  // the retry lands on a fresh connection and succeeds.
  ASSERT_TRUE(FaultInjector::Configure("serve.read=@1", 9).ok());
  const StatusOr<std::string> after_read_fault = RequestOverTcp(
      "127.0.0.1", server_->port(), TinyRequest("rr", 1, "[3]"),
      resilient);
  ASSERT_TRUE(after_read_fault.ok())
      << after_read_fault.status().ToString();
  ExpectSameResults(*Parse(*after_read_fault).Find("results"),
                    *baseline.Find("results"));
  EXPECT_GE(FaultInjector::InjectedCount(), 1);
  FaultInjector::Disable();
}

TEST_F(ServeFixture, CheckpointedStoreIsRecoveredAfterRestart) {
  const std::string dir = testing::TempDir() + "/serve_ckpt";
  ServerOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_interval_ms = 60'000;  // rely on the Stop() pass

  StartServer(options);
  const JsonValue first = Roundtrip(TinyRequest("r1", 1, "[3]"));
  ASSERT_TRUE(first.Find("ok")->bool_value()) << first.Dump(-1);
  server_->Stop();  // graceful shutdown writes the final checkpoint
  // Destroying the server releases the context cache; with no registry
  // budget the sample store dies with it — a restart must genuinely
  // recover from disk, not from process memory.
  server_.reset();

  StartServer(options);
  const JsonValue second = Roundtrip(TinyRequest("r2", 1, "[3]"));
  ASSERT_TRUE(second.Find("ok")->bool_value()) << second.Dump(-1);
  // The tentpole acceptance: the restarted daemon answers the cached
  // context bit-identically with ZERO regenerated samples.
  EXPECT_EQ(second.Find("serve")->Find("samples_generated")->int_value(),
            0);
  ExpectSameResults(*second.Find("results"), *first.Find("results"));
  EXPECT_GE(second.Find("serve")
                ->Find("store_registry")
                ->Find("recovered_stores")
                ->int_value(),
            1);

  const std::vector<std::string> health_lines = SendLinesAndCollect(
      server_->port(), {R"({"id":"h","type":"health"})"}, 1);
  ASSERT_EQ(health_lines.size(), 1u);
  const JsonValue health = Parse(health_lines[0]);
  EXPECT_GE(health.Find("health")
                ->Find("recovered_snapshots")
                ->int_value(),
            1);
  EXPECT_GE(
      health.Find("health")->Find("checkpoint_saves")->int_value(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace oipa
