#include <gtest/gtest.h>

#include <cmath>

#include "topic/lda.h"
#include "util/stats.h"

namespace oipa {
namespace {

TEST(CorpusTest, SyntheticGeneratorShape) {
  std::vector<TopicVector> mixtures;
  const Corpus corpus =
      GenerateSyntheticCorpus(50, 4, 200, 30, 3, &mixtures);
  EXPECT_EQ(corpus.num_documents(), 50);
  EXPECT_EQ(corpus.vocab_size, 200);
  EXPECT_EQ(corpus.num_tokens(), 50 * 30);
  EXPECT_EQ(mixtures.size(), 50u);
  for (const auto& doc : corpus.documents) {
    for (int w : doc) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 200);
    }
  }
}

TEST(LdaTest, DocumentTopicsOnSimplex) {
  const Corpus corpus = GenerateSyntheticCorpus(30, 3, 90, 25, 5, nullptr);
  LdaOptions opts;
  opts.num_topics = 3;
  opts.iterations = 30;
  opts.seed = 7;
  LdaModel lda(opts);
  lda.Train(corpus);
  for (int d = 0; d < corpus.num_documents(); ++d) {
    const TopicVector theta = lda.DocumentTopics(d);
    EXPECT_NEAR(theta.Sum(), 1.0, 1e-9);
    for (int z = 0; z < 3; ++z) EXPECT_GT(theta[z], 0.0);
  }
}

TEST(LdaTest, TopicWordsOnSimplex) {
  const Corpus corpus = GenerateSyntheticCorpus(30, 3, 90, 25, 9, nullptr);
  LdaOptions opts;
  opts.num_topics = 3;
  opts.iterations = 20;
  LdaModel lda(opts);
  lda.Train(corpus);
  for (int z = 0; z < 3; ++z) {
    const std::vector<double> phi = lda.TopicWords(z);
    double sum = 0.0;
    for (double p : phi) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, TrainingImprovesLikelihoodOverRandomInit) {
  const Corpus corpus =
      GenerateSyntheticCorpus(80, 4, 160, 40, 11, nullptr);
  LdaOptions short_opts;
  short_opts.num_topics = 4;
  short_opts.iterations = 1;
  short_opts.seed = 13;
  LdaModel short_run(short_opts);
  short_run.Train(corpus);

  LdaOptions long_opts = short_opts;
  long_opts.iterations = 60;
  LdaModel long_run(long_opts);
  long_run.Train(corpus);

  EXPECT_GT(long_run.TokenLogLikelihood(corpus),
            short_run.TokenLogLikelihood(corpus) + 0.01);
}

TEST(LdaTest, RecoversGroundTruthMixtures) {
  // Documents with block-structured topics: the fitted document-topic
  // distributions must correlate with the generating mixtures up to a
  // topic permutation. We check via the best-match assignment.
  std::vector<TopicVector> mixtures;
  const int K = 3;
  const Corpus corpus =
      GenerateSyntheticCorpus(120, K, 300, 60, 17, &mixtures);
  LdaOptions opts;
  opts.num_topics = K;
  opts.iterations = 80;
  opts.seed = 19;
  LdaModel lda(opts);
  lda.Train(corpus);

  // For each fitted topic, find the ground-truth topic whose per-document
  // weights correlate best; the average matched correlation must be high.
  std::vector<std::vector<double>> fitted(K), truth(K);
  for (int z = 0; z < K; ++z) {
    fitted[z].resize(corpus.num_documents());
    truth[z].resize(corpus.num_documents());
  }
  for (int d = 0; d < corpus.num_documents(); ++d) {
    const TopicVector theta = lda.DocumentTopics(d);
    for (int z = 0; z < K; ++z) {
      fitted[z][d] = theta[z];
      truth[z][d] = mixtures[d][z];
    }
  }
  double matched = 0.0;
  for (int z = 0; z < K; ++z) {
    double best = -1.0;
    for (int t = 0; t < K; ++t) {
      best = std::max(best, PearsonCorrelation(fitted[z], truth[t]));
    }
    matched += best;
  }
  EXPECT_GT(matched / K, 0.6);
}

TEST(LdaTest, DeterministicGivenSeed) {
  const Corpus corpus = GenerateSyntheticCorpus(20, 3, 60, 20, 23, nullptr);
  LdaOptions opts;
  opts.num_topics = 3;
  opts.iterations = 10;
  opts.seed = 29;
  LdaModel a(opts), b(opts);
  a.Train(corpus);
  b.Train(corpus);
  for (int d = 0; d < corpus.num_documents(); ++d) {
    const TopicVector ta = a.DocumentTopics(d);
    const TopicVector tb = b.DocumentTopics(d);
    for (int z = 0; z < 3; ++z) {
      EXPECT_DOUBLE_EQ(ta[z], tb[z]);
    }
  }
}

}  // namespace
}  // namespace oipa
