#include <gtest/gtest.h>

#include <cstdio>

#include "data/datasets.h"
#include "data/serialization.h"
#include "util/stats.h"

namespace oipa {
namespace {

TEST(PromoterPoolTest, SizeAndRange) {
  const auto pool = SamplePromoterPool(1000, 0.10, 3);
  EXPECT_EQ(pool.size(), 100u);
  for (VertexId v : pool) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
  // Sorted and unique.
  for (size_t i = 1; i < pool.size(); ++i) {
    EXPECT_LT(pool[i - 1], pool[i]);
  }
}

TEST(PromoterPoolTest, Deterministic) {
  EXPECT_EQ(SamplePromoterPool(500, 0.1, 9),
            SamplePromoterPool(500, 0.1, 9));
}

TEST(DatasetTest, LastFmLikeMatchesTableIII) {
  const Dataset ds = MakeLastFmLike(7);
  EXPECT_EQ(ds.name, "lastfm");
  EXPECT_EQ(ds.num_topics, 20);
  EXPECT_EQ(ds.graph->num_vertices(), 1300);
  // ~15K directed edges, average degree ~8.7-12.
  EXPECT_GT(ds.graph->num_edges(), 12'000);
  EXPECT_LT(ds.graph->num_edges(), 18'000);
  EXPECT_EQ(ds.promoter_pool.size(), 130u);
  EXPECT_EQ(ds.probs->num_edges(), ds.graph->num_edges());
}

TEST(DatasetTest, DblpLikeScalesAndHasNineTopics) {
  const Dataset ds = MakeDblpLike(0.01, 11);  // 5K vertices
  EXPECT_EQ(ds.num_topics, 9);
  EXPECT_EQ(ds.graph->num_vertices(), 5000);
  // Average total degree near the paper's 11.9.
  EXPECT_NEAR(ds.graph->AverageDegree(), 11.9, 2.5);
  // Power-law-ish tail.
  const double alpha =
      PowerLawExponentMle(ds.graph->OutDegreeSequence(), 12.0);
  EXPECT_GT(alpha, 1.8);
  EXPECT_LT(alpha, 4.5);
}

TEST(DatasetTest, TweetLikeIsSparseWithSparseTopics) {
  const Dataset ds = MakeTweetLike(0.002, 13);  // 20K vertices
  EXPECT_EQ(ds.num_topics, 50);
  EXPECT_EQ(ds.graph->num_vertices(), 20'000);
  EXPECT_NEAR(ds.graph->AverageDegree(), 1.2, 0.2);
  // Paper: ~1.5 non-zero topic probabilities per edge.
  EXPECT_LT(ds.probs->AverageNonZeros(), 2.01);
  EXPECT_GE(ds.probs->AverageNonZeros(), 1.0);
}

TEST(DatasetTest, ByNameDispatch) {
  const Dataset ds = MakeDatasetByName("lastfm", 1.0, 3);
  EXPECT_EQ(ds.name, "lastfm");
  const Dataset ds2 = MakeDatasetByName("tweet", 0.001, 3);
  EXPECT_EQ(ds2.name, "tweet");
}

TEST(SerializationTest, RoundtripPreservesEverything) {
  const Dataset ds = MakeLastFmLike(17);
  const std::string path = testing::TempDir() + "/ds_roundtrip.bin";
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, ds.name);
  EXPECT_EQ(loaded->num_topics, ds.num_topics);
  EXPECT_EQ(loaded->graph->num_vertices(), ds.graph->num_vertices());
  EXPECT_EQ(loaded->graph->num_edges(), ds.graph->num_edges());
  EXPECT_EQ(loaded->promoter_pool, ds.promoter_pool);
  for (EdgeId e = 0; e < ds.graph->num_edges(); ++e) {
    EXPECT_EQ(loaded->graph->edge(e).src, ds.graph->edge(e).src);
    EXPECT_EQ(loaded->graph->edge(e).dst, ds.graph->edge(e).dst);
    const auto a = ds.probs->EdgeEntries(e);
    const auto b = loaded->probs->EdgeEntries(e);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].topic, b[i].topic);
      EXPECT_EQ(a[i].prob, b[i].prob);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadDataset("/no/such/file.bin").ok());
}

TEST(SerializationTest, CorruptMagicRejected) {
  const std::string path = testing::TempDir() + "/ds_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "definitely not a dataset";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto loaded = LoadDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  const Dataset ds = MakeLastFmLike(19);
  const std::string path = testing::TempDir() + "/ds_trunc.bin";
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  // Truncate to half size.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(LoadDataset(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oipa
